#!/usr/bin/env bash
# CI entry point: formatting, lints, then the tier-1 verify
# (release build + full test suite). Run locally before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (all targets, deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "== tier-1: release build + tests =="
cargo build --release
cargo test -q

echo "== scalar fallback: kernel + parity suites under UAE_FORCE_SCALAR =="
UAE_FORCE_SCALAR=1 cargo test -q -p uae-tensor
UAE_FORCE_SCALAR=1 cargo test -q -p uae-core --test quant_parity

echo "== benches compile =="
cargo bench --no-run

echo "== smoke: train -> checkpoint -> resume (bit-exact) =="
cargo run --release --example train_checkpoint_resume -- \
    --metrics-out target/train_metrics.jsonl
test -s target/train_metrics.jsonl

echo "== fault drill: degraded serving under injected faults =="
cargo run --release --example serve_fault_drill -- \
    --metrics-out target/serve_faults.jsonl
test -s target/serve_faults.jsonl

echo "== serving smoke: concurrent front-end burst drill =="
cargo run --release --example serve_concurrent -- \
    --metrics-out target/serving.jsonl
test -s target/serving.jsonl

echo "== online smoke: drift drill with shadow-gated recovery =="
cargo run --release --example online_drift_drill -- \
    --metrics-out target/online_promotions.jsonl
test -s target/online_promotions.jsonl
test -s target/BENCH_online.json

echo "== chaos drill: crash-safety matrix (default + scalar) =="
cargo run --release --example chaos_drill
test -s target/chaos_drill.jsonl
test -s target/chaos_recovery.jsonl
test -s target/BENCH_recovery.json
UAE_FORCE_SCALAR=1 cargo run --release --example chaos_drill
test -s target/BENCH_recovery.json

echo "== router smoke: model-fleet routing drill (default + scalar) =="
cargo run --release --example route_drill -- \
    --metrics-out target/routing_telemetry.jsonl
test -s target/routing_telemetry.jsonl
UAE_FORCE_SCALAR=1 cargo run --release --example route_drill -- \
    --metrics-out target/routing_telemetry_scalar.jsonl
test -s target/routing_telemetry_scalar.jsonl

echo "CI OK"
