//! Throughput of differentiable progressive sampling (DESIGN.md §5.2
//! ablation: dense region masks make DPS batched; cost scales with S).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uae_core::dps::{dps_selectivities, qerror_loss, DpsConfig};
use uae_core::{ResMade, ResMadeConfig, VirtualQuery, VirtualSchema};
use uae_query::{Predicate, Query};
use uae_tensor::rng::seeded_rng;
use uae_tensor::{GradStore, ParamStore, Tape};

type Setup = (uae_data::Table, VirtualSchema, ParamStore, ResMade, Vec<VirtualQuery>);

fn setup() -> Setup {
    let table = uae_data::census_like(2000, 3);
    let schema = VirtualSchema::build(&table, usize::MAX);
    let mut store = ParamStore::new();
    let model =
        ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 64, blocks: 1, seed: 1 });
    let queries: Vec<VirtualQuery> = (0..8)
        .map(|i| {
            let q = Query::new(vec![
                Predicate::le(0, 40 + i as i64),
                Predicate::ge(11, 10i64),
                Predicate::eq(7, 1i64),
            ]);
            VirtualQuery::build(&table, &schema, &q)
        })
        .collect();
    (table, schema, store, model, queries)
}

fn bench_dps(c: &mut Criterion) {
    let (_t, schema, store, model, queries) = setup();
    let mut g = c.benchmark_group("dps_forward_backward");
    g.sample_size(20);
    for &s in &[4usize, 16, 64] {
        let cfg = DpsConfig { tau: 1.0, samples: s };
        g.bench_with_input(BenchmarkId::from_parameter(s), &(), |b, ()| {
            b.iter(|| {
                let mut rng = seeded_rng(9);
                let mut grads = GradStore::zeros_like(&store);
                let mut tape = Tape::new(&store);
                let sel = dps_selectivities(&mut tape, &model, &schema, &queries, &cfg, &mut rng);
                let loss = qerror_loss(&mut tape, sel, &vec![0.05; queries.len()]);
                tape.backward(loss, &mut grads);
                black_box(grads.l2_norm())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dps);
criterion_main!(benches);
