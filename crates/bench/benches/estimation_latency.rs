//! Figure 5(2) as a Criterion bench: per-query estimation latency of every
//! estimator on a DMV-like table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::hint::black_box;
use uae_core::Uae;
use uae_estimators::{
    BayesNetEstimator, HistogramEstimator, KdeEstimator, LinearRegressionEstimator, MscnConfig,
    MscnEstimator, SamplingEstimator, SpnConfig, SpnEstimator,
};
use uae_query::{
    default_bounded_column, generate_workload, CardinalityEstimator, LabeledQuery, WorkloadSpec,
};

struct Setup {
    queries: Vec<LabeledQuery>,
    estimators: Vec<Box<dyn CardinalityEstimator>>,
}

fn setup() -> Setup {
    let table = uae_data::dmv_like(6000, 0xBE4C);
    let col = default_bounded_column(&table);
    let train = generate_workload(&table, &WorkloadSpec::in_workload(col, 60, 1), &HashSet::new());
    let queries =
        generate_workload(&table, &WorkloadSpec::in_workload(col, 20, 2), &HashSet::new());

    let mut uae_cfg = uae_core::UaeConfig::default();
    uae_cfg.model.hidden = 128;
    uae_cfg.estimate_samples = 100;
    let mut naru = Uae::new(&table, uae_cfg).with_name("Naru");
    naru.train_data(1);

    let estimators: Vec<Box<dyn CardinalityEstimator>> = vec![
        Box::new(LinearRegressionEstimator::new(&table, &train, 1e-3)),
        Box::new(HistogramEstimator::new(&table, 64)),
        Box::new(MscnEstimator::new(
            &table,
            &train,
            &MscnConfig { epochs: 3, ..MscnConfig::default() },
        )),
        Box::new(SamplingEstimator::new(&table, 0.05, 3)),
        Box::new(BayesNetEstimator::new(&table, 128)),
        Box::new(KdeEstimator::new(&table, 0.05, 4)),
        Box::new(SpnEstimator::new(&table, &SpnConfig::default())),
        Box::new(naru),
    ];
    Setup { queries, estimators }
}

fn bench_estimation(c: &mut Criterion) {
    let s = setup();
    let mut g = c.benchmark_group("estimation_latency");
    g.sample_size(10);
    for est in &s.estimators {
        g.bench_function(est.name(), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for lq in &s.queries {
                    acc += est.estimate_card(&lq.query);
                }
                black_box(acc)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
