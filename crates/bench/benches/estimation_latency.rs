//! Figure 5(2) as a Criterion bench: per-query estimation latency of every
//! estimator on a DMV-like table — plus the batched-inference study:
//! sequential vs cross-query batched progressive sampling on the table5
//! join workload, with a `BENCH_inference.json` summary (queries/sec at
//! S ∈ {200, 1000}, batch ∈ {1, 32, 256}).

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::hint::black_box;
use std::time::Instant;
use uae_core::Uae;
use uae_estimators::{
    BayesNetEstimator, HistogramEstimator, KdeEstimator, LinearRegressionEstimator, MscnConfig,
    MscnEstimator, SamplingEstimator, SpnConfig, SpnEstimator,
};
use uae_join::{
    generate_join_workload, imdb_like, sample_outer_join, JoinQuery, JoinUae, JoinWorkloadSpec,
};
use uae_query::{
    default_bounded_column, generate_workload, CardEstimator, LabeledQuery, WorkloadSpec,
};
use uae_tensor::simd;
use uae_tensor::{Backend, QuantMode};

struct Setup {
    queries: Vec<LabeledQuery>,
    estimators: Vec<Box<dyn CardEstimator>>,
}

fn setup() -> Setup {
    let table = uae_data::dmv_like(6000, 0xBE4C);
    let col = default_bounded_column(&table);
    let train = generate_workload(&table, &WorkloadSpec::in_workload(col, 60, 1), &HashSet::new());
    let queries =
        generate_workload(&table, &WorkloadSpec::in_workload(col, 20, 2), &HashSet::new());

    let mut uae_cfg = uae_core::UaeConfig::default();
    uae_cfg.model.hidden = 128;
    uae_cfg.estimate_samples = 100;
    let mut naru = Uae::new(&table, uae_cfg).with_name("Naru");
    naru.train_data(1);

    let estimators: Vec<Box<dyn CardEstimator>> = vec![
        Box::new(LinearRegressionEstimator::new(&table, &train, 1e-3)),
        Box::new(HistogramEstimator::new(&table, 64)),
        Box::new(MscnEstimator::new(
            &table,
            &train,
            &MscnConfig { epochs: 3, ..MscnConfig::default() },
        )),
        Box::new(SamplingEstimator::new(&table, 0.05, 3)),
        Box::new(BayesNetEstimator::new(&table, 128)),
        Box::new(KdeEstimator::new(&table, 0.05, 4)),
        Box::new(SpnEstimator::new(&table, &SpnConfig::default())),
        Box::new(naru),
    ];
    Setup { queries, estimators }
}

/// The table5 serving setup: a data-trained UAE over the IMDB-like join
/// sample plus a JOB-light-ranges-focused workload.
fn setup_join(num_queries: usize) -> (JoinUae, Vec<JoinQuery>) {
    let schema = imdb_like(1200, 0x7AB5);
    let sample = sample_outer_join(&schema, 3000, 32, 21);
    let mut cfg = uae_core::UaeConfig::default();
    cfg.model.hidden = 128;
    cfg.factor_threshold = usize::MAX; // fanout columns must stay unfactorized
    let mut uae = JoinUae::new(sample, cfg);
    uae.train_data(1);
    let queries: Vec<JoinQuery> = generate_join_workload(
        &schema,
        &JoinWorkloadSpec::focused(0, num_queries, 31),
        &HashSet::new(),
    )
    .into_iter()
    .map(|lq| lq.query)
    .collect();
    (uae, queries)
}

/// Estimate the workload in chunks of `batch` queries and return the
/// elapsed seconds. `batch == 1` is the sequential per-query path.
fn run_batched(uae: &JoinUae, queries: &[JoinQuery], batch: usize) -> f64 {
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    if batch <= 1 {
        for q in queries {
            acc += uae.estimate(q);
        }
    } else {
        for chunk in queries.chunks(batch) {
            acc += uae.estimate_batch(chunk).iter().sum::<f64>();
        }
    }
    black_box(acc);
    t0.elapsed().as_secs_f64()
}

/// One measured configuration of the sweep.
struct SweepPoint {
    samples: usize,
    batch: usize,
    queries_per_sec: f64,
}

/// Sweep S ∈ {200, 1000} × batch ∈ {1, 32, 256} over the table5 workload
/// and write `BENCH_inference.json` at the repository root.
fn emit_inference_json(uae: &mut JoinUae, queries: &[JoinQuery]) {
    let mut points: Vec<SweepPoint> = Vec::new();
    for &samples in &[200usize, 1000] {
        uae.uae_mut().set_estimate_samples(samples);
        for &batch in &[1usize, 32, 256] {
            let secs = run_batched(uae, queries, batch);
            let qps = queries.len() as f64 / secs.max(1e-12);
            eprintln!("[inference] S={samples} batch={batch}: {:.1} queries/sec ({secs:.2}s)", qps);
            points.push(SweepPoint { samples, batch, queries_per_sec: qps });
        }
    }
    let qps_at = |s: usize, b: usize| {
        points
            .iter()
            .find(|p| p.samples == s && p.batch == b)
            .map(|p| p.queries_per_sec)
            .unwrap_or(0.0)
    };
    let speedup = qps_at(1000, 256) / qps_at(1000, 1).max(1e-12);
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"samples\": {}, \"batch\": {}, \"queries_per_sec\": {:.2}}}",
                p.samples, p.batch, p.queries_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"workload\": \"table5 JOB-light-ranges-focused (imdb_like star schema)\",\n  \
         \"num_queries\": {},\n  \"results\": [\n{}\n  ],\n  \
         \"speedup_batched_256_vs_sequential_at_s1000\": {:.2}\n}}\n",
        queries.len(),
        rows.join(",\n"),
        speedup
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_inference.json");
    std::fs::write(path, json).expect("write BENCH_inference.json");
    eprintln!("[inference] S=1000 batch=256 speedup over sequential: {speedup:.2}x");
}

/// Queries/sec of the PR1 batched-inference engine (pre plan/workspace
/// split) on this exact workload, from `BENCH_inference.json` at that
/// commit. Baseline for the zero-allocation refactor's speedup gate.
const PR1_BASELINE_QPS: [(usize, usize, f64); 3] =
    [(1000, 256, 148.82), (1000, 1, 18.32), (200, 256, 462.97)];

/// Queries/sec of the PR3 scalar workspace engine at S=1000 / batch=256
/// on this exact workload, from `BENCH_workspace.json` at that commit.
/// Baseline for the SIMD / int8 trajectory gates.
const PR3_SCALAR_QPS: f64 = 413.72;

/// Re-measure the PR1 sweep points on the current engine and append the
/// scalar → SIMD f32 → int8 trajectory at S=1000 / batch=256, writing
/// `BENCH_workspace.json`. Buffers are warmed with one untimed pass per
/// point so every measurement reflects the steady state. Each trajectory
/// leg rebuilds the snapshot: weight *layout* (mask packing, quantized
/// panels) is fixed at snapshot time by the backend and quant mode.
fn emit_workspace_json(uae: &mut JoinUae, queries: &[JoinQuery]) {
    let mut rows: Vec<String> = Vec::new();
    let mut headline = 0.0f64;
    for &(samples, batch, baseline) in &PR1_BASELINE_QPS {
        uae.uae_mut().set_estimate_samples(samples);
        run_batched(uae, queries, batch); // warm the scratch buffers
        let secs = run_batched(uae, queries, batch);
        let qps = queries.len() as f64 / secs.max(1e-12);
        let speedup = qps / baseline;
        if samples == 1000 && batch == 256 {
            headline = speedup;
        }
        eprintln!(
            "[workspace] S={samples} batch={batch}: {qps:.1} queries/sec \
             (PR1 {baseline:.1}, {speedup:.2}x)"
        );
        rows.push(format!(
            "    {{\"samples\": {samples}, \"batch\": {batch}, \
             \"queries_per_sec\": {qps:.2}, \"baseline_queries_per_sec\": {baseline:.2}, \
             \"speedup\": {speedup:.2}}}"
        ));
    }

    // The kernel trajectory: identical workload and engine, only the
    // numeric backend of the forward pass changes.
    uae.uae_mut().set_estimate_samples(1000);
    let legs: [(&str, Backend, QuantMode); 3] = [
        ("scalar", Backend::Exact, QuantMode::F32),
        ("simd_f32", Backend::Avx2, QuantMode::F32),
        ("int8", Backend::Avx2, QuantMode::Int8),
    ];
    let mut traj: Vec<String> = Vec::new();
    let mut leg_qps = [0.0f64; 3];
    let prev = simd::backend();
    for (i, &(name, be, mode)) in legs.iter().enumerate() {
        simd::set_backend(be);
        uae.uae_mut().set_quant_mode(mode);
        uae.uae_mut().invalidate_snapshot();
        run_batched(uae, queries, 256); // warm + rebuild snapshot
        let secs = run_batched(uae, queries, 256);
        let qps = queries.len() as f64 / secs.max(1e-12);
        leg_qps[i] = qps;
        let vs_pr3 = qps / PR3_SCALAR_QPS;
        eprintln!(
            "[trajectory] {name} (backend {:?}): {qps:.1} queries/sec ({vs_pr3:.2}x PR3 scalar)",
            simd::backend()
        );
        traj.push(format!(
            "    {{\"mode\": \"{name}\", \"backend\": \"{:?}\", \"samples\": 1000, \
             \"batch\": 256, \"queries_per_sec\": {qps:.2}, \"speedup_vs_pr3_scalar\": {vs_pr3:.2}}}",
            simd::backend()
        ));
    }
    simd::set_backend(prev);
    uae.uae_mut().set_quant_mode(QuantMode::F32);
    uae.uae_mut().invalidate_snapshot();

    let json = format!(
        "{{\n  \"workload\": \"table5 JOB-light-ranges-focused (imdb_like star schema)\",\n  \
         \"baseline\": \"PR1 batched inference engine (pre plan/workspace split)\",\n  \
         \"num_queries\": {},\n  \"results\": [\n{}\n  ],\n  \
         \"speedup_at_s1000_batch256\": {:.2},\n  \
         \"trajectory_baseline\": \"PR3 scalar workspace engine, {PR3_SCALAR_QPS} qps at S=1000 batch=256\",\n  \
         \"trajectory\": [\n{}\n  ],\n  \
         \"simd_speedup_vs_pr3_scalar\": {:.2},\n  \"int8_speedup_vs_pr3_scalar\": {:.2}\n}}\n",
        queries.len(),
        rows.join(",\n"),
        headline,
        traj.join(",\n"),
        leg_qps[1] / PR3_SCALAR_QPS,
        leg_qps[2] / PR3_SCALAR_QPS,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_workspace.json");
    std::fs::write(path, json).expect("write BENCH_workspace.json");
    eprintln!(
        "[trajectory] S=1000 batch=256: scalar {:.1} -> simd {:.1} -> int8 {:.1} queries/sec",
        leg_qps[0], leg_qps[1], leg_qps[2]
    );
}

fn bench_batched_inference(c: &mut Criterion) {
    let (mut uae, queries) = setup_join(256);
    emit_inference_json(&mut uae, &queries);
    emit_workspace_json(&mut uae, &queries);

    // Criterion group on a smaller slice so iteration counts stay sane.
    let slice = &queries[..queries.len().min(32)];
    uae.uae_mut().set_estimate_samples(200);
    let mut g = c.benchmark_group("batched_inference");
    g.sample_size(10);
    g.bench_function("sequential/S=200", |b| b.iter(|| black_box(run_batched(&uae, slice, 1))));
    g.bench_function("batched-32/S=200", |b| b.iter(|| black_box(run_batched(&uae, slice, 32))));
    g.finish();
}

fn bench_estimation(c: &mut Criterion) {
    let s = setup();
    let mut g = c.benchmark_group("estimation_latency");
    g.sample_size(10);
    for est in &s.estimators {
        g.bench_function(est.name(), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for lq in &s.queries {
                    acc += est.estimate_card(&lq.query);
                }
                black_box(acc)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_batched_inference, bench_estimation);
criterion_main!(benches);
