//! Microbenchmarks of the inference kernel layer at ResMADE shapes
//! (128-wide hidden layers, 256-row sample batches): f32 matmul on every
//! backend, the int8 panel matmul including dynamic activation
//! quantization, and the fused epilogues. Writes `BENCH_kernels.json` at
//! the repository root with ns/call, GFLOP/s and speedups over the Exact
//! scalar oracle, then registers the same kernels as Criterion benches.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use uae_tensor::quant::{self, QuantMatrix};
use uae_tensor::simd::{self, avx2_available};
use uae_tensor::{Backend, Tensor};

/// ResMADE forward shapes: 256 sample rows through a 128-wide layer.
const ROWS: usize = 256;
const K: usize = 128;
const N: usize = 128;

fn pseudo(seed: u64, lo: f32, hi: f32, n: usize) -> Vec<f32> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            lo + (hi - lo) * ((s >> 40) as f32 / (1u64 << 24) as f32)
        })
        .collect()
}

/// Median-of-5 timing of `f`, each sample averaging `iters` calls.
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = [0.0f64; 5];
    for s in samples.iter_mut() {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        *s = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[2]
}

struct KernelRow {
    kernel: &'static str,
    backend: String,
    ns_per_call: f64,
    gflops: f64,
}

fn backends() -> Vec<Backend> {
    let mut v = vec![Backend::Exact, Backend::Portable];
    if avx2_available() {
        v.push(Backend::Avx2);
    }
    v
}

fn measure_all() -> Vec<KernelRow> {
    let a = Tensor::from_vec(ROWS, K, pseudo(0xA11CE, -1.5, 1.5, ROWS * K));
    let b = Tensor::from_vec(K, N, pseudo(0xB0B, -1.0, 1.0, K * N));
    let bias = pseudo(0xB1A5, -0.5, 0.5, N);
    let logits = pseudo(0x50F7, -8.0, 8.0, N);
    let mut out = vec![0.0f32; N];
    let mut rows = Vec::new();

    // f32 matmul, per backend: one 256x128x128 batch per call.
    let flops = (2 * ROWS * K * N) as f64;
    for be in backends() {
        let ns = time_ns(20, || {
            for r in 0..ROWS {
                out.fill(0.0);
                simd::matmul_row_with(be, a.row(r), b.data(), N, None, &mut out);
                black_box(&out);
            }
        });
        rows.push(KernelRow {
            kernel: "matmul_f32_256x128x128",
            backend: format!("{be:?}"),
            ns_per_call: ns,
            gflops: flops / ns,
        });
    }

    // int8 panel matmul including per-row dynamic quantization.
    let m = QuantMatrix::quantize(&b, K);
    let mut qa = vec![0i16; m.padded_k()];
    let qbackends: Vec<Backend> =
        if avx2_available() { vec![Backend::Exact, Backend::Avx2] } else { vec![Backend::Exact] };
    for be in qbackends {
        let ns = time_ns(20, || {
            for r in 0..ROWS {
                let a_scale = quant::quantize_row(a.row(r), &mut qa);
                quant::qmatmul_row_with(be, &qa, &m, a_scale, &mut out);
                black_box(&out);
            }
        });
        rows.push(KernelRow {
            kernel: "matmul_int8_256x128x128",
            backend: format!("{be:?}"),
            ns_per_call: ns,
            gflops: flops / ns,
        });
    }

    // The in-model shape that decides the serving trajectory: relu-sparse
    // activations (about half the lanes zero) against a degree-packed
    // weight matrix (monotone zero-prefix starts covering half the panel).
    let mut sparse = a.clone();
    for (i, v) in sparse.data_mut().iter_mut().enumerate() {
        if (i * 2654435761) % 100 < 50 {
            *v = 0.0;
        }
    }
    let starts: Vec<u32> = (0..K).map(|k| ((k * N) / K) as u32).collect();
    let mut packed_b = b.clone();
    for (k, &s) in starts.iter().enumerate() {
        packed_b.data_mut()[k * N..k * N + s as usize].fill(0.0);
    }
    for be in backends() {
        let ns = time_ns(20, || {
            for r in 0..ROWS {
                out.fill(0.0);
                simd::matmul_row_with(
                    be,
                    sparse.row(r),
                    packed_b.data(),
                    N,
                    Some(&starts),
                    &mut out,
                );
                black_box(&out);
            }
        });
        rows.push(KernelRow {
            kernel: "matmul_f32_sparse_packed",
            backend: format!("{be:?}"),
            ns_per_call: ns,
            gflops: flops / ns,
        });
    }
    let mp = QuantMatrix::quantize_packed(&packed_b, K, Some(&starts));
    let qp_backends: Vec<Backend> =
        if avx2_available() { vec![Backend::Exact, Backend::Avx2] } else { vec![Backend::Exact] };
    for be in qp_backends {
        let ns = time_ns(20, || {
            for r in 0..ROWS {
                let a_scale = quant::quantize_row(sparse.row(r), &mut qa);
                quant::qmatmul_row_with(be, &qa, &mp, a_scale, &mut out);
                black_box(&out);
            }
        });
        rows.push(KernelRow {
            kernel: "matmul_int8_sparse_packed",
            backend: format!("{be:?}"),
            ns_per_call: ns,
            gflops: flops / ns,
        });
    }

    // Fused bias+relu epilogue over the 256x128 activation block.
    let ep_flops = (2 * ROWS * N) as f64;
    for be in backends() {
        let mut act = a.clone();
        let ns = time_ns(200, || {
            for r in 0..ROWS {
                simd::add_bias_relu_row_with(be, act.row_mut(r), &bias);
            }
            black_box(&act);
        });
        rows.push(KernelRow {
            kernel: "add_bias_relu_256x128",
            backend: format!("{be:?}"),
            ns_per_call: ns,
            gflops: ep_flops / ns,
        });
    }

    // Fused single-pass softmax over one 128-wide logit row.
    for be in backends() {
        let mut dst = vec![0.0f32; N];
        let ns = time_ns(2000, || {
            simd::softmax_into_with(be, &logits, &mut dst);
            black_box(&dst);
        });
        rows.push(KernelRow {
            kernel: "softmax_into_128",
            backend: format!("{be:?}"),
            ns_per_call: ns,
            gflops: (4 * N) as f64 / ns,
        });
    }
    rows
}

fn emit_kernels_json(rows: &[KernelRow]) {
    let exact_ns = |kernel: &str| {
        rows.iter()
            .find(|r| r.kernel == kernel && r.backend == "Exact")
            .map(|r| r.ns_per_call)
            .unwrap_or(f64::NAN)
    };
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"kernel\": \"{}\", \"backend\": \"{}\", \"ns_per_call\": {:.0}, \
                 \"gflops\": {:.2}, \"speedup_vs_exact\": {:.2}}}",
                r.kernel,
                r.backend,
                r.ns_per_call,
                r.gflops,
                exact_ns(r.kernel) / r.ns_per_call
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"shapes\": \"ResMADE serving: 256-row sample batch, 128-wide layers\",\n  \
         \"note\": \"matmul/int8 timings are one full 256-row batch per call; \
         int8 includes per-row dynamic activation quantization\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, json).expect("write BENCH_kernels.json");
    for r in rows {
        eprintln!(
            "[kernels] {:<26} {:<8} {:>10.0} ns/call {:>8.2} GFLOP/s",
            r.kernel, r.backend, r.ns_per_call, r.gflops
        );
    }
}

fn bench_kernels(c: &mut Criterion) {
    let rows = measure_all();
    emit_kernels_json(&rows);

    // The same kernels under Criterion for relative tracking.
    let a = Tensor::from_vec(ROWS, K, pseudo(0xA11CE, -1.5, 1.5, ROWS * K));
    let b = Tensor::from_vec(K, N, pseudo(0xB0B, -1.0, 1.0, K * N));
    let m = QuantMatrix::quantize(&b, K);
    let mut g = c.benchmark_group("kernels");
    g.sample_size(10);
    for be in backends() {
        let mut out = vec![0.0f32; N];
        g.bench_function(format!("matmul_f32/{be:?}"), |bch| {
            bch.iter(|| {
                for r in 0..ROWS {
                    out.fill(0.0);
                    simd::matmul_row_with(be, a.row(r), b.data(), N, None, &mut out);
                }
                black_box(&out);
            })
        });
    }
    let mut qa = vec![0i16; m.padded_k()];
    let mut out = vec![0.0f32; N];
    g.bench_function("matmul_int8/dispatch", |bch| {
        bch.iter(|| {
            for r in 0..ROWS {
                let a_scale = quant::quantize_row(a.row(r), &mut qa);
                quant::qmatmul_row(&qa, &m, a_scale, &mut out);
            }
            black_box(&out);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
