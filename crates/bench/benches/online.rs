//! Data-drift recovery study for the online-learning loop: a tenant's
//! table grows by a covariate-shifted batch, the stale model's q-error
//! jumps, and the shadow-gated trainer recovers it. Charts median
//! q-error against wall-clock (one point per trainer round) and writes
//! `BENCH_online.json` at the repo root.
//!
//! Two numbers frame the chart:
//!
//! * **stale_median_q / pre_drift_median_q** — how badly the drift
//!   hurts a model that keeps reasoning over the old table, and
//! * **recovered_median_q / pre_drift_median_q** — where the loop lands
//!   after promotions (target: ≤ 1.5×, the drill's CI gate).
//!
//! The Criterion group then isolates the loop's steady-state overheads:
//! the shadow gate's holdout scoring pass (paid per candidate, off the
//! serving path) and the query pool's deduplicating intake (paid per
//! executed query, on the serving path's completion hook).

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::hint::black_box;
use std::time::Instant;

use uae_core::{
    shadow_score, OnlineConfig, OnlineTrainer, QueryPool, ResMadeConfig, RoundOutcome, TrainConfig,
    Uae, UaeConfig,
};
use uae_data::{census_like, Table};
use uae_query::{generate_workload, label_queries, LabeledQuery, WorkloadSpec};

const ROWS: usize = 1_000;
const TABLE_SEED: u64 = 0xd01f;
const RECOVERY_TARGET: f64 = 1.5;
const MAX_ROUNDS: usize = 16;

/// Base table plus a drift batch carved from the same generation so the
/// two partitions share dictionaries (§4.5: incremental rows arrive in
/// the same domain). The drift is biased to the upper half of column
/// 0's domain — a covariate shift, not just more of the same rows.
fn drift_tables() -> (Table, Table) {
    let big = census_like(4 * ROWS, TABLE_SEED);
    let base = big.take_rows(&(0..ROWS).collect::<Vec<_>>());
    let dom0 = big.column(0).domain_size() as u32;
    let shifted: Vec<usize> =
        (ROWS..4 * ROWS).filter(|&r| big.column(0).code(r) >= dom0 / 2).collect();
    (base, big.take_rows(&shifted))
}

fn pretrained(base: &Table) -> Uae {
    let cfg = UaeConfig {
        model: ResMadeConfig { hidden: 32, blocks: 1, seed: 7 },
        train: TrainConfig { batch_size: 128, ..TrainConfig::default() },
        estimate_samples: 64,
        ..UaeConfig::default()
    };
    let mut uae = Uae::new(base, cfg);
    eprintln!("[online] pretraining on {} rows…", base.num_rows());
    uae.train_data(2);
    uae
}

fn median_q(model: &Uae, eval: &[LabeledQuery]) -> f64 {
    shadow_score(model, eval).summary.median
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_owned()
    }
}

fn emit_online_json(base: &Table, drift: &Table, live: &Uae) {
    // The same 48 queries measure the model before and after the drift;
    // only their ground truth moves.
    let eval_queries: Vec<_> =
        generate_workload(base, &WorkloadSpec::random(48, 0xe7a1), &HashSet::new())
            .into_iter()
            .map(|lq| lq.query)
            .collect();
    let pre_drift = median_q(live, &label_queries(base, eval_queries.clone()));

    let mut full = base.clone();
    full.append(drift);
    let eval_post = label_queries(&full, eval_queries);
    let stale = median_q(live, &eval_post);
    eprintln!(
        "[online] drift {} rows: median q-error {pre_drift:.3} -> {stale:.3} \
         ({:.2}x pre-drift)",
        drift.num_rows(),
        stale / pre_drift
    );

    let pool = QueryPool::new(512);
    pool.stage_rows(drift);
    let label_stream = label_queries(
        &full,
        generate_workload(&full, &WorkloadSpec::random(MAX_ROUNDS * 20, 0x77aa), &HashSet::new())
            .into_iter()
            .map(|lq| lq.query)
            .collect(),
    );

    let mut current = live.clone();
    let mut trainer = OnlineTrainer::new(
        &current,
        OnlineConfig {
            trigger_fresh: 16,
            holdout: 12,
            query_epochs: 3,
            data_epochs: 1,
            ..OnlineConfig::default()
        },
    );

    let drift_at = Instant::now();
    let mut curve: Vec<(f64, u64, f64)> = Vec::new();
    let mut promotions = 0u64;
    let mut rollbacks = 0u64;
    for wave in label_stream.chunks(20).take(MAX_ROUNDS) {
        pool.extend(wave.iter().cloned());
        let now_ns = drift_at.elapsed().as_nanos() as u64;
        let report = trainer.round(&pool, &current, now_ns);
        match report.outcome {
            RoundOutcome::Promoted { model, .. } => {
                promotions += 1;
                current = model;
            }
            RoundOutcome::RolledBack { model, .. } => {
                rollbacks += 1;
                current = model;
            }
            RoundOutcome::Rejected(_) | RoundOutcome::Idle => {}
        }
        let t_ms = drift_at.elapsed().as_secs_f64() * 1e3;
        let median = median_q(&current, &eval_post);
        eprintln!(
            "[online] round at {t_ms:.1} ms: v{} median q-error {median:.3}",
            trainer.version()
        );
        curve.push((t_ms, trainer.version(), median));
        if median <= RECOVERY_TARGET * pre_drift && promotions > 0 {
            break;
        }
    }

    let recovered = median_q(&current, &eval_post);
    let ok = promotions > 0 && recovered <= RECOVERY_TARGET * pre_drift;
    let points: Vec<String> = curve
        .iter()
        .map(|(t, v, m)| {
            format!("    {{\"t_ms\": {:.1}, \"version\": {v}, \"median_q\": {}}}", t, json_f64(*m))
        })
        .collect();
    let json = format!(
        "{{\n  \"drill\": \"online_drift_recovery\",\n  \
         \"workload\": \"census_like {ROWS} base rows + {} drifted rows \
         (upper half of column 0), 48-query eval, 20-label waves\",\n  \
         \"pre_drift_median_q\": {},\n  \
         \"stale_median_q\": {},\n  \
         \"recovered_median_q\": {},\n  \
         \"stale_over_pre\": {},\n  \
         \"recovered_over_pre\": {},\n  \
         \"recovery_target\": {RECOVERY_TARGET},\n  \
         \"recovered\": {ok},\n  \
         \"promotions\": {promotions},\n  \
         \"rollbacks\": {rollbacks},\n  \
         \"curve\": [\n{}\n  ]\n}}\n",
        drift.num_rows(),
        json_f64(pre_drift),
        json_f64(stale),
        json_f64(recovered),
        json_f64(stale / pre_drift),
        json_f64(recovered / pre_drift),
        points.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_online.json");
    std::fs::write(path, json).expect("write BENCH_online.json");
    eprintln!(
        "[online] recovered median q-error {recovered:.3} ({:.2}x pre-drift, target \
         {RECOVERY_TARGET}x) after {promotions} promotion(s), {rollbacks} rollback(s)",
        recovered / pre_drift
    );
    assert!(ok, "the online loop must recover within {RECOVERY_TARGET}x of pre-drift");
}

fn bench_online(c: &mut Criterion) {
    let (base, drift) = drift_tables();
    let live = pretrained(&base);
    emit_online_json(&base, &drift, &live);

    let mut full = base.clone();
    full.append(&drift);
    let labeled = label_queries(
        &full,
        generate_workload(&full, &WorkloadSpec::random(48, 0xbe9c), &HashSet::new())
            .into_iter()
            .map(|lq| lq.query)
            .collect(),
    );

    let mut g = c.benchmark_group("online");
    g.sample_size(10);
    // The gate's cost per candidate: one cloned-model estimation pass
    // over the holdout window. Runs off the serving path.
    g.bench_function("shadow_score_48q", |b| {
        b.iter(|| black_box(shadow_score(&live, &labeled).summary.median))
    });
    // The pool's cost per executed query: fingerprint dedup + FIFO
    // bookkeeping. Runs on the serving path's completion hook.
    g.bench_function("pool_intake_48q_dedup", |b| {
        let pool = QueryPool::new(256);
        b.iter(|| {
            pool.extend(labeled.iter().cloned());
            black_box(pool.stats().deduped)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);
