//! Estimation-cost scaling: progressive sampling latency vs the sample
//! count S and vs the number of constrained columns (the two levers behind
//! the paper's §5.5 efficiency claims).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uae_core::infer::progressive_sample;
use uae_core::{ResMade, ResMadeConfig, VirtualQuery, VirtualSchema};
use uae_query::{Predicate, Query};
use uae_tensor::rng::seeded_rng;
use uae_tensor::ParamStore;

fn bench_samples_scaling(c: &mut Criterion) {
    let table = uae_data::dmv_like(4000, 0xBE);
    let schema = VirtualSchema::build(&table, usize::MAX);
    let mut store = ParamStore::new();
    let model =
        ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 128, blocks: 1, seed: 1 });
    let raw = model.snapshot(&store);
    let q = Query::new(vec![
        Predicate::ge(0, 100i64),
        Predicate::le(0, 400i64),
        Predicate::eq(2, 1i64),
        Predicate::le(4, 20i64),
    ]);
    let vq = VirtualQuery::build(&table, &schema, &q);

    let mut g = c.benchmark_group("progressive_samples");
    g.sample_size(20);
    for &s in &[50usize, 100, 200, 400] {
        g.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            let mut rng = seeded_rng(7);
            b.iter(|| black_box(progressive_sample(&raw, &schema, &vq, s, &mut rng)));
        });
    }
    g.finish();
}

fn bench_constrained_columns(c: &mut Criterion) {
    let table = uae_data::kddcup_like(2000, 100, 0xBF);
    let schema = VirtualSchema::build(&table, usize::MAX);
    let mut store = ParamStore::new();
    let model =
        ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 128, blocks: 1, seed: 2 });
    let raw = model.snapshot(&store);

    let mut g = c.benchmark_group("constrained_columns");
    g.sample_size(15);
    for &ncols in &[2usize, 8, 32] {
        // Constrain the first `ncols` columns with >= anchor values.
        let preds: Vec<Predicate> =
            (0..ncols).map(|c| Predicate::ge(c, table.column(c).value(0).clone())).collect();
        let vq = VirtualQuery::build(&table, &schema, &Query::new(preds));
        g.bench_with_input(BenchmarkId::from_parameter(ncols), &(), |b, ()| {
            let mut rng = seeded_rng(9);
            b.iter(|| black_box(progressive_sample(&raw, &schema, &vq, 100, &mut rng)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_samples_scaling, bench_constrained_columns);
criterion_main!(benches);
