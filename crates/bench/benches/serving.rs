//! Closed- vs open-loop serving study: how much of the batched engine's
//! throughput (BENCH_inference.json) survives when queries arrive one at
//! a time from independent clients and must be coalesced by the
//! micro-batching front-end. Writes `BENCH_serving.json` at the repo
//! root.
//!
//! Three traffic shapes, all at S = 1000 progressive samples:
//!
//! 1. **Sequential closed loop** — one caller, `try_estimate_card` per
//!    query, batch = 1. The floor every concurrent design must beat.
//! 2. **Concurrent closed loop** — a few submitter threads, each keeping
//!    one request in flight through the server. Batches form only from
//!    submitter concurrency.
//! 3. **Open loop** — Poisson arrivals at a swept offered rate; the
//!    dispatcher's size-or-deadline flush turns backlog into batches.
//!    The top offered rate exceeds engine capacity, so the run also
//!    demonstrates bounded-queue rejection and the SLO degradation
//!    ladder engaging (counted in `ServerStats`).
//!
//! Single-core note: the speedups here are *algorithmic* (cross-query
//! batched sampling amortizes model passes), not parallelism — the
//! sweep holds one executor and the default tensor pool.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use uae_core::{Uae, UaeConfig};
use uae_query::{generate_workload, Query, WorkloadSpec};
use uae_server::{DegradeConfig, Registry, Server, ServerConfig, ServerStats, SubmitError};

const SAMPLES: usize = 1000;
const TENANT: &str = "census";

fn setup() -> (Arc<Registry>, Vec<Query>) {
    let table = uae_data::census_like(6000, 0x5E4E);
    let mut cfg = UaeConfig::default();
    cfg.model.hidden = 128;
    cfg.estimate_samples = SAMPLES;
    let mut uae = Uae::new(&table, cfg);
    eprintln!("[serving] training 1 epoch on {} rows…", table.num_rows());
    uae.train_data(1);
    let queries: Vec<Query> =
        generate_workload(&table, &WorkloadSpec::random(512, 0xA11CE), &HashSet::new())
            .into_iter()
            .map(|lq| lq.query)
            .collect();
    let registry = Arc::new(Registry::new());
    registry.register(TENANT, uae);
    (registry, queries)
}

/// Closed-loop sequential baseline: one caller, batch = 1, straight into
/// the engine (no front-end). Returns queries/sec.
fn sequential_qps(registry: &Registry, queries: &[Query], n: usize) -> f64 {
    let model = registry.get(TENANT).expect("registered").model();
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for i in 0..n {
        if let Ok(est) = model.try_estimate_card(&queries[i % queries.len()]) {
            acc += est.card;
        }
    }
    black_box(acc);
    n as f64 / t0.elapsed().as_secs_f64().max(1e-12)
}

fn serving_config(latency_window: usize) -> ServerConfig {
    ServerConfig {
        max_batch: 64,
        max_delay: Duration::from_millis(4),
        queue_capacity: 512,
        executors: 1,
        kernel_threads: None,
        degrade: DegradeConfig {
            queue_depth_threshold: 128,
            p99_target_ms: 0.0,
            ..DegradeConfig::default()
        },
        latency_window,
        ..ServerConfig::default()
    }
}

/// Concurrent closed loop: `threads` submitters, each submit → wait →
/// repeat. Returns (throughput qps, final stats).
fn closed_loop(
    registry: &Arc<Registry>,
    queries: &[Query],
    threads: usize,
    per_thread: usize,
) -> (f64, ServerStats) {
    let server = Server::start(registry.clone(), serving_config(threads * per_thread));
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let server = &server;
            scope.spawn(move || {
                for i in 0..per_thread {
                    let q = queries[(t * per_thread + i) % queries.len()].clone();
                    match server.submit(TENANT, q) {
                        Ok(ticket) => {
                            let _ = ticket.wait();
                        }
                        Err(e) => panic!("closed loop never overloads: {e}"),
                    }
                }
            });
        }
    });
    let stats = server.shutdown();
    let qps = stats.completed as f64 / t0.elapsed().as_secs_f64().max(1e-12);
    (qps, stats)
}

/// One open-loop run: Poisson arrivals at `offered_qps` for `n`
/// requests, tickets collected and drained at the end. Returns the
/// measured offered rate, sustained throughput, and final stats.
fn open_loop(
    registry: &Arc<Registry>,
    queries: &[Query],
    offered_qps: f64,
    n: usize,
    seed: u64,
) -> (f64, f64, ServerStats) {
    let server = Server::start(registry.clone(), serving_config(n));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tickets = Vec::with_capacity(n);
    let t0 = Instant::now();
    let mut next_arrival = 0.0f64; // seconds since t0
    for i in 0..n {
        // Exponential inter-arrival: -ln(1-u)/λ.
        let u: f64 = rng.random();
        next_arrival += -(1.0 - u).ln() / offered_qps;
        let target = t0 + Duration::from_secs_f64(next_arrival);
        loop {
            let now = Instant::now();
            if now >= target {
                break;
            }
            std::thread::sleep(target - now);
        }
        match server.submit(TENANT, queries[i % queries.len()].clone()) {
            Ok(ticket) => tickets.push(ticket),
            Err(SubmitError::Overloaded) => {} // counted server-side
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    let submit_secs = t0.elapsed().as_secs_f64();
    let stats = server.shutdown();
    let total_secs = t0.elapsed().as_secs_f64();
    for ticket in tickets {
        let _ = ticket.wait();
    }
    let measured_offered = n as f64 / submit_secs.max(1e-12);
    let sustained = stats.completed as f64 / total_secs.max(1e-12);
    (measured_offered, sustained, stats)
}

fn stats_row(label: &str, offered: f64, sustained: f64, s: &ServerStats) -> String {
    format!(
        "    {{\"load\": \"{label}\", \"offered_qps\": {offered:.1}, \
         \"sustained_qps\": {sustained:.1}, \"submitted\": {}, \"accepted\": {}, \
         \"rejected_overloaded\": {}, \"completed\": {}, \"degraded\": {}, \
         \"batches\": {}, \"mean_batch\": {:.1}, \"flush_size\": {}, \
         \"flush_deadline\": {}, \"flush_drain\": {}, \"max_queue_depth\": {}, \
         \"p50_ms\": {:.2}, \"p99_ms\": {:.2}}}",
        s.submitted,
        s.accepted,
        s.rejected_overloaded,
        s.completed,
        s.degraded_requests,
        s.batches,
        s.mean_batch_size(),
        s.flush_size,
        s.flush_deadline,
        s.flush_drain,
        s.max_queue_depth,
        s.p50_ms,
        s.p99_ms,
    )
}

fn emit_serving_json(registry: &Arc<Registry>, queries: &[Query]) {
    // 1. The sequential closed-loop floor.
    sequential_qps(registry, queries, 20); // warm snapshot + scratch
    let seq_qps = sequential_qps(registry, queries, 120);
    eprintln!("[serving] sequential closed loop (batch=1): {seq_qps:.1} qps");

    // 2. Concurrent closed loop: batches form only from concurrency.
    let (closed_qps, closed_stats) = closed_loop(registry, queries, 4, 120);
    eprintln!(
        "[serving] closed loop x4 threads: {closed_qps:.1} qps \
         (mean batch {:.1})",
        closed_stats.mean_batch_size()
    );

    // 3. Open loop at increasing offered load. The top rate is chosen
    //    above engine capacity so backpressure + degradation engage.
    let multipliers = [2.0f64, 4.0, 8.0, 16.0];
    let mut rows = Vec::new();
    let mut best_sustained = 0.0f64;
    let mut top: Option<ServerStats> = None;
    for (i, &m) in multipliers.iter().enumerate() {
        let offered = seq_qps * m;
        let n = ((offered * 3.0) as usize).clamp(300, 2400);
        let (measured, sustained, stats) =
            open_loop(registry, queries, offered, n, 0xD15C + i as u64);
        eprintln!(
            "[serving] open loop {m:.0}x ({measured:.0} qps offered): sustained {sustained:.1} qps, \
             mean batch {:.1}, p50 {:.1} ms, p99 {:.1} ms, rejected {}, degraded {}",
            stats.mean_batch_size(),
            stats.p50_ms,
            stats.p99_ms,
            stats.rejected_overloaded,
            stats.degraded_requests,
        );
        best_sustained = best_sustained.max(sustained);
        rows.push(stats_row(&format!("open_{m:.0}x"), measured, sustained, &stats));
        top = Some(stats);
    }
    let top = top.expect("at least one open-loop run");
    let speedup = best_sustained / seq_qps.max(1e-12);

    let json = format!(
        "{{\n  \"workload\": \"census_like 6000 rows, random 512-query pool, S={SAMPLES}\",\n  \
         \"note\": \"single-core container: gains are micro-batching, not parallelism\",\n  \
         \"config\": {{\"max_batch\": 64, \"max_delay_ms\": 4, \"queue_capacity\": 512, \
         \"executors\": 1, \"degrade_queue_depth_threshold\": 128}},\n  \
         \"sequential_closed_loop_qps\": {seq_qps:.1},\n  \
         \"closed_loop\": {},\n  \
         \"open_loop\": [\n{}\n  ],\n  \
         \"open_loop_speedup_vs_sequential\": {speedup:.2},\n  \
         \"top_load_rejected_overloaded\": {},\n  \
         \"top_load_degraded_requests\": {}\n}}\n",
        stats_row("closed_4x1", closed_qps, closed_qps, &closed_stats),
        rows.join(",\n"),
        top.rejected_overloaded,
        top.degraded_requests,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, json).expect("write BENCH_serving.json");
    eprintln!(
        "[serving] best open-loop sustained {best_sustained:.1} qps = {speedup:.2}x sequential \
         ({seq_qps:.1} qps); top load: {} rejected, {} degraded",
        top.rejected_overloaded, top.degraded_requests
    );
    assert!(top.degraded_requests > 0, "top offered load must engage the degradation ladder");
}

fn bench_serving(c: &mut Criterion) {
    let (registry, queries) = setup();
    emit_serving_json(&registry, &queries);

    // A small Criterion group so the bench integrates with the harness:
    // one open-loop burst at a fixed offered rate.
    let mut g = c.benchmark_group("serving");
    g.sample_size(10);
    g.bench_function("open_loop_burst_64", |b| {
        b.iter(|| {
            let server = Server::start(registry.clone(), serving_config(64));
            let tickets: Vec<_> = (0..64)
                .filter_map(|i| server.submit(TENANT, queries[i % queries.len()].clone()).ok())
                .collect();
            let stats = server.shutdown();
            for t in tickets {
                let _ = t.wait();
            }
            black_box(stats.completed)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
