//! Microbenchmarks of the autodiff substrate (ablation for DESIGN.md §5.1:
//! flat-arena tape + cache-friendly matmul kernels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uae_tensor::rng::seeded_rng;
use uae_tensor::{GradStore, ParamStore, Tape, Tensor};

fn random_tensor(seed: u64, r: usize, c: usize) -> Tensor {
    use rand::RngExt;
    let mut rng = seeded_rng(seed);
    Tensor::from_vec(r, c, (0..r * c).map(|_| rng.random_range(-1.0..1.0f32)).collect())
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &(m, k, n) in &[(64usize, 64usize, 64usize), (256, 128, 128), (256, 128, 2048)] {
        let a = random_tensor(1, m, k);
        let b = random_tensor(2, k, n);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{m}x{k}x{n}")), &(), |bch, ()| {
            bch.iter(|| black_box(a.matmul(&b)));
        });
    }
    g.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let t = random_tensor(3, 256, 2101);
    c.bench_function("softmax_rows_256x2101", |b| {
        b.iter(|| black_box(t.softmax_rows()));
    });
}

fn bench_mlp_forward_backward(c: &mut Criterion) {
    let mut store = ParamStore::new();
    let w1 = store.add("w1", random_tensor(4, 64, 128));
    let w2 = store.add("w2", random_tensor(5, 128, 128));
    let w3 = store.add("w3", random_tensor(6, 128, 512));
    let x = random_tensor(7, 256, 64);
    c.bench_function("mlp_forward_backward_256", |b| {
        b.iter(|| {
            let mut grads = GradStore::zeros_like(&store);
            let mut tape = Tape::new(&store);
            let xn = tape.input(x.clone());
            let w1n = tape.param(w1);
            let h = tape.matmul(xn, w1n);
            let h = tape.relu(h);
            let w2n = tape.param(w2);
            let h = tape.matmul(h, w2n);
            let h = tape.relu(h);
            let w3n = tape.param(w3);
            let y = tape.matmul(h, w3n);
            let sq = tape.mul(y, y);
            let loss = tape.mean_all(sq);
            tape.backward(loss, &mut grads);
            black_box(grads.l2_norm())
        });
    });
}

criterion_group!(benches, bench_matmul, bench_softmax, bench_mlp_forward_backward);
criterion_main!(benches);
