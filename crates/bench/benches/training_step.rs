//! Cost of one training epoch under each of UAE's three modes (data-only,
//! query-only, hybrid) — the wall-clock trade-off behind the paper's §5.5.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::hint::black_box;
use uae_core::{DpsConfig, ResMadeConfig, TrainConfig, Uae, UaeConfig};
use uae_query::{default_bounded_column, generate_workload, LabeledQuery, WorkloadSpec};

fn setup() -> (uae_data::Table, Vec<LabeledQuery>, UaeConfig) {
    let table = uae_data::census_like(2000, 0x7417);
    let col = default_bounded_column(&table);
    let workload =
        generate_workload(&table, &WorkloadSpec::in_workload(col, 48, 1), &HashSet::new());
    let cfg = UaeConfig {
        model: ResMadeConfig { hidden: 64, blocks: 1, seed: 2 },
        factor_threshold: usize::MAX,
        order: uae_core::ColumnOrder::Natural,
        encoding: uae_core::encoding::EncodingMode::Binary,
        train: TrainConfig {
            batch_size: 256,
            query_batch: 8,
            dps: DpsConfig { tau: 1.0, samples: 8 },
            ..TrainConfig::default()
        },
        estimate_samples: 50,
        serve: uae_core::ServeConfig::default(),
    };
    (table, workload, cfg)
}

fn bench_training(c: &mut Criterion) {
    let (table, workload, cfg) = setup();
    let mut g = c.benchmark_group("training_epoch");
    g.sample_size(10);
    g.bench_function("data_only", |b| {
        b.iter(|| {
            let mut uae = Uae::new(&table, cfg.clone());
            black_box(uae.train_data(1))
        });
    });
    g.bench_function("query_only", |b| {
        b.iter(|| {
            let mut uae = Uae::new(&table, cfg.clone());
            black_box(uae.train_queries(&workload, 1))
        });
    });
    g.bench_function("hybrid", |b| {
        b.iter(|| {
            let mut uae = Uae::new(&table, cfg.clone());
            black_box(uae.train_hybrid(&workload, 1))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
