//! Ablations of UAE's design choices (DESIGN.md §5), each validating an
//! argument the paper makes in prose:
//!
//! 1. **Progressive vs uniform sampling** (§4.2): uniform sampling's
//!    variance explodes on skewed data; progressive sampling concentrates
//!    on high-probability regions.
//! 2. **Gumbel-Softmax vs score-function gradients** (§4.3): REINFORCE has
//!    much higher gradient variance, which shows up directly in training
//!    quality at equal budgets.
//! 3. **Wildcard skipping** (§4.6): training with wildcard dropout lets
//!    inference skip unqueried columns without accuracy collapse.
//! 4. **Column orderings** (§4.2): natural vs domain-sorted vs greedy-MI
//!    autoregressive orders.

use std::collections::HashSet;
use std::time::Instant;

use uae_bench::{attach_metrics, metrics_out_arg, prepare_single_table, BenchScale};
use uae_core::infer::{progressive_sample, uniform_sample_estimate};
use uae_core::sf::{score_function_loss, SfBaseline};
use uae_core::train::{query_loss, TrainQuery};
use uae_core::{ResMade, ResMadeConfig, Uae, VirtualQuery, VirtualSchema};
use uae_query::{evaluate, q_error};
use uae_tensor::rng::seeded_rng;
use uae_tensor::{Adam, GradStore, Optimizer, ParamStore, Tape};

fn main() {
    let scale = BenchScale::from_env();
    let metrics = metrics_out_arg();
    let mut small = scale.clone();
    small.dmv_rows /= 2;
    small.train_queries /= 2;
    let t0 = Instant::now();

    // ---------------------------------------------------------------
    // Ablation 1: progressive vs uniform sampling on a trained model.
    // ---------------------------------------------------------------
    eprintln!("[ablations] 1/4: sampling strategies…");
    let bench = prepare_single_table("dmv", &small, 0xAB1);
    let mut model = Uae::new(&bench.table, small.uae_config(0xAB1));
    attach_metrics(&mut model, metrics.as_deref(), "ablation1:uae-d");
    model.train_data(small.data_epochs);
    // Compare q-errors of both strategies using the same trained weights.
    let raw_cfg = small.uae_config(0xAB1);
    let schema = VirtualSchema::build(&bench.table, raw_cfg.factor_threshold);
    let mut store = ParamStore::new();
    let net = ResMade::new(&mut store, &schema, &raw_cfg.model);
    // Reuse the trained weights through serialization (public API).
    uae_core::serialize::load_params(&mut store, &model.save_weights()).expect("same architecture");
    let raw = net.snapshot(&store);
    let mut rng = seeded_rng(0xAB2);
    let mut prog_errs = Vec::new();
    let mut unif_errs = Vec::new();
    for lq in bench.test_in.iter() {
        let vq = VirtualQuery::build(&bench.table, &schema, &lq.query);
        let truth = lq.cardinality as f64;
        let n = bench.table.num_rows() as f64;
        let p = progressive_sample(&raw, &schema, &vq, small.estimate_samples, &mut rng);
        let u = uniform_sample_estimate(&raw, &schema, &vq, small.estimate_samples, &mut rng);
        prog_errs.push(q_error(truth, p * n));
        unif_errs.push(q_error(truth, u * n));
    }
    let summarize = |errs: &mut Vec<f64>| {
        errs.sort_by(f64::total_cmp);
        (
            errs.iter().sum::<f64>() / errs.len() as f64,
            errs[errs.len() / 2],
            *errs.last().expect("nonempty"),
        )
    };
    let (pm, pmed, pmax) = summarize(&mut prog_errs);
    let (um, umed, umax) = summarize(&mut unif_errs);
    println!("\n=== Ablation 1: range-query sampling strategy (paper §4.2, DMV) ===");
    println!("{:<22} {:>10} {:>10} {:>10}", "strategy", "mean", "median", "max");
    println!("{:<22} {:>10.3} {:>10.3} {:>10.3}", "progressive (paper)", pm, pmed, pmax);
    println!("{:<22} {:>10.3} {:>10.3} {:>10.3}", "uniform (Eq. 4)", um, umed, umax);

    // ---------------------------------------------------------------
    // Ablation 2: Gumbel-Softmax vs score-function query training.
    // ---------------------------------------------------------------
    eprintln!("[ablations] 2/4: gradient estimators…");
    let census = prepare_single_table("census", &small, 0xAB3);
    let schema_c = VirtualSchema::build(&census.table, usize::MAX);
    let cfgm = ResMadeConfig { hidden: 64, blocks: 1, seed: 0xAB3 };
    let tqs: Vec<TrainQuery> = {
        let mut store = ParamStore::new();
        let _net = ResMade::new(&mut store, &schema_c, &cfgm);
        census
            .train
            .iter()
            .map(|lq| TrainQuery {
                vquery: VirtualQuery::build(&census.table, &schema_c, &lq.query),
                selectivity: lq.selectivity,
            })
            .collect()
    };
    let steps = 150.min(tqs.len() * 4);
    let batch = 8usize;
    let dps = uae_core::DpsConfig { tau: 1.0, samples: small.dps_samples };

    // Shared protocol: fresh model, `steps` query-only updates, then the
    // mean q-error on held-out in-workload queries. Separately, the
    // *estimator variance* is measured the way the paper discusses it
    // (§4.3): at FIXED parameters and a FIXED query batch, repeat the
    // gradient computation under fresh sampling noise and report the
    // per-coordinate variance relative to the squared mean-gradient norm.
    let run = |use_sf: bool| -> (f64, f64) {
        let mut store = ParamStore::new();
        let net = ResMade::new(&mut store, &schema_c, &cfgm);
        let mut opt = Adam::new(2e-3);
        let mut rng = seeded_rng(0xAB4);
        let mut baseline = SfBaseline::default();
        let grad_of = |store: &ParamStore,
                       b: &[TrainQuery],
                       baseline: &mut SfBaseline,
                       rng: &mut rand::rngs::StdRng|
         -> GradStore {
            let mut grads = GradStore::zeros_like(store);
            let mut tape = Tape::new(store);
            let loss = if use_sf {
                score_function_loss(&mut tape, &net, store, &schema_c, b, 1e4, baseline, rng).0
            } else {
                query_loss(&mut tape, &net, &schema_c, b, &dps, 1e4, rng)
            };
            tape.backward(loss, &mut grads);
            grads
        };
        for step in 0..steps {
            let b: Vec<TrainQuery> =
                (0..batch).map(|i| tqs[(step * batch + i) % tqs.len()].clone()).collect();
            let mut grads = grad_of(&store, &b, &mut baseline, &mut rng);
            let n = grads.l2_norm();
            if n > 8.0 {
                grads.scale(8.0 / n);
            }
            opt.step(&mut store, &grads);
        }
        // Estimator variance at the trained parameters.
        let fixed_batch: Vec<TrainQuery> = tqs.iter().take(batch).cloned().collect();
        const REPS: usize = 16;
        let draws: Vec<GradStore> =
            (0..REPS).map(|_| grad_of(&store, &fixed_batch, &mut baseline, &mut rng)).collect();
        let mut mean_sq_norm = 0.0f64;
        let mut var_sum = 0.0f64;
        for id in store.ids() {
            let len = store.get(id).len();
            for i in 0..len {
                let xs: Vec<f64> = draws.iter().map(|g| g.get(id).data()[i] as f64).collect();
                let m = xs.iter().sum::<f64>() / REPS as f64;
                var_sum += xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / REPS as f64;
                mean_sq_norm += m * m;
            }
        }
        let rel_var = var_sum / mean_sq_norm.max(1e-12);
        // Held-out error.
        let raw = net.snapshot(&store);
        let mut rng = seeded_rng(0xAB5);
        let mut errs: Vec<f64> = census
            .test_in
            .iter()
            .map(|lq| {
                let vq = VirtualQuery::build(&census.table, &schema_c, &lq.query);
                let est = progressive_sample(&raw, &schema_c, &vq, 100, &mut rng)
                    * census.table.num_rows() as f64;
                q_error(lq.cardinality as f64, est)
            })
            .collect();
        errs.sort_by(f64::total_cmp);
        (errs[errs.len() / 2], rel_var)
    };
    let (gs_med, gs_relvar) = run(false);
    let (sf_med, sf_relvar) = run(true);
    println!("\n=== Ablation 2: query-gradient estimator (paper §4.3, Census) ===");
    println!("{:<22} {:>14} {:>22}", "estimator", "median q-err", "rel. grad variance");
    println!("{:<22} {:>14.3} {:>22.4}", "Gumbel-Softmax (paper)", gs_med, gs_relvar);
    println!("{:<22} {:>14.3} {:>22.4}", "REINFORCE (Eq. 7)", sf_med, sf_relvar);

    // ---------------------------------------------------------------
    // Ablation 3: wildcard-skipping dropout.
    // ---------------------------------------------------------------
    eprintln!("[ablations] 3/4: wildcard skipping…");
    let mut with = Uae::new(&census.table, small.uae_config(0xAB6));
    with.train_config_mut().wildcard_prob = 0.25;
    attach_metrics(&mut with, metrics.as_deref(), "ablation3:with-dropout");
    with.train_data(small.data_epochs);
    let mut without = Uae::new(&census.table, small.uae_config(0xAB6));
    without.train_config_mut().wildcard_prob = 0.0;
    attach_metrics(&mut without, metrics.as_deref(), "ablation3:without-dropout");
    without.train_data(small.data_epochs);
    // Random queries leave many columns unqueried → inference feeds the
    // wildcard token; a model never trained with it mis-handles them.
    let random = uae_query::generate_workload(
        &census.table,
        &uae_query::WorkloadSpec::random(small.test_queries, 0xAB7),
        &HashSet::new(),
    );
    let ew = evaluate(&with, &random);
    let ewo = evaluate(&without, &random);
    println!("\n=== Ablation 3: wildcard-skipping dropout (paper §4.6, Census random queries) ===");
    println!("{:<22} {:>10} {:>10} {:>10}", "training", "mean", "median", "max");
    println!(
        "{:<22} {:>10.3} {:>10.3} {:>10.3}",
        "with dropout (paper)", ew.errors.mean, ew.errors.median, ew.errors.max
    );
    println!(
        "{:<22} {:>10.3} {:>10.3} {:>10.3}",
        "without dropout", ewo.errors.mean, ewo.errors.median, ewo.errors.max
    );

    // ---------------------------------------------------------------
    // Ablation 4: autoregressive column ordering (§4.2 pointer).
    // ---------------------------------------------------------------
    eprintln!("[ablations] 4/4: column orderings…");
    println!("\n=== Ablation 4: autoregressive ordering (paper §4.2, DMV, data-only) ===");
    println!("{:<22} {:>10} {:>10} {:>10}", "ordering", "mean", "median", "max");
    for (label, order) in [
        ("natural (paper)", uae_core::ColumnOrder::Natural),
        ("domain desc", uae_core::ColumnOrder::DomainDesc),
        ("domain asc", uae_core::ColumnOrder::DomainAsc),
        ("greedy MI", uae_core::ColumnOrder::GreedyMutualInfo),
    ] {
        let mut cfg = small.uae_config(0xAB8);
        cfg.order = order;
        let mut m = Uae::new(&bench.table, cfg);
        attach_metrics(&mut m, metrics.as_deref(), &format!("ablation4:{label}"));
        m.train_data(small.data_epochs);
        let ev = evaluate(&m, &bench.test_in);
        println!(
            "{:<22} {:>10.3} {:>10.3} {:>10.3}",
            label, ev.errors.mean, ev.errors.median, ev.errors.max
        );
    }

    println!("\n(total {:.0}s)", t0.elapsed().as_secs_f64());
}
