//! The paper's DMV-large sensitivity check (§5.1.1): columns with very
//! large NDVs (a 100%-unique `vin`, a ~31K-value `city`). The paper reports
//! "similar clues" to DMV without printing the table; this binary prints
//! ours, and doubles as the §4.6 large-NDV ablation: UAE with column
//! factorization vs factorization + learnable embeddings, against DeepDB
//! and BayesNet.

use std::collections::HashSet;
use std::time::Instant;

use uae_bench::BenchScale;
use uae_core::encoding::EncodingMode;
use uae_core::Uae;
use uae_estimators::{BayesNetEstimator, SpnConfig, SpnEstimator};
use uae_query::estimator::format_size;
use uae_query::{
    default_bounded_column, evaluate, fingerprints, generate_workload, CardEstimator, WorkloadSpec,
};

fn main() {
    let scale = BenchScale::from_env();
    let t0 = Instant::now();
    let rows = scale.dmv_rows / 2;
    eprintln!("[dmv-large] generating {rows} rows with unique vin + wide city…");
    let table = uae_data::dmv_large_like(rows, 0xD14);
    let widest = table.domain_sizes().into_iter().max().unwrap_or(0);
    eprintln!(
        "[dmv-large] {} cols, max NDV {widest} (vin unique: {})",
        table.num_cols(),
        widest == rows
    );

    let col = default_bounded_column(&table);
    let train = generate_workload(
        &table,
        &WorkloadSpec::in_workload(col, scale.train_queries / 2, 1),
        &HashSet::new(),
    );
    let test = generate_workload(
        &table,
        &WorkloadSpec::in_workload(col, scale.test_queries / 2, 2),
        &fingerprints(&train),
    );

    println!("\n=== DMV-large: sensitivity to very large NDVs ===");
    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Model", "Size", "mean", "median", "95th", "max"
    );
    let report = |name: &str, est: &dyn CardEstimator| {
        let ev = evaluate(est, &test);
        println!(
            "{:<28} {:>9} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            name,
            format_size(ev.size_bytes),
            ev.errors.mean,
            ev.errors.median,
            ev.errors.p95,
            ev.errors.max
        );
    };

    report("BayesNet", &BayesNetEstimator::new(&table, 128));
    report("DeepDB", &SpnEstimator::new(&table, &SpnConfig::default()));

    // UAE with column factorization only (binary encoding): without it the
    // unique vin column alone would need a `rows`-wide softmax head.
    let mut cfg = scale.uae_config(0xD15);
    cfg.factor_threshold = 3_000;
    let mut factored = Uae::new(&table, cfg.clone());
    factored.train_hybrid(&train, scale.hybrid_epochs);
    report("UAE (factorized, binary)", &factored);

    // Factorization + learnable embeddings (§4.6, both techniques).
    cfg.encoding = EncodingMode::Embedding { dim: 16 };
    let mut embedded = Uae::new(&table, cfg);
    embedded.train_hybrid(&train, scale.hybrid_epochs);
    report("UAE (factorized, embedded)", &embedded);

    println!("\n(total {:.0}s)", t0.elapsed().as_secs_f64());
}
