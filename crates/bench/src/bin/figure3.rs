//! Reproduces **Figure 3** of the paper: the selectivity distributions of
//! the in-workload and random test workloads on all three datasets.

use uae_bench::{prepare_single_table, BenchScale};
use uae_query::report::SelectivityHistogram;

fn main() {
    let scale = BenchScale::from_env();
    for dataset in ["dmv", "census", "kddcup98"] {
        let bench = prepare_single_table(dataset, &scale, 0xF16);
        println!("\n=== {dataset}: selectivity distribution ===");
        for (label, workload) in [("in-workload", &bench.test_in), ("random", &bench.test_random)] {
            let h = SelectivityHistogram::from_workload(workload);
            println!("\n[{label} queries, n = {}]", h.total);
            print!("{}", h.render());
            println!("(spectrum spans {} decades)", h.spectrum_width());
        }
    }
}
