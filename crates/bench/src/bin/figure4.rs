//! Reproduces **Figure 4** of the paper: hyper-parameter studies on DMV.
//!
//! * (a) the Gumbel-Softmax temperature τ and the number of DPS training
//!   samples S — following the paper's protocol, a data-pretrained model
//!   is refined by UAE-Q under each setting and evaluated on in-workload
//!   queries;
//! * (b) the trade-off λ — full hybrid training per candidate value,
//!   evaluated on in-workload *and* random queries.

use std::time::Instant;

use uae_bench::{prepare_single_table, BenchScale};
use uae_core::Uae;
use uae_query::evaluate;

fn main() {
    let scale = BenchScale::from_env();
    // Figure 4 runs many trainings; halve the dataset to stay tractable.
    let mut small = scale.clone();
    small.dmv_rows /= 2;
    small.train_queries /= 2;
    let t0 = Instant::now();
    eprintln!("[figure4] preparing dataset + workloads…");
    let bench = prepare_single_table("dmv", &small, 0xF14);

    // Shared data-pretrained base model.
    eprintln!("[figure4] pretraining the shared UAE-D base…");
    let cfg = small.uae_config(0x414);
    let mut base = Uae::new(&bench.table, cfg);
    base.train_data(small.data_epochs);

    println!("\n=== Figure 4(a): temperature τ (UAE-Q refinement of a UAE-D base) ===");
    println!("{:<8} {:>12} {:>12}", "tau", "mean q-err", "max q-err");
    for tau in [0.5f32, 0.75, 1.0, 1.25] {
        let mut m = base.clone();
        m.train_config_mut().dps.tau = tau;
        m.train_queries(&bench.train, small.query_epochs);
        let ev = evaluate(&m, &bench.test_in);
        println!("{tau:<8} {:>12.3} {:>12.3}", ev.errors.mean, ev.errors.max);
    }

    println!("\n=== Figure 4(a): DPS training samples S ===");
    println!("{:<8} {:>12} {:>12}", "S", "mean q-err", "max q-err");
    let s_base = small.dps_samples;
    for s in [s_base / 2, s_base, s_base * 2, s_base * 4] {
        let s = s.max(1);
        let mut m = base.clone();
        m.train_config_mut().dps.samples = s;
        m.train_queries(&bench.train, small.query_epochs);
        let ev = evaluate(&m, &bench.test_in);
        println!("{s:<8} {:>12.3} {:>12.3}", ev.errors.mean, ev.errors.max);
    }

    println!("\n=== Figure 4(b): trade-off λ (hybrid training from scratch) ===");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "lambda", "in mean", "in max", "rand mean", "rand max"
    );
    for lambda in [1e-6f32, 1e-5, 1e-4, 1e-3, 1e-2] {
        let mut m = Uae::new(&bench.table, small.uae_config(0x414));
        m.train_config_mut().lambda = lambda;
        m.train_hybrid(&bench.train, small.hybrid_epochs);
        let ein = evaluate(&m, &bench.test_in);
        let ernd = evaluate(&m, &bench.test_random);
        println!(
            "{lambda:<10.0e} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            ein.errors.mean, ein.errors.max, ernd.errors.mean, ernd.errors.max
        );
    }

    println!("\n(total {:.0}s)", t0.elapsed().as_secs_f64());
}
