//! Reproduces **Figure 5** of the paper:
//!
//! * (1) training convergence — max q-error on Census in-workload queries
//!   as hybrid training progresses, epoch by epoch;
//! * (2) estimation latency of every estimator on DMV (also measured as a
//!   Criterion bench in `benches/estimation_latency.rs`).

use std::time::Instant;

use uae_bench::{histogram_for, prepare_single_table, BenchScale};
use uae_core::Uae;
use uae_estimators::{
    BayesNetEstimator, KdeEstimator, LinearRegressionEstimator, MscnConfig, MscnEstimator,
    SamplingEstimator, SpnConfig, SpnEstimator,
};
use uae_query::{evaluate, CardEstimator};

fn main() {
    let scale = BenchScale::from_env();
    let t0 = Instant::now();

    // --- (1) epochs vs max error on Census -------------------------------
    eprintln!("[figure5] part 1: training convergence on census…");
    let census = prepare_single_table("census", &scale, 0xF15);
    let mut uae = Uae::new(&census.table, scale.uae_config(0x515));
    let epochs = (scale.hybrid_epochs * 2).clamp(4, 16);
    println!("\n=== Figure 5(1): training epoch vs max q-error (Census, in-workload) ===");
    println!("{:<8} {:>12} {:>12}", "epoch", "max q-err", "mean q-err");
    for epoch in 1..=epochs {
        uae.train_hybrid(&census.train, 1);
        let ev = evaluate(&uae, &census.test_in);
        println!("{epoch:<8} {:>12.3} {:>12.3}", ev.errors.max, ev.errors.mean);
    }

    // --- (2) estimation latency on DMV ------------------------------------
    eprintln!("[figure5] part 2: estimation latencies on dmv…");
    let mut small = scale.clone();
    small.test_queries = small.test_queries.min(100);
    let dmv = prepare_single_table("dmv", &small, 0xF25);
    let sample_ratio = 0.02;

    println!("\n=== Figure 5(2): estimation latency (ms/query, DMV) ===");
    println!("{:<15} {:>12}", "Model", "ms/query");
    let report = |est: &dyn CardEstimator| {
        let ev = evaluate(est, &dmv.test_in);
        println!("{:<15} {:>12.3}", ev.name, ev.mean_latency_ms);
    };

    report(&LinearRegressionEstimator::new(&dmv.table, &dmv.train, 1e-3));
    report(&histogram_for(&dmv.table));
    report(&MscnEstimator::new(
        &dmv.table,
        &dmv.train,
        &MscnConfig { epochs: 5, ..MscnConfig::default() },
    ));
    report(&SamplingEstimator::new(&dmv.table, sample_ratio, 1));
    report(&BayesNetEstimator::new(&dmv.table, 128));
    report(&KdeEstimator::new(&dmv.table, sample_ratio, 2));
    report(&SpnEstimator::new(&dmv.table, &SpnConfig::default()));
    let mut naru = Uae::new(&dmv.table, small.uae_config(0x525)).with_name("Naru");
    naru.train_data(1); // latency does not depend on training quality
    report(&naru);
    let mscn_s = MscnEstimator::new(
        &dmv.table,
        &dmv.train,
        &MscnConfig { epochs: 5, sample_rows: 1000, ..MscnConfig::default() },
    );
    report(&mscn_s);
    let uae_est = naru.clone().with_name("UAE");
    report(&uae_est);

    println!("\n(total {:.0}s)", t0.elapsed().as_secs_f64());
}
