//! Reproduces **Figure 6** of the paper: the impact of cardinality
//! estimates on query optimization. A left-deep cost-model optimizer picks
//! join orders under (a) PostgreSQL-like independence estimates, (b)
//! NeuroCard (data-only) and (c) UAE (hybrid); each chosen plan is costed
//! under the *true* cardinalities and reported as a speedup over the
//! PostgreSQL plan (the paper's "query execution time speed-ups").

use std::collections::HashSet;
use std::time::Instant;

use uae_bench::BenchScale;
use uae_core::{DpsConfig, ResMadeConfig, TrainConfig, UaeConfig};
use uae_join::optimizer::{study_query, SubplanEstimator, TruthEstimator};
use uae_join::{generate_join_workload, imdb_like, sample_outer_join, JoinUae, JoinWorkloadSpec};
use uae_query::metrics::geometric_mean;

fn main() {
    let scale = BenchScale::from_env();
    let t0 = Instant::now();
    let titles = scale.dmv_rows / 8;
    eprintln!("[figure6] generating star schema ({titles} titles)…");
    let schema = imdb_like(titles, 0xF66);

    // Training workload: random subqueries over 1–4 tables with a focused
    // bounded attribute (the paper trains UAE on 10K generated subqueries).
    let train = generate_join_workload(
        &schema,
        &JoinWorkloadSpec {
            seed: 61,
            num_queries: scale.train_queries / 2,
            bounded: Some((0, (0.0, 1.0), 0.08)),
            nf_range: (1, 3),
            all_dims: false,
        },
        &HashSet::new(),
    );
    // Test queries: multi-way joins over all dimensions.
    let test = generate_join_workload(
        &schema,
        &JoinWorkloadSpec {
            seed: 62,
            num_queries: (scale.test_queries / 4).max(10),
            bounded: Some((0, (0.0, 1.0), 0.08)),
            nf_range: (2, 4),
            all_dims: true,
        },
        &uae_join::workload::fingerprints(&train),
    );
    eprintln!(
        "[figure6] {} training subqueries, {} test joins ({:.0}s)",
        train.len(),
        test.len(),
        t0.elapsed().as_secs_f64()
    );

    let sample_rows = (scale.dmv_rows / 4).max(2000);
    let cfg = UaeConfig {
        model: ResMadeConfig { hidden: 128, blocks: 1, seed: 66 },
        factor_threshold: usize::MAX,
        order: uae_core::ColumnOrder::Natural,
        encoding: uae_core::encoding::EncodingMode::Binary,
        train: TrainConfig {
            lambda: 10.0,
            dps: DpsConfig { tau: 1.0, samples: scale.dps_samples },
            ..TrainConfig::default()
        },
        estimate_samples: scale.estimate_samples,
        serve: uae_core::ServeConfig::default(),
    };

    eprintln!("[figure6] training NeuroCard (data-only)…");
    let mut nc = JoinUae::new(sample_outer_join(&schema, sample_rows, 32, 71), cfg.clone())
        .with_name("NeuroCard");
    nc.train_data(scale.data_epochs);

    eprintln!("[figure6] training UAE (hybrid)…");
    let mut uae =
        JoinUae::new(sample_outer_join(&schema, sample_rows, 32, 71), cfg).with_name("UAE");
    uae.train_hybrid(&train, scale.hybrid_epochs);

    let truth = TruthEstimator::new(&schema);
    let estimators: Vec<&dyn SubplanEstimator> = vec![&truth, &nc, &uae];

    println!("\n=== Figure 6: query speed-ups vs the PostgreSQL-like plan (cost model) ===");
    println!("{:<8} {:>12} {:>12} {:>12}", "query", "Truth", "NeuroCard", "UAE");
    let mut per_est: Vec<Vec<f64>> = vec![Vec::new(); estimators.len()];
    for (qi, lq) in test.iter().enumerate() {
        let rows = study_query(&schema, &lq.query, &estimators);
        print!("{:<8}", format!("q{}", qi + 1));
        for (e, row) in rows.iter().enumerate() {
            per_est[e].push(row.speedup_vs_baseline);
            print!(" {:>12.3}", row.speedup_vs_baseline);
        }
        println!();
    }
    println!("{}", "-".repeat(48));
    print!("{:<8}", "geomean");
    for speeds in &per_est {
        print!(" {:>12.3}", geometric_mean(speeds));
    }
    println!();
    uae_bench::report_serve_stats("NeuroCard", nc.uae());
    uae_bench::report_serve_stats("UAE", uae.uae());
    println!("\n(total {:.0}s)", t0.elapsed().as_secs_f64());
}
