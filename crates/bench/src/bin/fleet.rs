//! The model-fleet experiment (ROADMAP item 4): per-regime and blended
//! q-error of the workload-routed fleet against every single-estimator
//! baseline, across the three single-table regimes of Tables 2–4 —
//! `dmv` (skewed), `census` (correlated) and `kddcup98` (high-dim,
//! mutually-independent groups, the paper's finding (6) regime where the
//! autoregressive tail degrades and SPN-style models thrive).
//!
//! For each regime the fleet's [`Router`] is calibrated on a held-out
//! workload disjoint from both training and test; the test report is
//! per-regime median/p95/max plus the blended (all regimes pooled)
//! median and p95 — the numbers behind EXPERIMENTS.md §fleet and the
//! acceptance inequality the CI routing drill enforces at small scale:
//! the fleet is no worse than the best single estimator on every regime
//! and strictly better than any single estimator blended.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use uae_bench::{prepare_single_table, BenchScale};
use uae_core::{RouteConfig, RoutedFleet, Router, Uae};
use uae_estimators::{
    BayesNetEstimator, HistogramEstimator, KdeEstimator, LinearRegressionEstimator, MhistEstimator,
    MscnConfig, MscnEstimator, QuickSelEstimator, SamplingEstimator, SpnConfig, SpnEstimator,
    StHolesEstimator,
};
use uae_query::{
    fingerprints, generate_correlated_workload, generate_workload, q_error, CardEstimator,
    CorrelatedSpec, LabeledQuery, Query, WorkloadSpec,
};

const REGIMES: [&str; 4] = ["dmv", "census", "kddcup98", "dmv_corr"];

/// Per-query q-errors of one estimator over a labeled test workload.
fn qerrs(est: &dyn CardEstimator, test: &[LabeledQuery]) -> Vec<f64> {
    let queries: Vec<Query> = test.iter().map(|lq| lq.query.clone()).collect();
    est.estimate_cards(&queries)
        .iter()
        .zip(test)
        .map(|(&e, lq)| q_error(lq.cardinality as f64, e))
        .collect()
}

fn quantile(errs: &[f64], q: f64) -> f64 {
    if errs.is_empty() {
        return f64::INFINITY;
    }
    let mut s = errs.to_vec();
    s.sort_by(f64::total_cmp);
    s[((s.len() - 1) as f64 * q).round() as usize]
}

struct Candidate {
    name: String,
    /// Per-regime q-error vectors, in `REGIMES` order.
    errs: Vec<Vec<f64>>,
}

impl Candidate {
    fn blended(&self) -> Vec<f64> {
        self.errs.iter().flatten().copied().collect()
    }
}

fn main() {
    let scale = BenchScale::from_env();
    let t_all = Instant::now();
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut fleet_errs: Vec<Vec<f64>> = Vec::new();

    for (ri, regime) in REGIMES.iter().enumerate() {
        let t0 = Instant::now();
        let seed = 0xF1EE7 ^ (ri as u64 * 0x9E37);
        eprintln!("[fleet] preparing regime `{regime}`…");
        // `dmv_corr` is the correlated-dependency workload over the dmv
        // table (every query pins state/county/date jointly — the regime
        // where independence-factoring models err by construction); the
        // other three are the standard single-table benches, tested on
        // in-workload + random queries. The calibration holdout always
        // matches the tested distribution but never contains test queries.
        let (table, train, holdout, test, sample_ratio) = if *regime == "dmv_corr" {
            let table = uae_data::dmv_like(scale.dmv_rows, seed);
            let mk = |n: usize, s: u64, excl: &HashSet<u64>| {
                let spec = CorrelatedSpec::dmv(&table, n, s).expect("dmv dependency columns");
                generate_correlated_workload(&table, &spec, excl)
            };
            let train = mk(scale.train_queries, seed ^ 0x11, &HashSet::new());
            let excl = fingerprints(&train);
            let holdout = mk(scale.test_queries, seed ^ 0x44, &excl);
            // Same test weight as the other regimes (which pool their
            // in-workload and random halves).
            let test = mk(2 * scale.test_queries, seed ^ 0x55, &excl);
            (table, train, holdout, test, 0.3)
        } else {
            let bench = prepare_single_table(regime, &scale, seed);
            let holdout = generate_workload(
                &bench.table,
                &WorkloadSpec::random(scale.test_queries, seed ^ 0x44),
                &HashSet::new(),
            );
            let test: Vec<LabeledQuery> =
                bench.test_in.iter().chain(&bench.test_random).cloned().collect();
            let sample_ratio = match *regime {
                "dmv" => 0.002_f64.max(400.0 / bench.table.num_rows() as f64),
                "census" => 0.09,
                "kddcup98" => 0.046,
                _ => 0.02,
            }
            .min(1.0);
            (bench.table, bench.train, holdout, test, sample_ratio)
        };

        eprintln!("[fleet] [{regime}] training UAE (hybrid)…");
        let mut uae = Uae::new(&table, scale.uae_config(seed ^ 0x777));
        uae.train_hybrid(&train, scale.hybrid_epochs);

        // The fleet's backends: the cheap data-driven family the router
        // can favor where the deep model's tail degrades.
        let backends: Vec<Arc<dyn CardEstimator>> = vec![
            Arc::new(HistogramEstimator::new(&table, 64)),
            Arc::new(SpnEstimator::new(&table, &SpnConfig::default())),
            Arc::new(SamplingEstimator::new(&table, sample_ratio, seed ^ 1)),
            Arc::new(BayesNetEstimator::new(&table, 128)),
        ];
        eprintln!("[fleet] [{regime}] calibrating router on {} held-out queries…", holdout.len());
        let router = Router::calibrate(
            &table,
            &uae.clone(),
            backends.clone(),
            &holdout,
            RouteConfig::default(),
        );
        eprintln!("[fleet] [{regime}] policy: {:?}", router.policy());
        let fleet = RoutedFleet::new(Arc::new(uae.clone()), Arc::new(router));

        // Every single-estimator baseline, freshly built per regime.
        let mut singles: Vec<(String, Box<dyn CardEstimator>)> = vec![
            ("UAE".into(), Box::new(uae.clone())),
            ("Histogram".into(), Box::new(HistogramEstimator::new(&table, 64))),
            ("MHist".into(), Box::new(MhistEstimator::new(&table, 1024))),
            ("DeepDB".into(), Box::new(SpnEstimator::new(&table, &SpnConfig::default()))),
            ("BayesNet".into(), Box::new(BayesNetEstimator::new(&table, 128))),
            ("Sampling".into(), Box::new(SamplingEstimator::new(&table, sample_ratio, seed ^ 1))),
            ("KDE".into(), Box::new(KdeEstimator::new(&table, sample_ratio, seed ^ 2))),
            ("LR".into(), Box::new(LinearRegressionEstimator::new(&table, &train, 1e-3))),
            (
                "MSCN-base".into(),
                Box::new(MscnEstimator::new(
                    &table,
                    &train,
                    &MscnConfig { sample_rows: 0, ..MscnConfig::default() },
                )),
            ),
            ("QuickSel".into(), Box::new(QuickSelEstimator::new(&table, &train, 64))),
        ];
        let mut sth = StHolesEstimator::new(&table, 256);
        sth.refine(&train);
        singles.push(("STHoles".into(), Box::new(sth)));

        for (name, est) in &singles {
            let errs = qerrs(est.as_ref(), &test);
            eprintln!(
                "[fleet] [{regime}] {name:<10} median {:.2}  p95 {:.1}",
                quantile(&errs, 0.5),
                quantile(&errs, 0.95),
            );
            match candidates.iter_mut().find(|c| &c.name == name) {
                Some(c) => c.errs.push(errs),
                None => candidates.push(Candidate { name: name.clone(), errs: vec![errs] }),
            }
        }
        let errs = qerrs(&fleet, &test);
        eprintln!(
            "[fleet] [{regime}] {:<10} median {:.2}  p95 {:.1}  ({} routed / {} served, {:.0}s)",
            "Fleet",
            quantile(&errs, 0.5),
            quantile(&errs, 0.95),
            fleet.serve_stats().routed,
            fleet.serve_stats().served,
            t0.elapsed().as_secs_f64(),
        );
        fleet_errs.push(errs);
    }

    // ---- report ----------------------------------------------------------
    println!("\n=== Model fleet: per-regime and blended q-error ===");
    let header: Vec<String> =
        REGIMES.iter().map(|r| format!("{:>22}", format!("{r} (med/p95/max)"))).collect();
    println!("{:<12} | {} | {:>17}", "Model", header.join(" | "), "blended (med/p95)");
    println!("{}", "-".repeat(12 + 3 + REGIMES.len() * 25 + 18));
    let row = |name: &str, errs: &[Vec<f64>]| {
        let per: Vec<String> = errs
            .iter()
            .map(|e| {
                format!(
                    "{:>6.2} {:>7.1} {:>7.0}",
                    quantile(e, 0.5),
                    quantile(e, 0.95),
                    quantile(e, 1.0)
                )
            })
            .collect();
        let blended: Vec<f64> = errs.iter().flatten().copied().collect();
        println!(
            "{:<12} | {} | {:>8.2} {:>8.1}",
            name,
            per.join(" | "),
            quantile(&blended, 0.5),
            quantile(&blended, 0.95),
        );
    };
    for c in &candidates {
        row(&c.name, &c.errs);
    }
    row("UAE-fleet", &fleet_errs);

    // ---- acceptance inequalities ----------------------------------------
    let mut ok = true;
    for (ri, regime) in REGIMES.iter().enumerate() {
        let fleet_med = quantile(&fleet_errs[ri], 0.5);
        let best =
            candidates.iter().map(|c| quantile(&c.errs[ri], 0.5)).fold(f64::INFINITY, f64::min);
        let pass = fleet_med <= best * 1.05; // "no worse": 5% grace for sampling noise
        if !pass {
            ok = false;
        }
        println!(
            "[check] {regime}: fleet median {fleet_med:.2} vs best single {best:.2} — {}",
            if pass { "ok" } else { "FAIL" }
        );
    }
    let fb: Vec<f64> = fleet_errs.iter().flatten().copied().collect();
    let (fm, fp) = (quantile(&fb, 0.5), quantile(&fb, 0.95));
    for c in &candidates {
        let b = c.blended();
        let (m, p) = (quantile(&b, 0.5), quantile(&b, 0.95));
        let pass = fm < m && fp < p;
        if !pass {
            ok = false;
        }
        println!(
            "[check] blended vs {:<10}: fleet {:.2}/{:.1} vs {:.2}/{:.1} — {}",
            c.name,
            fm,
            fp,
            m,
            p,
            if pass { "strictly better" } else { "FAIL" }
        );
    }
    println!(
        "\n(total {:.0}s; verdict: {})",
        t_all.elapsed().as_secs_f64(),
        if ok { "fleet dominates" } else { "fleet does NOT dominate" }
    );
}
