//! Incremental **data** ingestion (§4.5 / §5.4): the paper defers this
//! experiment to Naru's evaluation ("the ability of autoregressive models
//! to incorporate incremental data has been demonstrated in previous
//! work") — this binary runs it anyway on our substrate, completing the
//! §4.5 story: after a distribution-shifting batch of new rows arrives, a
//! stale model misestimates; a few unsupervised epochs on the appended
//! rows recover accuracy without retraining.

use std::collections::HashSet;
use std::time::Instant;

use uae_bench::{attach_metrics, metrics_out_arg, BenchScale};
use uae_core::Uae;
use uae_query::{evaluate, generate_workload, CardEstimator, WorkloadSpec};

fn main() {
    let scale = BenchScale::from_env();
    let metrics = metrics_out_arg();
    let t0 = Instant::now();
    // "Old" data: the first 60% of a DMV-like table; "new" data: the rest,
    // drawn from a different seed region so marginals shift.
    let rows = scale.dmv_rows;
    let full = uae_data::dmv_like(rows, 0x1CD);
    let old_idx: Vec<usize> = (0..rows * 3 / 5).collect();
    let new_idx: Vec<usize> = (rows * 3 / 5..rows).collect();
    let old = full.take_rows(&old_idx);
    let new_rows = full.take_rows(&new_idx);

    eprintln!(
        "[incremental-data] {} old rows, {} incremental rows",
        old.num_rows(),
        new_rows.num_rows()
    );

    // Queries are evaluated against the FULL table (post-ingest truth).
    let test =
        generate_workload(&full, &WorkloadSpec::random(scale.test_queries, 7), &HashSet::new());

    let mut stale = Uae::new(&old, scale.uae_config(0x1CE)).with_name("stale");
    attach_metrics(&mut stale, metrics.as_deref(), "incremental:stale");
    stale.train_data(scale.data_epochs);
    // The stale model still believes the table has `old` rows; scale its
    // cardinalities to the full table for a fair comparison.
    let stale_scale = full.num_rows() as f64 / old.num_rows() as f64;
    let stale_errs: Vec<f64> = test
        .iter()
        .map(|lq| {
            let est = stale.estimate_card(&lq.query) * stale_scale;
            uae_query::q_error(lq.cardinality as f64, est)
        })
        .collect();
    let stale_sum = uae_query::ErrorSummary::from_errors(&stale_errs);

    let mut refreshed = Uae::new(&old, scale.uae_config(0x1CE)).with_name("refreshed");
    attach_metrics(&mut refreshed, metrics.as_deref(), "incremental:refreshed");
    refreshed.train_data(scale.data_epochs);
    refreshed.set_learning_rate(1e-3);
    refreshed.ingest_data(&new_rows, (scale.data_epochs / 2).max(2));
    let refreshed_sum = evaluate(&refreshed, &test).errors;

    let mut retrained = Uae::new(&full, scale.uae_config(0x1CE)).with_name("retrained");
    attach_metrics(&mut retrained, metrics.as_deref(), "incremental:retrained");
    retrained.train_data(scale.data_epochs);
    let retrained_sum = evaluate(&retrained, &test).errors;

    println!("\n=== Incremental data (random queries on the updated table) ===");
    println!("{:<34} {:>10} {:>10} {:>10}", "Model", "mean", "median", "max");
    for (name, s) in [
        ("stale (old data only, rescaled)", &stale_sum),
        ("ingest_data (no retraining)", &refreshed_sum),
        ("full retrain (upper bound)", &retrained_sum),
    ] {
        println!("{:<34} {:>10.3} {:>10.3} {:>10.3}", name, s.mean, s.median, s.max);
    }
    println!("\n(total {:.0}s)", t0.elapsed().as_secs_f64());
}
