//! Reproduces **Table 2** of the paper: estimation errors of all eleven
//! estimators on the DMV(-like) dataset, in-workload and random queries.

use uae_bench::{run_single_table_experiment, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    run_single_table_experiment("dmv", &scale, 0xD34);
}
