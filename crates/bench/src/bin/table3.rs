//! Reproduces **Table 3** of the paper: estimation errors on the
//! Census(-like) dataset.

use uae_bench::{run_single_table_experiment, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    run_single_table_experiment("census", &scale, 0xCE2);
}
