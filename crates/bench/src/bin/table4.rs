//! Reproduces **Table 4** of the paper: estimation errors on the
//! Kddcup98(-like) dataset (100 columns — the high-dimensional stress
//! test behind the paper's finding (6)).

use uae_bench::{run_single_table_experiment, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    run_single_table_experiment("kddcup98", &scale, 0x0D4D);
}
