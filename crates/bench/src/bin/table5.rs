//! Reproduces **Table 5** of the paper: estimation errors for join queries
//! on the IMDB(-like) star schema — DeepDB, MSCN+sampling, NeuroCard and
//! UAE on JOB-light-ranges-focused (in-workload) and JOB-light-style
//! (random, subset joins) test queries.

use std::collections::HashSet;
use std::time::Instant;

use uae_bench::{attach_metrics, metrics_out_arg, report_serve_stats, BenchScale};
use uae_core::{DpsConfig, ResMadeConfig, TrainConfig, UaeConfig};
use uae_estimators::{MscnConfig, SpnConfig};
use uae_join::workload::fingerprints;
use uae_join::{
    generate_join_workload, imdb_like, sample_outer_join, JoinCardEstimator, JoinMscn, JoinSpn,
    JoinUae, JoinWorkloadSpec, LabeledJoinQuery,
};
use uae_query::estimator::format_size;
use uae_query::metrics::{format_err, percentile, q_error};

fn summarize(est: &dyn JoinCardEstimator, workload: &[LabeledJoinQuery]) -> String {
    // One batched call: UAE-family estimators amortize the per-column
    // forwards across the whole workload (baselines fall back to a loop).
    let queries: Vec<_> = workload.iter().map(|lq| lq.query.clone()).collect();
    let ests = est.estimate_join_cards(&queries);
    let mut errs: Vec<f64> =
        workload.iter().zip(&ests).map(|(lq, &e)| q_error(lq.cardinality as f64, e)).collect();
    errs.sort_by(f64::total_cmp);
    format!(
        "{:>10} {:>10} {:>10}",
        format_err(percentile(&errs, 0.50)),
        format_err(percentile(&errs, 0.95)),
        format_err(*errs.last().expect("nonempty workload"))
    )
}

fn main() {
    let scale = BenchScale::from_env();
    let metrics = metrics_out_arg();
    let t0 = Instant::now();
    let titles = scale.dmv_rows / 4;
    eprintln!("[imdb] generating star schema ({titles} titles) + join sample…");
    let schema = imdb_like(titles, 0x1BDB);

    let train = generate_join_workload(
        &schema,
        &JoinWorkloadSpec::focused(0, scale.train_queries / 2, 11),
        &HashSet::new(),
    );
    let excl = fingerprints(&train);
    let test_focused = generate_join_workload(
        &schema,
        &JoinWorkloadSpec::focused(0, scale.test_queries / 2, 12),
        &excl,
    );
    let test_random = generate_join_workload(
        &schema,
        &JoinWorkloadSpec::random(scale.test_queries / 2, 13),
        &HashSet::new(),
    );
    eprintln!(
        "[imdb] outer join size {}, {} train / {} focused / {} random queries ({:.1}s)",
        schema.outer_join_size(),
        train.len(),
        test_focused.len(),
        test_random.len(),
        t0.elapsed().as_secs_f64()
    );

    let sample_rows = (scale.dmv_rows / 2).max(2000);
    let uae_cfg = UaeConfig {
        model: ResMadeConfig { hidden: 128, blocks: 1, seed: 5 },
        factor_threshold: usize::MAX,
        order: uae_core::ColumnOrder::Natural,
        encoding: uae_core::encoding::EncodingMode::Binary,
        train: TrainConfig {
            // The paper uses λ = 10 on IMDB.
            lambda: 10.0,
            dps: DpsConfig { tau: 1.0, samples: scale.dps_samples },
            ..TrainConfig::default()
        },
        estimate_samples: scale.estimate_samples,
        serve: uae_core::ServeConfig::default(),
    };

    println!("\n=== Estimation errors on IMDB (join queries) ===");
    println!(
        "{:<15} {:>8} | {:>32} | {:>32}",
        "Model", "Size", "JOB-light-ranges-focused (med/95/max)", "JOB-light (med/95/max)"
    );
    println!("{}", "-".repeat(100));

    // DeepDB over the join sample.
    let sample = sample_outer_join(&schema, sample_rows, 32, 21);
    let spn = JoinSpn::new(sample, &SpnConfig::default());
    println!(
        "{:<15} {:>8} | {} | {}",
        spn.name(),
        format_size(spn.size_bytes()),
        summarize(&spn, &test_focused),
        summarize(&spn, &test_random)
    );

    // MSCN+sampling.
    let sample = sample_outer_join(&schema, sample_rows, 32, 22);
    let mscn =
        JoinMscn::new(sample, &train, &MscnConfig { sample_rows: 512, ..MscnConfig::default() });
    println!(
        "{:<15} {:>8} | {} | {}",
        mscn.name(),
        format_size(mscn.size_bytes()),
        summarize(&mscn, &test_focused),
        summarize(&mscn, &test_random)
    );

    // NeuroCard: data-only autoregressive model over the join sample.
    let sample = sample_outer_join(&schema, sample_rows, 32, 23);
    let mut nc = JoinUae::new(sample, uae_cfg.clone()).with_name("NeuroCard");
    attach_metrics(nc.uae_mut(), metrics.as_deref(), "table5:neurocard");
    nc.train_data(scale.data_epochs);
    println!(
        "{:<15} {:>8} | {} | {}",
        nc.name(),
        format_size(nc.size_bytes()),
        summarize(&nc, &test_focused),
        summarize(&nc, &test_random)
    );

    // UAE: hybrid training on the same sample + the focused workload.
    let sample = sample_outer_join(&schema, sample_rows, 32, 23);
    let mut uae = JoinUae::new(sample, uae_cfg).with_name("UAE");
    attach_metrics(uae.uae_mut(), metrics.as_deref(), "table5:uae");
    uae.train_hybrid(&train, scale.hybrid_epochs);
    println!(
        "{:<15} {:>8} | {} | {}",
        uae.name(),
        format_size(uae.size_bytes()),
        summarize(&uae, &test_focused),
        summarize(&uae, &test_random)
    );

    // Degraded-path accounting for the UAE-family models: nonzero retry /
    // fallback counters here mean some estimates came from the hardened
    // cascade rather than the model itself.
    report_serve_stats("NeuroCard", nc.uae());
    report_serve_stats("UAE", uae.uae());

    println!("\n(total {:.0}s)", t0.elapsed().as_secs_f64());
}
