//! Reproduces **Table 6** of the paper: incremental query-workload
//! ingestion. Five workload partitions focus on shifting data regions of
//! the bounded column; a stale Naru (data-only, never refined) is compared
//! with a UAE that ingests each partition's queries (§4.5 / §5.4).

use std::collections::HashSet;
use std::time::Instant;

use uae_bench::BenchScale;
use uae_core::Uae;
use uae_query::workload::incremental_windows;
use uae_query::{default_bounded_column, evaluate, generate_workload, BoundedSpec, WorkloadSpec};

fn main() {
    let scale = BenchScale::from_env();
    let t0 = Instant::now();
    let table = uae_data::dmv_like(scale.dmv_rows, 0x7AB6);
    let col = default_bounded_column(&table);
    eprintln!("[table6] dataset ready; generating 5 shifted workload partitions…");

    const PARTS: usize = 5;
    let windows = incremental_windows(PARTS);
    let train_per_part = (scale.train_queries / 2).max(20);
    let test_per_part = (scale.test_queries / 2).max(10);

    let mut train_parts = Vec::new();
    let mut test_parts = Vec::new();
    for (i, &win) in windows.iter().enumerate() {
        let mk = |n: usize, seed: u64| WorkloadSpec {
            seed,
            num_queries: n,
            bounded: Some(BoundedSpec { column: col, center_window: win, volume_frac: 0.01 }),
            nf_range: (2, 5),
        };
        let train = generate_workload(&table, &mk(train_per_part, 100 + i as u64), &HashSet::new());
        let excl = uae_query::fingerprints(&train);
        let test = generate_workload(&table, &mk(test_per_part, 200 + i as u64), &excl);
        train_parts.push(train);
        test_parts.push(test);
    }

    // Both models share the same pretraining (same seeds → same weights).
    eprintln!("[table6] pretraining the data-only model twice (stale vs refined)…");
    let cfg = scale.uae_config(0x6ab1e6);
    let mut naru = Uae::new(&table, cfg.clone()).with_name("Naru");
    naru.train_data(scale.data_epochs);
    let mut uae = Uae::new(&table, cfg);
    uae.train_data(scale.data_epochs);

    let ingest_epochs = (scale.query_epochs.max(4)).min(20); // paper: 10–20
                                                             // Refinement uses a gentler learning rate than initial training, so the
                                                             // query signal sharpens the focused region without destabilizing the
                                                             // rest of the learned distribution.
    uae.set_learning_rate(5e-4);
    let mut naru_means = Vec::new();
    let mut uae_means = Vec::new();
    for (i, (train, test)) in train_parts.iter().zip(&test_parts).enumerate() {
        uae.ingest_workload(train, ingest_epochs);
        let en = evaluate(&naru, test);
        let eu = evaluate(&uae, test);
        eprintln!(
            "[table6] partition {} (window {:.1}-{:.1}): Naru mean {:.3}, UAE mean {:.3}",
            i + 1,
            windows[i].0,
            windows[i].1,
            en.errors.mean,
            eu.errors.mean
        );
        naru_means.push(en.errors.mean);
        uae_means.push(eu.errors.mean);
    }

    println!("\n=== Incremental query workload: stale Naru vs refined UAE (mean q-error) ===");
    print!("{:<22}", "Ingested Partitions");
    for i in 1..=PARTS {
        print!("{i:>10}");
    }
    println!();
    print!("{:<22}", "Naru: mean");
    for m in &naru_means {
        print!("{m:>10.3}");
    }
    println!();
    print!("{:<22}", "UAE: mean");
    for m in &uae_means {
        print!("{m:>10.3}");
    }
    println!();
    println!("\n(total {:.0}s)", t0.elapsed().as_secs_f64());
}
