//! # uae-bench — the harness regenerating every table and figure
//!
//! One binary per experiment (see `DESIGN.md` §4):
//!
//! | Target | Reproduces |
//! |---|---|
//! | `table2` | Table 2 — estimation errors on DMV |
//! | `table3` | Table 3 — estimation errors on Census |
//! | `table4` | Table 4 — estimation errors on Kddcup98 |
//! | `table5` | Table 5 — estimation errors on IMDB join queries |
//! | `table6` | Table 6 — incremental query-workload ingestion |
//! | `figure3` | Figure 3 — workload selectivity distributions |
//! | `figure4` | Figure 4 — τ / S / λ hyper-parameter studies |
//! | `figure5` | Figure 5 — training convergence & estimation latency |
//! | `figure6` | Figure 6 — query-optimizer impact |
//! | `ablations` | §4.2 / §4.3 / §4.6 design-choice ablations |
//! | `dmv_large` | §5.1.1 large-NDV sensitivity check |
//! | `incremental_data` | §4.5 incremental data ingestion |
//!
//! All binaries accept the `UAE_SCALE` environment variable (default `1`):
//! row counts, workload sizes and epochs scale linearly, so `UAE_SCALE=4`
//! approaches the paper's setup at the cost of wall-clock time.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::time::Instant;

use uae_core::{DpsConfig, JsonlObserver, ResMadeConfig, TrainConfig, Uae, UaeConfig};
use uae_data::Table;
use uae_estimators::{
    BayesNetEstimator, FeedbackKdeEstimator, HistogramEstimator, KdeEstimator,
    LinearRegressionEstimator, MscnConfig, MscnEstimator, SamplingEstimator, SpnConfig,
    SpnEstimator,
};
use uae_query::estimator::{evaluate, format_size, Evaluation};
use uae_query::{
    default_bounded_column, fingerprints, generate_workload, CardEstimator, LabeledQuery,
    WorkloadSpec,
};

/// Experiment scale knobs, derived from `UAE_SCALE`.
#[derive(Debug, Clone)]
pub struct BenchScale {
    /// Rows for the DMV-like dataset (others derive from it).
    pub dmv_rows: usize,
    /// Rows for the Census-like dataset.
    pub census_rows: usize,
    /// Rows for the Kddcup98-like dataset.
    pub kdd_rows: usize,
    /// Training workload size.
    pub train_queries: usize,
    /// Test workload size (each of in-workload and random).
    pub test_queries: usize,
    /// Data-only training epochs (Naru / UAE-D).
    pub data_epochs: usize,
    /// Hybrid training epochs (UAE).
    pub hybrid_epochs: usize,
    /// Query-only training epochs (UAE-Q).
    pub query_epochs: usize,
    /// Progressive samples at estimation time.
    pub estimate_samples: usize,
    /// DPS samples S during training.
    pub dps_samples: usize,
}

impl BenchScale {
    /// Read `UAE_SCALE` (a positive float; 1.0 default).
    pub fn from_env() -> Self {
        let s: f64 = std::env::var("UAE_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0);
        Self::with_factor(s)
    }

    /// Explicit scale factor.
    pub fn with_factor(s: f64) -> Self {
        let f = |base: usize| ((base as f64 * s).round() as usize).max(1);
        BenchScale {
            dmv_rows: f(20_000),
            census_rows: f(12_000),
            kdd_rows: f(8_000),
            train_queries: f(600),
            test_queries: f(160),
            data_epochs: f(10).min(40),
            hybrid_epochs: f(10).min(40),
            query_epochs: f(12).min(60),
            estimate_samples: f(100).min(1000),
            dps_samples: f(8).min(200),
        }
    }

    /// The UAE configuration used across experiments (paper: 2 x 128
    /// hidden units, τ = 1, λ = 1e-4).
    pub fn uae_config(&self, seed: u64) -> UaeConfig {
        UaeConfig {
            model: ResMadeConfig { hidden: 128, blocks: 1, seed },
            factor_threshold: usize::MAX,
            order: uae_core::ColumnOrder::Natural,
            encoding: uae_core::encoding::EncodingMode::Binary,
            train: TrainConfig {
                dps: DpsConfig { tau: 1.0, samples: self.dps_samples },
                seed,
                ..TrainConfig::default()
            },
            estimate_samples: self.estimate_samples,
            serve: uae_core::ServeConfig::default(),
        }
    }
}

/// Value of the `--metrics-out PATH` flag (`--metrics-out=PATH` is also
/// accepted): where a bench binary appends per-epoch training telemetry as
/// JSONL, one event per line (see `uae_core::telemetry`).
pub fn metrics_out_arg() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--metrics-out" {
            return args.next().map(PathBuf::from);
        }
        if let Some(p) = a.strip_prefix("--metrics-out=") {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// Print the serving-layer hardening counters for one model — how many
/// queries were shortcut by validation, retried on a fresh substream,
/// degraded to the histogram baseline, isolated after a panic, or clamped
/// back into `[0, 1]`. All-zero stats print as a single "clean" line so a
/// healthy run stays quiet.
pub fn report_serve_stats(label: &str, uae: &Uae) {
    let s = uae.serve_stats();
    let incidents = s.rejected
        + s.validated_empty
        + s.validated_trivial
        + s.retries
        + s.fallbacks
        + s.panics_isolated
        + s.clamped;
    if incidents == 0 {
        eprintln!("[serve] {label}: {} queries, no degraded paths taken", s.served);
    } else {
        eprintln!(
            "[serve] {label}: {} queries | rejected {} | shortcut {}+{} | retried {} | \
             fallback {} | panics isolated {} | clamped {}",
            s.served,
            s.rejected,
            s.validated_empty,
            s.validated_trivial,
            s.retries,
            s.fallbacks,
            s.panics_isolated,
            s.clamped
        );
    }
}

/// Attach a JSONL telemetry sink labeled `label` to `uae` when `path` is
/// set. Opens in append mode so every model trained by one binary shares a
/// single metrics file, distinguished by label.
pub fn attach_metrics(uae: &mut Uae, path: Option<&Path>, label: &str) {
    if let Some(p) = path {
        match JsonlObserver::append(p, label) {
            Ok(obs) => uae.set_observer(Box::new(obs)),
            Err(e) => eprintln!("[metrics] cannot open {}: {e}", p.display()),
        }
    }
}

/// A prepared single-table experiment: dataset + labeled workloads.
pub struct SingleTableBench {
    /// Dataset name as in the paper.
    pub dataset: String,
    /// The table.
    pub table: Table,
    /// Bounded column of in-workload queries.
    pub bounded_col: usize,
    /// Training workload (in-workload distribution).
    pub train: Vec<LabeledQuery>,
    /// In-workload test queries.
    pub test_in: Vec<LabeledQuery>,
    /// Random (out-of-workload) test queries.
    pub test_random: Vec<LabeledQuery>,
}

/// Generate a dataset and its three workloads.
pub fn prepare_single_table(dataset: &str, scale: &BenchScale, seed: u64) -> SingleTableBench {
    let table = match dataset {
        "dmv" => uae_data::dmv_like(scale.dmv_rows, seed),
        "census" => uae_data::census_like(scale.census_rows, seed),
        "kddcup98" => uae_data::kddcup_like(scale.kdd_rows, 100, seed),
        other => panic!("unknown dataset {other}"),
    };
    let col = default_bounded_column(&table);
    let train = generate_workload(
        &table,
        &WorkloadSpec::in_workload(col, scale.train_queries, seed ^ 0x11),
        &HashSet::new(),
    );
    let excl = fingerprints(&train);
    let test_in = generate_workload(
        &table,
        &WorkloadSpec::in_workload(col, scale.test_queries, seed ^ 0x22),
        &excl,
    );
    let test_random = generate_workload(
        &table,
        &WorkloadSpec::random(scale.test_queries, seed ^ 0x33),
        &HashSet::new(),
    );
    SingleTableBench {
        dataset: dataset.to_owned(),
        table,
        bounded_col: col,
        train,
        test_in,
        test_random,
    }
}

/// One result row of Tables 2–4.
pub struct TableRow {
    /// Estimator name.
    pub name: String,
    /// Size string.
    pub size: String,
    /// In-workload evaluation.
    pub in_workload: Evaluation,
    /// Random-workload evaluation.
    pub random: Evaluation,
}

/// Evaluate one estimator on both test workloads.
pub fn eval_estimator(est: &dyn CardEstimator, bench: &SingleTableBench) -> TableRow {
    let in_workload = evaluate(est, &bench.test_in);
    let random = evaluate(est, &bench.test_random);
    TableRow {
        name: est.name().to_owned(),
        size: format_size(est.size_bytes()),
        in_workload,
        random,
    }
}

/// Print the header shared by Tables 2–4.
pub fn print_table_header(dataset: &str) {
    println!("\n=== Estimation errors on {dataset} ===");
    println!(
        "{:<15} {:>8} | {:>43} | {:>43}",
        "Model", "Size", "In-workload (mean/median/95th/max)", "Random (mean/median/95th/max)"
    );
    println!("{}", "-".repeat(118));
}

/// Print one row of Tables 2–4.
pub fn print_table_row(row: &TableRow) {
    println!(
        "{:<15} {:>8} | {} | {}",
        row.name,
        row.size,
        row.in_workload.errors.row(),
        row.random.errors.row()
    );
}

/// Run the full Tables-2/3/4 protocol on a dataset: all eleven estimators,
/// both workloads. This is the body of the `table2`–`table4` binaries.
pub fn run_single_table_experiment(dataset: &str, scale: &BenchScale, seed: u64) {
    let t0 = Instant::now();
    eprintln!("[{dataset}] generating data + workloads…");
    let bench = prepare_single_table(dataset, scale, seed);
    eprintln!(
        "[{dataset}] {} rows x {} cols; {} train / {} in-test / {} random-test queries ({:.1}s)",
        bench.table.num_rows(),
        bench.table.num_cols(),
        bench.train.len(),
        bench.test_in.len(),
        bench.test_random.len(),
        t0.elapsed().as_secs_f64()
    );

    print_table_header(&bench.dataset);
    let mut rows: Vec<TableRow> = Vec::new();

    // Sampling/KDE budgets: the paper matches them to the model's memory
    // budget, which on the full-size datasets works out to 0.2% (DMV),
    // 9% (Census) and 4.6% (Kddcup98). Our datasets are row-scaled while
    // the model is constant-size, so we use the paper's ratios directly.
    let uae_cfg = scale.uae_config(seed ^ 0x777);
    let sample_ratio = match dataset {
        "dmv" => 0.002_f64.max(400.0 / bench.table.num_rows() as f64),
        "census" => 0.09,
        "kddcup98" => 0.046,
        _ => 0.02,
    }
    .min(1.0);

    // --- query-driven -----------------------------------------------------
    run_and_print(&bench, &mut rows, "LR", || {
        Box::new(LinearRegressionEstimator::new(&bench.table, &bench.train, 1e-3))
    });
    run_and_print(&bench, &mut rows, "MSCN-base", || {
        Box::new(MscnEstimator::new(
            &bench.table,
            &bench.train,
            &MscnConfig { sample_rows: 0, ..MscnConfig::default() },
        ))
    });
    run_and_print(&bench, &mut rows, "UAE-Q", || {
        let mut uae = Uae::new(&bench.table, uae_cfg.clone()).with_name("UAE-Q");
        uae.train_queries(&bench.train, scale.query_epochs);
        Box::new(uae)
    });

    // --- data-driven -------------------------------------------------------
    run_and_print(&bench, &mut rows, "Sampling", || {
        Box::new(SamplingEstimator::new(&bench.table, sample_ratio, seed ^ 1))
    });
    run_and_print(&bench, &mut rows, "BayesNet", || {
        Box::new(BayesNetEstimator::new(&bench.table, 128))
    });
    run_and_print(&bench, &mut rows, "KDE", || {
        Box::new(KdeEstimator::new(&bench.table, sample_ratio, seed ^ 2))
    });
    run_and_print(&bench, &mut rows, "DeepDB", || {
        Box::new(SpnEstimator::new(&bench.table, &SpnConfig::default()))
    });
    run_and_print(&bench, &mut rows, "Naru", || {
        let mut uae = Uae::new(&bench.table, uae_cfg.clone()).with_name("Naru");
        uae.train_data(scale.data_epochs);
        Box::new(uae)
    });

    // --- hybrid ------------------------------------------------------------
    run_and_print(&bench, &mut rows, "MSCN+sampling", || {
        // Bitmap width is capped so the feature dimension stays proportional
        // to the (scaled-down) training workload; an uncapped budget-matched
        // bitmap would dominate the 22 base features and overfit.
        let bitmap = ((bench.table.num_rows() as f64 * sample_ratio) as usize).clamp(64, 256);
        Box::new(MscnEstimator::new(
            &bench.table,
            &bench.train,
            &MscnConfig { sample_rows: bitmap, ..MscnConfig::default() },
        ))
    });
    run_and_print(&bench, &mut rows, "Feedback-KDE", || {
        Box::new(FeedbackKdeEstimator::new(
            KdeEstimator::new(&bench.table, sample_ratio, seed ^ 2),
            &bench.train,
            15,
            0.3,
        ))
    });
    run_and_print(&bench, &mut rows, "UAE", || {
        let mut uae = Uae::new(&bench.table, uae_cfg.clone());
        uae.train_hybrid(&bench.train, scale.hybrid_epochs);
        Box::new(uae)
    });

    println!(
        "\n(total {:.0}s; dataset skewness {:.2}, NCIE {:.3})",
        t0.elapsed().as_secs_f64(),
        uae_data::stats::dataset_skewness(&bench.table),
        uae_data::stats::ncie(&bench.table, 8),
    );
}

fn run_and_print<'a>(
    bench: &SingleTableBench,
    rows: &mut Vec<TableRow>,
    label: &str,
    build: impl FnOnce() -> Box<dyn CardEstimator + 'a>,
) {
    let t0 = Instant::now();
    let est = build();
    let train_secs = t0.elapsed().as_secs_f64();
    let row = eval_estimator(est.as_ref(), bench);
    eprintln!(
        "[{}] {label}: trained {train_secs:.1}s, eval {:.2}ms/query",
        bench.dataset, row.in_workload.mean_latency_ms
    );
    print_table_row(&row);
    rows.push(row);
}

/// The histogram estimator (Postgres-like), exposed for Figure 5's latency
/// comparison.
pub fn histogram_for(table: &Table) -> HistogramEstimator {
    HistogramEstimator::new(table, 64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_factor() {
        let s = BenchScale::with_factor(0.5);
        assert_eq!(s.dmv_rows, 10_000);
        assert_eq!(s.train_queries, 300);
        let big = BenchScale::with_factor(100.0);
        assert_eq!(big.data_epochs, 40, "epochs must cap");
    }

    #[test]
    fn prepare_census_bench() {
        let scale = BenchScale::with_factor(0.05);
        let b = prepare_single_table("census", &scale, 5);
        assert_eq!(b.table.num_cols(), 14);
        assert_eq!(b.train.len(), scale.train_queries);
        assert!(b.test_in.iter().all(|q| q.cardinality >= 1));
    }
}
