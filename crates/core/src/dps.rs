//! Differentiable progressive sampling — the paper's core contribution
//! (§4.3, Algorithms 1 and 2).
//!
//! Ordinary progressive sampling draws *discrete* values at every step, so
//! gradients cannot flow from the query loss back to the model weights
//! (Figure 2(2) in the paper). DPS replaces each discrete draw with a
//! **Gumbel-Softmax** sample: a deterministic, differentiable function
//! `y = softmax((log P_θ(Z_v | z_<v, z_v ∈ R_v) + g) / τ)` of the model's
//! (region-masked, renormalized) conditional distribution and *external*
//! Gumbel(0,1) noise `g`. The soft one-hot `y` is embedded back into model
//! input space through the constant encoding matrix `E_v`, so the entire
//! `n`-step sampling chain is a differentiable graph (Figure 2(3)) and the
//! query loss trains θ end-to-end.
//!
//! The density estimate itself follows Alg. 2 exactly: at each constrained
//! column the running estimate is multiplied by the in-region mass
//! `P(z_v ∈ R_v | z_<v)` *before* masking, and the `S` per-sample estimates
//! of each query are averaged. Wildcard columns are skipped (§4.6). For
//! factorized columns the low part's region depends on the sampled high
//! code; the mask is chosen by the hard argmax of the soft sample
//! (straight-through: gradients flow through the probabilities, not the
//! mask choice).

use rand::RngExt;
use uae_tensor::rng::gumbel_fill;
use uae_tensor::{NodeId, Tape, Tensor};

use crate::encoding::VirtualSchema;
use crate::model::ResMade;
use crate::vquery::{StepRegion, VirtualQuery};

/// DPS hyper-parameters (paper: τ = 1.0, S = 200).
#[derive(Debug, Clone, Copy)]
pub struct DpsConfig {
    /// Gumbel-Softmax temperature τ — the trade-off between gradient
    /// variance (low τ) and one-hot fidelity (high τ).
    pub tau: f32,
    /// Number of progressive samples S per query.
    pub samples: usize,
}

impl Default for DpsConfig {
    fn default() -> Self {
        DpsConfig { tau: 1.0, samples: 200 }
    }
}

const NEG_INF_MASK: f32 = -1.0e9;
const SEL_FLOOR: f32 = 1.0e-12;

/// Build the DPS graph for a batch of queries and return the node holding
/// the `Q x 1` estimated selectivities.
///
/// `rng` supplies the Gumbel noise; seed it deterministically to make the
/// graph a pure function of the parameters (required for gradient checks).
pub fn dps_selectivities(
    tape: &mut Tape<'_>,
    model: &ResMade,
    schema: &VirtualSchema,
    queries: &[VirtualQuery],
    cfg: &DpsConfig,
    rng: &mut impl RngExt,
) -> NodeId {
    let q = queries.len();
    assert!(q > 0, "dps over an empty query batch");
    let s = cfg.samples.max(1);
    let b = q * s;
    let nv = schema.num_virtual();

    let global_last = queries.iter().filter_map(VirtualQuery::last_constrained).max();
    let Some(global_last) = global_last else {
        // No query constrains anything: selectivity 1 for all.
        return tape.input_full(q, 1, 1.0);
    };

    // Per-column input blocks; wildcard (zero) until sampled.
    let mut blocks: Vec<NodeId> =
        (0..nv).map(|v| tape.input_zeros(b, schema.vcol_input_width(v))).collect();
    let mut p_run = tape.input_full(b, 1, 1.0);
    // Hard argmax codes of sampled columns (for conditional lo-masks).
    let mut hard_codes: Vec<Option<Vec<u32>>> = vec![None; nv];

    for v in 0..=global_last {
        let any_constrained = queries.iter().any(|vq| vq.step(v).is_constrained());
        if !any_constrained {
            continue; // wildcard for every query: skip the forward entirely
        }
        let codec = schema.codec(v);
        let domain = codec.domain();

        // Row-level masks and keep flags.
        let mut mask = Tensor::full(b, domain, 1.0);
        let mut keep = Tensor::zeros(b, 1);
        for (qi, vq) in queries.iter().enumerate() {
            match vq.step(v) {
                StepRegion::Wildcard => {}
                StepRegion::Fixed(region) => {
                    let m = region.to_mask();
                    for si in 0..s {
                        let r = qi * s + si;
                        mask.row_mut(r).copy_from_slice(&m);
                        keep.set(r, 0, 1.0);
                    }
                }
                StepRegion::LoOfSplit { hi_vcol, .. } => {
                    let his = hard_codes[*hi_vcol]
                        .as_ref()
                        .expect("hi column sampled before its lo part");
                    for si in 0..s {
                        let r = qi * s + si;
                        let region = vq.lo_region(v, his[r], domain as u32);
                        mask.row_mut(r).copy_from_slice(&region.to_mask());
                        keep.set(r, 0, 1.0);
                    }
                }
                StepRegion::Weighted(w) => {
                    // Fanout scaling during training: the "mask" carries the
                    // importance weights; masses and Gumbel logits follow.
                    let wf: Vec<f32> = w.iter().map(|&x| x as f32).collect();
                    for si in 0..s {
                        let r = qi * s + si;
                        mask.row_mut(r).copy_from_slice(&wf);
                        keep.set(r, 0, 1.0);
                    }
                }
            }
        }
        let wild = keep.map(|k| 1.0 - k);

        // Forward pass for this column.
        let x = tape.concat_cols(&blocks);
        let hidden = model.hidden_tape(tape, x);
        let logits = model.logits_col_tape(tape, hidden, v);
        let log_probs = tape.log_softmax(logits);
        let probs = tape.exp(log_probs);

        // Alg. 2 line 6: p̂ *= P(z_v ∈ R_v | z_<v)  (wildcard rows: *1).
        let mask_node = tape.input_ref(&mask);
        let masked_probs = tape.mul(probs, mask_node);
        let p_in = tape.row_sum(masked_probs);
        let keep_node = tape.input_ref(&keep);
        let wild_node = tape.input(wild);
        let p_kept = tape.mul(p_in, keep_node);
        let p_eff = tape.add(p_kept, wild_node);
        let p_eff = tape.clamp_min(p_eff, SEL_FLOOR);
        p_run = tape.mul(p_run, p_eff);

        if v < global_last {
            // Alg. 2 lines 7–9: mask out-of-region mass, renormalize, and
            // draw a differentiable sample via Gumbel-Softmax (Alg. 1).
            // ln(w): 0 inside a 0/1 region, -inf outside, and the log
            // importance weight for fanout-scaled columns.
            let log_mask_node = tape.input_with(b, domain, |t| {
                for (o, &m) in t.data_mut().iter_mut().zip(mask.data()) {
                    *o = if m > 0.0 { m.ln() } else { NEG_INF_MASK };
                }
            });
            let masked_logits = tape.add(log_probs, log_mask_node);
            let g = tape.input_with(b, domain, |t| gumbel_fill(rng, t));
            let noisy = tape.add(masked_logits, g);
            let scaled = tape.mul_scalar(noisy, 1.0 / cfg.tau);
            let y = tape.softmax(scaled);

            // Straight-through hard codes for conditional lo-masks.
            hard_codes[v] = Some(tape.value(y).row_argmax().iter().map(|&i| i as u32).collect());

            // Embed the soft sample into input space; zero for wildcards.
            let block = model.soft_block(tape, v, y);
            let keep_node2 = tape.input_ref(&keep);
            blocks[v] = tape.mul_col_broadcast(block, keep_node2);
        }
    }

    // Alg. 2 line 13: average the S per-sample estimates of each query.
    let sel = tape.mean_row_groups(p_run, s);
    tape.clamp_min(sel, SEL_FLOOR)
}

/// The paper's query loss (Eq. 5 with Q-error, Eq. 6, as Discrepancy):
/// `mean_q max(Sel(q)/Ŝel(q), Ŝel(q)/Sel(q))`.
pub fn qerror_loss(tape: &mut Tape<'_>, sel_hat: NodeId, truth: &[f64]) -> NodeId {
    let q = truth.len();
    assert_eq!(tape.value(sel_hat).shape(), (q, 1), "selectivity shape mismatch");
    let t = Tensor::from_vec(q, 1, truth.iter().map(|&v| (v.max(1e-12)) as f32).collect());
    let t1 = tape.input_ref(&t);
    let t2 = tape.input_ref(&t);
    let r1 = tape.div(sel_hat, t1);
    let r2 = tape.div(t2, sel_hat);
    let qerr = tape.maximum(r1, r2);
    tape.mean_all(qerr)
}

/// Convenience wrapper: run DPS once (no gradients used) and return the
/// estimated selectivities. Used by tests to compare against exhaustive
/// enumeration and by ablation benches.
pub fn dps_forward_only(
    model: &ResMade,
    store: &uae_tensor::ParamStore,
    schema: &VirtualSchema,
    queries: &[VirtualQuery],
    cfg: &DpsConfig,
    rng: &mut impl RngExt,
) -> Vec<f64> {
    let mut tape = Tape::new(store);
    let sel = dps_selectivities(&mut tape, model, schema, queries, cfg, rng);
    tape.value(sel).data().iter().map(|&v| v as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::exhaustive_selectivity;
    use crate::model::ResMadeConfig;
    use uae_data::{Table, Value};
    use uae_query::{Predicate, Query};
    use uae_tensor::check::gradient_check;
    use uae_tensor::rng::seeded_rng;
    use uae_tensor::{GradStore, ParamStore};

    fn setup(domains: &[usize]) -> (Table, VirtualSchema, ParamStore, ResMade) {
        let rows = 24;
        let cols = domains
            .iter()
            .enumerate()
            .map(|(j, &d)| {
                let vals: Vec<Value> =
                    (0..rows).map(|r| Value::Int(((r + j) % d) as i64)).collect();
                (format!("c{j}"), vals)
            })
            .collect();
        let t = Table::from_columns("t", cols);
        let schema = VirtualSchema::build(&t, usize::MAX);
        let mut store = ParamStore::new();
        let model =
            ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 16, blocks: 1, seed: 21 });
        (t, schema, store, model)
    }

    #[test]
    fn dps_estimate_tracks_exhaustive_at_low_temperature() {
        let (t, schema, store, model) = setup(&[5, 4, 3]);
        // Constrain a *prefix* of the column order. Progressive sampling is
        // exactly unbiased only then: an interior wildcard is skipped with a
        // zero input (paper §4.6), which equals true marginalization only
        // for models trained with wildcard dropout — not for this random
        // untrained one, where the gap induces a deterministic bias far
        // above Monte-Carlo noise.
        let q = Query::new(vec![Predicate::le(0, 2i64), Predicate::ge(1, 1i64)]);
        let vq = VirtualQuery::build(&t, &schema, &q);
        let exact = exhaustive_selectivity(&model.snapshot(&store), &schema, &vq);
        let cfg = DpsConfig { tau: 0.2, samples: 2000 };
        let mut rng = seeded_rng(6);
        let est = dps_forward_only(&model, &store, &schema, &[vq], &cfg, &mut rng)[0];
        assert!((est - exact).abs() < 0.08 * exact.max(0.05), "dps {est} vs exhaustive {exact}");
    }

    #[test]
    fn gradients_flow_from_query_loss_to_all_parameters() {
        let (t, schema, store, model) = setup(&[4, 3, 3]);
        let q1 = Query::new(vec![Predicate::le(0, 1i64), Predicate::eq(2, 1i64)]);
        let q2 = Query::new(vec![Predicate::ge(1, 1i64)]);
        let vqs =
            vec![VirtualQuery::build(&t, &schema, &q1), VirtualQuery::build(&t, &schema, &q2)];
        let cfg = DpsConfig { tau: 1.0, samples: 8 };
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let mut rng = seeded_rng(8);
        let sel = dps_selectivities(&mut tape, &model, &schema, &vqs, &cfg, &mut rng);
        let loss = qerror_loss(&mut tape, sel, &[0.3, 0.5]);
        tape.backward(loss, &mut grads);
        // This is the paper's whole point (Fig. 2(3)): every weight,
        // including w_in (used only *after* sampled variables), gets signal.
        let mut any_zero = false;
        for id in store.ids() {
            let norm: f32 = grads.get(id).data().iter().map(|g| g.abs()).sum();
            if norm == 0.0 {
                any_zero = true;
                eprintln!("parameter {} has zero gradient", store.name(id));
            }
        }
        assert!(!any_zero, "all parameters must receive query-loss gradients");
    }

    #[test]
    fn dps_gradients_match_finite_differences() {
        // Tiny model so the finite-difference sweep stays fast.
        let rows = 12;
        let cols = vec![
            ("a".to_owned(), (0..rows).map(|r| Value::Int((r % 3) as i64)).collect()),
            ("b".to_owned(), (0..rows).map(|r| Value::Int((r % 2) as i64)).collect()),
        ];
        let t = Table::from_columns("t", cols);
        let schema = VirtualSchema::build(&t, usize::MAX);
        let mut store = ParamStore::new();
        let model =
            ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 4, blocks: 1, seed: 2 });
        let q = Query::new(vec![Predicate::le(0, 1i64), Predicate::eq(1, 1i64)]);
        let vq = VirtualQuery::build(&t, &schema, &q);
        let cfg = DpsConfig { tau: 1.0, samples: 3 };
        let res = gradient_check(&mut store, 2e-3, |tape| {
            // Identical Gumbel noise on every rebuild → pure function of θ.
            // The noise seed is chosen so no straight-through argmax or
            // q-error `max` branch sits close enough to a decision boundary
            // to flip under the finite-difference perturbation (a flip makes
            // the numeric gradient meaningless there).
            let mut rng = seeded_rng(10);
            let model = model.clone();
            let sel = dps_selectivities(tape, &model, &schema, &[vq.clone()], &cfg, &mut rng);
            qerror_loss(tape, sel, &[0.25])
        });
        assert!(
            res.max_rel_err < 5e-2,
            "DPS analytic vs numeric gradients: rel err {}",
            res.max_rel_err
        );
    }

    #[test]
    fn unconstrained_batch_returns_ones() {
        let (t, schema, store, model) = setup(&[3, 3]);
        let vq = VirtualQuery::build(&t, &schema, &Query::default());
        let cfg = DpsConfig { tau: 1.0, samples: 4 };
        let mut rng = seeded_rng(1);
        let est = dps_forward_only(&model, &store, &schema, &[vq], &cfg, &mut rng);
        assert_eq!(est, vec![1.0]);
    }

    #[test]
    fn factorized_dps_runs_and_stays_in_unit_interval() {
        let rows = 60;
        let cols = vec![
            ("w".to_owned(), (0..rows).map(|r| Value::Int((r as i64 * 3) % 60)).collect()),
            ("s".to_owned(), (0..rows).map(|r| Value::Int((r % 4) as i64)).collect()),
        ];
        let t = Table::from_columns("t", cols);
        let schema = VirtualSchema::build(&t, 16);
        let mut store = ParamStore::new();
        let model =
            ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 8, blocks: 1, seed: 3 });
        let q = Query::new(vec![Predicate::ge(0, 9i64), Predicate::le(0, 33i64)]);
        let vq = VirtualQuery::build(&t, &schema, &q);
        let cfg = DpsConfig { tau: 0.5, samples: 64 };
        let mut rng = seeded_rng(2);
        let est = dps_forward_only(&model, &store, &schema, &[vq.clone()], &cfg, &mut rng)[0];
        assert!((0.0..=1.0).contains(&est), "estimate {est} out of range");
        // Compare against exhaustive within loose Monte-Carlo tolerance.
        let exact = exhaustive_selectivity(&model.snapshot(&store), &schema, &vq);
        assert!((est - exact).abs() < 0.15, "dps {est} vs exhaustive {exact}");
    }
}
