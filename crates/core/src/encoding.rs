//! Tuple encoding (paper §4.2) and column factorization (§4.6).
//!
//! Values are dictionary codes (see `uae-data`); each column's code is
//! binary-encoded into `ceil(log2 |A_i|)` bits plus one **presence bit**
//! that distinguishes a real value from a *wildcard* (unqueried column,
//! §4.6 "wildcard skipping"). The presence-bit scheme keeps the encoding a
//! loss-free bijection while letting both training (wildcard dropout) and
//! inference (skipping unqueried columns) feed "absent" without colliding
//! with the encoding of code 0.
//!
//! Columns whose domain exceeds a threshold are **factorized** into a
//! high-bits and a low-bits subcolumn (§4.6, as in NeuroCard), shrinking the
//! output layer from `|A_i|` logits to `2^hi + 2^lo`.

use uae_data::Table;
use uae_query::Region;
use uae_tensor::Tensor;

/// Number of bits needed to binary-encode codes `0..domain`.
pub fn bits_for(domain: usize) -> usize {
    debug_assert!(domain >= 1);
    usize::BITS as usize - (domain.max(2) - 1).leading_zeros() as usize
}

/// Encoder for one virtual column.
#[derive(Debug, Clone)]
pub struct ColumnCodec {
    domain: usize,
    bits: usize,
}

impl ColumnCodec {
    /// Codec over `0..domain`.
    pub fn new(domain: usize) -> Self {
        ColumnCodec { domain, bits: bits_for(domain) }
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Width of the encoded input block: presence bit + binary bits.
    pub fn width(&self) -> usize {
        self.bits + 1
    }

    /// Encode a code into `out` (length [`ColumnCodec::width`]).
    pub fn encode_into(&self, code: u32, out: &mut [f32]) {
        debug_assert!((code as usize) < self.domain, "code out of domain");
        debug_assert_eq!(out.len(), self.width());
        out[0] = 1.0; // presence
        for b in 0..self.bits {
            out[b + 1] = ((code >> b) & 1) as f32;
        }
    }

    /// Encode a wildcard (absent value): all zeros.
    pub fn wildcard_into(&self, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.width());
        out.fill(0.0);
    }

    /// The constant `domain x width` matrix `E` with `E[v] = encode(v)`,
    /// used to embed a *soft* one-hot sample: `soft_input = y @ E`
    /// (differentiable progressive sampling, §4.3).
    pub fn soft_matrix(&self) -> Tensor {
        let mut e = Tensor::zeros(self.domain, self.width());
        for v in 0..self.domain {
            let row = e.row_mut(v);
            row[0] = 1.0;
            for b in 0..self.bits {
                row[b + 1] = ((v >> b) & 1) as f32;
            }
        }
        e
    }
}

/// How tuple values are presented to the network (§4.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncodingMode {
    /// `ceil(log2 |A|)` binary bits plus a presence bit (paper default).
    #[default]
    Binary,
    /// A learnable `|A| x dim` embedding per column — the paper's first
    /// option for columns with very large NDVs.
    Embedding {
        /// Embedding width per column.
        dim: usize,
    },
}

/// How one original column maps onto virtual (model) columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColEntry {
    /// Modeled directly as virtual column `vcol`.
    Single { vcol: usize },
    /// Factorized: `code = hi_code << lo_bits | lo_code`, with the high
    /// part at virtual column `hi` and the low part at `lo`.
    Split { hi: usize, lo: usize, lo_bits: usize },
}

/// The mapping from a table's columns to the autoregressive model's virtual
/// columns, plus per-virtual-column codecs.
#[derive(Debug, Clone)]
pub struct VirtualSchema {
    entries: Vec<ColEntry>,
    codecs: Vec<ColumnCodec>,
    mode: EncodingMode,
    /// Input block offset of each virtual column.
    input_offsets: Vec<usize>,
    /// Logit slice offset of each virtual column.
    logit_offsets: Vec<usize>,
    input_width: usize,
    logit_width: usize,
}

impl VirtualSchema {
    /// Build a schema for `table`, factorizing columns whose domain exceeds
    /// `factor_threshold` (use `usize::MAX` to disable factorization).
    pub fn build(table: &Table, factor_threshold: usize) -> Self {
        Self::build_with_mode(table, factor_threshold, EncodingMode::Binary)
    }

    /// Build a schema with an explicit input [`EncodingMode`].
    pub fn build_with_mode(table: &Table, factor_threshold: usize, mode: EncodingMode) -> Self {
        let mut entries = Vec::with_capacity(table.num_cols());
        let mut domains: Vec<usize> = Vec::new();
        for col in table.columns() {
            let d = col.domain_size().max(1);
            if d > factor_threshold {
                let total_bits = bits_for(d);
                let lo_bits = total_bits / 2;
                let hi_domain = ((d - 1) >> lo_bits) + 1;
                let hi = domains.len();
                domains.push(hi_domain);
                let lo = domains.len();
                domains.push(1 << lo_bits);
                entries.push(ColEntry::Split { hi, lo, lo_bits });
            } else {
                let v = domains.len();
                domains.push(d);
                entries.push(ColEntry::Single { vcol: v });
            }
        }
        Self::from_domains(entries, domains, mode)
    }

    fn from_domains(entries: Vec<ColEntry>, domains: Vec<usize>, mode: EncodingMode) -> Self {
        let codecs: Vec<ColumnCodec> = domains.iter().map(|&d| ColumnCodec::new(d)).collect();
        let mut input_offsets = Vec::with_capacity(codecs.len());
        let mut logit_offsets = Vec::with_capacity(codecs.len());
        let (mut iw, mut lw) = (0usize, 0usize);
        for c in &codecs {
            input_offsets.push(iw);
            logit_offsets.push(lw);
            iw += match mode {
                EncodingMode::Binary => c.width(),
                EncodingMode::Embedding { dim } => dim,
            };
            lw += c.domain();
        }
        VirtualSchema {
            entries,
            codecs,
            mode,
            input_offsets,
            logit_offsets,
            input_width: iw,
            logit_width: lw,
        }
    }

    /// The input encoding mode.
    pub fn mode(&self) -> EncodingMode {
        self.mode
    }

    /// Encoded input width of one virtual column.
    pub fn vcol_input_width(&self, v: usize) -> usize {
        match self.mode {
            EncodingMode::Binary => self.codecs[v].width(),
            EncodingMode::Embedding { dim } => dim,
        }
    }

    /// Per-original-column mapping.
    pub fn entries(&self) -> &[ColEntry] {
        &self.entries
    }

    /// Number of virtual columns.
    pub fn num_virtual(&self) -> usize {
        self.codecs.len()
    }

    /// Codec of virtual column `v`.
    pub fn codec(&self, v: usize) -> &ColumnCodec {
        &self.codecs[v]
    }

    /// Total encoded input width (model input dimension).
    pub fn input_width(&self) -> usize {
        self.input_width
    }

    /// Total logit width (model output dimension).
    pub fn logit_width(&self) -> usize {
        self.logit_width
    }

    /// Input block range of virtual column `v`.
    pub fn input_slice(&self, v: usize) -> (usize, usize) {
        let s = self.input_offsets[v];
        (s, s + self.vcol_input_width(v))
    }

    /// Logit slice range of virtual column `v`.
    pub fn logit_slice(&self, v: usize) -> (usize, usize) {
        let s = self.logit_offsets[v];
        (s, s + self.codecs[v].domain())
    }

    /// Degree (1-based autoregressive position) of each *input bit* and the
    /// degree of each *logit*, used to build MADE masks.
    pub fn degrees(&self) -> (Vec<usize>, Vec<usize>) {
        let mut input_deg = Vec::with_capacity(self.input_width);
        let mut logit_deg = Vec::with_capacity(self.logit_width);
        for (v, c) in self.codecs.iter().enumerate() {
            input_deg.extend(std::iter::repeat_n(v + 1, self.vcol_input_width(v)));
            logit_deg.extend(std::iter::repeat_n(v + 1, c.domain()));
        }
        (input_deg, logit_deg)
    }

    /// Map an original row of table codes to virtual codes.
    pub fn to_virtual_codes(&self, table_codes: &[u32]) -> Vec<u32> {
        let mut out = vec![0u32; self.num_virtual()];
        for (orig, entry) in self.entries.iter().enumerate() {
            let code = table_codes[orig];
            match *entry {
                ColEntry::Single { vcol } => out[vcol] = code,
                ColEntry::Split { hi, lo, lo_bits } => {
                    out[hi] = code >> lo_bits;
                    out[lo] = code & ((1u32 << lo_bits) - 1);
                }
            }
        }
        out
    }

    /// Precompute the virtual-code matrix of a whole table (column-major:
    /// `result[v][row]`).
    pub fn virtual_codes(&self, table: &Table) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> =
            (0..self.num_virtual()).map(|_| vec![0u32; table.num_rows()]).collect();
        for (orig, entry) in self.entries.iter().enumerate() {
            let codes = table.column(orig).codes();
            match *entry {
                ColEntry::Single { vcol } => out[vcol].copy_from_slice(codes),
                ColEntry::Split { hi, lo, lo_bits } => {
                    let mask = (1u32 << lo_bits) - 1;
                    for (r, &c) in codes.iter().enumerate() {
                        out[hi][r] = c >> lo_bits;
                        out[lo][r] = c & mask;
                    }
                }
            }
        }
        out
    }

    /// Encode a batch of virtual-code rows into a model-input tensor
    /// (binary mode only — embedding lookups are parameters and live on the
    /// tape; see `ResMade::input_node`).
    /// `wildcard[r][v] = true` encodes column `v` of row `r` as absent.
    pub fn encode_batch(&self, rows: &[Vec<u32>], wildcard: Option<&[Vec<bool>]>) -> Tensor {
        assert_eq!(self.mode, EncodingMode::Binary, "encode_batch is for binary encodings");
        let mut t = Tensor::zeros(rows.len(), self.input_width);
        for (r, row_codes) in rows.iter().enumerate() {
            debug_assert_eq!(row_codes.len(), self.num_virtual());
            let out = t.row_mut(r);
            for (v, codec) in self.codecs.iter().enumerate() {
                let (s, e) = (self.input_offsets[v], self.input_offsets[v] + codec.width());
                let is_wild = wildcard.is_some_and(|w| w[r][v]);
                if is_wild {
                    codec.wildcard_into(&mut out[s..e]);
                } else {
                    codec.encode_into(row_codes[v], &mut out[s..e]);
                }
            }
        }
        t
    }

    /// The region of the **high** subcolumn induced by a region on the
    /// original column: high codes that admit at least one feasible low code.
    pub fn hi_region(region: &Region, lo_bits: usize, hi_domain: u32) -> Region {
        let mut codes = Vec::new();
        for &(lo, hi) in region.ranges() {
            let h0 = lo >> lo_bits;
            let h1 = (hi - 1) >> lo_bits;
            codes.extend(h0..=h1);
        }
        Region::from_codes(hi_domain, codes)
    }

    /// The conditional region of the **low** subcolumn given a sampled high
    /// code: `{ l : (h << lo_bits | l) ∈ region }`.
    pub fn lo_region_given_hi(region: &Region, lo_bits: usize, h: u32, lo_domain: u32) -> Region {
        let base = h << lo_bits;
        let mut codes = Vec::new();
        for &(lo, hi) in region.ranges() {
            let start = lo.max(base);
            let end = hi.min(base + (1 << lo_bits));
            if start < end {
                codes.extend((start - base)..(end - base));
            }
        }
        Region::from_codes(lo_domain, codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::{Table, Value};

    fn table(domains: &[usize]) -> Table {
        // Build tables where column j cycles through its domain.
        let rows = 64;
        let cols = domains
            .iter()
            .enumerate()
            .map(|(j, &d)| {
                let vals: Vec<Value> =
                    (0..rows).map(|r| Value::Int(((r + j) % d) as i64)).collect();
                (format!("c{j}"), vals)
            })
            .collect();
        Table::from_columns("t", cols)
    }

    #[test]
    fn bits_for_domains() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(2101), 12);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let codec = ColumnCodec::new(37);
        for code in [0u32, 1, 17, 36] {
            let mut buf = vec![0.0; codec.width()];
            codec.encode_into(code, &mut buf);
            assert_eq!(buf[0], 1.0, "presence bit");
            let decoded: u32 = (0..codec.width() - 1).map(|b| (buf[b + 1] as u32) << b).sum();
            assert_eq!(decoded, code);
        }
    }

    #[test]
    fn wildcard_is_distinct_from_zero_code() {
        let codec = ColumnCodec::new(8);
        let mut zero = vec![0.0; codec.width()];
        codec.encode_into(0, &mut zero);
        let mut wild = vec![0.0; codec.width()];
        codec.wildcard_into(&mut wild);
        assert_ne!(zero, wild, "wildcard must not collide with code 0");
    }

    #[test]
    fn soft_matrix_rows_match_encoding() {
        let codec = ColumnCodec::new(6);
        let e = codec.soft_matrix();
        for v in 0..6u32 {
            let mut buf = vec![0.0; codec.width()];
            codec.encode_into(v, &mut buf);
            assert_eq!(e.row(v as usize), &buf[..]);
        }
    }

    #[test]
    fn unfactorized_schema_shapes() {
        let t = table(&[5, 2, 11]);
        let s = VirtualSchema::build(&t, usize::MAX);
        assert_eq!(s.num_virtual(), 3);
        assert_eq!(s.logit_width(), 5 + 2 + 11);
        // widths: (3+1) + (1+1) + (4+1)
        assert_eq!(s.input_width(), 4 + 2 + 5);
        assert_eq!(s.logit_slice(1), (5, 7));
    }

    #[test]
    fn factorized_schema_round_trips_codes() {
        let t = table(&[50, 3]);
        let s = VirtualSchema::build(&t, 16);
        assert_eq!(s.num_virtual(), 3, "50 splits into hi+lo, 3 stays single");
        match s.entries()[0] {
            ColEntry::Split { hi, lo, lo_bits } => {
                assert_eq!(lo_bits, 3); // 6 bits total → 3 lo bits
                for code in [0u32, 7, 8, 49] {
                    let v = s.to_virtual_codes(&[code, 0]);
                    assert_eq!((v[hi] << lo_bits) | v[lo], code);
                }
            }
            _ => panic!("wide column must be split"),
        }
    }

    #[test]
    fn virtual_codes_match_per_row_mapping() {
        let t = table(&[50, 3, 7]);
        let s = VirtualSchema::build(&t, 16);
        let vc = s.virtual_codes(&t);
        for r in 0..t.num_rows() {
            let row = s.to_virtual_codes(&t.row_codes(r));
            for v in 0..s.num_virtual() {
                assert_eq!(vc[v][r], row[v]);
            }
        }
    }

    #[test]
    fn hi_lo_region_translation_is_exact() {
        // Original domain 50, lo_bits 3 (base 8). Region [5, 21).
        let region = Region::range(50, 5, 21);
        let hi = VirtualSchema::hi_region(&region, 3, 7);
        assert_eq!(hi.iter_codes().collect::<Vec<_>>(), vec![0, 1, 2]);
        // h=0 → lo in [5,8); h=1 → all; h=2 → lo in [0,5)
        let lo0 = VirtualSchema::lo_region_given_hi(&region, 3, 0, 8);
        assert_eq!(lo0.iter_codes().collect::<Vec<_>>(), vec![5, 6, 7]);
        let lo1 = VirtualSchema::lo_region_given_hi(&region, 3, 1, 8);
        assert_eq!(lo1.count(), 8);
        let lo2 = VirtualSchema::lo_region_given_hi(&region, 3, 2, 8);
        assert_eq!(lo2.iter_codes().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        // Exactness: every original code is admitted iff (hi, lo) pair is.
        for code in 0..50u32 {
            let (h, l) = (code >> 3, code & 7);
            let admitted =
                hi.contains(h) && VirtualSchema::lo_region_given_hi(&region, 3, h, 8).contains(l);
            assert_eq!(admitted, region.contains(code), "code {code}");
        }
    }

    #[test]
    fn degrees_follow_virtual_order() {
        let t = table(&[5, 2]);
        let s = VirtualSchema::build(&t, usize::MAX);
        let (ind, outd) = s.degrees();
        assert_eq!(ind, vec![1, 1, 1, 1, 2, 2]);
        assert_eq!(outd, vec![1, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn encode_batch_with_wildcards() {
        let t = table(&[5, 2]);
        let s = VirtualSchema::build(&t, usize::MAX);
        let rows = vec![vec![3u32, 1], vec![0, 0]];
        let wild = vec![vec![false, true], vec![false, false]];
        let enc = s.encode_batch(&rows, Some(&wild));
        assert_eq!(enc.shape(), (2, s.input_width()));
        // Row 0 col 1 is wildcard: its block is zero.
        let (b, e) = s.input_slice(1);
        assert!(enc.row(0)[b..e].iter().all(|&x| x == 0.0));
        // Row 1 col 0 encodes code 0 with presence bit set.
        let (b0, _) = s.input_slice(0);
        assert_eq!(enc.row(1)[b0], 1.0);
    }
}
