//! The public UAE estimator: construction, the three training modes
//! (UAE-D ≡ Naru, UAE-Q, hybrid UAE), incremental ingestion (§4.5), and
//! progressive-sampling estimation.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use uae_data::Table;
use uae_estimators::HistogramEstimator;
use uae_query::{CardEstimator, EstimatorFamily, LabeledQuery, Query, QueryCost};
use uae_tensor::{
    Adam, AdamState, GradStore, Optimizer, ParamStore, QuantMode, Tape, TapeWorkspace,
};

use crate::encoding::VirtualSchema;
use crate::infer::{progressive_sample_with, InferScratch};
use crate::infer_batch::{progressive_sample_batch_with, BatchScratch};
use crate::model::{RawModel, ResMade, ResMadeConfig};
use crate::serialize::{CheckpointError, CheckpointState, LoadError};
use crate::serve::{
    healthy, retry_seed, Estimate, EstimateError, EstimateSource, ServeConfig, Validation,
};
use crate::telemetry::{
    EpochMetrics, ServeEvent, ServeObserver, ServeStats, TrainEvent, TrainObserver, TrainStats,
};
use crate::train::{data_loss, query_loss, TrainConfig, TrainQuery};
use crate::vquery::VirtualQuery;

/// Full configuration of a UAE estimator.
#[derive(Debug, Clone)]
pub struct UaeConfig {
    /// Network architecture.
    pub model: ResMadeConfig,
    /// Factorize columns with more distinct values than this (§4.6;
    /// `usize::MAX` disables factorization — the single-table default).
    pub factor_threshold: usize,
    /// Autoregressive column ordering (§4.2; the paper uses the natural
    /// left-to-right order).
    pub order: crate::ordering::ColumnOrder,
    /// Input encoding: binary bits (paper default) or learnable embeddings
    /// for very large NDVs (§4.6).
    pub encoding: crate::encoding::EncodingMode,
    /// Training hyper-parameters (λ, τ, S, …).
    pub train: TrainConfig,
    /// Progressive samples used at estimation time (paper: 200–1000).
    pub estimate_samples: usize,
    /// Serving-robustness configuration: validation, the retry → baseline
    /// fallback cascade, and deterministic fault injection.
    pub serve: ServeConfig,
}

impl Default for UaeConfig {
    fn default() -> Self {
        UaeConfig {
            model: ResMadeConfig::default(),
            factor_threshold: usize::MAX,
            order: crate::ordering::ColumnOrder::Natural,
            encoding: crate::encoding::EncodingMode::Binary,
            train: TrainConfig::default(),
            estimate_samples: 200,
            serve: ServeConfig::default(),
        }
    }
}

struct EstCache {
    raw: Option<RawModel>,
    rng: StdRng,
    /// Reusable buffers for the sequential and batched samplers. Training
    /// invalidates `raw` but keeps these warm — their shapes depend only on
    /// the schema and sample count, not on the weights.
    scratch: InferScratch,
    batch: BatchScratch,
    serve: ServeState,
}

/// Serving-side runtime state: degradation counters, the serving-index
/// cursor fault plans key on, the lazily built always-available baseline,
/// and the observer sink. Lives inside the `est` mutex because every
/// estimate entry point takes `&self`.
#[derive(Default)]
struct ServeState {
    stats: ServeStats,
    /// The histogram baseline, built on first fallback and invalidated by
    /// data ingestion.
    fallback: Option<HistogramEstimator>,
    observer: Option<Box<dyn ServeObserver>>,
}

impl ServeState {
    fn emit(&mut self, event: ServeEvent) {
        if let Some(obs) = self.observer.as_mut() {
            obs.on_serve_event(&event);
        }
    }
}

/// The last state proven healthy (finite losses throughout an epoch) —
/// the rollback target when training diverges.
struct GoodState {
    store: ParamStore,
    adam: AdamState,
}

/// Tracks consecutive poisoned steps and holds the rollback snapshot.
#[derive(Default)]
struct DivergenceGuard {
    bad_streak: u32,
    snapshot: Option<GoodState>,
}

/// Outcome of one optimizer step.
enum StepOutcome {
    /// No batch contributed a loss (e.g. training an empty table).
    Empty,
    /// Non-finite loss or gradient: the update was not applied.
    Skipped { loss: f32 },
    /// The update was applied.
    Applied {
        loss: f32,
        data_loss: Option<f32>,
        query_loss: Option<f32>,
        grad_norm: f32,
        clipped: bool,
    },
}

/// Scale factor bringing a gradient of norm `norm` inside the clip bound,
/// or `None` when no clipping applies. Non-finite norms never clip: the
/// `norm > clip` comparison is `false` for NaN, which previously let NaN
/// gradients through *unscaled* — they are instead rejected wholesale by
/// the divergence guard before this is consulted.
fn clip_scale(norm: f32, clip: f32) -> Option<f32> {
    (clip > 0.0 && norm.is_finite() && norm > clip).then(|| clip / norm)
}

/// Shuffled full-pass cycling over training-query indices. Algorithm 3
/// consumes query *minibatches*; drawing them uniformly with replacement
/// (the previous behavior) silently starves a fraction of the workload
/// every epoch. A reshuffled cursor visits every query exactly once per
/// pass while staying seeded-deterministic.
struct QueryCycler {
    order: Vec<usize>,
    cursor: usize,
}

impl QueryCycler {
    fn new(n: usize, rng: &mut StdRng) -> Self {
        let mut order: Vec<usize> = (0..n).collect();
        shuffle(&mut order, rng);
        QueryCycler { order, cursor: 0 }
    }

    /// The next `k` indices, reshuffling whenever a pass is exhausted.
    fn next_batch(&mut self, k: usize, rng: &mut StdRng) -> Vec<usize> {
        (0..k)
            .map(|_| {
                if self.cursor == self.order.len() {
                    shuffle(&mut self.order, rng);
                    self.cursor = 0;
                }
                let i = self.order[self.cursor];
                self.cursor += 1;
                i
            })
            .collect()
    }
}

/// The unified deep autoregressive estimator.
///
/// * `train_data` alone reproduces **Naru / UAE-D**;
/// * `train_queries` alone is **UAE-Q** (the first supervised deep
///   *generative* cardinality estimator);
/// * `train_hybrid` is the full **UAE** of Algorithm 3.
pub struct Uae {
    name: String,
    /// The (possibly column-permuted) training table.
    table: Table,
    /// `col_remap[original column] = position in `table``.
    col_remap: Vec<usize>,
    schema: VirtualSchema,
    model: ResMade,
    store: ParamStore,
    /// Virtual codes of the training rows (row-major).
    rows: Vec<Vec<u32>>,
    cfg: UaeConfig,
    opt: Adam,
    rng: StdRng,
    est: Mutex<EstCache>,
    stats: TrainStats,
    guard: DivergenceGuard,
    /// Train-loop observer. Only touched through `&mut self`, but kept
    /// behind a mutex so `Uae` stays `Sync`: the concurrent serving
    /// front-end shares one estimator across executor threads via `Arc`.
    observer: Mutex<Option<Box<dyn TrainObserver>>>,
}

impl Uae {
    /// Build an untrained estimator over a table.
    pub fn new(table: &Table, cfg: UaeConfig) -> Self {
        let perm = crate::ordering::compute_order(table, cfg.order);
        let mut col_remap = vec![0usize; table.num_cols()];
        for (pos, &orig) in perm.iter().enumerate() {
            col_remap[orig] = pos;
        }
        let table = table.select_columns(&perm);
        let schema = VirtualSchema::build_with_mode(&table, cfg.factor_threshold, cfg.encoding);
        let mut store = ParamStore::new();
        let model = ResMade::new(&mut store, &schema, &cfg.model);
        let rows =
            (0..table.num_rows()).map(|r| schema.to_virtual_codes(&table.row_codes(r))).collect();
        let seed = cfg.train.seed;
        Uae {
            name: "UAE".to_owned(),
            table,
            col_remap,
            schema,
            model,
            store,
            rows,
            opt: Adam::new(cfg.train.lr),
            rng: StdRng::seed_from_u64(seed),
            cfg,
            est: Mutex::new(EstCache {
                raw: None,
                rng: StdRng::seed_from_u64(seed ^ 0xe57),
                scratch: InferScratch::new(),
                batch: BatchScratch::new(),
                serve: ServeState::default(),
            }),
            stats: TrainStats::default(),
            guard: DivergenceGuard::default(),
            observer: Mutex::new(None),
        }
    }

    /// Rename (for result tables: "Naru", "UAE-Q", …).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The virtual schema (for inspection and tests).
    pub fn schema(&self) -> &VirtualSchema {
        &self.schema
    }

    /// The training table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    /// Mutable training configuration (λ, τ, S, …) — hyper-parameter
    /// studies adjust these between training phases (Figure 4).
    pub fn train_config_mut(&mut self) -> &mut TrainConfig {
        &mut self.cfg.train
    }

    /// Override the number of progressive samples used at estimation time.
    pub fn set_estimate_samples(&mut self, samples: usize) {
        self.cfg.estimate_samples = samples.max(1);
    }

    /// The configured per-query progressive-sample budget. The serving
    /// front-end's degradation ladder shrinks *from* this value (via
    /// [`Uae::try_estimate_cards_with`]).
    pub fn estimate_samples(&self) -> usize {
        self.cfg.estimate_samples
    }

    /// Change the optimizer learning rate (e.g. a smaller rate for
    /// incremental refinement than for initial training).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.cfg.train.lr = lr;
        self.opt.set_lr(lr);
    }

    /// Translate labeled queries into training queries.
    pub fn prepare_queries(&self, workload: &[LabeledQuery]) -> Vec<TrainQuery> {
        workload
            .iter()
            .map(|lq| TrainQuery { vquery: self.translate(&lq.query), selectivity: lq.selectivity })
            .collect()
    }

    /// Unsupervised training on data only (UAE-D / Naru). Returns the mean
    /// data loss of each epoch.
    pub fn train_data(&mut self, epochs: usize) -> Vec<f32> {
        (0..epochs).map(|_| self.epoch(true, None)).collect()
    }

    /// Supervised training on queries only (UAE-Q). Returns the mean query
    /// loss of each epoch.
    pub fn train_queries(&mut self, workload: &[LabeledQuery], epochs: usize) -> Vec<f32> {
        let tqs = self.prepare_queries(workload);
        (0..epochs).map(|_| self.epoch(false, Some(&tqs))).collect()
    }

    /// Hybrid training (Algorithm 3): each step minimizes
    /// `L = L_data + λ·L_query` (Eq. 11). Returns per-epoch mean loss.
    pub fn train_hybrid(&mut self, workload: &[LabeledQuery], epochs: usize) -> Vec<f32> {
        let tqs = self.prepare_queries(workload);
        (0..epochs).map(|_| self.epoch(true, Some(&tqs))).collect()
    }

    /// Query-only training from pre-translated queries (used by the join
    /// estimator, whose queries carry fanout-scaling weights that a plain
    /// [`Query`] cannot express).
    pub fn train_queries_prepared(&mut self, queries: &[TrainQuery], epochs: usize) -> Vec<f32> {
        (0..epochs).map(|_| self.epoch(false, Some(queries))).collect()
    }

    /// Hybrid training from pre-translated queries.
    pub fn train_hybrid_prepared(&mut self, queries: &[TrainQuery], epochs: usize) -> Vec<f32> {
        (0..epochs).map(|_| self.epoch(true, Some(queries))).collect()
    }

    /// Translate a query (in *original* column indices) against this
    /// estimator's — possibly column-reordered — table and schema.
    pub fn translate(&self, query: &Query) -> VirtualQuery {
        let remapped = self.remap_query(query);
        VirtualQuery::build(&self.table, &self.schema, &remapped)
    }

    fn remap_query(&self, query: &Query) -> Query {
        if self.col_remap.iter().enumerate().all(|(i, &p)| i == p) {
            return query.clone();
        }
        Query::new(
            query
                .predicates
                .iter()
                .map(|p| {
                    let mut p = p.clone();
                    p.column = self.col_remap[p.column];
                    p
                })
                .collect(),
        )
    }

    /// Build the inference snapshot on demand and align both scratches'
    /// numeric mode with the serving config. Mask packing and int8
    /// quantization happen here — once per weight version, never per query.
    fn ensure_snapshot(&self, est: &mut EstCache) {
        let mode = self.cfg.serve.quant;
        if est.raw.is_none() {
            est.raw = Some(self.model.snapshot_with(&self.store, mode));
        }
        est.scratch.set_quant_mode(mode);
        est.batch.set_quant_mode(mode);
    }

    /// Estimate the selectivity of a pre-translated query (supports
    /// [`crate::vquery::StepRegion::Weighted`] fanout scaling).
    ///
    /// Each query runs on a private RNG seeded from the estimator's stream,
    /// so a sequence of `estimate_vquery` calls and one
    /// [`Uae::estimate_vquery_batch`] call over the same queries consume
    /// the stream identically and return bit-identical estimates.
    pub fn estimate_vquery(&self, vq: &VirtualQuery) -> f64 {
        let mut est = self.est.lock();
        self.ensure_snapshot(&mut est);
        let EstCache { raw, rng, scratch, serve, .. } = &mut *est;
        let raw = raw.as_ref().expect("snapshot just created");
        let qseed = rng.next_u64();
        let mut qrng = StdRng::seed_from_u64(qseed);
        let sel = progressive_sample_with(
            raw,
            &self.schema,
            vq,
            self.cfg.estimate_samples,
            &mut qrng,
            scratch,
        );
        if sel.is_finite() {
            return sel.max(0.0);
        }
        // Non-finite weights/logits: one retry on a derived substream with
        // a boosted budget, then degrade to 0. Fanout-weighted vqueries
        // have no histogram analogue, and join estimates may legitimately
        // exceed selectivity 1, so neither the baseline tier nor the upper
        // clamp of the query cascade applies here.
        serve.stats.retries += 1;
        let samples = self.cfg.estimate_samples.max(1) * self.cfg.serve.retry_boost.max(1);
        let mut qrng = StdRng::seed_from_u64(retry_seed(qseed));
        let sel = progressive_sample_with(raw, &self.schema, vq, samples, &mut qrng, scratch);
        if sel.is_finite() {
            sel.max(0.0)
        } else {
            serve.stats.fallbacks += 1;
            0.0
        }
    }

    /// Estimate the selectivities of a batch of pre-translated queries via
    /// the cross-query batched sampler ([`crate::infer_batch`]): queries
    /// advance in lock-step column rounds sharing stacked forwards, the
    /// first-step distribution is memoized per weight snapshot, and sample
    /// rows with identical sampled prefixes share one forward row.
    pub fn estimate_vquery_batch(&self, vqs: &[VirtualQuery]) -> Vec<f64> {
        let mut est = self.est.lock();
        self.ensure_snapshot(&mut est);
        let EstCache { raw, rng, scratch, batch, serve } = &mut *est;
        let raw = raw.as_ref().expect("snapshot just created");
        let seeds: Vec<u64> = vqs.iter().map(|_| rng.next_u64()).collect();
        let samples = self.cfg.estimate_samples;
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            progressive_sample_batch_with(raw, &self.schema, vqs, samples, &seeds, batch)
        }));
        let sels = match attempt {
            Ok(sels) => sels,
            Err(_) => {
                // Isolate the poisoned query: re-run each query as its own
                // single-query batch on its original seed. Per-query batch
                // results do not depend on batch composition, so healthy
                // queries stay bit-identical to the undisturbed batch.
                serve.stats.panics_isolated += 1;
                serve.emit(ServeEvent::PanicIsolated { index: None });
                vqs.iter()
                    .zip(&seeds)
                    .map(|(vq, &seed)| {
                        catch_unwind(AssertUnwindSafe(|| {
                            progressive_sample_batch_with(
                                raw,
                                &self.schema,
                                std::slice::from_ref(vq),
                                samples,
                                &[seed],
                                batch,
                            )
                        }))
                        .ok()
                        .and_then(|v| v.into_iter().next())
                        .unwrap_or(f64::NAN)
                    })
                    .collect()
            }
        };
        sels.into_iter()
            .zip(vqs.iter().zip(&seeds))
            .map(|(sel, (vq, &qseed))| {
                if sel.is_finite() {
                    return sel.max(0.0);
                }
                // Same light cascade as `estimate_vquery`: derived-seed
                // boosted retry, then 0.
                serve.stats.retries += 1;
                let boosted = samples.max(1) * self.cfg.serve.retry_boost.max(1);
                let mut qrng = StdRng::seed_from_u64(retry_seed(qseed));
                let sel =
                    progressive_sample_with(raw, &self.schema, vq, boosted, &mut qrng, scratch);
                if sel.is_finite() {
                    sel.max(0.0)
                } else {
                    serve.stats.fallbacks += 1;
                    0.0
                }
            })
            .collect()
    }

    /// Estimated selectivities of a batch of queries through the hardened
    /// cascade (the batched counterpart of [`Uae::estimate_selectivity`];
    /// identical estimates under a matched RNG state, computed with far
    /// fewer forward passes). Rejected queries degrade to `0`; use
    /// [`Uae::try_estimate_cards`] for typed errors and provenance.
    pub fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        self.try_estimate_cards(queries)
            .into_iter()
            .map(|r| r.map_or(0.0, |e| e.selectivity))
            .collect()
    }

    /// Bounds-check a query's columns, remap it into this estimator's
    /// column order, and classify it. With validation disabled every
    /// in-bounds query is classified `Sample`, as the pre-hardening code
    /// behaved.
    fn validate(&self, query: &Query) -> Result<(Query, Validation), EstimateError> {
        crate::serve::check_columns(&self.table, query)?;
        let remapped = self.remap_query(query);
        if !self.cfg.serve.validate {
            return Ok((remapped, Validation::Sample));
        }
        let verdict = crate::serve::classify(&self.table, &remapped);
        Ok((remapped, verdict))
    }

    /// Clamp a final selectivity into `[0, 1]` (a non-finite value, which
    /// can only come from the baseline tier misbehaving, becomes `0`) and
    /// package the estimate.
    fn finish(
        &self,
        idx: u64,
        sel: f64,
        source: EstimateSource,
        retried: bool,
        serve: &mut ServeState,
    ) -> Estimate {
        let (clamped_sel, clamped) = if sel.is_finite() {
            (sel.clamp(0.0, 1.0), !(0.0..=1.0).contains(&sel))
        } else {
            (0.0, true)
        };
        if clamped {
            serve.stats.clamped += 1;
            serve.emit(ServeEvent::Clamped { index: idx, raw: sel });
        }
        Estimate {
            selectivity: clamped_sel,
            card: clamped_sel * self.table.num_rows() as f64,
            source,
            retried,
            clamped,
        }
    }

    /// Drive one sampled query through the health-check → retry → baseline
    /// cascade. `first` is the first attempt's selectivity (`None` when the
    /// attempt panicked); the retry re-samples sequentially on a derived
    /// seed with a boosted budget, and the baseline is the lazily built
    /// histogram over the training table. `samples` is the per-query
    /// budget the attempt ran under; when it is a degradation-shrunken
    /// budget (`degraded`), the retry boosts the shrunken budget and a
    /// model answer is tagged [`EstimateSource::ModelDegraded`].
    #[allow(clippy::too_many_arguments)]
    fn resolve_sampled(
        &self,
        idx: u64,
        qseed: u64,
        vq: &VirtualQuery,
        remapped: &Query,
        first: Option<f64>,
        samples: usize,
        degraded: bool,
        raw: &RawModel,
        scratch: &mut InferScratch,
        serve: &mut ServeState,
    ) -> Estimate {
        let sc = &self.cfg.serve;
        if degraded {
            serve.stats.degraded += 1;
            serve.emit(ServeEvent::Degraded {
                index: idx,
                samples,
                configured: self.cfg.estimate_samples,
            });
        }
        // A NaN fault models logits going non-finite mid-walk; a panicked
        // attempt arrives as `None` and enters the cascade the same way.
        let mut sel = match first {
            Some(_) if sc.fault.nan_hits(idx, 0) => f64::NAN,
            Some(v) => v,
            None => f64::NAN,
        };
        let mut retried = false;
        if !healthy(sel) && sc.retry {
            serve.stats.retries += 1;
            serve.emit(ServeEvent::Retry { index: idx, value: sel });
            retried = true;
            let samples = samples.max(1) * sc.retry_boost.max(1);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if sc.fault.panics(idx) {
                    panic!("uae-serve: fault-plan panic (query {idx})");
                }
                let mut qrng = StdRng::seed_from_u64(retry_seed(qseed));
                progressive_sample_with(raw, &self.schema, vq, samples, &mut qrng, scratch)
            }));
            sel = match outcome {
                Ok(_) if sc.fault.nan_hits(idx, 1) => f64::NAN,
                Ok(v) => v,
                Err(_) => {
                    serve.stats.panics_isolated += 1;
                    serve.emit(ServeEvent::PanicIsolated { index: Some(idx) });
                    f64::NAN
                }
            };
        }
        if !healthy(sel) {
            serve.stats.fallbacks += 1;
            serve.emit(ServeEvent::Fallback { index: idx, value: sel });
            let baseline = {
                let hist = serve.fallback.get_or_insert_with(|| {
                    HistogramEstimator::new(&self.table, sc.fallback_buckets)
                });
                hist.estimate_selectivity(remapped)
            };
            return self.finish(idx, baseline, EstimateSource::Baseline, retried, serve);
        }
        let source = if degraded { EstimateSource::ModelDegraded } else { EstimateSource::Model };
        self.finish(idx, sel, source, retried, serve)
    }

    /// Estimate one query through the hardened serving cascade. Unknown
    /// columns are the only error; every `Ok` estimate is finite with a
    /// cardinality in `[0, N]` and carries its degradation provenance.
    ///
    /// Healthy queries consume the estimator's RNG stream exactly as
    /// [`Uae::estimate_selectivity`] always has (one `u64` per query —
    /// drawn even for rejected and shortcut queries), so a sequence of
    /// calls stays bit-identical to one [`Uae::try_estimate_cards`] call
    /// over the same queries.
    pub fn try_estimate_card(&self, query: &Query) -> Result<Estimate, EstimateError> {
        self.try_estimate_card_with(query, None)
    }

    /// [`Uae::try_estimate_card`] with an optional per-call progressive-
    /// sample budget override. A budget **below** the configured
    /// `estimate_samples` marks the estimate as SLO-degraded
    /// ([`EstimateSource::ModelDegraded`], counted in
    /// [`ServeStats::degraded`]) — the serving front-end shrinks the budget
    /// under load to keep draining its queue. The estimator-level RNG
    /// stream still advances one `u64` per query regardless of the budget,
    /// so degraded and undegraded call sequences stay stream-compatible.
    pub fn try_estimate_card_with(
        &self,
        query: &Query,
        samples_override: Option<usize>,
    ) -> Result<Estimate, EstimateError> {
        let checked = self.validate(query);
        let mut est = self.est.lock();
        self.ensure_snapshot(&mut est);
        let EstCache { raw, rng, scratch, serve, .. } = &mut *est;
        let raw = raw.as_ref().expect("snapshot just created");
        let qseed = rng.next_u64();
        let idx = serve.stats.served;
        serve.stats.served += 1;
        match checked {
            Err(e) => {
                serve.stats.rejected += 1;
                serve.emit(ServeEvent::QueryRejected { index: idx, error: e.to_string() });
                Err(e)
            }
            Ok((_, Validation::Empty)) => {
                serve.stats.validated_empty += 1;
                serve.emit(ServeEvent::ValidationShortcut { index: idx, empty: true });
                Ok(self.finish(idx, 0.0, EstimateSource::Validation, false, serve))
            }
            Ok((_, Validation::Trivial)) => {
                serve.stats.validated_trivial += 1;
                serve.emit(ServeEvent::ValidationShortcut { index: idx, empty: false });
                Ok(self.finish(idx, 1.0, EstimateSource::Validation, false, serve))
            }
            Ok((remapped, Validation::Sample)) => {
                let vq = VirtualQuery::build(&self.table, &self.schema, &remapped);
                let samples = samples_override.unwrap_or(self.cfg.estimate_samples).max(1);
                let degraded = samples < self.cfg.estimate_samples;
                let sc = &self.cfg.serve;
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    if sc.fault.panics(idx) {
                        panic!("uae-serve: fault-plan panic (query {idx})");
                    }
                    let mut qrng = StdRng::seed_from_u64(qseed);
                    progressive_sample_with(raw, &self.schema, &vq, samples, &mut qrng, scratch)
                }));
                let first = match attempt {
                    Ok(v) => Some(v),
                    Err(_) => {
                        serve.stats.panics_isolated += 1;
                        serve.emit(ServeEvent::PanicIsolated { index: Some(idx) });
                        None
                    }
                };
                Ok(self.resolve_sampled(
                    idx, qseed, &vq, &remapped, first, samples, degraded, raw, scratch, serve,
                ))
            }
        }
    }

    /// Batched counterpart of [`Uae::try_estimate_card`], sharing the
    /// cross-query batched sampler for healthy queries.
    ///
    /// A panic anywhere in the batch attempt is isolated by re-running
    /// every sampled query as its own single-query batch on its original
    /// seed: the batched sampler's per-query results do not depend on
    /// which other queries share the batch (matmul rows, softmax rows and
    /// prefix-dedup shares are all row-local), so healthy queries return
    /// results bit-identical to the undisturbed batch while the poisoned
    /// query panics again in isolation and degrades through the cascade.
    pub fn try_estimate_cards(&self, queries: &[Query]) -> Vec<Result<Estimate, EstimateError>> {
        self.try_estimate_cards_with(queries, None)
    }

    /// [`Uae::try_estimate_cards`] with an optional per-call progressive-
    /// sample budget override — the batched counterpart of
    /// [`Uae::try_estimate_card_with`], and the entry point the concurrent
    /// serving front-end drives: each micro-batch picks its budget from
    /// the degradation ladder at flush time and the whole batch runs under
    /// it. Seed-stream parity with the undegraded paths is preserved (one
    /// `u64` per query, budget-independent).
    pub fn try_estimate_cards_with(
        &self,
        queries: &[Query],
        samples_override: Option<usize>,
    ) -> Vec<Result<Estimate, EstimateError>> {
        let checked: Vec<Result<(Query, Validation), EstimateError>> =
            queries.iter().map(|q| self.validate(q)).collect();
        let mut est = self.est.lock();
        self.ensure_snapshot(&mut est);
        let EstCache { raw, rng, scratch, batch, serve } = &mut *est;
        let raw = raw.as_ref().expect("snapshot just created");
        // One seed per query, shortcut or not — stream parity with the
        // sequential path.
        let seeds: Vec<u64> = queries.iter().map(|_| rng.next_u64()).collect();
        let base = serve.stats.served;
        serve.stats.served += queries.len() as u64;
        // The batched sampler only sees queries that actually need
        // sampling.
        let sampled: Vec<usize> = checked
            .iter()
            .enumerate()
            .filter_map(|(i, c)| matches!(c, Ok((_, Validation::Sample))).then_some(i))
            .collect();
        let vqs: Vec<VirtualQuery> = sampled
            .iter()
            .map(|&i| {
                let Ok((remapped, _)) = &checked[i] else { unreachable!() };
                VirtualQuery::build(&self.table, &self.schema, remapped)
            })
            .collect();
        let sub_seeds: Vec<u64> = sampled.iter().map(|&i| seeds[i]).collect();
        let samples = samples_override.unwrap_or(self.cfg.estimate_samples).max(1);
        let degraded = samples < self.cfg.estimate_samples;
        let sc = &self.cfg.serve;
        let poisoned = sampled.iter().any(|&i| sc.fault.panics(base + i as u64));
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            if poisoned {
                panic!("uae-serve: fault-plan batch panic");
            }
            progressive_sample_batch_with(raw, &self.schema, &vqs, samples, &sub_seeds, batch)
        }));
        let firsts: Vec<Option<f64>> = match attempt {
            Ok(sels) => sels.into_iter().map(Some).collect(),
            Err(_) => {
                serve.stats.panics_isolated += 1;
                serve.emit(ServeEvent::PanicIsolated { index: None });
                sampled
                    .iter()
                    .enumerate()
                    .map(|(k, &i)| {
                        let idx = base + i as u64;
                        let one = catch_unwind(AssertUnwindSafe(|| {
                            if sc.fault.panics(idx) {
                                panic!("uae-serve: fault-plan panic (query {idx})");
                            }
                            progressive_sample_batch_with(
                                raw,
                                &self.schema,
                                std::slice::from_ref(&vqs[k]),
                                samples,
                                std::slice::from_ref(&seeds[i]),
                                batch,
                            )
                        }));
                        match one {
                            Ok(v) => v.into_iter().next(),
                            Err(_) => {
                                serve.stats.panics_isolated += 1;
                                serve.emit(ServeEvent::PanicIsolated { index: Some(idx) });
                                None
                            }
                        }
                    })
                    .collect()
            }
        };
        let mut firsts = firsts.into_iter();
        let mut k = 0usize;
        checked
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                let idx = base + i as u64;
                match c {
                    Err(e) => {
                        serve.stats.rejected += 1;
                        serve.emit(ServeEvent::QueryRejected { index: idx, error: e.to_string() });
                        Err(e)
                    }
                    Ok((_, Validation::Empty)) => {
                        serve.stats.validated_empty += 1;
                        serve.emit(ServeEvent::ValidationShortcut { index: idx, empty: true });
                        Ok(self.finish(idx, 0.0, EstimateSource::Validation, false, serve))
                    }
                    Ok((_, Validation::Trivial)) => {
                        serve.stats.validated_trivial += 1;
                        serve.emit(ServeEvent::ValidationShortcut { index: idx, empty: false });
                        Ok(self.finish(idx, 1.0, EstimateSource::Validation, false, serve))
                    }
                    Ok((remapped, Validation::Sample)) => {
                        let first = firsts.next().expect("one attempt per sampled query");
                        let vq = &vqs[k];
                        k += 1;
                        Ok(self.resolve_sampled(
                            idx, seeds[i], vq, &remapped, first, samples, degraded, raw, scratch,
                            serve,
                        ))
                    }
                }
            })
            .collect()
    }

    /// Snapshot of the cumulative serving counters (validation shortcuts,
    /// retries, fallbacks, isolated panics, clamps).
    pub fn serve_stats(&self) -> ServeStats {
        self.est.lock().serve.stats.clone()
    }

    /// Serving configuration (read-only view).
    pub fn serve_config(&self) -> &ServeConfig {
        &self.cfg.serve
    }

    /// Mutable serving configuration — cascade knobs and the fault plan.
    pub fn serve_config_mut(&mut self) -> &mut ServeConfig {
        &mut self.cfg.serve
    }

    /// Switch the inference forward pass between f32 and int8. Invalidates
    /// the cached snapshot so the next estimate rebuilds it with (or
    /// without) the quantized weight panels; training and checkpoints are
    /// unaffected — quantization exists only inside the snapshot.
    pub fn set_quant_mode(&mut self, mode: QuantMode) {
        if self.cfg.serve.quant != mode {
            self.cfg.serve.quant = mode;
            self.est.lock().raw = None;
        }
    }

    /// The configured numeric mode of the inference forward pass.
    pub fn quant_mode(&self) -> QuantMode {
        self.cfg.serve.quant
    }

    /// Drop the cached inference snapshot so the next estimate rebuilds it.
    /// Required after [`uae_tensor::simd::set_backend`]: snapshot weight
    /// *layout* depends on the backend selected at snapshot time.
    pub fn invalidate_snapshot(&self) {
        self.est.lock().raw = None;
    }

    /// Attach (or replace) an observer receiving [`ServeEvent`]s from the
    /// estimate paths. Takes `&self` because serving does.
    pub fn set_serve_observer(&self, observer: Box<dyn ServeObserver>) {
        self.est.lock().serve.observer = Some(observer);
    }

    /// Detach the serve observer, returning it (dropping a
    /// [`crate::telemetry::JsonlObserver`] flushes its sink).
    pub fn take_serve_observer(&self) -> Option<Box<dyn ServeObserver>> {
        self.est.lock().serve.observer.take()
    }

    /// Deterministic fault injection for the online-loop drills: poison
    /// every parameter scalar with NaN and invalidate the inference
    /// snapshot — the shape of a diverged training epoch (the online
    /// analogue of [`crate::train::TrainConfig::inject_nan_steps`]).
    ///
    /// Note the serving cascade does **not** fall back on this fault:
    /// the softmax kernels sanitize non-finite logits to a uniform
    /// distribution, so a diverged model keeps answering with finite
    /// (garbage) estimates. Detecting divergence is the job of
    /// [`Uae::weights_finite`], which the online shadow gate checks
    /// before any promotion.
    pub fn inject_weight_nan(&mut self) {
        let ids: Vec<_> = self.store.ids().collect();
        for id in ids {
            self.store.get_mut(id).data_mut().fill(f32::NAN);
        }
        self.est.lock().raw = None;
    }

    /// Whether every parameter scalar is finite. A `false` here is the
    /// definitive signature of a diverged training epoch: the serving
    /// cascade's uniform-softmax sanitization keeps such a model
    /// *answering*, so q-error margins alone cannot be relied on to
    /// catch it. The online shadow gate rejects any candidate that
    /// fails this check.
    pub fn weights_finite(&self) -> bool {
        self.store.ids().all(|id| self.store.get(id).data().iter().all(|w| w.is_finite()))
    }

    /// Ingest new rows (incremental data, §4.5): append and refine with the
    /// unsupervised loss only.
    pub fn ingest_data(&mut self, new_rows: &Table, epochs: usize) -> Vec<f32> {
        // New rows arrive in *original* column order; apply this model's
        // column permutation before appending.
        let perm: Vec<usize> = {
            let mut inv = vec![0usize; self.col_remap.len()];
            for (orig, &pos) in self.col_remap.iter().enumerate() {
                inv[pos] = orig;
            }
            inv
        };
        let new_rows = new_rows.select_columns(&perm);
        self.table.append(&new_rows);
        for r in 0..new_rows.num_rows() {
            self.rows.push(self.schema.to_virtual_codes(&new_rows.row_codes(r)));
        }
        // The appended rows invalidate the histogram baseline.
        self.est.lock().serve.fallback = None;
        self.train_data(epochs)
    }

    /// Ingest a new query workload (incremental queries, §4.5): refine with
    /// the supervised loss only. The paper finds 10–20 epochs suffice
    /// without catastrophic forgetting.
    pub fn ingest_workload(&mut self, workload: &[LabeledQuery], epochs: usize) -> Vec<f32> {
        self.train_queries(workload, epochs)
    }

    /// One epoch over the data (and/or workload). Returns the mean loss of
    /// the *executed* steps (skipped and empty steps contribute neither
    /// loss nor weight — counting them would deflate the reported loss).
    fn epoch(&mut self, use_data: bool, queries: Option<&[TrainQuery]>) -> f32 {
        let t0 = Instant::now();
        let tc = self.cfg.train.clone();
        let epoch_idx = self.stats.epochs;
        let steps = if use_data {
            self.rows.len().div_ceil(tc.batch_size).max(1)
        } else {
            queries.map_or(1, |q| q.len().div_ceil(tc.query_batch).max(1))
        };
        // The rollback target: on the first epoch of a run the entry state
        // is the last trusted one; it is then refreshed after every clean
        // epoch.
        if self.guard.snapshot.is_none() {
            self.guard.snapshot =
                Some(GoodState { store: self.store.clone(), adam: self.opt.state() });
        }
        // Shuffled row order for data batches.
        let mut order: Vec<usize> = (0..self.rows.len()).collect();
        if use_data {
            shuffle(&mut order, &mut self.rng);
        }
        // Shuffled full pass over the training queries (Alg. 3 minibatch
        // semantics — every query participates each epoch).
        let mut cycler = match queries {
            Some(tqs) if !tqs.is_empty() => Some(QueryCycler::new(tqs.len(), &mut self.rng)),
            _ => None,
        };
        let (mut total, mut data_total, mut query_total, mut norm_total) =
            (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let (mut executed, mut data_steps, mut query_steps) = (0u64, 0u64, 0u64);
        let (mut skipped, mut clipped, mut rollbacks) = (0u64, 0u64, 0u64);
        // One tape workspace serves every step of the epoch: node buffers
        // are reset (not freed) between steps, so after the first step the
        // graph build allocates no tensors for recurring batch shapes.
        let mut ws = TapeWorkspace::new();
        for step in 0..steps {
            let data_batch: Option<Vec<Vec<u32>>> = if use_data && !self.rows.is_empty() {
                let lo = (step * tc.batch_size) % self.rows.len();
                let hi = (lo + tc.batch_size).min(self.rows.len());
                Some(order[lo..hi].iter().map(|&r| self.rows[r].clone()).collect())
            } else {
                None
            };
            let query_batch: Option<Vec<TrainQuery>> = match (&mut cycler, queries) {
                (Some(c), Some(tqs)) => {
                    let k = tc.query_batch.min(tqs.len());
                    Some(
                        c.next_batch(k, &mut self.rng)
                            .into_iter()
                            .map(|i| tqs[i].clone())
                            .collect(),
                    )
                }
                _ => None,
            };
            let global_step = self.stats.steps;
            match self.step(data_batch.as_deref(), query_batch.as_deref(), &tc, &mut ws) {
                StepOutcome::Empty => {}
                StepOutcome::Skipped { loss } => {
                    skipped += 1;
                    self.stats.skipped_steps += 1;
                    self.guard.bad_streak += 1;
                    self.emit(TrainEvent::StepSkipped {
                        epoch: epoch_idx,
                        step: global_step,
                        loss,
                    });
                    if tc.max_bad_steps > 0 && self.guard.bad_streak >= tc.max_bad_steps {
                        self.rollback(tc.lr_backoff);
                        rollbacks += 1;
                        self.emit(TrainEvent::Rollback {
                            epoch: epoch_idx,
                            step: global_step,
                            lr: self.cfg.train.lr,
                        });
                    }
                }
                StepOutcome::Applied { loss, data_loss, query_loss, grad_norm, clipped: clip } => {
                    executed += 1;
                    self.stats.executed_steps += 1;
                    self.guard.bad_streak = 0;
                    total += loss as f64;
                    if let Some(dl) = data_loss {
                        data_total += dl as f64;
                        data_steps += 1;
                    }
                    if let Some(ql) = query_loss {
                        query_total += ql as f64;
                        query_steps += 1;
                    }
                    norm_total += grad_norm as f64;
                    if clip {
                        clipped += 1;
                        self.stats.clipped_steps += 1;
                    }
                }
            }
        }
        self.est.lock().raw = None; // invalidate inference snapshot
        self.stats.epochs += 1;
        let mean = if executed > 0 { (total / executed as f64) as f32 } else { 0.0 };
        self.emit(TrainEvent::Epoch(EpochMetrics {
            epoch: epoch_idx,
            steps: steps as u64,
            executed_steps: executed,
            skipped_steps: skipped,
            clipped_steps: clipped,
            rollbacks,
            loss: mean,
            data_loss: (data_steps > 0).then(|| (data_total / data_steps as f64) as f32),
            query_loss: (query_steps > 0).then(|| (query_total / query_steps as f64) as f32),
            grad_norm: if executed > 0 { (norm_total / executed as f64) as f32 } else { 0.0 },
            lr: self.cfg.train.lr,
            wall_s: t0.elapsed().as_secs_f64(),
        }));
        // A clean epoch becomes the new rollback target.
        if executed > 0 && skipped == 0 && mean.is_finite() {
            self.guard.snapshot =
                Some(GoodState { store: self.store.clone(), adam: self.opt.state() });
        }
        mean
    }

    /// One SGD step; either loss may be absent. Non-finite losses or
    /// gradients never reach the weights: the update is skipped and the
    /// divergence guard notified via the return value.
    fn step(
        &mut self,
        data_batch: Option<&[Vec<u32>]>,
        query_batch: Option<&[TrainQuery]>,
        tc: &TrainConfig,
        ws: &mut TapeWorkspace,
    ) -> StepOutcome {
        let global_step = self.stats.steps;
        self.stats.steps += 1;
        let mut grads = GradStore::zeros_like(&self.store);
        let loss_value;
        let mut data_value = None;
        let mut query_value = None;
        {
            let mut tape = Tape::with_workspace(&self.store, ws);
            let mut loss = None;
            if let Some(rows) = data_batch {
                if !rows.is_empty() {
                    let ld = data_loss(
                        &mut tape,
                        &self.model,
                        &self.schema,
                        rows,
                        tc.wildcard_prob,
                        &mut self.rng,
                    );
                    data_value = Some(tape.value(ld).scalar_value());
                    loss = Some(ld);
                }
            }
            if let Some(batch) = query_batch {
                if !batch.is_empty() {
                    let ql = query_loss(
                        &mut tape,
                        &self.model,
                        &self.schema,
                        batch,
                        &tc.dps,
                        tc.qerror_cap,
                        &mut self.rng,
                    );
                    query_value = Some(tape.value(ql).scalar_value());
                    loss = Some(match loss {
                        // Hybrid: L_data + λ L_query (Eq. 11).
                        Some(ld) => {
                            let scaled = tape.mul_scalar(ql, tc.lambda);
                            tape.add(ld, scaled)
                        }
                        // Query-only training (UAE-Q) uses the raw query loss.
                        None => ql,
                    });
                }
            }
            let Some(loss) = loss else { return StepOutcome::Empty };
            loss_value = tape.value(loss).scalar_value();
            tape.backward(loss, &mut grads);
        }
        let loss_value =
            if tc.inject_nan_steps.contains(&global_step) { f32::NAN } else { loss_value };
        let norm = grads.l2_norm();
        if !loss_value.is_finite() || !norm.is_finite() {
            return StepOutcome::Skipped { loss: loss_value };
        }
        let clipped = match clip_scale(norm, tc.grad_clip) {
            Some(scale) => {
                grads.scale(scale);
                true
            }
            None => false,
        };
        self.opt.step(&mut self.store, &grads);
        StepOutcome::Applied {
            loss: loss_value,
            data_loss: data_value,
            query_loss: query_value,
            grad_norm: norm,
            clipped,
        }
    }

    /// Restore the last known-good weights and optimizer state, then back
    /// the learning rate off — the escape hatch when successive steps keep
    /// producing non-finite losses.
    fn rollback(&mut self, backoff: f32) {
        if let Some(snap) = &self.guard.snapshot {
            self.store = snap.store.clone();
            self.opt.restore(snap.adam.clone());
        }
        let lr = self.cfg.train.lr * backoff;
        self.cfg.train.lr = lr;
        self.opt.set_lr(lr);
        self.guard.bad_streak = 0;
        self.stats.rollbacks += 1;
    }

    /// Forward an event to the attached observer, if any.
    fn emit(&mut self, event: TrainEvent) {
        if let Some(obs) = self.observer.get_mut().as_mut() {
            obs.on_event(&event);
        }
    }

    /// Serialize the trained weights (format: `UAEW`, see
    /// [`crate::serialize`]).
    pub fn save_weights(&self) -> Vec<u8> {
        crate::serialize::save_params(&self.store)
    }

    /// Load weights produced by [`Uae::save_weights`] from an estimator
    /// with the identical architecture.
    pub fn load_weights(&mut self, bytes: &[u8]) -> Result<(), LoadError> {
        crate::serialize::load_params(&mut self.store, bytes)?;
        // The loaded weights are the new trusted state; stale rollback
        // snapshots must not resurrect the previous ones.
        self.guard = DivergenceGuard::default();
        self.est.lock().raw = None;
        Ok(())
    }

    /// Serialize the **full trainer state** (format `UAEC`, see
    /// [`crate::serialize`]): weights, Adam moments and step count, both
    /// RNG streams, the current learning rate, and the epoch/step cursor.
    /// Restoring into a freshly constructed estimator (same table, same
    /// [`UaeConfig`]) and continuing training is bit-identical to never
    /// having stopped — weights persisted alone ([`Uae::save_weights`])
    /// cannot give that guarantee, because the optimizer re-warms its
    /// moments from zero and the RNG streams restart.
    pub fn save_checkpoint(&self) -> Vec<u8> {
        let adam = self.opt.state();
        let mut bytes = crate::serialize::save_checkpoint(&CheckpointState {
            weights: crate::serialize::save_params(&self.store),
            adam_t: adam.t,
            adam_m: adam.m,
            adam_v: adam.v,
            lr: self.opt.lr(),
            rng: self.rng.state(),
            est_rng: self.est.lock().rng.state(),
            stats: self.stats.clone(),
        });
        // Deterministic fault injection: XOR one byte of the serialized
        // blob so reload exercises the typed corruption errors end to end.
        if let Some((offset, mask)) = self.cfg.serve.fault.corrupt_checkpoint {
            if mask != 0 && !bytes.is_empty() {
                let off = offset % bytes.len();
                bytes[off] ^= mask;
            }
        }
        bytes
    }

    /// Restore a checkpoint produced by [`Uae::save_checkpoint`] into an
    /// estimator constructed with the identical table and configuration.
    /// Every section is validated (magic, version, weight names/shapes,
    /// Adam moment shapes) before any state is touched.
    pub fn load_checkpoint(&mut self, bytes: &[u8]) -> Result<(), LoadError> {
        let ck = crate::serialize::load_checkpoint(bytes)?;
        // Validate the moments against the architecture up front — the
        // weight load below validates the weights the same way.
        if !ck.adam_m.is_empty() {
            if ck.adam_m.len() != self.store.len() {
                return Err(LoadError::ShapeMismatch(format!(
                    "checkpoint has {} Adam moments, model has {} parameters",
                    ck.adam_m.len(),
                    self.store.len()
                )));
            }
            for (id, m) in self.store.ids().zip(&ck.adam_m) {
                if m.shape() != self.store.get(id).shape() {
                    return Err(LoadError::ShapeMismatch(format!(
                        "Adam moment for `{}`: checkpoint {:?}, model {:?}",
                        self.store.name(id),
                        m.shape(),
                        self.store.get(id).shape()
                    )));
                }
            }
        }
        crate::serialize::load_params(&mut self.store, &ck.weights)?;
        self.opt.restore(AdamState { t: ck.adam_t, m: ck.adam_m, v: ck.adam_v });
        self.opt.set_lr(ck.lr);
        self.cfg.train.lr = ck.lr;
        self.rng = StdRng::from_state(ck.rng);
        self.stats = ck.stats;
        self.guard = DivergenceGuard::default();
        let mut est = self.est.lock();
        est.raw = None;
        est.rng = StdRng::from_state(ck.est_rng);
        Ok(())
    }

    /// Atomically persist a checkpoint to `path`: write + fsync a sibling
    /// temp file, rename, fsync the parent directory. A crash mid-write
    /// leaves the previous checkpoint intact, never a truncated file.
    pub fn write_checkpoint_file(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), crate::persist::PersistError> {
        self.write_checkpoint_file_with(path, None)
    }

    /// [`Uae::write_checkpoint_file`] with deterministic disk-fault
    /// injection — claims one write index from `faults`.
    pub fn write_checkpoint_file_with(
        &self,
        path: impl AsRef<std::path::Path>,
        faults: Option<&crate::persist::DiskFaults>,
    ) -> Result<(), crate::persist::PersistError> {
        crate::persist::persist_bytes(path, &self.save_checkpoint(), faults)
    }

    /// Restore from a file written by [`Uae::write_checkpoint_file`].
    pub fn load_checkpoint_file(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), CheckpointError> {
        let bytes = std::fs::read(path)?;
        self.load_checkpoint(&bytes)?;
        Ok(())
    }

    /// Cumulative training counters: the epoch/step cursor plus executed /
    /// clipped / skipped / rollback tallies. Carried through checkpoints.
    pub fn train_stats(&self) -> &TrainStats {
        &self.stats
    }

    /// Attach (or replace) an observer receiving [`TrainEvent`]s from the
    /// train loop (per-epoch metrics, skipped steps, rollbacks).
    pub fn set_observer(&mut self, observer: Box<dyn TrainObserver>) {
        *self.observer.get_mut() = Some(observer);
    }

    /// Detach the current observer, returning it (dropping a
    /// [`crate::telemetry::JsonlObserver`] flushes its sink).
    pub fn take_observer(&mut self) -> Option<Box<dyn TrainObserver>> {
        self.observer.get_mut().take()
    }

    /// Estimated selectivity of a query, through the hardened cascade
    /// (validation shortcuts, retry, baseline fallback, clamping).
    /// Rejected queries degrade to `0`; use [`Uae::try_estimate_card`] for
    /// the typed error and degradation provenance.
    pub fn estimate_selectivity(&self, query: &Query) -> f64 {
        self.try_estimate_card(query).map_or(0.0, |e| e.selectivity)
    }

    /// Estimated selectivity of a **disjunction** of conjunctive queries
    /// via inclusion-exclusion (paper §3): `P(∪ q_i) = Σ_{S≠∅} (-1)^{|S|+1}
    /// P(∧_{i∈S} q_i)`. Exponential in the number of disjuncts; intended
    /// for the small `OR` lists real predicates produce (≤ ~6).
    pub fn estimate_disjunction_selectivity(&self, disjuncts: &[Query]) -> f64 {
        assert!(!disjuncts.is_empty(), "empty disjunction");
        assert!(disjuncts.len() <= 12, "inclusion-exclusion over too many disjuncts");
        let mut total = 0.0f64;
        for mask in 1u32..(1 << disjuncts.len()) {
            let mut conj = Query::default();
            for (i, q) in disjuncts.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    conj = conj.and(q);
                }
            }
            let sign = if mask.count_ones() % 2 == 1 { 1.0 } else { -1.0 };
            total += sign * self.estimate_selectivity(&conj);
        }
        total.clamp(0.0, 1.0)
    }

    /// Estimated cardinality of a disjunction of conjunctive queries.
    pub fn estimate_disjunction_card(&self, disjuncts: &[Query]) -> f64 {
        self.estimate_disjunction_selectivity(disjuncts) * self.table.num_rows() as f64
    }
}

impl Clone for Uae {
    /// Deep copy: the clone trains and estimates independently (fresh
    /// inference cache). Used by the hyper-parameter studies to branch
    /// several refinements off one pretrained model.
    fn clone(&self) -> Self {
        Uae {
            name: self.name.clone(),
            table: self.table.clone(),
            col_remap: self.col_remap.clone(),
            schema: self.schema.clone(),
            model: self.model.clone(),
            store: self.store.clone(),
            rows: self.rows.clone(),
            cfg: self.cfg.clone(),
            opt: self.opt.clone(),
            // StdRng is not `Clone` in this rand version; reseed
            // deterministically instead — the clone is used to branch
            // *independent* refinements, not to replay streams.
            rng: StdRng::seed_from_u64(self.cfg.train.seed ^ 0xb4a),
            est: Mutex::new(EstCache {
                raw: None,
                rng: StdRng::seed_from_u64(self.cfg.train.seed ^ 0xc10e),
                scratch: InferScratch::new(),
                batch: BatchScratch::new(),
                // Serving counters, baseline and observer are per-run
                // concerns too; the clone starts a fresh serving history
                // (its fault plan, part of `cfg`, is inherited).
                serve: ServeState::default(),
            }),
            stats: self.stats.clone(),
            // Divergence snapshots and observers are per-run concerns; a
            // branched refinement starts with a clean guard and no sink.
            guard: DivergenceGuard::default(),
            observer: Mutex::new(None),
        }
    }
}

fn shuffle(xs: &mut [usize], rng: &mut StdRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

impl CardEstimator for Uae {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_rows(&self) -> f64 {
        self.table.num_rows() as f64
    }

    /// Routes through the hardened serving cascade (validation, retry,
    /// baseline fallback, clamping) — same as the inherent
    /// [`Uae::estimate_selectivity`].
    fn estimate_selectivity(&self, query: &Query) -> f64 {
        self.try_estimate_card(query).map_or(0.0, |e| e.selectivity)
    }

    fn estimate_card(&self, query: &Query) -> f64 {
        self.try_estimate_card(query).map_or(0.0, |e| e.card)
    }

    fn estimate_cards(&self, queries: &[Query]) -> Vec<f64> {
        self.try_estimate_cards(queries).into_iter().map(|r| r.map_or(0.0, |e| e.card)).collect()
    }

    fn size_bytes(&self) -> usize {
        self.store.size_bytes()
    }

    fn family(&self) -> EstimatorFamily {
        EstimatorFamily::Autoregressive
    }

    fn cost_class(&self) -> QueryCost {
        QueryCost::Expensive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use uae_data::census_like;
    use uae_query::{evaluate, generate_workload, WorkloadSpec};

    fn quick_cfg() -> UaeConfig {
        UaeConfig {
            model: ResMadeConfig { hidden: 32, blocks: 1, seed: 5 },
            factor_threshold: usize::MAX,
            order: crate::ordering::ColumnOrder::Natural,
            encoding: crate::encoding::EncodingMode::Binary,
            train: TrainConfig {
                batch_size: 128,
                query_batch: 8,
                dps: crate::dps::DpsConfig { tau: 1.0, samples: 8 },
                ..TrainConfig::default()
            },
            estimate_samples: 100,
            serve: ServeConfig::default(),
        }
    }

    #[test]
    fn clip_scale_guards_non_finite_norms() {
        // The original predicate `norm > clip` is false for NaN, which
        // applied NaN gradients *unclipped*; the guard must refuse them.
        assert_eq!(clip_scale(f32::NAN, 8.0), None);
        assert_eq!(clip_scale(f32::INFINITY, 8.0), None);
        assert_eq!(clip_scale(f32::NEG_INFINITY, 8.0), None);
        // Finite norms clip exactly as before.
        assert_eq!(clip_scale(16.0, 8.0), Some(0.5));
        assert_eq!(clip_scale(4.0, 8.0), None);
        assert_eq!(clip_scale(8.0, 8.0), None);
        // clip = 0 disables clipping entirely.
        assert_eq!(clip_scale(1e9, 0.0), None);
    }

    #[test]
    fn query_cycler_covers_every_query_each_pass() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 23;
        let batch = 4;
        let mut c = QueryCycler::new(n, &mut rng);
        // One full pass (⌈n/batch⌉ batches) must visit every index at
        // least once — with-replacement draws routinely miss ~35% of them.
        let mut seen = HashSet::new();
        let mut first_pass = Vec::new();
        for _ in 0..n.div_ceil(batch) {
            for i in c.next_batch(batch, &mut rng) {
                seen.insert(i);
                first_pass.push(i);
            }
        }
        assert_eq!(seen.len(), n, "a pass must cover all {n} queries");
        // Before a reshuffle kicks in (the first n draws), no duplicates.
        let prefix: HashSet<usize> = first_pass[..n].iter().copied().collect();
        assert_eq!(prefix.len(), n, "within a pass every query appears exactly once");
        // Seeded determinism: an identical cycler replays the same batches.
        let mut rng2 = StdRng::seed_from_u64(9);
        let mut c2 = QueryCycler::new(n, &mut rng2);
        let mut replay = Vec::new();
        for _ in 0..n.div_ceil(batch) {
            replay.extend(c2.next_batch(batch, &mut rng2));
        }
        assert_eq!(first_pass, replay);
    }

    #[test]
    fn uae_d_learns_a_small_table() {
        let t = census_like(1500, 3);
        let mut uae = Uae::new(&t, quick_cfg()).with_name("Naru");
        let losses = uae.train_data(4);
        assert!(losses.last().unwrap() < &(losses[0] * 0.9), "data loss should drop: {losses:?}");
        let w = generate_workload(&t, &WorkloadSpec::random(25, 7), &HashSet::new());
        let ev = evaluate(&uae, &w);
        assert!(ev.errors.median < 4.0, "median q-error {}", ev.errors.median);
        assert_eq!(ev.name, "Naru");
        assert!(uae.size_bytes() > 1000);
    }

    #[test]
    fn hybrid_training_improves_in_workload_accuracy() {
        let t = census_like(1500, 4);
        let col = uae_query::default_bounded_column(&t);
        let train_w =
            generate_workload(&t, &WorkloadSpec::in_workload(col, 60, 11), &HashSet::new());
        let excl = uae_query::fingerprints(&train_w);
        let test_w = generate_workload(&t, &WorkloadSpec::in_workload(col, 20, 12), &excl);

        let mut uae = Uae::new(&t, quick_cfg());
        uae.train_hybrid(&train_w, 3);
        let ev = evaluate(&uae, &test_w);
        // An untrained model is off by orders of magnitude; a briefly
        // hybrid-trained one should already be in a sane band.
        assert!(ev.errors.median < 8.0, "median q-error {}", ev.errors.median);
    }

    #[test]
    fn uae_q_trains_from_queries_alone() {
        let t = census_like(1200, 5);
        let col = uae_query::default_bounded_column(&t);
        let w = generate_workload(&t, &WorkloadSpec::in_workload(col, 40, 21), &HashSet::new());
        let mut uae = Uae::new(&t, quick_cfg()).with_name("UAE-Q");
        let losses = uae.train_queries(&w, 4);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "query loss should drop: {losses:?}"
        );
    }

    #[test]
    fn ingest_data_extends_table() {
        let t = census_like(600, 6);
        let extra = t.take_rows(&(0..100).collect::<Vec<_>>());
        let mut uae = Uae::new(&t, quick_cfg());
        uae.train_data(1);
        uae.ingest_data(&extra, 1);
        assert_eq!(uae.table().num_rows(), 700);
    }

    #[test]
    fn estimates_are_nonnegative_and_bounded() {
        let t = census_like(800, 8);
        let uae = Uae::new(&t, quick_cfg());
        let w = generate_workload(&t, &WorkloadSpec::random(10, 3), &HashSet::new());
        for lq in &w {
            let card = uae.estimate_card(&lq.query);
            assert!(card >= 0.0 && card <= t.num_rows() as f64 + 1e-6, "card {card}");
        }
    }
}
