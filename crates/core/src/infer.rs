//! Progressive sampling inference (paper §4.2, after Yang et al.'s Naru).
//!
//! To estimate `Sel(q)` the sampler walks the virtual columns left to
//! right. At each constrained column it (1) multiplies the running density
//! estimate by the in-region probability mass `P(z_i ∈ R_i | z_<i)` and
//! (2) samples a concrete value from the *renormalized in-region*
//! distribution to condition the next steps. Unconstrained columns feed the
//! wildcard token and are skipped entirely (wildcard skipping, §4.6).
//! Estimates are unbiased; `S` samples are processed as one batch.

use rand::RngExt;
use uae_tensor::tensor::softmax_in_place;
use uae_tensor::Tensor;

use crate::encoding::VirtualSchema;
use crate::model::{ModelScratch, RawModel};
use crate::vquery::{StepRegion, VirtualQuery};

pub use crate::infer_batch::progressive_sample_batch;

/// Caller-owned buffers for [`progressive_sample_with`]: the sample-batch
/// input rows, per-sample bookkeeping, per-column sampled codes, and the
/// model forward scratch. One scratch serves any stream of queries —
/// buffers grow to the largest `(s, schema)` seen and are reused, making
/// steady-state estimates allocation-free in the tensor layer.
#[derive(Debug, Default)]
pub struct InferScratch {
    model: ModelScratch,
    inputs: Tensor,
    p_hat: Vec<f64>,
    alive: Vec<bool>,
    /// Sampled hard codes per virtual column (`sampled[v][r]`); `set[v]`
    /// marks the columns written during the current query.
    sampled: Vec<Vec<u32>>,
    sampled_set: Vec<bool>,
}

impl InferScratch {
    /// Fresh, empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Numeric mode of the model forward pass driven through this scratch.
    /// Must match the mode the [`RawModel`] snapshot was built with.
    pub fn set_quant_mode(&mut self, mode: uae_tensor::QuantMode) {
        self.model.set_quant_mode(mode);
    }
}

/// [`progressive_sample`] writing into caller-owned buffers. Bit-exact with
/// the allocating path (identical RNG consumption, identical arithmetic),
/// with two additional fast paths that preserve exactness:
///
/// * the first constrained column reads the memoized
///   [`RawModel::first_step_probs`] row (every sample row sees the same
///   all-wildcard input there, and the per-row forward arithmetic is
///   row-independent), and
/// * once every sample is dead the remaining rounds are skipped (they
///   would touch neither `p_hat` nor the RNG).
pub fn progressive_sample_with(
    raw: &RawModel,
    schema: &VirtualSchema,
    vq: &VirtualQuery,
    s: usize,
    rng: &mut impl RngExt,
    scratch: &mut InferScratch,
) -> f64 {
    if vq.is_empty() {
        return 0.0;
    }
    let Some(last) = vq.last_constrained() else {
        return 1.0; // no predicates
    };
    let s = s.max(1);
    let nv = schema.num_virtual();
    let InferScratch { model, inputs, p_hat, alive, sampled, sampled_set } = scratch;
    inputs.resize(s, schema.input_width());
    inputs.fill_zero();
    p_hat.clear();
    p_hat.resize(s, 1.0);
    alive.clear();
    alive.resize(s, true);
    if sampled.len() < nv {
        sampled.resize_with(nv, Vec::new);
    }
    sampled_set.clear();
    sampled_set.resize(nv, false);
    let mut n_alive = s;
    // Until the first constrained column samples, every input row is the
    // all-wildcard zero row and the probs are the memoized first-step row.
    let mut virgin = true;

    for v in 0..=last {
        let step = vq.step(v);
        if !step.is_constrained() {
            continue; // wildcard: leave the zero block, skip the forward
        }
        if n_alive == 0 {
            // Dead rows are skipped before any probability or RNG use, so
            // the remaining rounds cannot change the (all-zero) estimate.
            break;
        }
        let codec = schema.codec(v);
        let domain = codec.domain() as u32;
        let first = if virgin {
            Some(raw.first_step_probs(v))
        } else {
            raw.hidden_into(inputs, model);
            raw.logits_col_into(v, model);
            model.logits.softmax_rows_in_place();
            None
        };
        let row_probs = |r: usize| -> &[f32] {
            match &first {
                Some(f) => f,
                None => model.logits.row(r),
            }
        };
        let need_sample = v < last;
        let (prev_sampled, cur) = sampled.split_at_mut(v);
        let codes = &mut cur[0];
        codes.clear();
        codes.resize(s, 0);
        if let StepRegion::Weighted(w) = step {
            // Fanout scaling: multiply by E[w(v) | z_<v] and
            // importance-sample from the reweighted conditional.
            for r in 0..s {
                if !alive[r] {
                    continue;
                }
                let row = row_probs(r);
                let p_w: f64 = row.iter().zip(w.iter()).map(|(&p, &wv)| p as f64 * wv).sum();
                if p_w <= 0.0 {
                    p_hat[r] = 0.0;
                    alive[r] = false;
                    n_alive -= 1;
                    continue;
                }
                p_hat[r] *= p_w;
                if need_sample {
                    let target: f64 = rng.random::<f64>() * p_w;
                    let mut acc = 0.0f64;
                    let mut code = domain - 1;
                    for (c, (&p, &wv)) in row.iter().zip(w.iter()).enumerate() {
                        acc += p as f64 * wv;
                        if acc >= target {
                            code = c as u32;
                            break;
                        }
                    }
                    codes[r] = code;
                    let (bs, be) = schema.input_slice(v);
                    raw.encode_into(v, code, &mut inputs.row_mut(r)[bs..be]);
                }
            }
            if need_sample {
                sampled_set[v] = true;
            }
            virgin = false;
            continue;
        }
        // Fixed regions are shared by every row; borrow them once instead
        // of cloning per row (split lo-regions depend on the sampled hi
        // code and stay per-row).
        let fixed_region = match step {
            StepRegion::Fixed(region) => Some(region),
            _ => None,
        };
        for r in 0..s {
            if !alive[r] {
                continue;
            }
            let lo_region;
            let region = match (fixed_region, step) {
                (Some(region), _) => region,
                (None, StepRegion::LoOfSplit { hi_vcol, .. }) => {
                    debug_assert!(sampled_set[*hi_vcol], "hi sampled before lo");
                    let hi_code = prev_sampled[*hi_vcol][r];
                    lo_region = vq.lo_region(v, hi_code, domain);
                    &lo_region
                }
                _ => unreachable!(),
            };
            let row = row_probs(r);
            let p_in: f64 = region.iter_codes().map(|c| row[c as usize] as f64).sum();
            if p_in <= 0.0 || region.is_empty() {
                p_hat[r] = 0.0;
                alive[r] = false;
                n_alive -= 1;
                continue;
            }
            p_hat[r] *= p_in.min(1.0);
            if need_sample {
                let code = sample_in_region(row, region, p_in, rng);
                codes[r] = code;
                let (bs, be) = schema.input_slice(v);
                raw.encode_into(v, code, &mut inputs.row_mut(r)[bs..be]);
            }
        }
        if need_sample {
            sampled_set[v] = true;
        }
        virgin = false;
    }
    p_hat.iter().sum::<f64>() / s as f64
}

/// Estimate the selectivity of one translated query with `s` progressive
/// samples. Returns a value in `[0, 1]`.
pub fn progressive_sample(
    raw: &RawModel,
    schema: &VirtualSchema,
    vq: &VirtualQuery,
    s: usize,
    rng: &mut impl RngExt,
) -> f64 {
    if vq.is_empty() {
        return 0.0;
    }
    let Some(last) = vq.last_constrained() else {
        return 1.0; // no predicates
    };
    let s = s.max(1);
    let mut inputs = Tensor::zeros(s, schema.input_width());
    let mut p_hat = vec![1.0f64; s];
    let mut alive = vec![true; s];
    // Sampled hard codes per virtual column (needed by split lo-steps).
    let mut sampled: Vec<Option<Vec<u32>>> = vec![None; schema.num_virtual()];

    for v in 0..=last {
        let step = vq.step(v);
        if !step.is_constrained() {
            continue; // wildcard: leave the zero block, skip the forward
        }
        let codec = schema.codec(v);
        let domain = codec.domain() as u32;
        let hidden = raw.hidden(&inputs);
        let mut probs = raw.logits_col(&hidden, v);
        probs.softmax_rows_in_place();
        let need_sample = v < last;
        let mut codes = vec![0u32; s];
        if let StepRegion::Weighted(w) = step {
            // Fanout scaling: multiply by E[w(v) | z_<v] and
            // importance-sample from the reweighted conditional.
            for r in 0..s {
                if !alive[r] {
                    continue;
                }
                let row = probs.row(r);
                let p_w: f64 = row.iter().zip(w.iter()).map(|(&p, &wv)| p as f64 * wv).sum();
                if p_w <= 0.0 {
                    p_hat[r] = 0.0;
                    alive[r] = false;
                    continue;
                }
                p_hat[r] *= p_w;
                if need_sample {
                    let target: f64 = rng.random::<f64>() * p_w;
                    let mut acc = 0.0f64;
                    let mut code = domain - 1;
                    for (c, (&p, &wv)) in row.iter().zip(w.iter()).enumerate() {
                        acc += p as f64 * wv;
                        if acc >= target {
                            code = c as u32;
                            break;
                        }
                    }
                    codes[r] = code;
                    let (bs, be) = schema.input_slice(v);
                    raw.encode_into(v, code, &mut inputs.row_mut(r)[bs..be]);
                }
            }
            if need_sample {
                sampled[v] = Some(codes);
            }
            continue;
        }
        for r in 0..s {
            if !alive[r] {
                continue;
            }
            let region = match step {
                StepRegion::Fixed(region) => region.clone(),
                StepRegion::LoOfSplit { hi_vcol, .. } => {
                    let hi_code = sampled[*hi_vcol].as_ref().expect("hi sampled before lo")[r];
                    vq.lo_region(v, hi_code, domain)
                }
                StepRegion::Wildcard | StepRegion::Weighted(_) => unreachable!(),
            };
            let row = probs.row(r);
            let p_in: f64 = region.iter_codes().map(|c| row[c as usize] as f64).sum();
            if p_in <= 0.0 || region.is_empty() {
                p_hat[r] = 0.0;
                alive[r] = false;
                continue;
            }
            p_hat[r] *= p_in.min(1.0);
            if need_sample {
                let code = sample_in_region(row, &region, p_in, rng);
                codes[r] = code;
                let (bs, be) = schema.input_slice(v);
                raw.encode_into(v, code, &mut inputs.row_mut(r)[bs..be]);
            }
        }
        if need_sample {
            sampled[v] = Some(codes);
        }
    }
    p_hat.iter().sum::<f64>() / s as f64
}

/// Inverse-CDF draw from `probs` restricted to `region` (total in-region
/// mass `p_in`). Shared with the batched engine so both paths consume the
/// RNG identically.
pub(crate) fn sample_in_region(
    probs: &[f32],
    region: &uae_query::Region,
    p_in: f64,
    rng: &mut impl RngExt,
) -> u32 {
    let target: f64 = rng.random::<f64>() * p_in;
    let mut acc = 0.0f64;
    let mut last = 0u32;
    for c in region.iter_codes() {
        acc += probs[c as usize] as f64;
        last = c;
        if acc >= target {
            return c;
        }
    }
    last
}

/// Uniform-sampling range estimation (paper Eq. 4):
/// `Sel(q) ≈ |R^q| / S · Σ_s P̂_θ(x^s)` with `x^s` drawn uniformly from the
/// query region. Kept as the baseline the paper argues against —
/// progressive sampling concentrates on high-probability regions and is
/// far more robust on skewed data (see the `sampling_strategies` ablation
/// bench and `uniform_vs_progressive_variance` test).
pub fn uniform_sample_estimate(
    raw: &RawModel,
    schema: &VirtualSchema,
    vq: &VirtualQuery,
    s: usize,
    rng: &mut impl RngExt,
) -> f64 {
    if vq.is_empty() {
        return 0.0;
    }
    let Some(last) = vq.last_constrained() else {
        return 1.0;
    };
    let s = s.max(1);
    let nv = schema.num_virtual();

    // Enumerate per-column choices: for each constrained column the list of
    // admitted codes; split lo-columns pair up with their hi column, so the
    // uniform draw is over (hi, lo) pairs with exact counts.
    #[derive(Clone)]
    enum Choice {
        Free(Vec<u32>),
        /// (hi vcol, cumulative pair counts aligned with hi codes).
        LoPairs {
            hi_vcol: usize,
            hi_codes: Vec<u32>,
            cum: Vec<u64>,
        },
    }
    let mut total: f64 = 1.0;
    let mut choices: Vec<Option<Choice>> = vec![None; nv];
    for (v, slot) in choices.iter_mut().enumerate().take(last + 1) {
        match vq.step(v) {
            StepRegion::Wildcard => {}
            StepRegion::Weighted(_) => {
                // Importance weights have no uniform-region analogue; treat
                // as unconstrained (the progressive path handles them).
            }
            StepRegion::Fixed(r) => {
                let codes: Vec<u32> = r.iter_codes().collect();
                if codes.is_empty() {
                    return 0.0;
                }
                // For the hi part of a split, the count is folded into the
                // paired lo step below.
                let is_split_hi = (v + 1 < nv)
                    && matches!(vq.step(v + 1), StepRegion::LoOfSplit { hi_vcol, .. } if *hi_vcol == v);
                if !is_split_hi {
                    total *= codes.len() as f64;
                }
                *slot = Some(Choice::Free(codes));
            }
            StepRegion::LoOfSplit { hi_vcol, .. } => {
                let lo_domain = schema.codec(v).domain() as u32;
                let hi_codes: Vec<u32> = match vq.step(*hi_vcol) {
                    StepRegion::Fixed(r) => r.iter_codes().collect(),
                    _ => (0..schema.codec(*hi_vcol).domain() as u32).collect(),
                };
                let mut cum = Vec::with_capacity(hi_codes.len());
                let mut acc = 0u64;
                for &h in &hi_codes {
                    acc += u64::from(vq.lo_region(v, h, lo_domain).count());
                    cum.push(acc);
                }
                if acc == 0 {
                    return 0.0;
                }
                total *= acc as f64;
                *slot = Some(Choice::LoPairs { hi_vcol: *hi_vcol, hi_codes, cum });
            }
        }
    }

    // Draw S uniform tuples and evaluate their (marginalized) probability:
    // wildcards keep the absent token, so the product of constrained
    // conditionals is the marginal P(constrained attrs = x).
    let mut inputs = Tensor::zeros(s, schema.input_width());
    let mut sampled_codes: Vec<Vec<u32>> = vec![vec![0; nv]; s];
    for v in 0..=last {
        let Some(choice) = &choices[v] else { continue };
        match choice {
            Choice::Free(codes) => {
                for row in &mut sampled_codes {
                    row[v] = codes[rng.random_range(0..codes.len())];
                }
            }
            Choice::LoPairs { hi_vcol, hi_codes, cum } => {
                let lo_domain = schema.codec(v).domain() as u32;
                for row in &mut sampled_codes {
                    let target = rng.random_range(0..*cum.last().expect("nonempty"));
                    let idx = cum.partition_point(|&c| c <= target);
                    let h = hi_codes[idx.min(hi_codes.len() - 1)];
                    let prev = if idx == 0 { 0 } else { cum[idx - 1] };
                    let offset = (target - prev) as usize;
                    let lo_codes: Vec<u32> = vq.lo_region(v, h, lo_domain).iter_codes().collect();
                    row[*hi_vcol] = h;
                    row[v] = lo_codes[offset.min(lo_codes.len() - 1)];
                }
            }
        }
    }
    // Encode the constrained columns (wildcards stay zero).
    let mut p_hat = vec![1.0f64; s];
    for v in 0..=last {
        if choices[v].is_none() {
            continue;
        }
        let hidden = raw.hidden(&inputs);
        let mut probs = raw.logits_col(&hidden, v);
        for r in 0..s {
            softmax_in_place(probs.row_mut(r));
            let c = sampled_codes[r][v];
            p_hat[r] *= probs.at(r, c as usize) as f64;
            let (bs, be) = schema.input_slice(v);
            raw.encode_into(v, c, &mut inputs.row_mut(r)[bs..be]);
        }
    }
    (total * p_hat.iter().sum::<f64>() / s as f64).clamp(0.0, 1.0)
}

/// The model's joint probability of one virtual-code row (product of the
/// autoregressive conditionals, Eq. 1).
pub fn joint_probability(raw: &RawModel, schema: &VirtualSchema, vcodes: &[u32]) -> f64 {
    let mut p = 1.0f64;
    let mut inputs = Tensor::zeros(1, schema.input_width());
    for (v, &code) in vcodes.iter().enumerate().take(schema.num_virtual()) {
        let hidden = raw.hidden(&inputs);
        let mut probs = raw.logits_col(&hidden, v);
        softmax_in_place(probs.row_mut(0));
        p *= probs.at(0, code as usize) as f64;
        let (bs, be) = schema.input_slice(v);
        raw.encode_into(v, code, &mut inputs.row_mut(0)[bs..be]);
    }
    p
}

/// Exhaustive enumeration of `Sel(q)` under the model (paper Eq. 3) —
/// exponential in the number of columns; use only on tiny schemas (tests
/// and the exhaustive-vs-sampling validation).
pub fn exhaustive_selectivity(raw: &RawModel, schema: &VirtualSchema, vq: &VirtualQuery) -> f64 {
    // Wildcards sum over the full domain by definition of a distribution,
    // so only constrained columns need enumeration — but for simplicity and
    // because this is a test oracle, enumerate everything.
    let mut total = 0.0f64;
    let mut vcodes = vec![0u32; schema.num_virtual()];
    enumerate(raw, schema, vq, 0, &mut vcodes, 1.0, &mut total);
    total
}

fn enumerate(
    raw: &RawModel,
    schema: &VirtualSchema,
    vq: &VirtualQuery,
    v: usize,
    vcodes: &mut Vec<u32>,
    weight: f64,
    total: &mut f64,
) {
    if v == schema.num_virtual() {
        *total += weight * joint_probability(raw, schema, vcodes);
        return;
    }
    let domain = schema.codec(v).domain() as u32;
    for c in 0..domain {
        let w = match vq.step(v) {
            StepRegion::Wildcard => 1.0,
            StepRegion::Fixed(r) => f64::from(r.contains(c)),
            StepRegion::LoOfSplit { hi_vcol, .. } => {
                f64::from(vq.lo_region(v, vcodes[*hi_vcol], domain).contains(c))
            }
            StepRegion::Weighted(ws) => ws[c as usize],
        };
        if w > 0.0 {
            vcodes[v] = c;
            enumerate(raw, schema, vq, v + 1, vcodes, weight * w, total);
        }
    }
    vcodes[v] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ResMade, ResMadeConfig};
    use uae_data::{Table, Value};
    use uae_query::{Predicate, Query};
    use uae_tensor::rng::seeded_rng;
    use uae_tensor::ParamStore;

    fn setup(domains: &[usize]) -> (Table, VirtualSchema, ParamStore, ResMade) {
        let rows = 32;
        let cols = domains
            .iter()
            .enumerate()
            .map(|(j, &d)| {
                let vals: Vec<Value> =
                    (0..rows).map(|r| Value::Int(((r + j) % d) as i64)).collect();
                (format!("c{j}"), vals)
            })
            .collect();
        let t = Table::from_columns("t", cols);
        let schema = VirtualSchema::build(&t, usize::MAX);
        let mut store = ParamStore::new();
        let model =
            ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 16, blocks: 1, seed: 7 });
        (t, schema, store, model)
    }

    #[test]
    fn joint_probabilities_sum_to_one() {
        let (_, schema, store, model) = setup(&[3, 4]);
        let raw = model.snapshot(&store);
        let mut total = 0.0;
        for a in 0..3u32 {
            for b in 0..4u32 {
                total += joint_probability(&raw, &schema, &[a, b]);
            }
        }
        assert!((total - 1.0).abs() < 1e-4, "joint sums to {total}");
    }

    #[test]
    fn exhaustive_no_predicates_is_one() {
        let (t, schema, store, model) = setup(&[3, 4]);
        let raw = model.snapshot(&store);
        let vq = VirtualQuery::build(&t, &schema, &Query::default());
        let sel = exhaustive_selectivity(&raw, &schema, &vq);
        assert!((sel - 1.0).abs() < 1e-4);
    }

    #[test]
    fn progressive_sampling_approaches_exhaustive() {
        let (t, schema, store, model) = setup(&[5, 4, 3]);
        let raw = model.snapshot(&store);
        let q = Query::new(vec![Predicate::le(0, 2i64), Predicate::ge(2, 1i64)]);
        let vq = VirtualQuery::build(&t, &schema, &q);
        let exact = exhaustive_selectivity(&raw, &schema, &vq);
        let mut rng = seeded_rng(11);
        let est = progressive_sample(&raw, &schema, &vq, 4000, &mut rng);
        assert!(
            (est - exact).abs() < 0.05 * exact.max(0.02),
            "progressive {est} vs exhaustive {exact}"
        );
    }

    #[test]
    fn point_query_equals_joint_probability() {
        // A fully specified equality query needs no sampling variance at all.
        let (t, schema, store, model) = setup(&[4, 3]);
        let raw = model.snapshot(&store);
        let q = Query::new(vec![Predicate::eq(0, 2i64), Predicate::eq(1, 1i64)]);
        let vq = VirtualQuery::build(&t, &schema, &q);
        let mut rng = seeded_rng(3);
        let est = progressive_sample(&raw, &schema, &vq, 3, &mut rng);
        let code0 = t.column(0).code_of(&Value::Int(2)).unwrap();
        let code1 = t.column(1).code_of(&Value::Int(1)).unwrap();
        let joint = joint_probability(&raw, &schema, &[code0, code1]);
        assert!((est - joint).abs() < 1e-6, "est {est} vs joint {joint}");
    }

    #[test]
    fn factorized_progressive_matches_exhaustive() {
        let rows = 40;
        let cols = vec![
            ("w".to_owned(), (0..rows).map(|r| Value::Int((r * 7 % 40) as i64)).collect()),
            ("s".to_owned(), (0..rows).map(|r| Value::Int((r % 3) as i64)).collect()),
        ];
        let t = Table::from_columns("t", cols);
        let schema = VirtualSchema::build(&t, 16); // factorize the 40-wide column
        let mut store = ParamStore::new();
        let model =
            ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 16, blocks: 1, seed: 9 });
        let raw = model.snapshot(&store);
        let q = Query::new(vec![Predicate::ge(0, 5i64), Predicate::le(0, 23i64)]);
        let vq = VirtualQuery::build(&t, &schema, &q);
        let exact = exhaustive_selectivity(&raw, &schema, &vq);
        let mut rng = seeded_rng(4);
        let est = progressive_sample(&raw, &schema, &vq, 4000, &mut rng);
        assert!(
            (est - exact).abs() < 0.08 * exact.max(0.02),
            "factorized progressive {est} vs exhaustive {exact}"
        );
    }

    #[test]
    fn uniform_sampling_matches_exhaustive_in_expectation() {
        let (t, schema, store, model) = setup(&[5, 4, 3]);
        let raw = model.snapshot(&store);
        let q = Query::new(vec![Predicate::le(0, 2i64), Predicate::ge(2, 1i64)]);
        let vq = VirtualQuery::build(&t, &schema, &q);
        let exact = exhaustive_selectivity(&raw, &schema, &vq);
        let mut rng = seeded_rng(31);
        let est = uniform_sample_estimate(&raw, &schema, &vq, 6000, &mut rng);
        assert!((est - exact).abs() < 0.1 * exact.max(0.05), "uniform {est} vs exhaustive {exact}");
    }

    #[test]
    fn uniform_sampling_handles_factorized_columns() {
        let rows = 40;
        let cols = vec![
            ("w".to_owned(), (0..rows).map(|r| Value::Int((r * 7 % 40) as i64)).collect()),
            ("s".to_owned(), (0..rows).map(|r| Value::Int((r % 3) as i64)).collect()),
        ];
        let t = Table::from_columns("t", cols);
        let schema = VirtualSchema::build(&t, 16);
        let mut store = ParamStore::new();
        let model =
            ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 12, blocks: 1, seed: 8 });
        let raw = model.snapshot(&store);
        let q = Query::new(vec![Predicate::ge(0, 5i64), Predicate::le(0, 23i64)]);
        let vq = VirtualQuery::build(&t, &schema, &q);
        let exact = exhaustive_selectivity(&raw, &schema, &vq);
        let mut rng = seeded_rng(32);
        let est = uniform_sample_estimate(&raw, &schema, &vq, 6000, &mut rng);
        assert!(
            (est - exact).abs() < 0.12 * exact.max(0.05),
            "uniform (factorized) {est} vs exhaustive {exact}"
        );
    }

    #[test]
    fn empty_region_estimates_zero() {
        let (t, schema, store, model) = setup(&[4, 3]);
        let raw = model.snapshot(&store);
        let q = Query::new(vec![Predicate::le(0, -1i64)]);
        let vq = VirtualQuery::build(&t, &schema, &q);
        let mut rng = seeded_rng(5);
        assert_eq!(progressive_sample(&raw, &schema, &vq, 10, &mut rng), 0.0);
    }
}
