//! Cross-query batched progressive sampling — the serving fast path.
//!
//! [`progressive_sample`](crate::infer::progressive_sample) walks one query
//! at a time: every constrained column costs a full `S`-row forward pass,
//! even though (a) the first constrained column's input is the all-wildcard
//! zero row — identical for every sample of every query — and (b) after
//! sampling column `v`, many of the `S` rows share the same sampled code
//! and therefore the same model input.
//!
//! [`progressive_sample_batch`] removes both redundancies while producing
//! **bit-identical estimates** to the sequential walk under matched
//! per-query RNG seeds:
//!
//! * **Column rounds.** All queries advance in lock-step over virtual
//!   columns. At round `v`, every not-yet-finished query whose step `v` is
//!   constrained participates; queries with a wildcard at `v` skip the
//!   round entirely (per-query wildcard skipping, §4.6). Participants share
//!   one stacked `hidden()` forward and one `logits_col(v)` projection, so
//!   the `w_out` column slice and the weight traversals are paid once per
//!   round instead of once per query.
//! * **First-step memoization.** A query that has not sampled anything yet
//!   feeds the all-zero input, whose softmaxed logits are row-constant.
//!   Those queries read [`RawModel::first_step_probs`] — computed once per
//!   weight snapshot — and contribute **zero** rows to the stacked forward.
//! * **Prefix deduplication + dead-sample compaction.** Per query, sample
//!   rows are represented by an interned *prefix id* (the tuple of codes
//!   sampled so far). The forward at round `v` runs over distinct live
//!   prefixes only; rows sharing a prefix share one computed distribution.
//!   The prefix table is rebuilt from the pairs drawn each round, so
//!   prefixes referenced only by dead rows vanish. Correctness rests on the
//!   model's forward being row-independent: `hidden()` and `logits_col()`
//!   compute each output row from its input row alone, so deduplicating
//!   identical rows cannot change any value.
//!
//! Equivalence with the sequential walk holds because each query draws from
//! its own seeded RNG, and within a query the draw order is identical:
//! ascending constrained column, then ascending row index over live rows.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use uae_tensor::Tensor;

use crate::encoding::VirtualSchema;
use crate::infer::sample_in_region;
use crate::model::RawModel;
use crate::vquery::{StepRegion, VirtualQuery};

/// Per-query sampler state between column rounds.
struct QueryState<'a> {
    vq: &'a VirtualQuery,
    rng: StdRng,
    last: usize,
    /// Distinct live sampled-prefix input rows (model-input encoding).
    prefix_rows: Tensor,
    /// Prefix id of each sample row; only meaningful while the row lives.
    row_prefix: Vec<usize>,
    p_hat: Vec<f64>,
    alive: Vec<bool>,
    /// Sampled hard codes per virtual column (split lo-steps look these up).
    sampled: Vec<Option<Vec<u32>>>,
    /// No code sampled yet: inputs are the all-wildcard zeros, so the
    /// memoized first-step distribution applies.
    virgin: bool,
    done: bool,
}

/// Estimate the selectivities of a batch of translated queries with `s`
/// progressive samples each, one RNG seed per query. Returns one value in
/// `[0, 1]` per query, bit-identical to running
/// [`crate::infer::progressive_sample`] per query with
/// `StdRng::seed_from_u64(seeds[i])`.
pub fn progressive_sample_batch(
    raw: &RawModel,
    schema: &VirtualSchema,
    vqs: &[VirtualQuery],
    s: usize,
    seeds: &[u64],
) -> Vec<f64> {
    assert_eq!(vqs.len(), seeds.len(), "one seed per query");
    let s = s.max(1);
    let width = schema.input_width();
    let mut results = vec![0.0f64; vqs.len()];
    let mut states: Vec<Option<QueryState<'_>>> = Vec::with_capacity(vqs.len());
    let mut max_last = 0usize;
    for (i, vq) in vqs.iter().enumerate() {
        if vq.is_empty() {
            states.push(None);
            continue;
        }
        let Some(last) = vq.last_constrained() else {
            results[i] = 1.0; // no predicates
            states.push(None);
            continue;
        };
        max_last = max_last.max(last);
        states.push(Some(QueryState {
            vq,
            rng: StdRng::seed_from_u64(seeds[i]),
            last,
            prefix_rows: Tensor::zeros(1, width),
            row_prefix: vec![0; s],
            p_hat: vec![1.0; s],
            alive: vec![true; s],
            sampled: vec![None; schema.num_virtual()],
            virgin: true,
            done: false,
        }));
    }
    if states.iter().all(Option::is_none) {
        return results;
    }

    for v in 0..=max_last {
        let round: Vec<usize> = states
            .iter()
            .enumerate()
            .filter_map(|(i, st)| {
                let st = st.as_ref()?;
                (!st.done && v <= st.last && st.vq.step(v).is_constrained()).then_some(i)
            })
            .collect();
        if round.is_empty() {
            continue;
        }

        // One stacked forward over the distinct live prefixes of every
        // non-virgin participant.
        let mut offsets: HashMap<usize, usize> = HashMap::new();
        let mut stacked_data: Vec<f32> = Vec::new();
        let mut total_rows = 0usize;
        let mut any_virgin = false;
        for &i in &round {
            let st = states[i].as_ref().expect("round member");
            if st.virgin {
                any_virgin = true;
                continue;
            }
            offsets.insert(i, total_rows);
            total_rows += st.prefix_rows.rows();
            stacked_data.extend_from_slice(st.prefix_rows.data());
        }
        let probs: Option<Tensor> = (total_rows > 0).then(|| {
            let stacked = Tensor::from_vec(total_rows, width, stacked_data);
            let hidden = raw.hidden(&stacked);
            let mut p = raw.logits_col(&hidden, v);
            p.softmax_rows_in_place();
            p
        });
        // Virgin participants all see the same memoized distribution.
        let first: Option<Arc<Vec<f32>>> = any_virgin.then(|| raw.first_step_probs(v));

        for &i in &round {
            let st = states[i].as_mut().expect("round member");
            let offset = offsets.get(&i).copied();
            let first_row = first.as_ref().map(|a| a.as_slice());
            advance_query(raw, schema, st, v, probs.as_ref(), offset, first_row);
            if st.done {
                results[i] = st.p_hat.iter().sum::<f64>() / s as f64;
            }
        }
    }
    results
}

/// Run one column round for one query, mirroring the per-step logic of
/// `progressive_sample` exactly (same kills, same p-hat updates, same RNG
/// consumption over live rows in ascending order).
#[allow(clippy::too_many_arguments)]
fn advance_query(
    raw: &RawModel,
    schema: &VirtualSchema,
    st: &mut QueryState<'_>,
    v: usize,
    probs: Option<&Tensor>,
    offset: Option<usize>,
    first: Option<&[f32]>,
) {
    let s = st.p_hat.len();
    let domain = schema.codec(v).domain() as u32;
    let need_sample = v < st.last;
    let virgin = st.virgin;
    // Prefix-id interner for the codes drawn this round.
    let mut intern: HashMap<(usize, u32), usize> = HashMap::new();
    let mut created: Vec<(usize, u32)> = Vec::new();
    let mut codes = vec![0u32; s];

    let step = st.vq.step(v);
    if let StepRegion::Weighted(w) = step {
        // Fanout scaling: multiply by E[w(v) | z_<v] and importance-sample
        // from the reweighted conditional.
        // Range loop: `r` walks five parallel per-sample arrays at once.
        #[allow(clippy::needless_range_loop)]
        for r in 0..s {
            if !st.alive[r] {
                continue;
            }
            let row: &[f32] = if virgin {
                first.expect("first-step probs for virgin query")
            } else {
                let p = probs.expect("stacked probs for sampled query");
                p.row(offset.expect("stack offset") + st.row_prefix[r])
            };
            let p_w: f64 = row.iter().zip(w.iter()).map(|(&p, &wv)| p as f64 * wv).sum();
            if p_w <= 0.0 {
                st.p_hat[r] = 0.0;
                st.alive[r] = false;
                continue;
            }
            st.p_hat[r] *= p_w;
            if need_sample {
                let target: f64 = st.rng.random::<f64>() * p_w;
                let mut acc = 0.0f64;
                let mut code = domain - 1;
                for (c, (&p, &wv)) in row.iter().zip(w.iter()).enumerate() {
                    acc += p as f64 * wv;
                    if acc >= target {
                        code = c as u32;
                        break;
                    }
                }
                codes[r] = code;
                st.row_prefix[r] = intern_pair(&mut intern, &mut created, (st.row_prefix[r], code));
            }
        }
    } else {
        // Range loop: `r` walks five parallel per-sample arrays at once.
        #[allow(clippy::needless_range_loop)]
        for r in 0..s {
            if !st.alive[r] {
                continue;
            }
            let region = match step {
                StepRegion::Fixed(region) => region.clone(),
                StepRegion::LoOfSplit { hi_vcol, .. } => {
                    let hi_code = st.sampled[*hi_vcol].as_ref().expect("hi sampled before lo")[r];
                    st.vq.lo_region(v, hi_code, domain)
                }
                StepRegion::Wildcard | StepRegion::Weighted(_) => unreachable!(),
            };
            let row: &[f32] = if virgin {
                first.expect("first-step probs for virgin query")
            } else {
                let p = probs.expect("stacked probs for sampled query");
                p.row(offset.expect("stack offset") + st.row_prefix[r])
            };
            let p_in: f64 = region.iter_codes().map(|c| row[c as usize] as f64).sum();
            if p_in <= 0.0 || region.is_empty() {
                st.p_hat[r] = 0.0;
                st.alive[r] = false;
                continue;
            }
            st.p_hat[r] *= p_in.min(1.0);
            if need_sample {
                let code = sample_in_region(row, &region, p_in, &mut st.rng);
                codes[r] = code;
                st.row_prefix[r] = intern_pair(&mut intern, &mut created, (st.row_prefix[r], code));
            }
        }
    }

    if !need_sample {
        st.done = true; // v == last: the walk (and the estimate) is complete
        return;
    }
    st.sampled[v] = Some(codes);
    // Rebuild the prefix table from the pairs drawn this round. Prefixes
    // referenced only by dead rows are never interned, so they vanish here
    // (dead-sample compaction).
    let (bs, be) = schema.input_slice(v);
    let mut new_rows = Tensor::zeros(created.len(), schema.input_width());
    for (id, &(parent, code)) in created.iter().enumerate() {
        let dst = new_rows.row_mut(id);
        dst.copy_from_slice(st.prefix_rows.row(parent));
        raw.encode_into(v, code, &mut dst[bs..be]);
    }
    st.prefix_rows = new_rows;
    st.virgin = false;
    if created.is_empty() {
        // Every sample died; all later rounds would be no-ops with p̂ = 0.
        st.done = true;
    }
}

fn intern_pair(
    intern: &mut HashMap<(usize, u32), usize>,
    created: &mut Vec<(usize, u32)>,
    key: (usize, u32),
) -> usize {
    *intern.entry(key).or_insert_with(|| {
        created.push(key);
        created.len() - 1
    })
}
