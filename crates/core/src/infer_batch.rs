//! Cross-query batched progressive sampling — the serving fast path.
//!
//! [`progressive_sample`](crate::infer::progressive_sample) walks one query
//! at a time: every constrained column costs a full `S`-row forward pass,
//! even though (a) the first constrained column's input is the all-wildcard
//! zero row — identical for every sample of every query — and (b) after
//! sampling column `v`, many of the `S` rows share the same sampled code
//! and therefore the same model input.
//!
//! [`progressive_sample_batch`] removes both redundancies while producing
//! **bit-identical estimates** to the sequential walk under matched
//! per-query RNG seeds:
//!
//! * **Column rounds.** All queries advance in lock-step over virtual
//!   columns. At round `v`, every not-yet-finished query whose step `v` is
//!   constrained participates; queries with a wildcard at `v` skip the
//!   round entirely (per-query wildcard skipping, §4.6). Participants share
//!   one stacked `hidden()` forward and one `logits_col(v)` projection, so
//!   the `w_out` column slice and the weight traversals are paid once per
//!   round instead of once per query.
//! * **First-step memoization.** A query that has not sampled anything yet
//!   feeds the all-zero input, whose softmaxed logits are row-constant.
//!   Those queries read [`RawModel::first_step_probs`] — computed once per
//!   weight snapshot — and contribute **zero** rows to the stacked forward.
//! * **Prefix deduplication + dead-sample compaction.** Per query, sample
//!   rows are represented by an interned *prefix id* (the tuple of codes
//!   sampled so far). The forward at round `v` runs over distinct live
//!   prefixes only; rows sharing a prefix share one computed distribution.
//!   The prefix table is rebuilt from the pairs drawn each round, so
//!   prefixes referenced only by dead rows vanish. Correctness rests on the
//!   model's forward being row-independent: `hidden()` and `logits_col()`
//!   compute each output row from its input row alone, so deduplicating
//!   identical rows cannot change any value.
//!
//! Equivalence with the sequential walk holds because each query draws from
//! its own seeded RNG, and within a query the draw order is identical:
//! ascending constrained column, then ascending row index over live rows.
//!
//! All tensor traffic — the stacked forward, the per-round probability
//! matrix, and every query's prefix table — lives in a caller-owned
//! [`BatchScratch`], so a warmed scratch serves batches with zero tensor
//! allocations.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use uae_tensor::Tensor;

use crate::encoding::VirtualSchema;
use crate::infer::sample_in_region;
use crate::model::{ModelScratch, RawModel};
use crate::vquery::{StepRegion, VirtualQuery};

/// Caller-owned buffers for [`progressive_sample_batch_with`]: the model
/// forward scratch, the stacked per-round input matrix, the prefix-table
/// rebuild buffer, and a pool of per-query prefix tensors that survives
/// across batches. Buffers grow to the largest batch seen and are reused.
#[derive(Debug, Default)]
pub struct BatchScratch {
    model: ModelScratch,
    /// Stacked distinct-prefix rows of every non-virgin round participant.
    stacked: Tensor,
    /// Rebuild target for prefix tables; swapped with each query's
    /// `prefix_rows` after a round, so the displaced buffer is recycled.
    spare: Tensor,
    /// Per-query-slot prefix tensors, taken at batch start and returned at
    /// batch end.
    prefix_pool: Vec<Tensor>,
    /// Query indices participating in the current round.
    round: Vec<usize>,
    /// Stacked-row offset per query (`usize::MAX` = not stacked).
    offsets: Vec<usize>,
    /// Prefix-id interner buffers, cleared per (query, round).
    intern: HashMap<(usize, u32), usize>,
    created: Vec<(usize, u32)>,
}

impl BatchScratch {
    /// Fresh, empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Numeric mode of the model forward pass driven through this scratch.
    /// Must match the mode the [`RawModel`] snapshot was built with.
    pub fn set_quant_mode(&mut self, mode: uae_tensor::QuantMode) {
        self.model.set_quant_mode(mode);
    }
}

/// Per-query sampler state between column rounds.
struct QueryState<'a> {
    vq: &'a VirtualQuery,
    rng: StdRng,
    last: usize,
    /// Distinct live sampled-prefix input rows (model-input encoding);
    /// borrowed from the scratch pool for the duration of the batch.
    prefix_rows: Tensor,
    /// Prefix id of each sample row; only meaningful while the row lives.
    row_prefix: Vec<usize>,
    p_hat: Vec<f64>,
    alive: Vec<bool>,
    /// Sampled hard codes per virtual column (split lo-steps look these up).
    sampled: Vec<Option<Vec<u32>>>,
    /// No code sampled yet: inputs are the all-wildcard zeros, so the
    /// memoized first-step distribution applies.
    virgin: bool,
    done: bool,
}

/// Estimate the selectivities of a batch of translated queries with `s`
/// progressive samples each, one RNG seed per query. Returns one value in
/// `[0, 1]` per query, bit-identical to running
/// [`crate::infer::progressive_sample`] per query with
/// `StdRng::seed_from_u64(seeds[i])`.
pub fn progressive_sample_batch(
    raw: &RawModel,
    schema: &VirtualSchema,
    vqs: &[VirtualQuery],
    s: usize,
    seeds: &[u64],
) -> Vec<f64> {
    let mut scratch = BatchScratch::new();
    progressive_sample_batch_with(raw, schema, vqs, s, seeds, &mut scratch)
}

/// [`progressive_sample_batch`] writing all tensor traffic into a
/// caller-owned [`BatchScratch`]. Bit-exact with the allocating path.
pub fn progressive_sample_batch_with(
    raw: &RawModel,
    schema: &VirtualSchema,
    vqs: &[VirtualQuery],
    s: usize,
    seeds: &[u64],
    scratch: &mut BatchScratch,
) -> Vec<f64> {
    assert_eq!(vqs.len(), seeds.len(), "one seed per query");
    let s = s.max(1);
    let width = schema.input_width();
    let BatchScratch { model, stacked, spare, prefix_pool, round, offsets, intern, created } =
        scratch;
    if prefix_pool.len() < vqs.len() {
        prefix_pool.resize_with(vqs.len(), Tensor::default);
    }
    let mut results = vec![0.0f64; vqs.len()];
    let mut states: Vec<Option<QueryState<'_>>> = Vec::with_capacity(vqs.len());
    let mut max_last = 0usize;
    for (i, vq) in vqs.iter().enumerate() {
        if vq.is_empty() {
            states.push(None);
            continue;
        }
        let Some(last) = vq.last_constrained() else {
            results[i] = 1.0; // no predicates
            states.push(None);
            continue;
        };
        max_last = max_last.max(last);
        let mut prefix_rows = std::mem::take(&mut prefix_pool[i]);
        prefix_rows.resize(1, width);
        prefix_rows.fill_zero();
        states.push(Some(QueryState {
            vq,
            rng: StdRng::seed_from_u64(seeds[i]),
            last,
            prefix_rows,
            row_prefix: vec![0; s],
            p_hat: vec![1.0; s],
            alive: vec![true; s],
            sampled: vec![None; schema.num_virtual()],
            virgin: true,
            done: false,
        }));
    }

    for v in 0..=max_last {
        if states.iter().all(Option::is_none) {
            break;
        }
        round.clear();
        round.extend(states.iter().enumerate().filter_map(|(i, st)| {
            let st = st.as_ref()?;
            (!st.done && v <= st.last && st.vq.step(v).is_constrained()).then_some(i)
        }));
        if round.is_empty() {
            continue;
        }

        // One stacked forward over the distinct live prefixes of every
        // non-virgin participant.
        offsets.clear();
        offsets.resize(states.len(), usize::MAX);
        let mut total_rows = 0usize;
        let mut any_virgin = false;
        for &i in round.iter() {
            let st = states[i].as_ref().expect("round member");
            if st.virgin {
                any_virgin = true;
                continue;
            }
            offsets[i] = total_rows;
            total_rows += st.prefix_rows.rows();
        }
        if total_rows > 0 {
            stacked.resize(total_rows, width);
            for &i in round.iter() {
                let st = states[i].as_ref().expect("round member");
                if st.virgin {
                    continue;
                }
                let dst_start = offsets[i] * width;
                let dst = &mut stacked.data_mut()[dst_start..dst_start + st.prefix_rows.len()];
                dst.copy_from_slice(st.prefix_rows.data());
            }
            raw.hidden_into(stacked, model);
            raw.logits_col_into(v, model);
            model.logits.softmax_rows_in_place();
        }
        let probs: Option<&Tensor> = (total_rows > 0).then_some(&model.logits);
        // Virgin participants all see the same memoized distribution.
        let first: Option<Arc<Vec<f32>>> = any_virgin.then(|| raw.first_step_probs(v));

        for &i in round.iter() {
            let st = states[i].as_mut().expect("round member");
            let offset = (offsets[i] != usize::MAX).then_some(offsets[i]);
            let first_row = first.as_ref().map(|a| a.as_slice());
            advance_query(raw, schema, st, v, probs, offset, first_row, spare, intern, created);
            if st.done {
                results[i] = st.p_hat.iter().sum::<f64>() / s as f64;
            }
        }
    }

    // Return the prefix tensors to the pool for the next batch.
    for (i, st) in states.into_iter().enumerate() {
        if let Some(st) = st {
            prefix_pool[i] = st.prefix_rows;
        }
    }
    results
}

/// Run one column round for one query, mirroring the per-step logic of
/// `progressive_sample` exactly (same kills, same p-hat updates, same RNG
/// consumption over live rows in ascending order).
#[allow(clippy::too_many_arguments)]
fn advance_query(
    raw: &RawModel,
    schema: &VirtualSchema,
    st: &mut QueryState<'_>,
    v: usize,
    probs: Option<&Tensor>,
    offset: Option<usize>,
    first: Option<&[f32]>,
    spare: &mut Tensor,
    intern: &mut HashMap<(usize, u32), usize>,
    created: &mut Vec<(usize, u32)>,
) {
    let s = st.p_hat.len();
    let domain = schema.codec(v).domain() as u32;
    let need_sample = v < st.last;
    let virgin = st.virgin;
    // Prefix-id interner for the codes drawn this round.
    intern.clear();
    created.clear();
    let mut codes = vec![0u32; s];

    let step = st.vq.step(v);
    if let StepRegion::Weighted(w) = step {
        // Fanout scaling: multiply by E[w(v) | z_<v] and importance-sample
        // from the reweighted conditional.
        // Range loop: `r` walks five parallel per-sample arrays at once.
        #[allow(clippy::needless_range_loop)]
        for r in 0..s {
            if !st.alive[r] {
                continue;
            }
            let row: &[f32] = if virgin {
                first.expect("first-step probs for virgin query")
            } else {
                let p = probs.expect("stacked probs for sampled query");
                p.row(offset.expect("stack offset") + st.row_prefix[r])
            };
            let p_w: f64 = row.iter().zip(w.iter()).map(|(&p, &wv)| p as f64 * wv).sum();
            if p_w <= 0.0 {
                st.p_hat[r] = 0.0;
                st.alive[r] = false;
                continue;
            }
            st.p_hat[r] *= p_w;
            if need_sample {
                let target: f64 = st.rng.random::<f64>() * p_w;
                let mut acc = 0.0f64;
                let mut code = domain - 1;
                for (c, (&p, &wv)) in row.iter().zip(w.iter()).enumerate() {
                    acc += p as f64 * wv;
                    if acc >= target {
                        code = c as u32;
                        break;
                    }
                }
                codes[r] = code;
                st.row_prefix[r] = intern_pair(intern, created, (st.row_prefix[r], code));
            }
        }
    } else {
        // Fixed regions are shared by every row; borrow them once instead
        // of cloning per row (split lo-regions depend on the sampled hi
        // code and stay per-row).
        let fixed_region = match step {
            StepRegion::Fixed(region) => Some(region),
            _ => None,
        };
        // Range loop: `r` walks five parallel per-sample arrays at once.
        #[allow(clippy::needless_range_loop)]
        for r in 0..s {
            if !st.alive[r] {
                continue;
            }
            let lo_region;
            let region = match (fixed_region, step) {
                (Some(region), _) => region,
                (None, StepRegion::LoOfSplit { hi_vcol, .. }) => {
                    let hi_code = st.sampled[*hi_vcol].as_ref().expect("hi sampled before lo")[r];
                    lo_region = st.vq.lo_region(v, hi_code, domain);
                    &lo_region
                }
                _ => unreachable!(),
            };
            let row: &[f32] = if virgin {
                first.expect("first-step probs for virgin query")
            } else {
                let p = probs.expect("stacked probs for sampled query");
                p.row(offset.expect("stack offset") + st.row_prefix[r])
            };
            let p_in: f64 = region.iter_codes().map(|c| row[c as usize] as f64).sum();
            if p_in <= 0.0 || region.is_empty() {
                st.p_hat[r] = 0.0;
                st.alive[r] = false;
                continue;
            }
            st.p_hat[r] *= p_in.min(1.0);
            if need_sample {
                let code = sample_in_region(row, region, p_in, &mut st.rng);
                codes[r] = code;
                st.row_prefix[r] = intern_pair(intern, created, (st.row_prefix[r], code));
            }
        }
    }

    if !need_sample {
        st.done = true; // v == last: the walk (and the estimate) is complete
        return;
    }
    st.sampled[v] = Some(codes);
    // Rebuild the prefix table from the pairs drawn this round into the
    // shared spare buffer, then swap it in. Prefixes referenced only by
    // dead rows are never interned, so they vanish here (dead-sample
    // compaction); the displaced buffer becomes the next rebuild target.
    let (bs, be) = schema.input_slice(v);
    spare.resize(created.len(), schema.input_width());
    for (id, &(parent, code)) in created.iter().enumerate() {
        let dst = spare.row_mut(id);
        dst.copy_from_slice(st.prefix_rows.row(parent));
        raw.encode_into(v, code, &mut dst[bs..be]);
    }
    std::mem::swap(&mut st.prefix_rows, spare);
    st.virgin = false;
    if created.is_empty() {
        // Every sample died; all later rounds would be no-ops with p̂ = 0.
        st.done = true;
    }
}

fn intern_pair(
    intern: &mut HashMap<(usize, u32), usize>,
    created: &mut Vec<(usize, u32)>,
    key: (usize, u32),
) -> usize {
    *intern.entry(key).or_insert_with(|| {
        created.push(key);
        created.len() - 1
    })
}
