//! # uae-core — the UAE unified deep autoregressive cardinality estimator
//!
//! A from-scratch Rust implementation of *"A Unified Deep Model of Learning
//! from both Data and Queries for Cardinality Estimation"* (Wu & Cong,
//! SIGMOD 2021):
//!
//! * [`encoding`] — binary tuple encoding with presence-bit wildcards and
//!   column factorization for large NDVs (§4.2, §4.6);
//! * [`model`] — ResMADE, the masked autoregressive MLP (§4.2);
//! * [`vquery`] — query regions translated to virtual columns;
//! * [`infer`] — progressive sampling for range queries (§4.2);
//! * [`dps`] — **differentiable progressive sampling** via the
//!   Gumbel-Softmax trick (§4.3, Algorithms 1–2) — the paper's core
//!   contribution, enabling query-supervised training of an
//!   autoregressive density model;
//! * [`train`] — the data loss (Eq. 2), the Q-error query loss (Eq. 5–6)
//!   and hybrid training (Eq. 11, Algorithm 3);
//! * [`estimator`] — the public [`Uae`] type: UAE-D (≡ Naru), UAE-Q, full
//!   hybrid UAE, and incremental data/workload ingestion (§4.5);
//! * [`serve`] — the hardened serving layer: typed query validation, the
//!   retry → histogram-baseline fallback cascade, and deterministic fault
//!   injection ([`FaultPlan`]).
//!
//! ```no_run
//! use uae_core::{Uae, UaeConfig};
//! use uae_query::{generate_workload, WorkloadSpec, CardEstimator};
//! use std::collections::HashSet;
//!
//! let table = uae_data::census_like(10_000, 42);
//! let workload = generate_workload(
//!     &table,
//!     &WorkloadSpec::in_workload(0, 500, 1),
//!     &HashSet::new(),
//! );
//! let mut uae = Uae::new(&table, UaeConfig::default());
//! uae.train_hybrid(&workload, 10);
//! let card = uae.estimate_card(&workload[0].query);
//! ```

pub mod dps;
pub mod encoding;
pub mod estimator;
pub mod infer;
pub mod infer_batch;
pub mod model;
pub mod online;
pub mod ordering;
pub mod persist;
pub mod route;
pub mod serialize;
pub mod serve;
pub mod sf;
pub mod telemetry;
pub mod train;
pub mod vquery;

pub use dps::DpsConfig;
pub use encoding::VirtualSchema;
pub use estimator::{Uae, UaeConfig};
pub use infer::InferScratch;
pub use infer_batch::BatchScratch;
pub use model::{ModelScratch, ResMade, ResMadeConfig};
pub use online::{
    shadow_score, GateConfig, GateDecision, OnlineConfig, OnlineFaultPlan, OnlineTrainer,
    PoolStats, QueryPool, RoundOutcome, RoundReport, ShadowScore,
};
pub use ordering::ColumnOrder;
pub use persist::{
    append_bytes, persist_bytes, quarantine, DiskFaultKind, DiskFaultPlan, DiskFaults, Journal,
    JournalRecord, JournalReplay, PersistError, JOURNAL_FILE,
};
pub use route::{
    BackendChoice, QueryShape, RouteConfig, RouteDecision, RouteFeaturizer, RoutePolicy,
    RoutedFleet, Router, SelClass,
};
pub use serialize::{CheckpointError, LoadError};
pub use serve::{
    validate_query, Estimate, EstimateError, EstimateSource, FaultPlan, ServeConfig, Validation,
};
pub use telemetry::{
    EpochMetrics, FlushReason, JsonlObserver, MemoryObserver, OnlineEvent, OnlineMemoryObserver,
    OnlineObserver, RecoveryEvent, RecoveryMemoryObserver, RecoveryObserver, ServeEvent,
    ServeMemoryObserver, ServeObserver, ServeStats, TrainEvent, TrainObserver, TrainStats,
};
pub use train::{TrainConfig, TrainQuery};
pub use uae_tensor::QuantMode;
pub use vquery::VirtualQuery;
