//! ResMADE — the masked autoregressive MLP used by UAE (paper §4.2,
//! architecture from Nash & Durkan's Autoregressive Energy Machines).
//!
//! Masks enforce the autoregressive property: the logits of virtual column
//! `i` depend only on the *input blocks* of columns `< i` (left-to-right
//! order, which the paper adopts). Hidden units carry a degree
//! `m ∈ [1, n-1]`; connections are allowed from degree `a` to degree `b`
//! when `a <= b` between hidden layers, `deg(input) <= m` into the first
//! layer, and `m < deg(output)` into the output layer. Residual blocks
//! reuse one degree assignment, so identity skips are mask-consistent.

use std::sync::Arc;

use uae_tensor::quant::{self, QuantMatrix, QuantMode};
use uae_tensor::rng::he_uniform;
use uae_tensor::simd;
use uae_tensor::tensor::{add_bias_assign, add_bias_relu_assign, matmul_masked_into};
use uae_tensor::{NodeId, ParamId, ParamStore, Tape, Tensor};

use crate::encoding::{EncodingMode, VirtualSchema};

/// Hyper-parameters of the ResMADE network.
#[derive(Debug, Clone)]
pub struct ResMadeConfig {
    /// Hidden width (the paper uses 128).
    pub hidden: usize,
    /// Number of residual blocks (the paper's "2 hidden layers" ≈ 1 block
    /// plus the input layer).
    pub blocks: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl Default for ResMadeConfig {
    fn default() -> Self {
        ResMadeConfig { hidden: 128, blocks: 1, seed: 0x5eed }
    }
}

/// The masked autoregressive network. Parameters live in a [`ParamStore`];
/// the struct itself holds ids, masks and shape metadata only.
#[derive(Debug, Clone)]
pub struct ResMade {
    input_width: usize,
    logit_width: usize,
    hidden: usize,
    w_in: ParamId,
    b_in: ParamId,
    blocks: Vec<BlockParams>,
    w_out: ParamId,
    b_out: ParamId,
    mask_in: Arc<Tensor>,
    mask_hidden: Arc<Tensor>,
    mask_out: Arc<Tensor>,
    /// Per-virtual-column logit slices, copied from the schema.
    logit_slices: Vec<(usize, usize)>,
    /// Per-virtual-column input encoding tables (`E_v` with
    /// `E_v[code] = encoded input block`): constant binary matrices or
    /// learnable embeddings (§4.6).
    enc: Vec<EncTable>,
}

#[derive(Debug, Clone)]
enum EncTable {
    /// Fixed binary encoding matrix.
    Const(Arc<Tensor>),
    /// Learnable embedding parameter.
    Learned(ParamId),
}

#[derive(Debug, Clone)]
struct BlockParams {
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
}

impl ResMade {
    /// Create the network for `schema`, registering parameters in `store`.
    pub fn new(store: &mut ParamStore, schema: &VirtualSchema, cfg: &ResMadeConfig) -> Self {
        let (input_deg, logit_deg) = schema.degrees();
        let input_width = schema.input_width();
        let logit_width = schema.logit_width();
        let n = schema.num_virtual();
        let hidden = cfg.hidden;

        // Hidden degrees cycle over 1..=n-1 (or all 0 for a 1-column table,
        // where the single output must connect to nothing).
        let hidden_deg: Vec<usize> =
            (0..hidden).map(|h| if n > 1 { (h % (n - 1)) + 1 } else { 0 }).collect();

        let mask_in = {
            let mut m = Tensor::zeros(input_width, hidden);
            for (i, &di) in input_deg.iter().enumerate() {
                for (h, &mh) in hidden_deg.iter().enumerate() {
                    if di <= mh {
                        m.set(i, h, 1.0);
                    }
                }
            }
            Arc::new(m)
        };
        let mask_hidden = {
            let mut m = Tensor::zeros(hidden, hidden);
            for (a, &ma) in hidden_deg.iter().enumerate() {
                for (b, &mb) in hidden_deg.iter().enumerate() {
                    if ma <= mb {
                        m.set(a, b, 1.0);
                    }
                }
            }
            Arc::new(m)
        };
        let mask_out = {
            let mut m = Tensor::zeros(hidden, logit_width);
            for (h, &mh) in hidden_deg.iter().enumerate() {
                for (o, &dout) in logit_deg.iter().enumerate() {
                    if mh < dout {
                        m.set(h, o, 1.0);
                    }
                }
            }
            Arc::new(m)
        };

        let mut rng = uae_tensor::rng::seeded_rng(cfg.seed);
        let w_in = store.add("w_in", he_uniform(&mut rng, input_width, hidden));
        let b_in = store.add("b_in", Tensor::zeros(1, hidden));
        let blocks = (0..cfg.blocks)
            .map(|i| BlockParams {
                w1: store.add(format!("blk{i}.w1"), he_uniform(&mut rng, hidden, hidden)),
                b1: store.add(format!("blk{i}.b1"), Tensor::zeros(1, hidden)),
                w2: store.add(format!("blk{i}.w2"), he_uniform(&mut rng, hidden, hidden)),
                b2: store.add(format!("blk{i}.b2"), Tensor::zeros(1, hidden)),
            })
            .collect();
        let w_out = store.add("w_out", he_uniform(&mut rng, hidden, logit_width));
        let b_out = store.add("b_out", Tensor::zeros(1, logit_width));

        let logit_slices = (0..n).map(|v| schema.logit_slice(v)).collect();

        let enc = (0..n)
            .map(|v| match schema.mode() {
                EncodingMode::Binary => EncTable::Const(Arc::new(schema.codec(v).soft_matrix())),
                EncodingMode::Embedding { dim } => {
                    let domain = schema.codec(v).domain();
                    EncTable::Learned(
                        store.add(format!("emb{v}"), he_uniform(&mut rng, domain, dim)),
                    )
                }
            })
            .collect();

        ResMade {
            input_width,
            logit_width,
            hidden,
            w_in,
            b_in,
            blocks,
            w_out,
            b_out,
            mask_in,
            mask_hidden,
            mask_out,
            logit_slices,
            enc,
        }
    }

    /// Build the model-input node for a batch of virtual-code rows:
    /// constant binary encodings, or tape-level embedding lookups whose
    /// gradients train the embedding tables.
    pub fn input_node(
        &self,
        tape: &mut Tape<'_>,
        schema: &VirtualSchema,
        rows: &[Vec<u32>],
        wildcards: Option<&[Vec<bool>]>,
    ) -> NodeId {
        match schema.mode() {
            EncodingMode::Binary => tape.input(schema.encode_batch(rows, wildcards)),
            EncodingMode::Embedding { .. } => {
                let blocks: Vec<NodeId> = (0..schema.num_virtual())
                    .map(|v| {
                        let idx: Arc<Vec<u32>> = Arc::new(
                            rows.iter()
                                .enumerate()
                                .map(|(r, codes)| {
                                    if wildcards.is_some_and(|w| w[r][v]) {
                                        u32::MAX
                                    } else {
                                        codes[v]
                                    }
                                })
                                .collect(),
                        );
                        let table = self.enc_node(tape, v);
                        tape.embed_rows(table, idx)
                    })
                    .collect();
                tape.concat_cols(&blocks)
            }
        }
    }

    /// Embed a *soft* one-hot sample into input space: `y @ E_v`
    /// (differentiable both through `y` and, for learnable encodings,
    /// through `E_v`).
    pub fn soft_block(&self, tape: &mut Tape<'_>, v: usize, y: NodeId) -> NodeId {
        let e = self.enc_node(tape, v);
        tape.matmul(y, e)
    }

    fn enc_node(&self, tape: &mut Tape<'_>, v: usize) -> NodeId {
        match &self.enc[v] {
            EncTable::Const(t) => tape.input((**t).clone()),
            EncTable::Learned(id) => tape.param(*id),
        }
    }

    /// Model input dimension.
    pub fn input_width(&self) -> usize {
        self.input_width
    }

    /// Model output (logit) dimension.
    pub fn logit_width(&self) -> usize {
        self.logit_width
    }

    /// Hidden layer width.
    pub fn hidden_width(&self) -> usize {
        self.hidden
    }

    /// Logit slice of a virtual column.
    pub fn logit_slice(&self, v: usize) -> (usize, usize) {
        self.logit_slices[v]
    }

    /// Hidden representation on a tape (shared by all logit heads).
    pub fn hidden_tape(&self, tape: &mut Tape<'_>, x: NodeId) -> NodeId {
        let w = tape.param(self.w_in);
        let b = tape.param(self.b_in);
        let h = tape.matmul_masked(x, w, Arc::clone(&self.mask_in));
        let h = tape.add_bias(h, b);
        let mut h = tape.relu(h);
        for blk in &self.blocks {
            let w1 = tape.param(blk.w1);
            let b1 = tape.param(blk.b1);
            let w2 = tape.param(blk.w2);
            let b2 = tape.param(blk.b2);
            let t = tape.matmul_masked(h, w1, Arc::clone(&self.mask_hidden));
            let t = tape.add_bias(t, b1);
            let t = tape.relu(t);
            let t = tape.matmul_masked(t, w2, Arc::clone(&self.mask_hidden));
            let t = tape.add_bias(t, b2);
            h = tape.add(h, t);
        }
        tape.relu(h)
    }

    /// Full logits on a tape (used by the data loss).
    pub fn forward_tape(&self, tape: &mut Tape<'_>, x: NodeId) -> NodeId {
        let h = self.hidden_tape(tape, x);
        let w = tape.param(self.w_out);
        let b = tape.param(self.b_out);
        let y = tape.matmul_masked(h, w, Arc::clone(&self.mask_out));
        tape.add_bias(y, b)
    }

    /// Logits of a single virtual column on a tape (used by DPS, which
    /// never needs the full output layer at once).
    pub fn logits_col_tape(&self, tape: &mut Tape<'_>, hidden: NodeId, v: usize) -> NodeId {
        let (s, e) = self.logit_slices[v];
        let w = tape.param(self.w_out);
        let wv = tape.slice_cols(w, s, e);
        let b = tape.param(self.b_out);
        let bv = tape.slice_cols(b, s, e);
        let mask = Arc::new(self.mask_out.slice_cols(s, e));
        let y = tape.matmul_masked(hidden, wv, mask);
        tape.add_bias(y, bv)
    }

    /// Pre-masked weight snapshot for fast tape-free inference
    /// (progressive sampling runs many forwards per query). Equivalent to
    /// [`ResMade::snapshot_with`] in [`QuantMode::F32`].
    pub fn snapshot(&self, store: &ParamStore) -> RawModel {
        self.snapshot_with(store, QuantMode::F32)
    }

    /// Weight snapshot with an explicit inference numeric mode.
    ///
    /// Unless the scalar reference backend is forced (`UAE_FORCE_SCALAR=1`),
    /// the snapshot stores weights in the **packed** layout: hidden units
    /// are permuted by ascending MADE degree, which turns every masked
    /// weight row into a dense panel behind a contiguous zero prefix
    /// (recorded in per-row `starts`) and every output head into a
    /// contiguous *row prefix* of the hidden state (recorded in
    /// `head_rows`). The forward then never multiplies structurally-masked
    /// weights at all. The permutation is exact — it only reorders the
    /// hidden basis consistently across layers — but it reorders f32
    /// accumulation, so the forced-scalar path keeps the plain layout to
    /// stay bit-identical with the pre-SIMD engine.
    ///
    /// With [`QuantMode::Int8`] the snapshot additionally carries
    /// per-column symmetric int8 panels for every matmul operand
    /// (inference-only: the [`ParamStore`] and checkpoint bytes are
    /// untouched). Scratches opt in via [`ModelScratch::set_quant_mode`].
    pub fn snapshot_with(&self, store: &ParamStore, mode: QuantMode) -> RawModel {
        let masked = |w: ParamId, m: &Tensor| store.get(w).zip(m, |a, b| a * b);
        let mut w_in = masked(self.w_in, &self.mask_in);
        let mut b_in = store.get(self.b_in).clone();
        let mut blocks: Vec<RawBlock> = self
            .blocks
            .iter()
            .map(|blk| RawBlock {
                w1: masked(blk.w1, &self.mask_hidden),
                b1: store.get(blk.b1).clone(),
                w2: masked(blk.w2, &self.mask_hidden),
                b2: store.get(blk.b2).clone(),
            })
            .collect();
        let mut w_out = masked(self.w_out, &self.mask_out);
        let b_out = store.get(self.b_out).clone();

        let packed = if simd::packed_enabled() {
            let n = self.logit_slices.len();
            let hidden_deg: Vec<usize> =
                (0..self.hidden).map(|h| if n > 1 { (h % (n - 1)) + 1 } else { 0 }).collect();
            // Stable sort: uniform degrees keep the identity permutation.
            let mut perm: Vec<usize> = (0..self.hidden).collect();
            perm.sort_by_key(|&h| hidden_deg[h]);

            w_in = permute_cols(&w_in, &perm);
            b_in = permute_cols(&b_in, &perm);
            for blk in &mut blocks {
                blk.w1 = permute_cols(&permute_rows(&blk.w1, &perm), &perm);
                blk.b1 = permute_cols(&blk.b1, &perm);
                blk.w2 = permute_cols(&permute_rows(&blk.w2, &perm), &perm);
                blk.b2 = permute_cols(&blk.b2, &perm);
            }
            w_out = permute_rows(&w_out, &perm);

            // Suffix starts come from the masks (not the weights, which can
            // be zero by coincidence): permuted-ascending degrees make each
            // mask row `0…0 1…1`.
            let start_in: Vec<u32> = (0..self.input_width)
                .map(|i| suffix_start(&perm, |h| self.mask_in.at(i, h) != 0.0))
                .collect();
            let start_h: Vec<u32> = perm
                .iter()
                .map(|&a| suffix_start(&perm, |b| self.mask_hidden.at(a, b) != 0.0))
                .collect();
            // Heads see a row *prefix*: hidden degrees strictly below the
            // column's output degree sort first. All logits of one virtual
            // column share a degree, so one count per head suffices.
            let head_rows: Vec<usize> = self
                .logit_slices
                .iter()
                .map(|&(s, e)| {
                    let live = perm.iter().filter(|&&h| self.mask_out.at(h, s) != 0.0).count();
                    debug_assert!(
                        (s..e).all(|o| {
                            perm[..live].iter().all(|&h| self.mask_out.at(h, o) != 0.0)
                                && perm[live..].iter().all(|&h| self.mask_out.at(h, o) == 0.0)
                        }),
                        "head rows must be a shared prefix"
                    );
                    live
                })
                .collect();
            Some(Packed { start_in, start_h, head_rows })
        } else {
            None
        };

        // Pre-slice the per-column output heads once per snapshot, so
        // `logits_col_into` never slices in the per-round hot loop.
        let w_out_cols: Vec<Tensor> =
            self.logit_slices.iter().map(|&(s, e)| w_out.slice_cols(s, e)).collect();
        let b_out_cols = self.logit_slices.iter().map(|&(s, e)| b_out.slice_cols(s, e)).collect();

        let quant = match mode {
            QuantMode::F32 => None,
            QuantMode::Int8 => Some(QuantModel {
                // The packed starts carry over: they bound the per-column
                // reduction depth of the integer kernels exactly like the
                // f32 path's prefix skipping, at identical results (the
                // pruned weights quantize to integer zero).
                w_in: QuantMatrix::quantize_packed(
                    &w_in,
                    w_in.rows(),
                    packed.as_ref().map(|p| p.start_in.as_slice()),
                ),
                blocks: blocks
                    .iter()
                    .map(|blk| {
                        let st = packed.as_ref().map(|p| p.start_h.as_slice());
                        QuantBlock {
                            w1: QuantMatrix::quantize_packed(&blk.w1, blk.w1.rows(), st),
                            w2: QuantMatrix::quantize_packed(&blk.w2, blk.w2.rows(), st),
                        }
                    })
                    .collect(),
                heads: w_out_cols
                    .iter()
                    .enumerate()
                    .map(|(v, w)| {
                        let k = packed.as_ref().map_or(w.rows(), |p| p.head_rows[v]);
                        QuantMatrix::quantize(w, k)
                    })
                    .collect(),
            }),
        };

        RawModel {
            zero_row: Tensor::zeros(1, self.input_width),
            w_in,
            b_in,
            blocks,
            w_out,
            b_out,
            w_out_cols,
            b_out_cols,
            logit_slices: self.logit_slices.clone(),
            enc: self
                .enc
                .iter()
                .map(|e| match e {
                    EncTable::Const(t) => (**t).clone(),
                    EncTable::Learned(id) => store.get(*id).clone(),
                })
                .collect(),
            packed,
            quant,
            first_step: parking_lot::Mutex::new(std::collections::HashMap::new()),
        }
    }
}

/// `out[:, j] = t[:, perm[j]]`.
fn permute_cols(t: &Tensor, perm: &[usize]) -> Tensor {
    let mut out = Tensor::zeros(t.rows(), t.cols());
    for r in 0..t.rows() {
        let src = t.row(r);
        for (j, &p) in perm.iter().enumerate() {
            out.set(r, j, src[p]);
        }
    }
    out
}

/// `out[i, :] = t[perm[i], :]`.
fn permute_rows(t: &Tensor, perm: &[usize]) -> Tensor {
    let mut out = Tensor::zeros(t.rows(), t.cols());
    for (i, &p) in perm.iter().enumerate() {
        out.row_mut(i).copy_from_slice(t.row(p));
    }
    out
}

/// First position in permuted order where `live` holds, as a dense-suffix
/// start offset (`len` when the whole row is masked out).
fn suffix_start(perm: &[usize], live: impl Fn(usize) -> bool) -> u32 {
    let first = perm.iter().position(|&h| live(h)).unwrap_or(perm.len());
    debug_assert!(
        perm[first..].iter().all(|&h| live(h)),
        "mask must be a contiguous suffix after degree sort"
    );
    first as u32
}

/// Caller-owned forward buffers for [`RawModel::hidden_into`] /
/// [`RawModel::logits_col_into`]. Holding one per serving thread (the
/// estimator keeps one inside its inference cache) makes steady-state
/// forwards allocation-free: buffers grow to the largest batch seen and are
/// reused across rounds, queries, and batches.
#[derive(Debug, Default)]
pub struct ModelScratch {
    /// Hidden activations of the current batch (`rows x hidden`).
    pub(crate) h: Tensor,
    /// Residual-block temporaries.
    t: Tensor,
    t2: Tensor,
    /// Per-column logits (softmaxed in place by the inference drivers).
    pub(crate) logits: Tensor,
    /// Numeric mode of forwards driven through this scratch. Int8 only
    /// takes effect when the snapshot carries quantized panels.
    mode: QuantMode,
    /// Quantized-activation staging (row-major `rows x padded_k`) and the
    /// per-row symmetric scales, reused across layers/rounds/queries.
    qa: Vec<i16>,
    qscale: Vec<f32>,
}

impl ModelScratch {
    /// Fresh, empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the numeric mode for forwards using this scratch. Int8 is
    /// honored only when the model snapshot was built with
    /// [`QuantMode::Int8`]; otherwise forwards silently stay f32.
    pub fn set_quant_mode(&mut self, mode: QuantMode) {
        self.mode = mode;
    }

    /// The configured numeric mode.
    pub fn quant_mode(&self) -> QuantMode {
        self.mode
    }
}

/// Quantize every row prefix (`..k_limit`) of `x` into `qa` (stride
/// `padded_k`), recording per-row scales. Plain `Vec` buffers: they grow to
/// the largest batch seen and are invisible to the tensor allocation
/// counter, preserving the steady-state zero-alloc guarantee.
fn quantize_rows(
    x: &Tensor,
    k_limit: usize,
    padded_k: usize,
    qa: &mut Vec<i16>,
    qscale: &mut Vec<f32>,
) {
    let rows = x.rows();
    qa.resize(rows * padded_k, 0);
    qscale.resize(rows, 0.0);
    for r in 0..rows {
        qscale[r] =
            quant::quantize_row(&x.row(r)[..k_limit], &mut qa[r * padded_k..(r + 1) * padded_k]);
    }
}

/// Pre-masked weights for tape-free forwards.
#[derive(Debug)]
pub struct RawModel {
    /// The all-wildcard (all-zero) model input row, built once per snapshot
    /// so round-0 sampling and `first_step_probs` never re-allocate it.
    zero_row: Tensor,
    w_in: Tensor,
    b_in: Tensor,
    blocks: Vec<RawBlock>,
    w_out: Tensor,
    b_out: Tensor,
    /// Per-virtual-column slices of `w_out`/`b_out`, pre-cut once per
    /// snapshot so the per-round head matmul works on contiguous weights
    /// without slicing.
    w_out_cols: Vec<Tensor>,
    b_out_cols: Vec<Tensor>,
    logit_slices: Vec<(usize, usize)>,
    /// Materialized per-column input encodings (`enc[v].row(code)`).
    enc: Vec<Tensor>,
    /// Packed-layout metadata (`None` on the forced-scalar reference path):
    /// dense-suffix starts for the input/hidden matmuls and per-head live
    /// row prefixes. See [`ResMade::snapshot_with`].
    packed: Option<Packed>,
    /// Int8 panels for every matmul operand; `None` for f32 snapshots.
    quant: Option<QuantModel>,
    /// Memoized first-step distributions, keyed by virtual column: the
    /// first constrained column of every query sees the all-wildcard
    /// (all-zero) input, so its softmaxed logits are identical across all
    /// sample rows and across queries. Weight changes invalidate this
    /// implicitly — `ResMade::snapshot` builds a fresh `RawModel` (with an
    /// empty cache) and the estimator drops its snapshot on every training
    /// step and weight load.
    first_step: parking_lot::Mutex<std::collections::HashMap<usize, std::sync::Arc<Vec<f32>>>>,
}

impl Clone for RawModel {
    fn clone(&self) -> Self {
        RawModel {
            zero_row: self.zero_row.clone(),
            w_in: self.w_in.clone(),
            b_in: self.b_in.clone(),
            blocks: self.blocks.clone(),
            w_out: self.w_out.clone(),
            b_out: self.b_out.clone(),
            w_out_cols: self.w_out_cols.clone(),
            b_out_cols: self.b_out_cols.clone(),
            logit_slices: self.logit_slices.clone(),
            enc: self.enc.clone(),
            packed: self.packed.clone(),
            quant: self.quant.clone(),
            // The memo is derived state; a fresh clone recomputes on demand.
            first_step: parking_lot::Mutex::new(std::collections::HashMap::new()),
        }
    }
}

#[derive(Debug, Clone)]
struct RawBlock {
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
}

/// Packed-layout metadata; see [`ResMade::snapshot_with`].
#[derive(Debug, Clone)]
struct Packed {
    /// Per input row: first live (non-masked) hidden column of `w_in`.
    start_in: Vec<u32>,
    /// Per hidden row: first live hidden column of each block matmul.
    start_h: Vec<u32>,
    /// Per virtual column: number of leading hidden rows its head reads.
    head_rows: Vec<usize>,
}

/// Int8 snapshot panels (inference-only; never serialized).
#[derive(Debug, Clone)]
struct QuantModel {
    w_in: QuantMatrix,
    blocks: Vec<QuantBlock>,
    heads: Vec<QuantMatrix>,
}

#[derive(Debug, Clone)]
struct QuantBlock {
    w1: QuantMatrix,
    w2: QuantMatrix,
}

impl RawModel {
    /// Hidden representation of a batch (rows = samples). Allocating
    /// convenience wrapper around [`RawModel::hidden_into`]; serving paths
    /// hold a [`ModelScratch`] instead.
    pub fn hidden(&self, x: &Tensor) -> Tensor {
        let mut s = ModelScratch::new();
        self.hidden_into(x, &mut s);
        s.h
    }

    /// Hidden representation written into `s.h`, reusing every buffer in
    /// `s`. Bit-exact with [`RawModel::hidden`] for a scratch in the same
    /// numeric mode (the allocating wrapper always runs f32).
    pub fn hidden_into(&self, x: &Tensor, s: &mut ModelScratch) {
        if s.mode == QuantMode::Int8 && self.quant.is_some() {
            return self.hidden_into_quant(x, s);
        }
        let (si, sh) = match &self.packed {
            Some(p) => (Some(p.start_in.as_slice()), Some(p.start_h.as_slice())),
            None => (None, None),
        };
        let ModelScratch { h, t, t2, .. } = s;
        matmul_masked_into(x, &self.w_in, si, x.cols(), h, false);
        add_bias_relu_assign(h, &self.b_in);
        for blk in &self.blocks {
            matmul_masked_into(h, &blk.w1, sh, h.cols(), t, false);
            add_bias_relu_assign(t, &blk.b1);
            matmul_masked_into(t, &blk.w2, sh, t.cols(), t2, false);
            add_bias_assign(t2, &blk.b2);
            h.add_assign(t2);
        }
        h.map_in_place(|v| v.max(0.0));
    }

    /// Int8 forward: weights come from the snapshot panels, activations are
    /// re-quantized per row before each matmul, accumulation is exact i32,
    /// and all epilogues (bias, ReLU, residual) stay f32.
    fn hidden_into_quant(&self, x: &Tensor, s: &mut ModelScratch) {
        let q = self.quant.as_ref().expect("quant panels checked by caller");
        let rows = x.rows();
        let hidden = self.b_in.cols();
        let ModelScratch { h, t, t2, qa, qscale, .. } = s;

        quantize_rows(x, q.w_in.k_limit(), q.w_in.padded_k(), qa, qscale);
        h.resize(rows, hidden);
        let pk = q.w_in.padded_k();
        for r in 0..rows {
            quant::qmatmul_row(&qa[r * pk..(r + 1) * pk], &q.w_in, qscale[r], h.row_mut(r));
        }
        add_bias_relu_assign(h, &self.b_in);
        for (blk, qb) in self.blocks.iter().zip(&q.blocks) {
            quantize_rows(h, qb.w1.k_limit(), qb.w1.padded_k(), qa, qscale);
            t.resize(rows, hidden);
            let pk = qb.w1.padded_k();
            for r in 0..rows {
                quant::qmatmul_row(&qa[r * pk..(r + 1) * pk], &qb.w1, qscale[r], t.row_mut(r));
            }
            add_bias_relu_assign(t, &blk.b1);
            quantize_rows(t, qb.w2.k_limit(), qb.w2.padded_k(), qa, qscale);
            t2.resize(rows, hidden);
            let pk = qb.w2.padded_k();
            for r in 0..rows {
                quant::qmatmul_row(&qa[r * pk..(r + 1) * pk], &qb.w2, qscale[r], t2.row_mut(r));
            }
            add_bias_assign(t2, &blk.b2);
            h.add_assign(t2);
        }
        h.map_in_place(|v| v.max(0.0));
    }

    /// Logits of one virtual column given hidden states. Allocating
    /// convenience wrapper around [`RawModel::logits_col_into`].
    pub fn logits_col(&self, hidden: &Tensor, v: usize) -> Tensor {
        let mut y = hidden.matmul(&self.w_out_cols[v]);
        add_bias_assign(&mut y, &self.b_out_cols[v]);
        y
    }

    /// Logits of virtual column `v` for the hidden states in `s.h`,
    /// written into `s.logits`. Uses the pre-sliced per-column head — and,
    /// in the packed layout, only the prefix of hidden rows the head's MADE
    /// degree can legally read — so no slicing, no allocation, and no
    /// structurally-zero multiplies happen per call.
    pub fn logits_col_into(&self, v: usize, s: &mut ModelScratch) {
        if s.mode == QuantMode::Int8 {
            if let Some(q) = &self.quant {
                let head = &q.heads[v];
                let rows = s.h.rows();
                let (pk, kl) = (head.padded_k(), head.k_limit());
                let ModelScratch { h, logits, qa, qscale, .. } = s;
                quantize_rows(h, kl, pk, qa, qscale);
                logits.resize(rows, head.cols());
                for r in 0..rows {
                    quant::qmatmul_row(
                        &qa[r * pk..(r + 1) * pk],
                        head,
                        qscale[r],
                        logits.row_mut(r),
                    );
                }
                add_bias_assign(logits, &self.b_out_cols[v]);
                return;
            }
        }
        let k_limit = self.packed.as_ref().map_or(s.h.cols(), |p| p.head_rows[v]);
        let ModelScratch { h, logits, .. } = s;
        matmul_masked_into(h, &self.w_out_cols[v], None, k_limit, logits, false);
        add_bias_assign(logits, &self.b_out_cols[v]);
    }

    /// Model input dimension.
    pub fn input_width(&self) -> usize {
        self.w_in.rows()
    }

    /// The cached all-wildcard (all-zero) input row.
    pub fn zero_row(&self) -> &Tensor {
        &self.zero_row
    }

    /// Write the encoded input block of `code` on column `v` into `out`
    /// (a slice of a model-input row).
    pub fn encode_into(&self, v: usize, code: u32, out: &mut [f32]) {
        out.copy_from_slice(self.enc[v].row(code as usize));
    }

    /// Softmaxed distribution of virtual column `v` under the all-wildcard
    /// input — the distribution every query sees at its *first* constrained
    /// column, where nothing has been sampled yet and the model input is
    /// all zeros. The result is row-constant across any sample batch, so
    /// it is computed once per snapshot and memoized; repeated calls return
    /// the same `Arc` until the estimator takes a fresh snapshot.
    pub fn first_step_probs(&self, v: usize) -> std::sync::Arc<Vec<f32>> {
        if let Some(p) = self.first_step.lock().get(&v) {
            return p.clone();
        }
        let h = self.hidden(&self.zero_row);
        let mut logits = self.logits_col(&h, v);
        logits.softmax_rows_in_place();
        let probs = std::sync::Arc::new(logits.row(0).to_vec());
        self.first_step.lock().insert(v, probs.clone());
        probs
    }

    /// Full logits (all columns).
    pub fn logits(&self, x: &Tensor) -> Tensor {
        let h = self.hidden(x);
        let mut y = h.matmul(&self.w_out);
        add_bias_assign(&mut y, &self.b_out);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::{Table, Value};

    fn schema(domains: &[usize]) -> (Table, VirtualSchema) {
        let rows = 16;
        let cols = domains
            .iter()
            .enumerate()
            .map(|(j, &d)| {
                let vals: Vec<Value> =
                    (0..rows).map(|r| Value::Int(((r + j) % d) as i64)).collect();
                (format!("c{j}"), vals)
            })
            .collect();
        let t = Table::from_columns("t", cols);
        let s = VirtualSchema::build(&t, usize::MAX);
        (t, s)
    }

    /// The defining MADE property: logits of column `i` must not change when
    /// inputs of columns `>= i` change.
    #[test]
    fn autoregressive_property_holds() {
        let (_, s) = schema(&[4, 5, 3]);
        let mut store = ParamStore::new();
        let model = ResMade::new(&mut store, &s, &ResMadeConfig { hidden: 32, blocks: 2, seed: 1 });
        let raw = model.snapshot(&store);

        let base_rows = vec![vec![1u32, 2, 0]];
        let x0 = s.encode_batch(&base_rows, None);
        let y0 = raw.logits(&x0);

        // Perturb column 1 and 2 inputs; column 0's and column 1's logits
        // must be unaffected by changes at or after their own position.
        let pert_rows = vec![vec![1u32, 4, 2]];
        let x1 = s.encode_batch(&pert_rows, None);
        let y1 = raw.logits(&x1);

        let (s0, e0) = s.logit_slice(0);
        for c in s0..e0 {
            assert!((y0.at(0, c) - y1.at(0, c)).abs() < 1e-6, "col 0 logits leaked");
        }
        let (s1, e1) = s.logit_slice(1);
        for c in s1..e1 {
            assert!((y0.at(0, c) - y1.at(0, c)).abs() < 1e-6, "col 1 logits must ignore col >= 1");
        }
        // Column 2's logits SHOULD change when column 1 changes.
        let (s2, e2) = s.logit_slice(2);
        let changed = (s2..e2).any(|c| (y0.at(0, c) - y1.at(0, c)).abs() > 1e-6);
        assert!(changed, "col 2 logits must depend on col 1");
    }

    #[test]
    fn first_column_depends_on_nothing() {
        let (_, s) = schema(&[7, 3]);
        let mut store = ParamStore::new();
        let model = ResMade::new(&mut store, &s, &ResMadeConfig { hidden: 16, blocks: 1, seed: 2 });
        let raw = model.snapshot(&store);
        let a = raw.logits(&s.encode_batch(&[vec![0, 0]], None));
        let b = raw.logits(&s.encode_batch(&[vec![6, 2]], None));
        let (s0, e0) = s.logit_slice(0);
        for c in s0..e0 {
            assert!((a.at(0, c) - b.at(0, c)).abs() < 1e-6);
        }
    }

    #[test]
    fn tape_and_raw_forwards_agree() {
        let (_, s) = schema(&[4, 6, 3, 5]);
        let mut store = ParamStore::new();
        let model = ResMade::new(&mut store, &s, &ResMadeConfig { hidden: 24, blocks: 2, seed: 3 });
        let raw = model.snapshot(&store);
        let x = s.encode_batch(&[vec![1, 5, 2, 0], vec![3, 0, 1, 4]], None);

        let mut tape = Tape::new(&store);
        let xn = tape.input(x.clone());
        let yn = model.forward_tape(&mut tape, xn);
        let y_tape = tape.value(yn).clone();
        let y_raw = raw.logits(&x);
        assert!(y_tape.max_abs_diff(&y_raw) < 1e-5);

        // Per-column head matches the slice of the full forward.
        let mut tape2 = Tape::new(&store);
        let xn2 = tape2.input(x.clone());
        let h = model.hidden_tape(&mut tape2, xn2);
        let l2 = model.logits_col_tape(&mut tape2, h, 2);
        let (s2, e2) = s.logit_slice(2);
        assert!(tape2.value(l2).max_abs_diff(&y_raw.slice_cols(s2, e2)) < 1e-5);

        let h_raw = raw.hidden(&x);
        assert!(raw.logits_col(&h_raw, 2).max_abs_diff(&y_raw.slice_cols(s2, e2)) < 1e-5);
    }

    #[test]
    fn wildcard_input_changes_later_logits_only() {
        let (_, s) = schema(&[4, 5, 3]);
        let mut store = ParamStore::new();
        let model = ResMade::new(&mut store, &s, &ResMadeConfig { hidden: 32, blocks: 1, seed: 4 });
        let raw = model.snapshot(&store);
        let full = s.encode_batch(&[vec![1, 2, 0]], None);
        let wild = s.encode_batch(&[vec![1, 2, 0]], Some(&[vec![false, true, false]]));
        let yf = raw.logits(&full);
        let yw = raw.logits(&wild);
        // Columns 0 and 1 unchanged (they don't see col 1's input).
        let (s0, e1) = (s.logit_slice(0).0, s.logit_slice(1).1);
        for c in s0..e1 {
            assert!((yf.at(0, c) - yw.at(0, c)).abs() < 1e-6);
        }
    }

    #[test]
    fn embedding_mode_keeps_autoregressive_property() {
        use crate::encoding::EncodingMode;
        let rows = 16;
        let cols = [4usize, 5, 3]
            .iter()
            .enumerate()
            .map(|(j, &d)| {
                let vals: Vec<Value> =
                    (0..rows).map(|r| Value::Int(((r + j) % d) as i64)).collect();
                (format!("c{j}"), vals)
            })
            .collect();
        let t = Table::from_columns("t", cols);
        let s = VirtualSchema::build_with_mode(&t, usize::MAX, EncodingMode::Embedding { dim: 6 });
        assert_eq!(s.input_width(), 3 * 6);
        let mut store = ParamStore::new();
        let model =
            ResMade::new(&mut store, &s, &ResMadeConfig { hidden: 24, blocks: 1, seed: 13 });

        // Tape-level embedding inputs: logits of column v ignore inputs >= v.
        let mut tape = Tape::new(&store);
        let x0 = model.input_node(&mut tape, &s, &[vec![1, 2, 0]], None);
        let y0 = model.forward_tape(&mut tape, x0);
        let y0 = tape.value(y0).clone();
        let mut tape2 = Tape::new(&store);
        let x1 = model.input_node(&mut tape2, &s, &[vec![1, 4, 2]], None);
        let y1 = model.forward_tape(&mut tape2, x1);
        let y1 = tape2.value(y1).clone();
        let (s0, e1) = (s.logit_slice(0).0, s.logit_slice(1).1);
        for c in s0..e1 {
            assert!(
                (y0.at(0, c) - y1.at(0, c)).abs() < 1e-6,
                "embedding inputs leaked future columns"
            );
        }

        // The raw snapshot agrees with the tape forward.
        let raw = model.snapshot(&store);
        let mut xraw = Tensor::zeros(1, s.input_width());
        for v in 0..3 {
            let (bs, be) = s.input_slice(v);
            raw.encode_into(v, [1u32, 2, 0][v], &mut xraw.row_mut(0)[bs..be]);
        }
        assert!(raw.logits(&xraw).max_abs_diff(&y0) < 1e-5);
    }

    #[test]
    fn single_column_table_is_marginal_only() {
        let (_, s) = schema(&[9]);
        let mut store = ParamStore::new();
        let model = ResMade::new(&mut store, &s, &ResMadeConfig { hidden: 8, blocks: 1, seed: 5 });
        let raw = model.snapshot(&store);
        let a = raw.logits(&s.encode_batch(&[vec![0]], None));
        let b = raw.logits(&s.encode_batch(&[vec![8]], None));
        assert!(a.max_abs_diff(&b) < 1e-6, "single column logits must be constant");
    }
}
