//! The online learning loop (ROADMAP item 2): close the query-driven
//! feedback cycle the paper's §4.5 leaves open at serving time.
//!
//! UAE's central claim is that a cardinality estimator should keep
//! learning from the queries it answers. This module supplies the three
//! pieces between "a query executed with a true cardinality" and "a
//! better model is live":
//!
//! * [`QueryPool`] — a bounded, deduplicating FIFO of
//!   [`LabeledQuery`]s (plus staged drift rows), fed by whoever runs
//!   queries to completion (`uae_query::executor`, a real engine, a
//!   drill);
//! * [`OnlineTrainer`] — drains the pool into incremental epochs on a
//!   **private branch** of the live model (the live snapshot itself is
//!   never trained — serving traffic keeps reading it), producing a
//!   candidate per round;
//! * the **shadow gate** ([`shadow_score`] + [`GateConfig`]) — scores
//!   candidate and live model on the newest labeled queries (held out
//!   from this round's training) and only promotes a candidate whose
//!   median and p95 q-error do not regress beyond configured margins.
//!   A candidate with non-finite weights ([`Uae::weights_finite`]) is
//!   rejected outright — the serving cascade's uniform-softmax
//!   sanitization keeps a diverged model *answering*, so q-error
//!   margins alone cannot be trusted to catch divergence.
//!
//! Promotions publish a versioned `UAEC` checkpoint (PR 2's bit-exact
//! trainer snapshot), and the round after a promotion is a **probation
//! watch**: once enough post-promotion labels arrive, the freshly
//! promoted model is re-scored against the version it replaced and
//! rolled back if it regressed in the wild.
//!
//! Everything here is a pure state machine over an opaque nanosecond
//! clock — [`OnlineTrainer::round`] takes `now_ns` from its caller, in
//! the same style as the serving crate's micro-batcher — so the whole
//! promote/reject/rollback path replays deterministically under a mock
//! clock. The thread that drives it against a live registry lives in
//! `uae-server`.

use std::collections::{HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;
use uae_data::Table;
use uae_query::{q_error, ErrorSummary, LabeledQuery, Query};

use crate::estimator::Uae;
use crate::persist::{
    persist_bytes, DiskFaults, Journal, JournalRecord, PersistError, JOURNAL_FILE,
};
use crate::telemetry::{OnlineEvent, OnlineObserver};

/// Lifetime counters of one [`QueryPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Labels offered to the pool (including duplicates).
    pub pushed: u64,
    /// Pushes that refreshed an existing fingerprint instead of adding.
    pub deduped: u64,
    /// Entries FIFO-evicted because the pool was at capacity.
    pub evicted: u64,
    /// Entries drained into training rounds.
    pub drained: u64,
}

struct PoolState {
    /// Arrival-ordered labels; front = oldest.
    queue: VecDeque<LabeledQuery>,
    /// Fingerprints currently in `queue`.
    seen: HashSet<u64>,
    /// Labels pushed since the last training drain (the trainer's
    /// trigger signal).
    fresh: usize,
    /// Drift rows staged for the next round's unsupervised epochs.
    staged: Option<Table>,
    stats: PoolStats,
}

/// Bounded, deduplicating FIFO of executed queries with ground truth —
/// the buffer between serving/execution and the online trainer.
///
/// Duplicates (by [`Query::fingerprint`]) refresh the existing entry's
/// label and move it to the back: a re-executed query carries the
/// *newest* truth, which matters once drift rows land. At capacity the
/// oldest entry is evicted. Drift data flows through the same pool via
/// [`QueryPool::stage_rows`], so the trainer has a single intake for
/// both of the paper's incremental signals (data and queries, §4.5).
pub struct QueryPool {
    capacity: usize,
    inner: Mutex<PoolState>,
}

impl QueryPool {
    /// A pool holding at most `capacity` labeled queries.
    pub fn new(capacity: usize) -> Self {
        QueryPool {
            capacity: capacity.max(1),
            inner: Mutex::new(PoolState {
                queue: VecDeque::new(),
                seen: HashSet::new(),
                fresh: 0,
                staged: None,
                stats: PoolStats::default(),
            }),
        }
    }

    /// Maximum labeled queries held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offer one executed query with its true cardinality. Returns
    /// `true` when the query was new, `false` when it refreshed an
    /// existing entry.
    pub fn push(&self, label: LabeledQuery) -> bool {
        let fp = label.query.fingerprint();
        let mut st = self.inner.lock();
        st.fresh += 1;
        st.stats.pushed += 1;
        if st.seen.contains(&fp) {
            st.stats.deduped += 1;
            if let Some(pos) = st.queue.iter().position(|e| e.query.fingerprint() == fp) {
                st.queue.remove(pos);
            }
            st.queue.push_back(label);
            return false;
        }
        if st.queue.len() >= self.capacity {
            if let Some(old) = st.queue.pop_front() {
                st.seen.remove(&old.query.fingerprint());
                st.stats.evicted += 1;
            }
        }
        st.seen.insert(fp);
        st.queue.push_back(label);
        true
    }

    /// Offer a batch of labels.
    pub fn extend(&self, labels: impl IntoIterator<Item = LabeledQuery>) {
        for l in labels {
            self.push(l);
        }
    }

    /// Stage drift rows for the trainer's next round (appended to any
    /// rows already staged). Rows are in *original* column order, as
    /// [`Uae::ingest_data`] expects.
    pub fn stage_rows(&self, rows: &Table) {
        let mut st = self.inner.lock();
        match st.staged.as_mut() {
            Some(t) => t.append(rows),
            None => st.staged = Some(rows.clone()),
        }
    }

    /// Take every staged drift row (the trainer calls this once per
    /// round).
    pub fn take_staged_rows(&self) -> Option<Table> {
        self.inner.lock().staged.take()
    }

    /// Labeled queries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether no labeled query is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Labels pushed since the last training drain.
    pub fn fresh(&self) -> usize {
        self.inner.lock().fresh
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Clone of the newest `k` labels, oldest first — the shadow gate's
    /// holdout window. The entries stay pooled (they become training
    /// data in a later round).
    pub fn holdout(&self, k: usize) -> Vec<LabeledQuery> {
        let st = self.inner.lock();
        let skip = st.queue.len().saturating_sub(k);
        st.queue.iter().skip(skip).cloned().collect()
    }

    /// Drain everything except the newest `keep_newest` labels for a
    /// training round, oldest first, and reset the fresh counter. The
    /// kept tail is this round's holdout: the candidate must not have
    /// trained on what the gate scores it with.
    pub fn take_training(&self, keep_newest: usize) -> Vec<LabeledQuery> {
        let mut st = self.inner.lock();
        let take = st.queue.len().saturating_sub(keep_newest);
        let drained: Vec<LabeledQuery> = st.queue.drain(..take).collect();
        for lq in &drained {
            st.seen.remove(&lq.query.fingerprint());
        }
        st.fresh = 0;
        st.stats.drained += drained.len() as u64;
        drained
    }
}

/// Shadow-gate thresholds: how much worse than the live model a
/// candidate may score and still be promoted.
#[derive(Debug, Clone, PartialEq)]
pub struct GateConfig {
    /// Promote only if `candidate_median <= live_median * median_margin`.
    pub median_margin: f64,
    /// Promote only if `candidate_p95 <= live_p95 * p95_margin`.
    pub p95_margin: f64,
    /// Minimum holdout size for any verdict; fewer labels means the
    /// round cannot be judged ([`GateDecision::Insufficient`]).
    pub min_eval: usize,
    /// Reject a candidate whose shadow clone needed any baseline
    /// fallback. Candidates with non-finite weights are rejected
    /// unconditionally regardless of this flag.
    pub reject_on_fallback: bool,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { median_margin: 1.1, p95_margin: 1.25, min_eval: 8, reject_on_fallback: true }
    }
}

/// One model's shadow-eval result on a holdout window.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowScore {
    /// Q-error distribution against the holdout's true cardinalities
    /// (failed estimates score `+∞`).
    pub summary: ErrorSummary,
    /// Baseline fallbacks the shadow clone needed.
    pub fallbacks: u64,
    /// Whether every model weight was finite at scoring time
    /// ([`Uae::weights_finite`]). `false` fails the gate outright.
    pub weights_finite: bool,
}

/// Score `model` on `holdout` without touching its serving state: the
/// evaluation runs on a [`Uae::clone`], whose estimation RNG is reseeded
/// deterministically — so gate verdicts are replayable regardless of how
/// much serving traffic the live snapshot has absorbed.
pub fn shadow_score(model: &Uae, holdout: &[LabeledQuery]) -> ShadowScore {
    let shadow = model.clone();
    let queries: Vec<Query> = holdout.iter().map(|lq| lq.query.clone()).collect();
    let results = shadow.try_estimate_cards(&queries);
    let errors: Vec<f64> = holdout
        .iter()
        .zip(&results)
        .map(|(lq, r)| match r {
            Ok(est) => q_error(lq.cardinality as f64, est.card),
            Err(_) => f64::INFINITY,
        })
        .collect();
    ShadowScore {
        summary: ErrorSummary::from_errors(&errors),
        fallbacks: shadow.serve_stats().fallbacks,
        weights_finite: model.weights_finite(),
    }
}

/// The gate's verdict on one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateDecision {
    /// The candidate may go live.
    Promote,
    /// Too few holdout labels to judge the round.
    Insufficient,
    /// The candidate has non-finite weights, or its shadow clone needed
    /// baseline fallbacks.
    Unhealthy,
    /// Median q-error regressed beyond [`GateConfig::median_margin`].
    MedianRegressed,
    /// P95 q-error regressed beyond [`GateConfig::p95_margin`].
    P95Regressed,
}

impl GateDecision {
    /// Stable lowercase label (used in JSONL telemetry).
    pub fn label(self) -> &'static str {
        match self {
            GateDecision::Promote => "promote",
            GateDecision::Insufficient => "insufficient",
            GateDecision::Unhealthy => "unhealthy",
            GateDecision::MedianRegressed => "median_regressed",
            GateDecision::P95Regressed => "p95_regressed",
        }
    }
}

impl std::fmt::Display for GateDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl GateConfig {
    /// Judge a candidate's shadow score against the live model's on the
    /// same `evaluated`-label holdout. A broken *live* model (infinite
    /// quantiles) lets any healthy candidate through: `∞ > ∞ × margin`
    /// is false, which is exactly the recovery path.
    pub fn decide(
        &self,
        candidate: &ShadowScore,
        live: &ShadowScore,
        evaluated: usize,
    ) -> GateDecision {
        if evaluated < self.min_eval {
            return GateDecision::Insufficient;
        }
        if !candidate.weights_finite || (self.reject_on_fallback && candidate.fallbacks > 0) {
            return GateDecision::Unhealthy;
        }
        if candidate.summary.median > live.summary.median * self.median_margin {
            return GateDecision::MedianRegressed;
        }
        if candidate.summary.p95 > live.summary.p95 * self.p95_margin {
            return GateDecision::P95Regressed;
        }
        GateDecision::Promote
    }
}

/// Deterministic fault plan for the trainer: rounds whose *candidate*
/// gets NaN-poisoned weights after training (via
/// [`Uae::inject_weight_nan`]) — the private branch stays healthy, so a
/// correctly rejecting gate leaves the loop able to continue. Inert by
/// default.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OnlineFaultPlan {
    /// Round counters whose candidate is poisoned.
    pub nan_rounds: Vec<u64>,
}

impl OnlineFaultPlan {
    /// Whether round `round`'s candidate should be poisoned.
    pub fn poisons(&self, round: u64) -> bool {
        self.nan_rounds.contains(&round)
    }
}

/// Tuning knobs for [`OnlineTrainer`].
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Fresh labels required before a training round runs (staged drift
    /// rows bypass the trigger — drift must not wait for queries).
    pub trigger_fresh: usize,
    /// Newest labels held out from training for the shadow gate.
    pub holdout: usize,
    /// Supervised epochs per round over the drained labels.
    pub query_epochs: usize,
    /// Unsupervised epochs per round when drift rows were staged.
    pub data_epochs: usize,
    /// Promotion thresholds.
    pub gate: GateConfig,
    /// Directory receiving one `{label}_v{N}.uaec` checkpoint per
    /// published version plus the write-ahead promotion journal
    /// (`None` keeps checkpoints in memory only and disables the WAL).
    pub checkpoint_dir: Option<PathBuf>,
    /// Tenant label: names the checkpoint files and is carried by every
    /// journal record, tying promotions to a manifest tenant.
    pub label: String,
    /// Version the trainer starts counting from. Cold-start recovery
    /// seeds this with the recovered version so new promotions continue
    /// the surviving lineage instead of re-issuing old version numbers.
    pub start_version: u64,
    /// Deterministic fault injection (inert by default).
    pub fault: OnlineFaultPlan,
    /// Deterministic disk faults, shared (same write counter) with every
    /// other writer of the pipeline. `None` disables injection.
    pub disk: Option<Arc<DiskFaults>>,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            trigger_fresh: 16,
            holdout: 16,
            query_epochs: 4,
            data_epochs: 1,
            gate: GateConfig::default(),
            checkpoint_dir: None,
            label: "uae".to_owned(),
            start_version: 0,
            fault: OnlineFaultPlan::default(),
            disk: None,
        }
    }
}

/// What one trainer round concluded.
pub enum RoundOutcome {
    /// Not enough fresh labels and nothing staged: no work done.
    Idle,
    /// A candidate was trained but the gate refused it; the branch was
    /// restored to its last promoted state.
    Rejected(GateDecision),
    /// The gate passed: swap `model` in as `version`. `checkpoint` is
    /// the candidate's full `UAEC` trainer snapshot — bit-identical
    /// across replays of the same seed and label stream.
    Promoted {
        /// The model to publish.
        model: Uae,
        /// Its version number.
        version: u64,
        /// Its serialized trainer state.
        checkpoint: Vec<u8>,
        /// Where the checkpoint was durably written (`None` when the
        /// trainer has no `checkpoint_dir`). The journal committed this
        /// path before the outcome was returned.
        checkpoint_path: Option<PathBuf>,
    },
    /// Post-promotion regression: republish `model` (the prior version)
    /// as `version`.
    RolledBack {
        /// The restored prior model.
        model: Uae,
        /// The version number of the rollback publication.
        version: u64,
        /// The version whose model this is.
        restored_version: u64,
        /// Where the rollback checkpoint was durably written (`None`
        /// without a `checkpoint_dir`, or if persistence failed — the
        /// rollback still publishes: serving correctness beats
        /// durability when the live model is regressing).
        checkpoint_path: Option<PathBuf>,
    },
    /// The gate passed but the write-ahead persistence sequence failed;
    /// the promotion was withheld and the branch rewound. The caller
    /// should treat this as a crash point (the chaos drill does).
    PersistFailed {
        /// The version that failed to persist (never published).
        version: u64,
        /// What the persistence layer reported.
        error: PersistError,
    },
}

impl std::fmt::Debug for RoundOutcome {
    /// `Uae` carries no `Debug`; summarize the verdict without the model.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoundOutcome::Idle => write!(f, "Idle"),
            RoundOutcome::Rejected(d) => write!(f, "Rejected({d})"),
            RoundOutcome::Promoted { version, checkpoint, .. } => {
                write!(
                    f,
                    "Promoted {{ version: {version}, checkpoint: {} bytes }}",
                    checkpoint.len()
                )
            }
            RoundOutcome::RolledBack { version, restored_version, .. } => write!(
                f,
                "RolledBack {{ version: {version}, restored_version: {restored_version} }}"
            ),
            RoundOutcome::PersistFailed { version, error } => {
                write!(f, "PersistFailed {{ version: {version}, error: {error} }}")
            }
        }
    }
}

/// Everything one call to [`OnlineTrainer::round`] reports.
#[derive(Debug)]
pub struct RoundReport {
    /// The round counter this call consumed.
    pub round: u64,
    /// The verdict.
    pub outcome: RoundOutcome,
    /// Shadow score of the judged model (the candidate, or the
    /// on-probation live model during a watch round).
    pub candidate: Option<ShadowScore>,
    /// Shadow score of the reference model (the live model, or the
    /// prior version during a watch round).
    pub live: Option<ShadowScore>,
}

/// Post-promotion probation: who to compare against and how to restore.
struct Watch {
    /// The model the promotion replaced.
    prior: Uae,
    /// The branch checkpoint from before the promoted round's training.
    prior_checkpoint: Vec<u8>,
    /// The replaced model's version number.
    prior_version: u64,
    /// Pool `pushed` counter at promotion — probation is judged only on
    /// labels that arrived afterwards.
    pushed_mark: u64,
}

/// The incremental trainer: owns a private branch of the live model,
/// turns pooled labels (and staged drift rows) into gated candidates,
/// and tracks versions across promote/reject/rollback.
///
/// Pure with respect to time: [`OnlineTrainer::round`] takes the clock
/// as `now_ns` and never sleeps. The serving crate wraps it in a thread;
/// tests call it directly with a mock clock.
pub struct OnlineTrainer {
    branch: Uae,
    cfg: OnlineConfig,
    version: u64,
    round: u64,
    /// Branch checkpoint at the last promotion (or construction) — the
    /// restore point after a rejected round.
    last_good: Vec<u8>,
    watch: Option<Watch>,
    observer: Option<Box<dyn OnlineObserver>>,
    /// Write-ahead promotion journal, opened lazily on the first durable
    /// publication (the checkpoint dir may not exist before that).
    journal: Option<Journal>,
}

impl OnlineTrainer {
    /// A trainer branched off `live` (at `cfg.start_version`, 0 by
    /// default). The branch's RNG streams are reseeded deterministically
    /// by [`Uae::clone`], so two trainers built from the same live model
    /// replay identically.
    pub fn new(live: &Uae, cfg: OnlineConfig) -> Self {
        let branch = live.clone();
        let last_good = branch.save_checkpoint();
        let version = cfg.start_version;
        OnlineTrainer {
            branch,
            cfg,
            version,
            round: 0,
            last_good,
            watch: None,
            observer: None,
            journal: None,
        }
    }

    /// Version of the most recently published model (0 = the initial
    /// live model; every promotion *and* rollback increments it).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Rounds consumed so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Whether the last promotion is still on probation.
    pub fn on_watch(&self) -> bool {
        self.watch.is_some()
    }

    /// Attach (or replace) an observer receiving [`OnlineEvent`]s.
    pub fn set_observer(&mut self, observer: Box<dyn OnlineObserver>) {
        self.observer = Some(observer);
    }

    /// Detach the observer, returning it (dropping a
    /// [`crate::telemetry::JsonlObserver`] flushes its sink).
    pub fn take_observer(&mut self) -> Option<Box<dyn OnlineObserver>> {
        self.observer.take()
    }

    fn emit(&mut self, event: OnlineEvent) {
        if let Some(obs) = self.observer.as_mut() {
            obs.on_online_event(&event);
        }
    }

    /// One trainer round against the current `live` snapshot at loop
    /// time `now_ns`:
    ///
    /// 1. **probation** — if the last promotion is on watch and enough
    ///    post-promotion labels arrived, re-score live vs the prior
    ///    version; a regression returns
    ///    [`RoundOutcome::RolledBack`] (the caller publishes the prior);
    /// 2. **ingest** — staged drift rows run unsupervised epochs on the
    ///    branch;
    /// 3. **train** — once `trigger_fresh` labels accumulated, all but
    ///    the newest `holdout` are drained into supervised epochs;
    /// 4. **gate** — the candidate (a clone of the branch) and the live
    ///    model are shadow-scored on the holdout;
    ///    [`RoundOutcome::Promoted`] hands the caller the candidate and
    ///    its versioned checkpoint, a rejection restores the branch from
    ///    its last promoted state (an untrusted round must not compound
    ///    into the next).
    pub fn round(&mut self, pool: &QueryPool, live: &Uae, now_ns: u64) -> RoundReport {
        let round = self.round;
        self.round += 1;

        if let Some(report) = self.probation_round(pool, live, round, now_ns) {
            return report;
        }

        let staged = pool.take_staged_rows();
        let rows = staged.as_ref().map_or(0, Table::num_rows);
        if staged.is_none() && pool.fresh() < self.cfg.trigger_fresh {
            return RoundReport { round, outcome: RoundOutcome::Idle, candidate: None, live: None };
        }
        if let Some(rows) = &staged {
            self.branch.ingest_data(rows, self.cfg.data_epochs);
        }
        let train_set = pool.take_training(self.cfg.holdout);
        if !train_set.is_empty() {
            let tqs = self.branch.prepare_queries(&train_set);
            self.branch.train_queries_prepared(&tqs, self.cfg.query_epochs);
        }
        self.emit(OnlineEvent::Trained { round, t_ns: now_ns, queries: train_set.len(), rows });

        let mut candidate = self.branch.clone();
        if self.cfg.fault.poisons(round) {
            candidate.inject_weight_nan();
        }

        let holdout = pool.holdout(self.cfg.holdout);
        let cand_score = shadow_score(&candidate, &holdout);
        let live_score = shadow_score(live, &holdout);
        let decision = self.cfg.gate.decide(&cand_score, &live_score, holdout.len());
        self.emit(OnlineEvent::Gated {
            round,
            t_ns: now_ns,
            evaluated: holdout.len(),
            candidate_median: cand_score.summary.median,
            candidate_p95: cand_score.summary.p95,
            candidate_fallbacks: cand_score.fallbacks,
            live_median: live_score.summary.median,
            live_p95: live_score.summary.p95,
            decision: decision.label().to_owned(),
        });

        if decision != GateDecision::Promote {
            // The round is untrusted (diverged, regressed, or unjudged):
            // rewind the branch so a bad round cannot compound.
            self.branch.load_checkpoint(&self.last_good).expect("last-good checkpoint restores");
            self.emit(OnlineEvent::Rejected {
                round,
                t_ns: now_ns,
                decision: decision.label().to_owned(),
            });
            return RoundReport {
                round,
                outcome: RoundOutcome::Rejected(decision),
                candidate: Some(cand_score),
                live: Some(live_score),
            };
        }

        self.version += 1;
        let checkpoint = candidate.save_checkpoint();
        // Write-ahead discipline: journal the intent (fsync), write the
        // checkpoint atomically, journal the commit (fsync). Only a
        // version whose commit record is on disk is considered published
        // by recovery — so a persistence failure here must withhold the
        // promotion entirely, or a crash would silently revert it.
        let checkpoint_path = match self.persist_version(self.version, &checkpoint) {
            Ok(path) => path,
            Err(error) => {
                let version = self.version;
                self.version -= 1;
                self.branch
                    .load_checkpoint(&self.last_good)
                    .expect("last-good checkpoint restores");
                self.emit(OnlineEvent::PersistFailed {
                    round,
                    t_ns: now_ns,
                    version,
                    error: error.to_string(),
                });
                return RoundReport {
                    round,
                    outcome: RoundOutcome::PersistFailed { version, error },
                    candidate: Some(cand_score),
                    live: Some(live_score),
                };
            }
        };
        let prior_checkpoint =
            std::mem::replace(&mut self.last_good, self.branch.save_checkpoint());
        self.watch = Some(Watch {
            prior: live.clone(),
            prior_checkpoint,
            prior_version: self.version - 1,
            pushed_mark: pool.stats().pushed,
        });
        self.emit(OnlineEvent::Promoted {
            round,
            t_ns: now_ns,
            version: self.version,
            checkpoint_bytes: checkpoint.len(),
        });
        RoundReport {
            round,
            outcome: RoundOutcome::Promoted {
                model: candidate,
                version: self.version,
                checkpoint,
                checkpoint_path,
            },
            candidate: Some(cand_score),
            live: Some(live_score),
        }
    }

    /// File name of version `version`'s checkpoint, relative to the
    /// checkpoint directory.
    pub fn checkpoint_name(&self, version: u64) -> String {
        format!("{}_v{}.uaec", self.cfg.label, version)
    }

    /// Run the write-ahead persistence sequence for one published
    /// version: intent record (fsynced) → atomic checkpoint write →
    /// commit record (fsynced). Returns the checkpoint path, or `None`
    /// when the trainer has no `checkpoint_dir`.
    fn persist_version(
        &mut self,
        version: u64,
        checkpoint: &[u8],
    ) -> Result<Option<PathBuf>, PersistError> {
        let Some(dir) = self.cfg.checkpoint_dir.clone() else {
            return Ok(None);
        };
        std::fs::create_dir_all(&dir).map_err(|e| PersistError::Io {
            op: "create-dir",
            path: dir.clone(),
            source: e,
        })?;
        if self.journal.is_none() {
            self.journal = Some(Journal::open(dir.join(JOURNAL_FILE), self.cfg.disk.clone())?);
        }
        let file = self.checkpoint_name(version);
        let path = dir.join(&file);
        let journal = self.journal.as_ref().expect("journal opened above");
        journal.append(&JournalRecord::Intent {
            tenant: self.cfg.label.clone(),
            version,
            checkpoint: file,
        })?;
        persist_bytes(&path, checkpoint, self.cfg.disk.as_deref())?;
        journal.append(&JournalRecord::Commit { tenant: self.cfg.label.clone(), version })?;
        Ok(Some(path))
    }

    /// Flush the durability tail on clean shutdown: re-append a `Commit`
    /// record for the current version so the journal's final record
    /// provably names the published lineage head (idempotent — recovery
    /// treats a repeated commit as a no-op). The `uae-server` learner
    /// thread calls this from its stop path, followed by a manifest
    /// sync, so a clean shutdown and a `recover` round-trip are
    /// bit-identical.
    pub fn finalize(&mut self) -> Result<Option<u64>, PersistError> {
        let Some(dir) = self.cfg.checkpoint_dir.clone() else {
            return Ok(None);
        };
        if self.version == 0 {
            return Ok(None);
        }
        std::fs::create_dir_all(&dir).map_err(|e| PersistError::Io {
            op: "create-dir",
            path: dir.clone(),
            source: e,
        })?;
        if self.journal.is_none() {
            self.journal = Some(Journal::open(dir.join(JOURNAL_FILE), self.cfg.disk.clone())?);
        }
        let journal = self.journal.as_ref().expect("journal opened above");
        journal.append(&JournalRecord::Commit {
            tenant: self.cfg.label.clone(),
            version: self.version,
        })?;
        Ok(Some(self.version))
    }

    /// The probation check at the top of a round. `Some` means the
    /// promoted model regressed and the caller must publish the prior.
    fn probation_round(
        &mut self,
        pool: &QueryPool,
        live: &Uae,
        round: u64,
        now_ns: u64,
    ) -> Option<RoundReport> {
        let watch = self.watch.as_ref()?;
        // Judge probation only on labels that arrived after the
        // promotion, and only once there are enough of them.
        let arrived = pool.stats().pushed.saturating_sub(watch.pushed_mark);
        if arrived < self.cfg.gate.min_eval as u64 {
            return None;
        }
        let holdout = pool.holdout((arrived as usize).min(self.cfg.holdout.max(1)));
        if holdout.len() < self.cfg.gate.min_eval {
            return None;
        }
        let live_score = shadow_score(live, &holdout);
        let prior_score = shadow_score(&watch.prior, &holdout);
        let verdict = self.cfg.gate.decide(&live_score, &prior_score, holdout.len());
        let watch = self.watch.take().expect("watch present");
        if verdict == GateDecision::Promote {
            // The promotion held up in the wild; probation ends.
            return None;
        }
        self.branch
            .load_checkpoint(&watch.prior_checkpoint)
            .expect("prior checkpoint restores the branch");
        self.last_good = watch.prior_checkpoint;
        self.version += 1;
        // Persist the rollback publication too — otherwise a crash after
        // a rollback would recover the *rolled-back* (regressing) version
        // as the newest committed one. Unlike a promotion, a rollback is
        // published even if persistence fails: serving correctness beats
        // durability when the live model is regressing in the wild.
        let checkpoint_path = match self.persist_version(self.version, &self.last_good.clone()) {
            Ok(path) => path,
            Err(error) => {
                self.emit(OnlineEvent::PersistFailed {
                    round,
                    t_ns: now_ns,
                    version: self.version,
                    error: error.to_string(),
                });
                None
            }
        };
        self.emit(OnlineEvent::RolledBack {
            round,
            t_ns: now_ns,
            version: self.version,
            restored_version: watch.prior_version,
        });
        Some(RoundReport {
            round,
            outcome: RoundOutcome::RolledBack {
                model: watch.prior,
                version: self.version,
                restored_version: watch.prior_version,
                checkpoint_path,
            },
            candidate: Some(live_score),
            live: Some(prior_score),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_query::{PredOp, Predicate};

    fn q(col: usize, val: i64) -> Query {
        Query::new(vec![Predicate::new(col, PredOp::Le, val.into())])
    }

    fn label(col: usize, val: i64, card: u64) -> LabeledQuery {
        LabeledQuery { query: q(col, val), cardinality: card, selectivity: card as f64 / 100.0 }
    }

    #[test]
    fn pool_dedups_by_fingerprint_and_refreshes_label() {
        let pool = QueryPool::new(8);
        assert!(pool.push(label(0, 5, 10)));
        assert!(pool.push(label(1, 5, 20)));
        // Same query, newer truth: refreshed and moved to the back.
        assert!(!pool.push(label(0, 5, 42)));
        assert_eq!(pool.len(), 2);
        let newest = pool.holdout(1);
        assert_eq!(newest[0].cardinality, 42);
        let s = pool.stats();
        assert_eq!((s.pushed, s.deduped, s.evicted), (3, 1, 0));
    }

    #[test]
    fn pool_fifo_evicts_at_capacity() {
        let pool = QueryPool::new(3);
        for v in 0..5i64 {
            pool.push(label(0, v, v as u64));
        }
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.stats().evicted, 2);
        // Oldest (v=0,1) gone; the evicted fingerprints may re-enter.
        let held: Vec<u32> = pool.holdout(3).iter().map(|l| l.cardinality as u32).collect();
        assert_eq!(held, vec![2, 3, 4]);
        assert!(pool.push(label(0, 0, 99)), "evicted fingerprint re-enters as new");
    }

    #[test]
    fn pool_training_drain_keeps_holdout_and_resets_fresh() {
        let pool = QueryPool::new(16);
        for v in 0..10i64 {
            pool.push(label(0, v, v as u64));
        }
        assert_eq!(pool.fresh(), 10);
        let train = pool.take_training(4);
        assert_eq!(train.len(), 6);
        assert_eq!(train[0].cardinality, 0, "oldest first");
        assert_eq!(pool.len(), 4, "holdout tail stays pooled");
        assert_eq!(pool.fresh(), 0);
        assert_eq!(pool.stats().drained, 6);
        // Drained fingerprints may re-enter with fresh labels.
        assert!(pool.push(label(0, 0, 7)));
    }

    #[test]
    fn gate_decides_in_priority_order() {
        let gate = GateConfig { min_eval: 4, ..GateConfig::default() };
        let score = |median: f64, p95: f64, fallbacks: u64| ShadowScore {
            summary: ErrorSummary { mean: median, median, p95, max: p95, count: 8 },
            fallbacks,
            weights_finite: true,
        };
        let live = score(2.0, 8.0, 0);
        assert_eq!(gate.decide(&score(2.0, 8.0, 0), &live, 2), GateDecision::Insufficient);
        assert_eq!(gate.decide(&score(1.0, 1.0, 3), &live, 8), GateDecision::Unhealthy);
        // Non-finite weights fail the gate even with perfect q-errors.
        let nan_weights = ShadowScore { weights_finite: false, ..score(1.0, 1.0, 0) };
        assert_eq!(gate.decide(&nan_weights, &live, 8), GateDecision::Unhealthy);
        assert_eq!(gate.decide(&score(3.0, 8.0, 0), &live, 8), GateDecision::MedianRegressed);
        assert_eq!(gate.decide(&score(2.0, 11.0, 0), &live, 8), GateDecision::P95Regressed);
        assert_eq!(gate.decide(&score(2.1, 9.9, 0), &live, 8), GateDecision::Promote);
        // A broken live model (∞ quantiles) lets a healthy candidate in.
        let broken = score(f64::INFINITY, f64::INFINITY, 0);
        assert_eq!(gate.decide(&score(5.0, 50.0, 0), &broken, 8), GateDecision::Promote);
        // …but a broken candidate never beats a healthy live model.
        assert_eq!(gate.decide(&broken, &live, 8), GateDecision::MedianRegressed);
    }
}
