//! Autoregressive column-ordering strategies.
//!
//! The paper uses the left-to-right (natural) order and points to Naru /
//! MADE for better-ordering heuristics (§4.2). This module implements the
//! common ones so their effect can be measured (see the `ablations` bench):
//!
//! * [`ColumnOrder::Natural`] — table order (the paper's choice);
//! * [`ColumnOrder::DomainDesc`] / [`ColumnOrder::DomainAsc`] — widest or
//!   narrowest domains first;
//! * [`ColumnOrder::GreedyMutualInfo`] — start from the highest-entropy
//!   column, then repeatedly append the column with the largest mutual
//!   information to any already-placed column, so strongly dependent
//!   columns sit close together in the factorization.

use uae_data::Table;

/// Ordering strategy for the autoregressive factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColumnOrder {
    /// Table order (paper default).
    #[default]
    Natural,
    /// Largest domains first.
    DomainDesc,
    /// Smallest domains first.
    DomainAsc,
    /// Greedy maximum-dependence chain.
    GreedyMutualInfo,
}

/// Compute the column permutation for a strategy
/// (`perm[i]` = original index of position `i`).
pub fn compute_order(table: &Table, order: ColumnOrder) -> Vec<usize> {
    let n = table.num_cols();
    match order {
        ColumnOrder::Natural => (0..n).collect(),
        ColumnOrder::DomainDesc => {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by_key(|&c| std::cmp::Reverse(table.column(c).domain_size()));
            idx
        }
        ColumnOrder::DomainAsc => {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by_key(|&c| table.column(c).domain_size());
            idx
        }
        ColumnOrder::GreedyMutualInfo => greedy_mi_order(table),
    }
}

fn greedy_mi_order(table: &Table) -> Vec<usize> {
    const BINS: usize = 16;
    let n = table.num_cols();
    if n <= 2 {
        return (0..n).collect();
    }
    let rows = table.num_rows().max(1);
    // Binned codes per column.
    let binned: Vec<Vec<u32>> = (0..n)
        .map(|c| {
            let col = table.column(c);
            let d = col.domain_size().max(1) as u64;
            let nb = BINS.min(col.domain_size()) as u64;
            col.codes().iter().map(|&v| ((v as u64 * nb) / d) as u32).collect()
        })
        .collect();
    let entropy = |c: usize| -> f64 {
        let mut counts = [0u32; BINS];
        for &b in &binned[c] {
            counts[b as usize] += 1;
        }
        counts
            .iter()
            .filter(|&&x| x > 0)
            .map(|&x| {
                let p = x as f64 / rows as f64;
                -p * p.ln()
            })
            .sum()
    };
    let mi = |a: usize, b: usize| -> f64 {
        let mut joint = [[0u32; BINS]; BINS];
        for r in 0..rows {
            joint[binned[a][r] as usize][binned[b][r] as usize] += 1;
        }
        let (mut pa, mut pb) = ([0.0f64; BINS], [0.0f64; BINS]);
        for (x, row) in joint.iter().enumerate() {
            for (y, &c) in row.iter().enumerate() {
                let p = c as f64 / rows as f64;
                pa[x] += p;
                pb[y] += p;
            }
        }
        let mut m = 0.0;
        for (x, row) in joint.iter().enumerate() {
            for (y, &c) in row.iter().enumerate() {
                let p = c as f64 / rows as f64;
                if p > 0.0 && pa[x] > 0.0 && pb[y] > 0.0 {
                    m += p * (p / (pa[x] * pb[y])).ln();
                }
            }
        }
        m
    };

    let first = (0..n).max_by(|&a, &b| entropy(a).total_cmp(&entropy(b))).expect("nonempty");
    let mut order = vec![first];
    let mut remaining: Vec<usize> = (0..n).filter(|&c| c != first).collect();
    while !remaining.is_empty() {
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &cand)| {
                let best_link = order.iter().map(|&p| mi(cand, p)).fold(0.0f64, f64::max);
                (i, best_link)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("nonempty remaining");
        order.push(remaining.swap_remove(pos));
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::Value;

    fn table() -> Table {
        let n = 2000i64;
        Table::from_columns(
            "t",
            vec![
                ("narrow".into(), (0..n).map(|v| Value::Int(v % 2)).collect()),
                ("wide".into(), (0..n).map(|v| Value::Int(v % 100)).collect()),
                ("wide_dep".into(), (0..n).map(|v| Value::Int((v % 100) / 2)).collect()),
                ("mid".into(), (0..n).map(|v| Value::Int((v * 31 + 7) % 10)).collect()),
            ],
        )
    }

    #[test]
    fn natural_is_identity() {
        assert_eq!(compute_order(&table(), ColumnOrder::Natural), vec![0, 1, 2, 3]);
    }

    #[test]
    fn domain_orders_sort_by_size() {
        let t = table();
        let desc = compute_order(&t, ColumnOrder::DomainDesc);
        assert_eq!(desc[0], 1, "widest first");
        let asc = compute_order(&t, ColumnOrder::DomainAsc);
        assert_eq!(asc[0], 0, "narrowest first");
        // Both are permutations.
        for mut p in [desc, asc] {
            p.sort_unstable();
            assert_eq!(p, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn greedy_mi_places_dependent_columns_adjacent() {
        let t = table();
        let order = compute_order(&t, ColumnOrder::GreedyMutualInfo);
        let pos = |c: usize| order.iter().position(|&x| x == c).unwrap();
        // wide (1) and wide_dep (2) are deterministic functions of each
        // other; the chain must keep them adjacent.
        assert_eq!(pos(1).abs_diff(pos(2)), 1, "order {order:?}");
        let mut p = order.clone();
        p.sort_unstable();
        assert_eq!(p, vec![0, 1, 2, 3]);
    }
}
