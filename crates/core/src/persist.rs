//! Crash-safe persistence primitives shared by every on-disk writer in the
//! stack: checkpoints, the tenant manifest, and the write-ahead promotion
//! journal.
//!
//! Three disciplines live here:
//!
//! 1. **Hardened atomic replace** — [`persist_bytes`] writes a sibling temp
//!    file, fsyncs it, renames it over the destination, then fsyncs the
//!    parent directory so the rename itself is durable. A crash at any
//!    point leaves either the old file or the new one, never a prefix.
//! 2. **Durable append** — [`append_bytes`] is the journal discipline:
//!    append + fsync, with per-record checksums (see [`Journal`]) so a torn
//!    tail is detectable and the valid prefix replayable.
//! 3. **Deterministic disk faults** — [`DiskFaultPlan`] extends the serving
//!    [`crate::FaultPlan`] family to the filesystem: io-error, torn-write
//!    and bit-flip faults keyed by a monotone *write index* shared across
//!    all writers (checkpoint, manifest, journal) so a chaos drill can kill
//!    the pipeline at every durable write it would ever issue.
//!
//! Everything returns a typed [`PersistError`]; no raw `io::Result`
//! bubbles out of the persistence layer. Corrupt artifacts are never
//! deleted — [`quarantine`] renames them aside for post-mortem.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::serialize::{fnv1a, LoadError};

/// File name of the write-ahead promotion journal inside a state directory.
pub const JOURNAL_FILE: &str = "journal.uaej";

const JOURNAL_MAGIC: &[u8; 4] = b"UAEJ";
const JOURNAL_VERSION: u32 = 1;

/// Which disk fault fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// The write failed cleanly before touching the destination.
    IoError,
    /// The writer died mid-write: the destination holds a truncated prefix.
    TornWrite,
    /// A byte was flipped in flight; the write itself "succeeded".
    BitFlip,
}

impl std::fmt::Display for DiskFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskFaultKind::IoError => write!(f, "io-error"),
            DiskFaultKind::TornWrite => write!(f, "torn-write"),
            DiskFaultKind::BitFlip => write!(f, "bit-flip"),
        }
    }
}

/// Typed error from the persistence layer.
#[derive(Debug)]
pub enum PersistError {
    /// A real filesystem failure, with the operation and path that failed.
    Io {
        /// Which step failed (`create`, `write`, `fsync`, `rename`, ...).
        op: &'static str,
        /// The path being persisted.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A deterministic fault from a [`DiskFaultPlan`] fired.
    Injected {
        /// The fault kind.
        kind: DiskFaultKind,
        /// The path being persisted when the fault fired.
        path: PathBuf,
        /// The global write index the fault was keyed on.
        write_index: u64,
    },
    /// Persisted bytes were read back but rejected by format validation.
    Load(LoadError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { op, path, source } => {
                write!(f, "persist {op} failed for {}: {source}", path.display())
            }
            PersistError::Injected { kind, path, write_index } => {
                write!(f, "injected {kind} fault at write #{write_index} for {}", path.display())
            }
            PersistError::Load(e) => write!(f, "persisted blob rejected: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<LoadError> for PersistError {
    fn from(e: LoadError) -> Self {
        PersistError::Load(e)
    }
}

/// Deterministic disk-fault schedule, keyed by the monotone write index of
/// a shared [`DiskFaults`] counter. Every durable write in the pipeline —
/// checkpoint, manifest rewrite, journal append — claims the next index,
/// so index `k` always names the same write for the same driver program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskFaultPlan {
    /// Fail these writes cleanly (nothing reaches the destination).
    pub io_error: Vec<u64>,
    /// Tear these writes: leave a truncated prefix at the destination and
    /// report failure, as if the process died mid-write.
    pub torn_write: Vec<u64>,
    /// Flip one byte of these writes `(write_index, byte_offset, xor_mask)`
    /// and let them "succeed" — silent corruption at rest, caught only by
    /// checksum validation at read time. The offset is taken modulo the
    /// payload length.
    pub bit_flip: Vec<(u64, usize, u8)>,
}

impl DiskFaultPlan {
    /// True when no fault is scheduled.
    pub fn is_inert(&self) -> bool {
        self.io_error.is_empty() && self.torn_write.is_empty() && self.bit_flip.is_empty()
    }

    fn fault_at(&self, idx: u64) -> Option<Fault> {
        if self.io_error.contains(&idx) {
            return Some(Fault::IoError);
        }
        if self.torn_write.contains(&idx) {
            return Some(Fault::TornWrite);
        }
        self.bit_flip
            .iter()
            .find(|(i, _, _)| *i == idx)
            .map(|&(_, offset, mask)| Fault::BitFlip { offset, mask })
    }
}

#[derive(Debug, Clone, Copy)]
enum Fault {
    IoError,
    TornWrite,
    BitFlip { offset: usize, mask: u8 },
}

/// Shared, stateful fault injector: a [`DiskFaultPlan`] plus the monotone
/// write counter. One instance is threaded (as `Arc<DiskFaults>`) through
/// every writer of a pipeline so the write index is global.
#[derive(Debug, Default)]
pub struct DiskFaults {
    plan: DiskFaultPlan,
    counter: AtomicU64,
}

impl DiskFaults {
    /// A fault injector for `plan` with the write counter at zero.
    pub fn new(plan: DiskFaultPlan) -> Self {
        DiskFaults { plan, counter: AtomicU64::new(0) }
    }

    /// An inert injector that only counts writes (useful for enumerating
    /// the fault points of a reference run).
    pub fn counting() -> Self {
        DiskFaults::new(DiskFaultPlan::default())
    }

    /// Number of durable writes claimed so far.
    pub fn writes(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }

    /// Claim the next write index and the fault scheduled for it, if any.
    fn claim(&self) -> (u64, Option<Fault>) {
        let idx = self.counter.fetch_add(1, Ordering::SeqCst);
        (idx, self.plan.fault_at(idx))
    }
}

fn io_err(op: &'static str, path: &Path, source: std::io::Error) -> PersistError {
    PersistError::Io { op, path: path.to_path_buf(), source }
}

/// Fsync the directory containing `path` so a just-completed rename or
/// append is durable across power loss. On platforms where directories
/// cannot be opened this is a no-op.
fn fsync_parent(path: &Path) -> Result<(), PersistError> {
    let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) else {
        return Ok(());
    };
    #[cfg(unix)]
    {
        let dir = std::fs::File::open(parent).map_err(|e| io_err("open-dir", parent, e))?;
        dir.sync_all().map_err(|e| io_err("fsync-dir", parent, e))?;
    }
    #[cfg(not(unix))]
    let _ = parent;
    Ok(())
}

fn claim(faults: Option<&DiskFaults>) -> (u64, Option<Fault>) {
    faults.map(|f| f.claim()).unwrap_or((0, None))
}

/// Write `bytes` to `path` with the full atomic-replace discipline: temp
/// file in the target directory, fsync the file, rename over the
/// destination, fsync the parent directory. Consults `faults` for
/// deterministic fault injection (one write index per call).
pub fn persist_bytes(
    path: impl AsRef<Path>,
    bytes: &[u8],
    faults: Option<&DiskFaults>,
) -> Result<(), PersistError> {
    use std::io::Write as _;
    let path = path.as_ref();
    let (write_index, fault) = claim(faults);
    let mut flipped;
    let bytes = match fault {
        Some(Fault::IoError) => {
            return Err(PersistError::Injected {
                kind: DiskFaultKind::IoError,
                path: path.to_path_buf(),
                write_index,
            });
        }
        Some(Fault::TornWrite) => {
            // Simulate a non-atomic writer dying mid-write: the destination
            // itself is left holding a truncated prefix.
            let cut = bytes.len() / 2;
            if let Ok(mut f) = std::fs::File::create(path) {
                let _ = f.write_all(&bytes[..cut]);
                let _ = f.sync_all();
            }
            return Err(PersistError::Injected {
                kind: DiskFaultKind::TornWrite,
                path: path.to_path_buf(),
                write_index,
            });
        }
        Some(Fault::BitFlip { offset, mask }) => {
            // Silent corruption: the write completes "successfully" and the
            // damage is only discoverable by checksum at read time.
            flipped = bytes.to_vec();
            if !flipped.is_empty() {
                let o = offset % flipped.len();
                flipped[o] ^= mask;
            }
            &flipped[..]
        }
        None => bytes,
    };

    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        f.write_all(bytes).map_err(|e| io_err("write", &tmp, e))?;
        f.sync_all().map_err(|e| io_err("fsync", &tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err("rename", path, e))?;
    fsync_parent(path)
}

/// Append `record` to `path` durably: open in append mode (creating the
/// file if needed), write, fsync the file and the parent directory.
/// Consults `faults` (one write index per call). A torn append leaves a
/// truncated record at the tail — exactly the failure [`Journal::replay`]
/// is built to detect.
pub fn append_bytes(
    path: impl AsRef<Path>,
    record: &[u8],
    faults: Option<&DiskFaults>,
) -> Result<(), PersistError> {
    use std::io::Write as _;
    let path = path.as_ref();
    let (write_index, fault) = claim(faults);
    let mut flipped;
    let record = match fault {
        Some(Fault::IoError) => {
            return Err(PersistError::Injected {
                kind: DiskFaultKind::IoError,
                path: path.to_path_buf(),
                write_index,
            });
        }
        Some(Fault::TornWrite) => {
            let cut = record.len() / 2;
            if let Ok(mut f) = std::fs::OpenOptions::new().append(true).create(true).open(path) {
                let _ = f.write_all(&record[..cut]);
                let _ = f.sync_all();
            }
            return Err(PersistError::Injected {
                kind: DiskFaultKind::TornWrite,
                path: path.to_path_buf(),
                write_index,
            });
        }
        Some(Fault::BitFlip { offset, mask }) => {
            flipped = record.to_vec();
            if !flipped.is_empty() {
                let o = offset % flipped.len();
                flipped[o] ^= mask;
            }
            &flipped[..]
        }
        None => record,
    };

    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(path)
        .map_err(|e| io_err("open-append", path, e))?;
    f.write_all(record).map_err(|e| io_err("append", path, e))?;
    f.sync_all().map_err(|e| io_err("fsync", path, e))?;
    drop(f);
    fsync_parent(path)
}

/// Move a corrupt artifact aside — never delete it. The file is renamed to
/// `<name>.quarantine` (or `.quarantine.N` if that exists) in place, and
/// the new path is returned.
pub fn quarantine(path: impl AsRef<Path>) -> Result<PathBuf, PersistError> {
    let path = path.as_ref();
    let base = {
        let mut s = path.as_os_str().to_owned();
        s.push(".quarantine");
        PathBuf::from(s)
    };
    let mut dest = base.clone();
    let mut n = 0u32;
    while dest.exists() {
        n += 1;
        let mut s = base.as_os_str().to_owned();
        s.push(format!(".{n}"));
        dest = PathBuf::from(s);
    }
    std::fs::rename(path, &dest).map_err(|e| io_err("quarantine", path, e))?;
    fsync_parent(path)?;
    Ok(dest)
}

/// One record of the write-ahead promotion journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// Appended (and fsynced) *before* the promotion checkpoint is written:
    /// "I am about to publish `version` for `tenant` at `checkpoint`".
    Intent {
        /// Tenant (model lineage) the promotion belongs to.
        tenant: String,
        /// The version being promoted.
        version: u64,
        /// Checkpoint file name, relative to the state directory.
        checkpoint: String,
    },
    /// Appended (and fsynced) *after* the checkpoint rename completed:
    /// the promotion is durable and recoverable.
    Commit {
        /// Tenant the promotion belongs to.
        tenant: String,
        /// The version now fully persisted.
        version: u64,
    },
}

impl JournalRecord {
    /// The tenant this record belongs to.
    pub fn tenant(&self) -> &str {
        match self {
            JournalRecord::Intent { tenant, .. } | JournalRecord::Commit { tenant, .. } => tenant,
        }
    }

    /// The version this record names.
    pub fn version(&self) -> u64 {
        match self {
            JournalRecord::Intent { version, .. } | JournalRecord::Commit { version, .. } => {
                *version
            }
        }
    }
}

fn encode_record(rec: &JournalRecord) -> Vec<u8> {
    let (kind, tenant, version, checkpoint) = match rec {
        JournalRecord::Intent { tenant, version, checkpoint } => {
            (1u8, tenant.as_str(), *version, checkpoint.as_str())
        }
        JournalRecord::Commit { tenant, version } => (2u8, tenant.as_str(), *version, ""),
    };
    let mut payload = Vec::with_capacity(32 + tenant.len() + checkpoint.len());
    payload.push(kind);
    payload.extend_from_slice(&(tenant.len() as u32).to_le_bytes());
    payload.extend_from_slice(tenant.as_bytes());
    payload.extend_from_slice(&version.to_le_bytes());
    payload.extend_from_slice(&(checkpoint.len() as u32).to_le_bytes());
    payload.extend_from_slice(checkpoint.as_bytes());

    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out
}

fn decode_payload(payload: &[u8]) -> Option<JournalRecord> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        if *pos + n > payload.len() {
            return None;
        }
        let s = &payload[*pos..*pos + n];
        *pos += n;
        Some(s)
    };
    let kind = *take(&mut pos, 1)?.first()?;
    let tlen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
    let tenant = std::str::from_utf8(take(&mut pos, tlen)?).ok()?.to_owned();
    let version = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
    let clen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
    let checkpoint = std::str::from_utf8(take(&mut pos, clen)?).ok()?.to_owned();
    if pos != payload.len() {
        return None;
    }
    match kind {
        1 => Some(JournalRecord::Intent { tenant, version, checkpoint }),
        2 if checkpoint.is_empty() => Some(JournalRecord::Commit { tenant, version }),
        _ => None,
    }
}

/// Result of replaying a journal file: the valid record prefix plus
/// whether the tail was torn. Replay is deliberately lenient — a torn or
/// bit-flipped tail is an *expected* crash artifact, not an error; only
/// real filesystem failures are.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalReplay {
    /// Records of the valid prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// True if the file ended in a torn, corrupt, or undecodable record
    /// (everything from the first bad byte on is ignored).
    pub torn: bool,
    /// True if the journal file existed at all.
    pub existed: bool,
}

/// Append-only write-ahead promotion journal (`UAEJ` format): an 8-byte
/// header (`magic + version`) followed by length-prefixed, per-record
/// FNV-1a-checksummed records. Appends are fsynced; a crash mid-append
/// tears at most the final record, which [`Journal::replay`] detects and
/// discards while keeping the committed prefix.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    faults: Option<Arc<DiskFaults>>,
}

impl Journal {
    /// Open (creating with a fresh header if absent) the journal at `path`.
    /// Creating the header counts as one durable write against `faults`.
    pub fn open(
        path: impl Into<PathBuf>,
        faults: Option<Arc<DiskFaults>>,
    ) -> Result<Journal, PersistError> {
        let path = path.into();
        let exists = match std::fs::metadata(&path) {
            Ok(m) => m.len() > 0,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
            Err(e) => return Err(io_err("stat", &path, e)),
        };
        if !exists {
            let mut header = Vec::with_capacity(8);
            header.extend_from_slice(JOURNAL_MAGIC);
            header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
            append_bytes(&path, &header, faults.as_deref())?;
        }
        Ok(Journal { path, faults })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durably append one record (encode, append, fsync). One write index.
    pub fn append(&self, rec: &JournalRecord) -> Result<(), PersistError> {
        append_bytes(&self.path, &encode_record(rec), self.faults.as_deref())
    }

    /// Replay the journal at `path`. Missing file → empty replay. A torn
    /// or corrupt tail truncates the replay at the last valid record and
    /// sets [`JournalReplay::torn`]; it never panics and never errors.
    pub fn replay(path: impl AsRef<Path>) -> Result<JournalReplay, PersistError> {
        let path = path.as_ref();
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(JournalReplay::default());
            }
            Err(e) => return Err(io_err("read", path, e)),
        };
        let mut replay = JournalReplay { existed: true, ..JournalReplay::default() };
        if bytes.len() < 8
            || &bytes[..4] != JOURNAL_MAGIC
            || u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) != JOURNAL_VERSION
        {
            replay.torn = true;
            return Ok(replay);
        }
        let mut pos = 8usize;
        while pos < bytes.len() {
            if pos + 4 > bytes.len() {
                replay.torn = true;
                break;
            }
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
                    as usize;
            let Some(end) = pos.checked_add(4 + len + 8).filter(|&e| e <= bytes.len()) else {
                replay.torn = true;
                break;
            };
            let payload = &bytes[pos + 4..pos + 4 + len];
            let stored = u64::from_le_bytes(bytes[pos + 4 + len..end].try_into().unwrap());
            if fnv1a(payload) != stored {
                replay.torn = true;
                break;
            }
            match decode_payload(payload) {
                Some(rec) => replay.records.push(rec),
                None => {
                    replay.torn = true;
                    break;
                }
            }
            pos = end;
        }
        Ok(replay)
    }

    /// Rewrite the journal as an empty (header-only) file via the atomic
    /// discipline — used by recovery to compact after folding committed
    /// promotions into the manifest. One write index.
    pub fn reset(path: impl AsRef<Path>, faults: Option<&DiskFaults>) -> Result<(), PersistError> {
        let mut header = Vec::with_capacity(8);
        header.extend_from_slice(JOURNAL_MAGIC);
        header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        persist_bytes(path, &header, faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uae_persist_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn persist_bytes_atomic_and_parent_synced() {
        let dir = tmp_dir("atomic");
        let path = dir.join("state.bin");
        persist_bytes(&path, b"one", None).unwrap();
        persist_bytes(&path, b"two", None).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        assert!(!dir.join("state.bin.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_faults_fire_by_write_index() {
        let dir = tmp_dir("faults");
        let path = dir.join("f.bin");
        let faults = DiskFaults::new(DiskFaultPlan {
            io_error: vec![1],
            torn_write: vec![2],
            bit_flip: vec![(3, 0, 0xff)],
        });
        // Write 0: clean.
        persist_bytes(&path, b"hello", Some(&faults)).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        // Write 1: io-error — destination untouched.
        let e = persist_bytes(&path, b"world", Some(&faults)).unwrap_err();
        assert!(matches!(
            e,
            PersistError::Injected { kind: DiskFaultKind::IoError, write_index: 1, .. }
        ));
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        // Write 2: torn — destination truncated to a prefix.
        let e = persist_bytes(&path, b"abcdef", Some(&faults)).unwrap_err();
        assert!(matches!(
            e,
            PersistError::Injected { kind: DiskFaultKind::TornWrite, write_index: 2, .. }
        ));
        assert_eq!(std::fs::read(&path).unwrap(), b"abc");
        // Write 3: bit flip — "succeeds" but the first byte is damaged.
        persist_bytes(&path, b"check", Some(&faults)).unwrap();
        let got = std::fs::read(&path).unwrap();
        assert_eq!(got[0], b'c' ^ 0xff);
        assert_eq!(&got[1..], b"heck");
        assert_eq!(faults.writes(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_round_trip_and_torn_tail() {
        let dir = tmp_dir("journal");
        let path = dir.join(JOURNAL_FILE);
        let j = Journal::open(&path, None).unwrap();
        let recs = vec![
            JournalRecord::Intent {
                tenant: "census".into(),
                version: 1,
                checkpoint: "census_v1.uaec".into(),
            },
            JournalRecord::Commit { tenant: "census".into(), version: 1 },
            JournalRecord::Intent {
                tenant: "census".into(),
                version: 2,
                checkpoint: "census_v2.uaec".into(),
            },
        ];
        for r in &recs {
            j.append(r).unwrap();
        }
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.records, recs);
        assert!(!replay.torn);
        assert!(replay.existed);

        // Tear the tail at every byte boundary: the valid prefix must
        // survive and replay must flag the tear without ever panicking.
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let r = Journal::replay(&path).unwrap();
            assert!(r.records.len() <= recs.len());
            if cut < full.len() {
                assert!(r.torn || r.records.len() < recs.len() || cut >= full.len() - 1);
            }
            for (got, want) in r.records.iter().zip(&recs) {
                assert_eq!(got, want);
            }
        }
        // Bit-flip every byte: replay keeps the records before the damage.
        for i in 0..full.len() {
            let mut bad = full.clone();
            bad[i] ^= 0x20;
            std::fs::write(&path, &bad).unwrap();
            let r = Journal::replay(&path).unwrap();
            for (got, want) in r.records.iter().zip(&recs) {
                assert_eq!(got, want);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_missing_and_reset() {
        let dir = tmp_dir("jreset");
        let path = dir.join(JOURNAL_FILE);
        let r = Journal::replay(&path).unwrap();
        assert!(!r.existed && r.records.is_empty() && !r.torn);
        let j = Journal::open(&path, None).unwrap();
        j.append(&JournalRecord::Commit { tenant: "t".into(), version: 3 }).unwrap();
        Journal::reset(&path, None).unwrap();
        let r = Journal::replay(&path).unwrap();
        assert!(r.existed && r.records.is_empty() && !r.torn);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_renames_never_deletes() {
        let dir = tmp_dir("quarantine");
        let path = dir.join("bad.uaec");
        std::fs::write(&path, b"junk").unwrap();
        let q1 = quarantine(&path).unwrap();
        assert!(!path.exists());
        assert_eq!(std::fs::read(&q1).unwrap(), b"junk");
        // A second quarantine of the same name must not clobber the first.
        std::fs::write(&path, b"junk2").unwrap();
        let q2 = quarantine(&path).unwrap();
        assert_ne!(q1, q2);
        assert_eq!(std::fs::read(&q1).unwrap(), b"junk");
        assert_eq!(std::fs::read(&q2).unwrap(), b"junk2");
        std::fs::remove_dir_all(&dir).ok();
    }
}
