//! Workload-aware estimator routing — the "model fleet".
//!
//! The paper's finding (6) — the autoregressive model degrades at the tail
//! on high-dimensional, mutually-independent data while SPN-style models
//! thrive — means no single estimator dominates every workload regime.
//! This module turns the nine baselines from a one-rung fallback into a
//! first-class **fleet**: a [`Router`] featurizes each query's shape
//! (dimensionality, filter count, selectivity class, touched-column
//! correlation from [`uae_data::stats::ncc`]) and a [`RoutePolicy`] —
//! hand-tuned thresholds or a policy calibrated on a held-out workload —
//! picks which backend answers.
//!
//! Routing decisions are **pure functions** of the featurizer, the policy
//! and the query: no RNG, no clocks, no shared counters. Replaying the
//! same workload through the same router yields bit-identical decisions,
//! which the router determinism tests and the CI routing drill rely on.
//!
//! Routed answers are *deliberate choices*, not degradations: they carry
//! [`EstimateSource::Routed`] with the backend's family tag and count in
//! [`ServeStats::routed`], never in `fallbacks`.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use uae_data::stats::ncc;
use uae_data::Table;
use uae_estimators::HistogramEstimator;
use uae_query::{
    q_error, CardEstimator, EstimatorFamily, LabeledQuery, PredOp, Query, QueryRegion,
};

use crate::estimator::Uae;
use crate::serve::{check_columns, classify, Estimate, EstimateError, EstimateSource, Validation};
use crate::telemetry::{ServeEvent, ServeObserver, ServeStats};

/// Thresholds of the query-shape featurizer and the calibration procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteConfig {
    /// Rank-grid bins for the pairwise [`ncc`] correlation matrix.
    pub corr_bins: usize,
    /// Touched-column correlation at or above which a query is considered
    /// to hit a correlated subspace (AVI-style independence products
    /// become unsafe).
    pub high_corr: f64,
    /// Column count at or above which the table counts as
    /// high-dimensional (the kddcup-like regime).
    pub wide_table: usize,
    /// AVI selectivity hint below which a query is classed `Narrow`.
    pub narrow_sel: f64,
    /// AVI selectivity hint at or above which a query is classed `Wide`.
    pub wide_sel: f64,
    /// Minimum held-out queries a shape class needs before calibration
    /// trusts a per-class winner over the global one.
    pub min_class_support: usize,
    /// A per-class override must shrink the class median q-error to at
    /// most this fraction of the global winner's class median (guards
    /// against noise flipping classes on thin evidence).
    pub min_gain: f64,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            corr_bins: 16,
            high_corr: 0.3,
            wide_table: 30,
            narrow_sel: 1e-3,
            wide_sel: 0.2,
            min_class_support: 8,
            min_gain: 0.95,
        }
    }
}

/// Coarse selectivity class of a query, from the featurizer's AVI hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SelClass {
    /// Provably empty region (selectivity exactly 0).
    Empty,
    /// AVI hint below `narrow_sel` — the tail regime.
    Narrow,
    /// Between `narrow_sel` and `wide_sel`.
    Medium,
    /// At or above `wide_sel` — broad scans.
    Wide,
}

/// The featurized shape of one query — everything a policy may key on.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryShape {
    /// Number of distinct constrained columns.
    pub filter_count: usize,
    /// Of those, how many are equality (point) constraints.
    pub eq_filters: usize,
    /// Table dimensionality (column count).
    pub dims: usize,
    /// Cheap AVI selectivity hint (product of per-column histogram
    /// fractions) — an upper-bound-ish prior, not an estimate.
    pub sel_hint: f64,
    /// Discretized selectivity class of the hint.
    pub sel_class: SelClass,
    /// Maximum pairwise normalized cross-column correlation among the
    /// touched columns (0 when fewer than two are constrained).
    pub max_corr: f64,
}

impl QueryShape {
    /// Discretized shape-class id the calibrated policy keys on:
    /// `filter band (3) × sel class (4) × correlated (2) × wide table (2)`
    /// → 48 classes.
    pub fn class(&self, cfg: &RouteConfig) -> u16 {
        let filters = match self.filter_count {
            0..=1 => 0u16,
            2..=3 => 1,
            _ => 2,
        };
        let sel = match self.sel_class {
            SelClass::Empty => 0u16,
            SelClass::Narrow => 1,
            SelClass::Medium => 2,
            SelClass::Wide => 3,
        };
        let corr = u16::from(self.max_corr >= cfg.high_corr);
        let wide = u16::from(self.dims >= cfg.wide_table);
        ((filters * 4 + sel) * 2 + corr) * 2 + wide
    }
}

/// Precomputed per-table shape features: the pairwise [`ncc`] correlation
/// matrix and a small AVI histogram for the selectivity hint.
#[derive(Debug)]
pub struct RouteFeaturizer {
    table: Table,
    hint: HistogramEstimator,
    /// Upper-triangular `d × d` pairwise correlation, row-major.
    corr: Vec<f64>,
    cfg: RouteConfig,
}

impl RouteFeaturizer {
    /// Build the featurizer over `table`: `O(d²·n)` for the correlation
    /// matrix, done once per fleet.
    pub fn new(table: &Table, cfg: RouteConfig) -> Self {
        let d = table.num_cols();
        let mut corr = vec![0.0f64; d * d];
        for a in 0..d {
            for b in (a + 1)..d {
                let c = ncc(table.column(a), table.column(b), cfg.corr_bins);
                corr[a * d + b] = c;
                corr[b * d + a] = c;
            }
        }
        RouteFeaturizer {
            table: table.clone(),
            hint: HistogramEstimator::new(table, 32),
            corr,
            cfg,
        }
    }

    /// The table the featurizer (and every fleet backend) was built over.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The featurizer's thresholds.
    pub fn config(&self) -> &RouteConfig {
        &self.cfg
    }

    /// Pairwise correlation between two columns (symmetric, `[0, 1]`).
    pub fn correlation(&self, a: usize, b: usize) -> f64 {
        self.corr[a * self.table.num_cols() + b]
    }

    /// Featurize one query. Pure: same query ⇒ same shape, always.
    pub fn shape(&self, query: &Query) -> QueryShape {
        let dims = self.table.num_cols();
        let region = QueryRegion::build(&self.table, query);
        let touched: Vec<usize> =
            (0..dims).filter(|&c| region.column(c).is_some_and(|r| !r.is_all())).collect();
        let eq_filters = query
            .predicates
            .iter()
            .filter(|p| p.column < dims && matches!(p.op, PredOp::Eq))
            .map(|p| p.column)
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        let mut max_corr = 0.0f64;
        for (i, &a) in touched.iter().enumerate() {
            for &b in &touched[i + 1..] {
                max_corr = max_corr.max(self.correlation(a, b));
            }
        }
        let (sel_hint, sel_class) = if region.is_empty() {
            (0.0, SelClass::Empty)
        } else {
            let hint = self.hint.estimate_selectivity(query);
            let class = if hint < self.cfg.narrow_sel {
                SelClass::Narrow
            } else if hint >= self.cfg.wide_sel {
                SelClass::Wide
            } else {
                SelClass::Medium
            };
            (hint, class)
        };
        QueryShape { filter_count: touched.len(), eq_filters, dims, sel_hint, sel_class, max_corr }
    }
}

/// Which estimator answers: the primary deep model or fleet backend `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// The primary [`Uae`] (through its full serving cascade).
    Primary,
    /// Fleet backend at this index in the router's backend list.
    Backend(usize),
}

/// The routing policy: either hand-tuned shape thresholds or a per-class
/// table calibrated on a held-out workload. Both are pure functions of
/// the query shape.
#[derive(Debug, Clone, PartialEq)]
pub enum RoutePolicy {
    /// Hand rules from the paper's regime findings: high-dimensional
    /// low-correlation shapes go to the named backend (SPNs/AVI thrive
    /// where the autoregressive tail degrades); everything else goes to
    /// the primary.
    Threshold {
        /// Backend for independent high-dimensional shapes.
        independent_backend: usize,
    },
    /// Per-shape-class winners measured on a held-out workload.
    Calibrated {
        /// Choice for classes with no (or thin) calibration evidence.
        default: BackendChoice,
        /// Class id → measured winner. `BTreeMap` for deterministic
        /// iteration and replayable serialization.
        by_class: BTreeMap<u16, BackendChoice>,
    },
}

impl RoutePolicy {
    /// Decide for a featurized query. Pure.
    pub fn choose(&self, shape: &QueryShape, cfg: &RouteConfig) -> BackendChoice {
        match self {
            RoutePolicy::Threshold { independent_backend } => {
                if shape.dims >= cfg.wide_table && shape.max_corr < cfg.high_corr {
                    BackendChoice::Backend(*independent_backend)
                } else {
                    BackendChoice::Primary
                }
            }
            RoutePolicy::Calibrated { default, by_class } => {
                by_class.get(&shape.class(cfg)).copied().unwrap_or(*default)
            }
        }
    }
}

/// One routing decision, with full provenance for replay and telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteDecision {
    /// Who answers.
    pub choice: BackendChoice,
    /// The discretized shape class the policy keyed on.
    pub class: u16,
    /// The featurized shape itself.
    pub shape: QueryShape,
}

/// A shape-aware router over a fleet of baseline backends.
///
/// The router does **not** own the primary [`Uae`]: entry points take the
/// primary per call, so a server registry can hot-swap the deep model
/// (online learning promotions) without rebuilding the fleet.
pub struct Router {
    featurizer: RouteFeaturizer,
    backends: Vec<Arc<dyn CardEstimator>>,
    policy: RoutePolicy,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field(
                "backends",
                &self.backends.iter().map(|b| b.name().to_owned()).collect::<Vec<_>>(),
            )
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl Router {
    /// A router with an explicit (pre-built) policy.
    pub fn new(
        featurizer: RouteFeaturizer,
        backends: Vec<Arc<dyn CardEstimator>>,
        policy: RoutePolicy,
    ) -> Self {
        if let RoutePolicy::Threshold { independent_backend } = policy {
            assert!(independent_backend < backends.len(), "threshold backend out of range");
        }
        Router { featurizer, backends, policy }
    }

    /// The hand-rule policy over `backends`, preferring the first
    /// histogram/SPN-family backend for independent high-dimensional
    /// shapes (the regime where the autoregressive tail degrades).
    pub fn threshold(
        table: &Table,
        backends: Vec<Arc<dyn CardEstimator>>,
        cfg: RouteConfig,
    ) -> Self {
        assert!(!backends.is_empty(), "a fleet needs at least one backend");
        let independent_backend = backends
            .iter()
            .position(|b| matches!(b.family(), EstimatorFamily::Histogram | EstimatorFamily::Spn))
            .unwrap_or(0);
        Router::new(
            RouteFeaturizer::new(table, cfg),
            backends,
            RoutePolicy::Threshold { independent_backend },
        )
    }

    /// Calibrate a per-class policy on a held-out workload: every
    /// candidate (the primary plus each backend) estimates the whole
    /// holdout, the global winner (blended median q-error, ties to the
    /// earliest candidate) becomes the default, and a class with at least
    /// `min_class_support` queries overrides it only when its own winner
    /// beats the default's class median by the configured gain.
    ///
    /// Deterministic: candidates are scanned in fixed order and classes
    /// in ascending id. (The primary's RNG advances while estimating the
    /// holdout, as any serving of those queries would.)
    pub fn calibrate(
        table: &Table,
        primary: &dyn CardEstimator,
        backends: Vec<Arc<dyn CardEstimator>>,
        holdout: &[LabeledQuery],
        cfg: RouteConfig,
    ) -> Self {
        assert!(!backends.is_empty(), "a fleet needs at least one backend");
        assert!(!holdout.is_empty(), "calibration needs a held-out workload");
        let featurizer = RouteFeaturizer::new(table, cfg);
        let queries: Vec<Query> = holdout.iter().map(|lq| lq.query.clone()).collect();
        let truths: Vec<f64> = holdout.iter().map(|lq| lq.cardinality as f64).collect();

        // errs[candidate][query]; candidate 0 is the primary.
        let mut errs: Vec<Vec<f64>> = Vec::with_capacity(backends.len() + 1);
        for cand in std::iter::once(primary as &dyn CardEstimator)
            .chain(backends.iter().map(|b| b.as_ref()))
        {
            let ests = cand.estimate_cards(&queries);
            errs.push(truths.iter().zip(&ests).map(|(&t, &e)| q_error(t, e)).collect());
        }

        let classes: Vec<u16> =
            queries.iter().map(|q| featurizer.shape(q).class(featurizer.config())).collect();
        let all: Vec<usize> = (0..queries.len()).collect();
        let default_idx = argmin_median(&errs, &all);
        let default = candidate_choice(default_idx);

        let mut by_class: BTreeMap<u16, BackendChoice> = BTreeMap::new();
        let mut members: BTreeMap<u16, Vec<usize>> = BTreeMap::new();
        for (i, &c) in classes.iter().enumerate() {
            members.entry(c).or_default().push(i);
        }
        let cfg_ref = featurizer.config();
        for (&class, idxs) in &members {
            if idxs.len() < cfg_ref.min_class_support {
                continue;
            }
            let winner = argmin_median(&errs, idxs);
            if winner == default_idx {
                continue;
            }
            let winner_med = median(idxs.iter().map(|&i| errs[winner][i]));
            let default_med = median(idxs.iter().map(|&i| errs[default_idx][i]));
            if winner_med <= default_med * cfg_ref.min_gain {
                by_class.insert(class, candidate_choice(winner));
            }
        }
        Router::new(featurizer, backends, RoutePolicy::Calibrated { default, by_class })
    }

    /// The featurizer (shape inspection, table access).
    pub fn featurizer(&self) -> &RouteFeaturizer {
        &self.featurizer
    }

    /// The fleet backends, in decision-index order.
    pub fn backends(&self) -> &[Arc<dyn CardEstimator>] {
        &self.backends
    }

    /// The active policy.
    pub fn policy(&self) -> &RoutePolicy {
        &self.policy
    }

    /// Route one query. Pure and replayable: no RNG, no state.
    pub fn decide(&self, query: &Query) -> RouteDecision {
        let shape = self.featurizer.shape(query);
        let class = shape.class(self.featurizer.config());
        let choice = self.policy.choose(&shape, self.featurizer.config());
        RouteDecision { choice, class, shape }
    }

    /// Route a batch (convenience for partitioned execution).
    pub fn decide_batch(&self, queries: &[Query]) -> Vec<RouteDecision> {
        queries.iter().map(|q| self.decide(q)).collect()
    }

    /// Answer `query` with fleet backend `i`, producing a full serving
    /// [`Estimate`] tagged [`EstimateSource::Routed`]. The same
    /// validation contract as the primary cascade applies: unknown
    /// columns are a typed error, empty/trivial regions answer exactly.
    pub fn estimate_routed(&self, i: usize, query: &Query) -> Result<Estimate, EstimateError> {
        let table = self.featurizer.table();
        check_columns(table, query)?;
        let n = table.num_rows() as f64;
        match classify(table, query) {
            Validation::Empty => Ok(Estimate {
                selectivity: 0.0,
                card: 0.0,
                source: EstimateSource::Validation,
                retried: false,
                clamped: false,
            }),
            Validation::Trivial => Ok(Estimate {
                selectivity: 1.0,
                card: n,
                source: EstimateSource::Validation,
                retried: false,
                clamped: false,
            }),
            Validation::Sample => {
                let backend = &self.backends[i];
                let raw = backend.estimate_selectivity(query);
                let sel = if raw.is_finite() { raw.clamp(0.0, 1.0) } else { 0.0 };
                Ok(Estimate {
                    selectivity: sel,
                    card: sel * n,
                    source: EstimateSource::Routed(backend.family()),
                    retried: false,
                    clamped: sel != raw,
                })
            }
        }
    }
}

/// Candidate index (0 = primary) → a [`BackendChoice`].
fn candidate_choice(idx: usize) -> BackendChoice {
    if idx == 0 {
        BackendChoice::Primary
    } else {
        BackendChoice::Backend(idx - 1)
    }
}

/// Median of the values (empty ⇒ `INFINITY`, so empty candidates lose).
fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return f64::INFINITY;
    }
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    }
}

/// Candidate with the smallest median q-error over `idxs` (ties break to
/// the earliest candidate — the primary first, then backends in order).
fn argmin_median(errs: &[Vec<f64>], idxs: &[usize]) -> usize {
    let mut best = 0usize;
    let mut best_med = f64::INFINITY;
    for (cand, per_query) in errs.iter().enumerate() {
        let med = median(idxs.iter().map(|&i| per_query[i]));
        if med < best_med {
            best_med = med;
            best = cand;
        }
    }
    best
}

/// A primary [`Uae`] plus a [`Router`] bundled behind [`CardEstimator`] —
/// the whole fleet as one estimator, for benchmarks, evaluation and
/// standalone serving. Keeps fleet-level [`ServeStats`] (`routed` counts
/// here, never in `fallbacks`) and emits [`ServeEvent::Routed`] to an
/// attached observer.
pub struct RoutedFleet {
    name: String,
    primary: Arc<Uae>,
    router: Arc<Router>,
    serve: Mutex<FleetServe>,
}

#[derive(Default)]
struct FleetServe {
    stats: ServeStats,
    observer: Option<Box<dyn ServeObserver>>,
}

impl RoutedFleet {
    /// Bundle a primary model and a router into one estimator.
    pub fn new(primary: Arc<Uae>, router: Arc<Router>) -> Self {
        RoutedFleet {
            name: "UAE-fleet".to_owned(),
            primary,
            router,
            serve: Mutex::new(FleetServe::default()),
        }
    }

    /// The router (decision replay, backend inspection).
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// The primary deep model.
    pub fn primary(&self) -> &Arc<Uae> {
        &self.primary
    }

    /// Fleet-level serving counters. `served`/`rejected`/`routed` count
    /// every query through the fleet; cascade-internal counters (retries,
    /// fallbacks) live on the primary's own [`Uae::serve_stats`].
    pub fn serve_stats(&self) -> ServeStats {
        self.serve.lock().stats.clone()
    }

    /// Attach an observer receiving [`ServeEvent::Routed`] for every
    /// query sent to a fleet backend.
    pub fn set_serve_observer(&self, observer: Box<dyn ServeObserver>) {
        self.serve.lock().observer = Some(observer);
    }

    /// Detach the observer (dropping a JSONL observer flushes it).
    pub fn take_serve_observer(&self) -> Option<Box<dyn ServeObserver>> {
        self.serve.lock().observer.take()
    }

    /// Serve a batch through the fleet: every query is routed, the
    /// primary's subset goes through its batched cascade (preserving its
    /// one-draw-per-query RNG contract for that subset), and backend
    /// queries answer directly with [`EstimateSource::Routed`] tags.
    pub fn try_estimate_cards(&self, queries: &[Query]) -> Vec<Result<Estimate, EstimateError>> {
        let decisions = self.router.decide_batch(queries);
        let mut primary_idx: Vec<usize> = Vec::new();
        let mut primary_queries: Vec<Query> = Vec::new();
        for (i, d) in decisions.iter().enumerate() {
            if d.choice == BackendChoice::Primary {
                primary_idx.push(i);
                primary_queries.push(queries[i].clone());
            }
        }
        let primary_results = self.primary.try_estimate_cards(&primary_queries);
        let mut out: Vec<Option<Result<Estimate, EstimateError>>> = vec![None; queries.len()];
        for (slot, res) in primary_idx.into_iter().zip(primary_results) {
            out[slot] = Some(res);
        }
        let mut serve = self.serve.lock();
        for (i, d) in decisions.iter().enumerate() {
            serve.stats.served += 1;
            if let BackendChoice::Backend(b) = d.choice {
                let res = self.router.estimate_routed(b, &queries[i]);
                match &res {
                    Ok(e) if e.source.is_routed() => {
                        serve.stats.routed += 1;
                        if e.clamped {
                            serve.stats.clamped += 1;
                        }
                        let event = ServeEvent::Routed {
                            index: i as u64,
                            backend: self.router.backends()[b].name().to_owned(),
                            family: self.router.backends()[b].family().label(),
                            class: d.class,
                        };
                        if let Some(obs) = serve.observer.as_mut() {
                            obs.on_serve_event(&event);
                        }
                    }
                    Ok(_) => {
                        // Validation shortcut: counted as served only.
                    }
                    Err(_) => serve.stats.rejected += 1,
                }
                out[i] = Some(res);
            }
        }
        out.into_iter().map(|r| r.expect("every query answered")).collect()
    }

    /// Serve one query (routing still applies).
    pub fn try_estimate_card(&self, query: &Query) -> Result<Estimate, EstimateError> {
        self.try_estimate_cards(std::slice::from_ref(query)).pop().expect("one result")
    }
}

impl CardEstimator for RoutedFleet {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_rows(&self) -> f64 {
        self.router.featurizer().table().num_rows() as f64
    }

    fn estimate_selectivity(&self, query: &Query) -> f64 {
        self.try_estimate_card(query).map_or(0.0, |e| e.selectivity)
    }

    fn estimate_card(&self, query: &Query) -> f64 {
        self.try_estimate_card(query).map_or(0.0, |e| e.card)
    }

    fn estimate_cards(&self, queries: &[Query]) -> Vec<f64> {
        self.try_estimate_cards(queries).into_iter().map(|r| r.map_or(0.0, |e| e.card)).collect()
    }

    fn size_bytes(&self) -> usize {
        self.primary.size_bytes()
            + self.router.backends().iter().map(|b| b.size_bytes()).sum::<usize>()
    }

    fn family(&self) -> EstimatorFamily {
        EstimatorFamily::Fleet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::Value;
    use uae_query::Predicate;

    fn corr_table() -> Table {
        // y == x (perfectly correlated); z independent.
        Table::from_columns(
            "t",
            vec![
                ("x".into(), (0..400i64).map(|v| Value::Int(v % 20)).collect()),
                ("y".into(), (0..400i64).map(|v| Value::Int(v % 20)).collect()),
                ("z".into(), (0..400i64).map(|v| Value::Int((v * 7919) % 13)).collect()),
            ],
        )
    }

    #[test]
    fn featurizer_sees_correlation_and_filters() {
        let t = corr_table();
        let f = RouteFeaturizer::new(&t, RouteConfig::default());
        assert!(f.correlation(0, 1) > 0.9, "x↔y correlation {}", f.correlation(0, 1));
        assert!(f.correlation(0, 2) < 0.3, "x↔z correlation {}", f.correlation(0, 2));

        let q = Query::new(vec![Predicate::eq(0, 3i64), Predicate::le(1, 9i64)]);
        let s = f.shape(&q);
        assert_eq!(s.filter_count, 2);
        assert_eq!(s.eq_filters, 1);
        assert_eq!(s.dims, 3);
        assert!(s.max_corr > 0.9);

        // Untouched-pair correlation must not leak into the shape.
        let q1 = Query::new(vec![Predicate::eq(2, 3i64)]);
        assert_eq!(f.shape(&q1).max_corr, 0.0);
    }

    #[test]
    fn shape_class_is_stable_and_bounded() {
        let t = corr_table();
        let f = RouteFeaturizer::new(&t, RouteConfig::default());
        let q = Query::new(vec![Predicate::le(0, 9i64)]);
        let s = f.shape(&q);
        let c = s.class(f.config());
        assert_eq!(c, f.shape(&q).class(f.config()), "class must be pure");
        assert!(c < 48);
    }

    #[test]
    fn threshold_policy_prefers_primary_on_narrow_tables() {
        let t = corr_table();
        let hist: Arc<dyn CardEstimator> = Arc::new(HistogramEstimator::new(&t, 16));
        let router = Router::threshold(&t, vec![hist], RouteConfig::default());
        // 3 columns < wide_table=30 ⇒ primary, regardless of correlation.
        let d = router.decide(&Query::new(vec![Predicate::eq(2, 1i64)]));
        assert_eq!(d.choice, BackendChoice::Primary);
    }

    #[test]
    fn routed_estimates_carry_source_and_validate() {
        let t = corr_table();
        let hist: Arc<dyn CardEstimator> = Arc::new(HistogramEstimator::new(&t, 16));
        let router = Router::threshold(&t, vec![hist], RouteConfig::default());
        let e = router.estimate_routed(0, &Query::new(vec![Predicate::eq(0, 3i64)])).unwrap();
        assert_eq!(e.source, EstimateSource::Routed(EstimatorFamily::Histogram));
        assert!(e.card > 0.0);

        let err = router.estimate_routed(0, &Query::new(vec![Predicate::eq(9, 1i64)]));
        assert!(matches!(err, Err(EstimateError::UnknownColumn { column: 9, .. })));

        let empty = router.estimate_routed(0, &Query::new(vec![Predicate::eq(0, 999i64)])).unwrap();
        assert_eq!(empty.source, EstimateSource::Validation);
        assert_eq!(empty.card, 0.0);
    }
}
