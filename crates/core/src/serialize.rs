//! Model-weight serialization: a small, versioned, self-describing binary
//! format (`UAEW`), so trained estimators can be checkpointed and shipped —
//! the paper's deployment story is "only model weights need to be stored"
//! (§4.2).

use uae_tensor::{ParamStore, Tensor};

const MAGIC: &[u8; 4] = b"UAEW";
const VERSION: u32 = 1;

/// Errors from loading a weight blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Not a UAEW blob.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Truncated or structurally invalid payload.
    Corrupt(&'static str),
    /// Parameter count or shapes do not match the target store.
    ShapeMismatch(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadMagic => write!(f, "not a UAEW weight blob"),
            LoadError::BadVersion(v) => write!(f, "unsupported UAEW version {v}"),
            LoadError::Corrupt(what) => write!(f, "corrupt UAEW blob: {what}"),
            LoadError::ShapeMismatch(what) => write!(f, "weight shape mismatch: {what}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Serialize every parameter of a store.
pub fn save_params(store: &ParamStore) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + store.size_bytes());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(store.len() as u32).to_le_bytes());
    for id in store.ids() {
        let name = store.name(id).as_bytes();
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        let t = store.get(id);
        out.extend_from_slice(&(t.rows() as u32).to_le_bytes());
        out.extend_from_slice(&(t.cols() as u32).to_le_bytes());
        for &v in t.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Load a blob into an existing store (shapes and order must match — the
/// store comes from constructing the same model architecture).
pub fn load_params(store: &mut ParamStore, bytes: &[u8]) -> Result<(), LoadError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(LoadError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(LoadError::BadVersion(version));
    }
    let count = r.u32()? as usize;
    if count != store.len() {
        return Err(LoadError::ShapeMismatch(format!(
            "blob has {count} parameters, model has {}",
            store.len()
        )));
    }
    // Two-phase: validate everything, then commit.
    let mut tensors = Vec::with_capacity(count);
    for id in store.ids() {
        let name_len = r.u32()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| LoadError::Corrupt("non-utf8 parameter name"))?;
        if name != store.name(id) {
            return Err(LoadError::ShapeMismatch(format!(
                "parameter `{}` expected, blob has `{name}`",
                store.name(id)
            )));
        }
        let rows = r.u32()? as usize;
        let cols = r.u32()? as usize;
        let expect = store.get(id).shape();
        if (rows, cols) != expect {
            return Err(LoadError::ShapeMismatch(format!(
                "parameter `{name}`: blob {rows}x{cols}, model {}x{}",
                expect.0, expect.1
            )));
        }
        let raw = r.take(rows * cols * 4)?;
        let data: Vec<f32> =
            raw.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
        tensors.push(Tensor::from_vec(rows, cols, data));
    }
    if r.pos != bytes.len() {
        return Err(LoadError::Corrupt("trailing bytes"));
    }
    for (id, t) in store.ids().zip(tensors) {
        *store.get_mut(id) = t;
    }
    Ok(())
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], LoadError> {
        if self.pos + n > self.bytes.len() {
            return Err(LoadError::Corrupt("unexpected end of blob"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, LoadError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ParamStore {
        let mut s = ParamStore::new();
        s.add("w", Tensor::from_vec(2, 3, vec![1.0, -2.5, 3.25, 0.0, 1e-7, -1e7]));
        s.add("b", Tensor::from_vec(1, 3, vec![0.5, 0.25, -0.125]));
        s
    }

    #[test]
    fn round_trip_preserves_weights() {
        let original = store();
        let blob = save_params(&original);
        let mut target = store();
        // Scramble, then load.
        for id in target.ids().collect::<Vec<_>>() {
            target.get_mut(id).fill_zero();
        }
        load_params(&mut target, &blob).expect("load");
        for id in original.ids() {
            assert_eq!(original.get(id), target.get(id));
        }
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let mut s = store();
        assert_eq!(load_params(&mut s, b"nope"), Err(LoadError::BadMagic));
        let blob = save_params(&store());
        assert!(matches!(load_params(&mut s, &blob[..blob.len() - 3]), Err(LoadError::Corrupt(_))));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let blob = save_params(&store());
        let mut other = ParamStore::new();
        other.add("w", Tensor::zeros(2, 3));
        assert!(matches!(load_params(&mut other, &blob), Err(LoadError::ShapeMismatch(_))));
        let mut renamed = ParamStore::new();
        renamed.add("w", Tensor::zeros(2, 3));
        renamed.add("c", Tensor::zeros(1, 3));
        assert!(matches!(load_params(&mut renamed, &blob), Err(LoadError::ShapeMismatch(_))));
    }

    #[test]
    fn versioning_is_checked() {
        let mut blob = save_params(&store());
        blob[4] = 9; // bump version byte
        let mut s = store();
        assert!(matches!(load_params(&mut s, &blob), Err(LoadError::BadVersion(_))));
    }
}
