//! Model serialization: two small, versioned, self-describing binary
//! formats. `UAEW` carries weights only — the paper's deployment story is
//! "only model weights need to be stored" (§4.2). `UAEC` is the *trainer*
//! checkpoint: weights plus Adam moments and step count, the training and
//! estimation RNG streams, and the epoch/step cursor — everything needed
//! for a resumed hybrid run (Alg. 3) to be bit-identical to an
//! uninterrupted one.
//!
//! Both formats (version 2) end in an 8-byte FNV-1a checksum of everything
//! before it, so a bit flip anywhere in the body is caught as a typed
//! [`LoadError::ChecksumMismatch`] even when the flipped bytes still parse
//! structurally. Loading is two-phase everywhere: validate the whole blob
//! (structure, shapes, checksum), then commit — a rejected blob never
//! leaves partially loaded state behind.

use std::path::Path;

use uae_tensor::{ParamStore, Tensor};

use crate::telemetry::TrainStats;

const MAGIC: &[u8; 4] = b"UAEW";
const VERSION: u32 = 2;

const CHECKPOINT_MAGIC: &[u8; 4] = b"UAEC";
const CHECKPOINT_VERSION: u32 = 2;

/// Errors from loading a weight blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Not a UAEW blob.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Truncated or structurally invalid payload.
    Corrupt(&'static str),
    /// The payload parsed but its trailing checksum does not match —
    /// bytes were corrupted in flight or at rest.
    ChecksumMismatch,
    /// Parameter count or shapes do not match the target store.
    ShapeMismatch(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadMagic => write!(f, "not a UAEW/UAEC blob"),
            LoadError::BadVersion(v) => write!(f, "unsupported UAEW/UAEC version {v}"),
            LoadError::Corrupt(what) => write!(f, "corrupt blob: {what}"),
            LoadError::ChecksumMismatch => write!(f, "blob checksum mismatch (corrupted bytes)"),
            LoadError::ShapeMismatch(what) => write!(f, "weight shape mismatch: {what}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Errors from file-level checkpoint operations: either the filesystem
/// failed or the bytes did not parse.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file's contents were rejected.
    Load(LoadError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Load(e) => write!(f, "checkpoint rejected: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<LoadError> for CheckpointError {
    fn from(e: LoadError) -> Self {
        CheckpointError::Load(e)
    }
}

/// FNV-1a over a byte slice — the blob integrity hash. Not cryptographic;
/// it exists to catch accidental corruption (bit rot, torn copies), not
/// adversaries.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Append the trailing FNV-1a checksum of everything written so far.
fn seal(out: &mut Vec<u8>) {
    let sum = fnv1a(out);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// Validate the common blob envelope (magic, version, minimum length) and
/// return the payload — everything except the trailing 8-byte checksum.
/// The checksum itself is verified by [`verify_checksum`] *after* the
/// structural parse, so truncation and framing errors keep their more
/// specific `Corrupt` diagnoses.
fn open_envelope<'a>(
    bytes: &'a [u8],
    magic: &[u8; 4],
    version: u32,
) -> Result<&'a [u8], LoadError> {
    if bytes.len() < 4 {
        return Err(LoadError::Corrupt("unexpected end of blob"));
    }
    if &bytes[..4] != magic {
        return Err(LoadError::BadMagic);
    }
    // Smallest well-formed blob: magic + version + trailing checksum.
    if bytes.len() < 16 {
        return Err(LoadError::Corrupt("unexpected end of blob"));
    }
    let v = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if v != version {
        return Err(LoadError::BadVersion(v));
    }
    Ok(&bytes[..bytes.len() - 8])
}

/// Frame `payload` in the standard sealed-blob envelope: `magic + version
/// + payload + trailing FNV-1a checksum`. The write-side twin of
/// [`open_blob`], shared by every small on-disk format (the tenant
/// manifest uses it; `UAEW`/`UAEC` predate it but follow the same layout).
pub fn seal_blob(magic: &[u8; 4], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(payload);
    seal(&mut out);
    out
}

/// Validate a sealed blob (magic, version, checksum) and return the inner
/// payload. Unlike the two-phase `UAEW`/`UAEC` loaders, the checksum is
/// verified *before* the caller parses, so any truncation or bit flip in
/// the body surfaces as a typed error here.
pub fn open_blob<'a>(
    bytes: &'a [u8],
    magic: &[u8; 4],
    version: u32,
) -> Result<&'a [u8], LoadError> {
    let payload = open_envelope(bytes, magic, version)?;
    verify_checksum(bytes, payload)?;
    Ok(&payload[8..])
}

/// Compare the trailing checksum of `bytes` against a fresh hash of
/// `payload` (as returned by [`open_envelope`]).
fn verify_checksum(bytes: &[u8], payload: &[u8]) -> Result<(), LoadError> {
    let tail = &bytes[payload.len()..];
    let stored = u64::from_le_bytes([
        tail[0], tail[1], tail[2], tail[3], tail[4], tail[5], tail[6], tail[7],
    ]);
    if fnv1a(payload) != stored {
        return Err(LoadError::ChecksumMismatch);
    }
    Ok(())
}

/// Serialize every parameter of a store.
pub fn save_params(store: &ParamStore) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + store.size_bytes());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(store.len() as u32).to_le_bytes());
    for id in store.ids() {
        let name = store.name(id).as_bytes();
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        let t = store.get(id);
        out.extend_from_slice(&(t.rows() as u32).to_le_bytes());
        out.extend_from_slice(&(t.cols() as u32).to_le_bytes());
        for &v in t.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    seal(&mut out);
    out
}

/// Load a blob into an existing store (shapes and order must match — the
/// store comes from constructing the same model architecture).
pub fn load_params(store: &mut ParamStore, bytes: &[u8]) -> Result<(), LoadError> {
    let payload = open_envelope(bytes, MAGIC, VERSION)?;
    let mut r = Reader { bytes: payload, pos: 8 };
    let count = r.u32()? as usize;
    if count != store.len() {
        return Err(LoadError::ShapeMismatch(format!(
            "blob has {count} parameters, model has {}",
            store.len()
        )));
    }
    // Two-phase: validate everything, then commit.
    let mut tensors = Vec::with_capacity(count);
    for id in store.ids() {
        let name_len = r.u32()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| LoadError::Corrupt("non-utf8 parameter name"))?;
        if name != store.name(id) {
            return Err(LoadError::ShapeMismatch(format!(
                "parameter `{}` expected, blob has `{name}`",
                store.name(id)
            )));
        }
        let rows = r.u32()? as usize;
        let cols = r.u32()? as usize;
        let expect = store.get(id).shape();
        if (rows, cols) != expect {
            return Err(LoadError::ShapeMismatch(format!(
                "parameter `{name}`: blob {rows}x{cols}, model {}x{}",
                expect.0, expect.1
            )));
        }
        let raw = r.take(rows * cols * 4)?;
        let data: Vec<f32> =
            raw.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
        tensors.push(Tensor::from_vec(rows, cols, data));
    }
    if r.pos != payload.len() {
        return Err(LoadError::Corrupt("trailing bytes"));
    }
    verify_checksum(bytes, payload)?;
    for (id, t) in store.ids().zip(tensors) {
        *store.get_mut(id) = t;
    }
    Ok(())
}

/// The full trainer state carried by a `UAEC` checkpoint. Everything a
/// resumed run needs beyond the architecture itself (which is rebuilt from
/// the table + [`crate::UaeConfig`]): weights, optimizer moments, RNG
/// streams, learning rate and the epoch/step cursor.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// Nested `UAEW` weight blob (see [`save_params`]).
    pub weights: Vec<u8>,
    /// Adam bias-correction step count.
    pub adam_t: u64,
    /// Adam first moments (empty if the optimizer never stepped).
    pub adam_m: Vec<Tensor>,
    /// Adam second moments (same length/shapes as `adam_m`).
    pub adam_v: Vec<Tensor>,
    /// Learning rate at checkpoint time (backoff may have lowered it from
    /// the configured value).
    pub lr: f32,
    /// Training RNG state (batch shuffles, wildcard dropout, Gumbel noise).
    pub rng: [u64; 4],
    /// Estimation RNG state (progressive-sampling streams).
    pub est_rng: [u64; 4],
    /// Cumulative train counters, including the epoch/step cursor.
    pub stats: TrainStats,
}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    out.extend_from_slice(&(t.rows() as u32).to_le_bytes());
    out.extend_from_slice(&(t.cols() as u32).to_le_bytes());
    for &v in t.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Serialize a trainer checkpoint (format `UAEC`, version 2).
pub fn save_checkpoint(ck: &CheckpointState) -> Vec<u8> {
    assert_eq!(ck.adam_m.len(), ck.adam_v.len(), "mismatched Adam moment vectors");
    let mut out = Vec::with_capacity(64 + ck.weights.len() * 3);
    out.extend_from_slice(CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&(ck.weights.len() as u32).to_le_bytes());
    out.extend_from_slice(&ck.weights);
    out.extend_from_slice(&ck.adam_t.to_le_bytes());
    out.extend_from_slice(&(ck.adam_m.len() as u32).to_le_bytes());
    for (m, v) in ck.adam_m.iter().zip(&ck.adam_v) {
        assert_eq!(m.shape(), v.shape(), "mismatched Adam moment shapes");
        put_tensor(&mut out, m);
        put_tensor(&mut out, v);
    }
    out.extend_from_slice(&ck.lr.to_le_bytes());
    for &s in ck.rng.iter().chain(&ck.est_rng) {
        out.extend_from_slice(&s.to_le_bytes());
    }
    let TrainStats { epochs, steps, executed_steps, clipped_steps, skipped_steps, rollbacks } =
        ck.stats;
    for c in [epochs, steps, executed_steps, clipped_steps, skipped_steps, rollbacks] {
        out.extend_from_slice(&c.to_le_bytes());
    }
    seal(&mut out);
    out
}

/// Parse a `UAEC` checkpoint. Structural validation only — weight and
/// moment shapes are checked against the model by the caller
/// ([`crate::Uae::load_checkpoint`]).
pub fn load_checkpoint(bytes: &[u8]) -> Result<CheckpointState, LoadError> {
    let payload = open_envelope(bytes, CHECKPOINT_MAGIC, CHECKPOINT_VERSION)?;
    let mut r = Reader { bytes: payload, pos: 8 };
    let weights_len = r.u32()? as usize;
    let weights = r.take(weights_len)?.to_vec();
    let adam_t = r.u64()?;
    let moments = r.u32()? as usize;
    let mut adam_m = Vec::with_capacity(moments);
    let mut adam_v = Vec::with_capacity(moments);
    for _ in 0..moments {
        adam_m.push(r.tensor()?);
        adam_v.push(r.tensor()?);
    }
    let lr = r.f32()?;
    let mut rng = [0u64; 4];
    for s in &mut rng {
        *s = r.u64()?;
    }
    let mut est_rng = [0u64; 4];
    for s in &mut est_rng {
        *s = r.u64()?;
    }
    let stats = TrainStats {
        epochs: r.u64()?,
        steps: r.u64()?,
        executed_steps: r.u64()?,
        clipped_steps: r.u64()?,
        skipped_steps: r.u64()?,
        rollbacks: r.u64()?,
    };
    if r.pos != payload.len() {
        return Err(LoadError::Corrupt("trailing bytes"));
    }
    verify_checksum(bytes, payload)?;
    for (m, v) in adam_m.iter().zip(&adam_v) {
        if m.shape() != v.shape() {
            return Err(LoadError::Corrupt("mismatched Adam moment shapes"));
        }
    }
    Ok(CheckpointState { weights, adam_t, adam_m, adam_v, lr, rng, est_rng, stats })
}

/// Write `bytes` to `path` atomically: write + fsync a sibling temp file,
/// rename over the destination, fsync the parent directory. A crash
/// mid-write leaves either the old checkpoint or none — never a truncated
/// one. Thin `io::Result` wrapper over [`crate::persist::persist_bytes`];
/// new code should call that directly for the typed error and fault
/// injection.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    crate::persist::persist_bytes(path, bytes, None).map_err(|e| match e {
        crate::persist::PersistError::Io { source, .. } => source,
        other => unreachable!("no faults injected: {other}"),
    })
}

/// Sequential little-endian reader over a sealed-blob payload. Public so
/// sibling crates parsing their own sealed formats (the `uae-server`
/// tenant manifest) reuse the same bounds-checked primitives.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, starting at offset zero.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Take the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], LoadError> {
        if self.pos + n > self.bytes.len() {
            return Err(LoadError::Corrupt("unexpected end of blob"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Take one byte.
    pub fn u8(&mut self) -> Result<u8, LoadError> {
        Ok(self.take(1)?[0])
    }

    /// Take a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, LoadError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Take a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, LoadError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Take a little-endian `f32`.
    pub fn f32(&mut self) -> Result<f32, LoadError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Take a `u32`-length-prefixed UTF-8 string.
    pub fn str_field(&mut self) -> Result<&'a str, LoadError> {
        let n = self.u32()? as usize;
        std::str::from_utf8(self.take(n)?).map_err(|_| LoadError::Corrupt("non-utf8 string"))
    }

    fn tensor(&mut self) -> Result<Tensor, LoadError> {
        let rows = self.u32()? as usize;
        let cols = self.u32()? as usize;
        let n = rows
            .checked_mul(cols)
            .filter(|&n| n <= self.bytes.len() / 4 + 1)
            .ok_or(LoadError::Corrupt("tensor shape overflows blob"))?;
        let raw = self.take(n * 4)?;
        let data: Vec<f32> =
            raw.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
        Ok(Tensor::from_vec(rows, cols, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ParamStore {
        let mut s = ParamStore::new();
        s.add("w", Tensor::from_vec(2, 3, vec![1.0, -2.5, 3.25, 0.0, 1e-7, -1e7]));
        s.add("b", Tensor::from_vec(1, 3, vec![0.5, 0.25, -0.125]));
        s
    }

    #[test]
    fn round_trip_preserves_weights() {
        let original = store();
        let blob = save_params(&original);
        let mut target = store();
        // Scramble, then load.
        for id in target.ids().collect::<Vec<_>>() {
            target.get_mut(id).fill_zero();
        }
        load_params(&mut target, &blob).expect("load");
        for id in original.ids() {
            assert_eq!(original.get(id), target.get(id));
        }
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let mut s = store();
        assert_eq!(load_params(&mut s, b"nope"), Err(LoadError::BadMagic));
        let blob = save_params(&store());
        assert!(matches!(load_params(&mut s, &blob[..blob.len() - 3]), Err(LoadError::Corrupt(_))));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let blob = save_params(&store());
        let mut other = ParamStore::new();
        other.add("w", Tensor::zeros(2, 3));
        assert!(matches!(load_params(&mut other, &blob), Err(LoadError::ShapeMismatch(_))));
        let mut renamed = ParamStore::new();
        renamed.add("w", Tensor::zeros(2, 3));
        renamed.add("c", Tensor::zeros(1, 3));
        assert!(matches!(load_params(&mut renamed, &blob), Err(LoadError::ShapeMismatch(_))));
    }

    #[test]
    fn rejects_bit_flips_via_checksum() {
        let mut s = store();
        let clean = save_params(&store());
        // Flip a bit inside the last weight value: every structural field
        // still parses, so only the checksum can catch it.
        let mut flipped = clean.clone();
        let idx = flipped.len() - 10;
        flipped[idx] ^= 0x40;
        assert_eq!(load_params(&mut s, &flipped), Err(LoadError::ChecksumMismatch));
        // A damaged checksum itself is also a mismatch.
        let mut bad_sum = clean.clone();
        let last = bad_sum.len() - 1;
        bad_sum[last] ^= 0x01;
        assert_eq!(load_params(&mut s, &bad_sum), Err(LoadError::ChecksumMismatch));
        // The pristine blob still loads.
        load_params(&mut s, &clean).expect("clean blob loads");
    }

    #[test]
    fn versioning_is_checked() {
        let mut blob = save_params(&store());
        blob[4] = 9; // bump version byte
        let mut s = store();
        assert!(matches!(load_params(&mut s, &blob), Err(LoadError::BadVersion(_))));
    }

    fn checkpoint() -> CheckpointState {
        CheckpointState {
            weights: save_params(&store()),
            adam_t: 17,
            adam_m: vec![
                Tensor::from_vec(2, 3, vec![0.1; 6]),
                Tensor::from_vec(1, 3, vec![0.2; 3]),
            ],
            adam_v: vec![
                Tensor::from_vec(2, 3, vec![0.3; 6]),
                Tensor::from_vec(1, 3, vec![0.4; 3]),
            ],
            lr: 1.5e-3,
            rng: [1, 2, 3, 4],
            est_rng: [5, 6, 7, 8],
            stats: TrainStats {
                epochs: 3,
                steps: 40,
                executed_steps: 38,
                clipped_steps: 5,
                skipped_steps: 2,
                rollbacks: 1,
            },
        }
    }

    #[test]
    fn checkpoint_round_trip() {
        let ck = checkpoint();
        let blob = save_checkpoint(&ck);
        assert_eq!(load_checkpoint(&blob).expect("load"), ck);
        // Lazy-init (empty moments) round-trips too.
        let empty = CheckpointState { adam_m: vec![], adam_v: vec![], adam_t: 0, ..checkpoint() };
        assert_eq!(load_checkpoint(&save_checkpoint(&empty)).expect("load"), empty);
    }

    #[test]
    fn checkpoint_rejects_garbage_truncation_and_versions() {
        assert_eq!(load_checkpoint(b"UAEW\x01\x00\x00\x00"), Err(LoadError::BadMagic));
        assert_eq!(load_checkpoint(b"xy"), Err(LoadError::Corrupt("unexpected end of blob")));
        let blob = save_checkpoint(&checkpoint());
        for cut in [5, blob.len() / 2, blob.len() - 1] {
            assert!(
                matches!(load_checkpoint(&blob[..cut]), Err(LoadError::Corrupt(_))),
                "truncation at {cut} must be rejected"
            );
        }
        let mut extended = blob.clone();
        extended.push(0);
        assert_eq!(load_checkpoint(&extended), Err(LoadError::Corrupt("trailing bytes")));
        let mut versioned = blob;
        versioned[4] = 9;
        assert_eq!(load_checkpoint(&versioned), Err(LoadError::BadVersion(9)));
    }

    #[test]
    fn checkpoint_rejects_bit_flips_via_checksum() {
        let clean = save_checkpoint(&checkpoint());
        // Flip a bit inside the trailing stats counters: structurally valid,
        // semantically corrupt.
        let mut flipped = clean.clone();
        let idx = flipped.len() - 12;
        flipped[idx] ^= 0x80;
        assert_eq!(load_checkpoint(&flipped), Err(LoadError::ChecksumMismatch));
        let mut bad_sum = clean.clone();
        let last = bad_sum.len() - 1;
        bad_sum[last] ^= 0x01;
        assert_eq!(load_checkpoint(&bad_sum), Err(LoadError::ChecksumMismatch));
        load_checkpoint(&clean).expect("clean blob loads");
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("uae_ck_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.uaec");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp file must not survive the rename");
        std::fs::remove_dir_all(&dir).ok();
    }
}
