//! Serving-robustness layer: typed estimate errors, per-query validation,
//! and the configuration of the fallback cascade.
//!
//! The optimizer must be able to ask UAE for a cardinality at any time and
//! always get a usable number back (Wu & Cong, SIGMOD 2021 position the
//! model as a drop-in estimator), yet learned estimators are exactly the
//! components that fail ungracefully on out-of-distribution inputs. This
//! module supplies the serving contract around [`crate::Uae`]:
//!
//! * **validation** ([`validate_query`]) classifies a query before any
//!   model work: unknown column indices are the only hard error
//!   ([`EstimateError`]); out-of-domain literals, inverted or empty ranges
//!   short-circuit to an exact `0`, and full-wildcard queries to an exact
//!   `1`, without touching the sampler;
//! * **the cascade** (configured by [`ServeConfig`], driven by
//!   `Uae::try_estimate_card(s)`) retries an unhealthy sample — non-finite
//!   selectivity, a panicked attempt, or zero live samples — once on a
//!   derived RNG substream with a boosted sample budget, then degrades to
//!   the always-available histogram baseline, and clamps the final
//!   cardinality into `[0, N]`;
//! * **deterministic fault injection** ([`FaultPlan`]) poisons specific
//!   serving indices (NaN "logits", worker panics, checkpoint byte
//!   corruption) so every degradation path is exercised by tests and the
//!   CI fault drill, never discovered in production first.

use uae_data::Table;
use uae_query::{EstimatorFamily, Query, QueryRegion};
use uae_tensor::QuantMode;

/// A query the serving layer refuses to estimate. Unknown columns are the
/// only hard rejection: every other malformed shape (empty ranges,
/// out-of-domain literals) has a well-defined cardinality and is answered
/// exactly by validation instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// A predicate references a column index outside the table.
    UnknownColumn {
        /// The offending column index.
        column: usize,
        /// Number of columns the estimator was built over.
        num_cols: usize,
    },
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::UnknownColumn { column, num_cols } => {
                write!(f, "unknown column {column} (table has {num_cols} columns)")
            }
        }
    }
}

impl std::error::Error for EstimateError {}

/// Validation verdict for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Validation {
    /// The query constrains the table non-trivially: run the sampler.
    Sample,
    /// Some column's region is empty (inverted range, out-of-domain
    /// equality literal, contradictory conjunction): selectivity is
    /// exactly `0`.
    Empty,
    /// Every column is unconstrained or constrained to its full domain:
    /// selectivity is exactly `1`.
    Trivial,
}

/// Bounds-check every predicate's column index against `table`.
pub fn check_columns(table: &Table, query: &Query) -> Result<(), EstimateError> {
    let num_cols = table.num_cols();
    for pred in &query.predicates {
        if pred.column >= num_cols {
            return Err(EstimateError::UnknownColumn { column: pred.column, num_cols });
        }
    }
    Ok(())
}

/// Classify a (bounds-checked) query by its region structure. Exact by
/// construction: an empty region admits no row, and a full region admits
/// every row, independent of the model.
pub fn classify(table: &Table, query: &Query) -> Validation {
    if query.predicates.is_empty() {
        return Validation::Trivial;
    }
    let region = QueryRegion::build(table, query);
    if region.is_empty() {
        return Validation::Empty;
    }
    if region.columns().iter().flatten().all(|r| r.is_all()) {
        return Validation::Trivial;
    }
    Validation::Sample
}

/// Validate one query: bounds-check the column indices, then classify the
/// region structure. The standalone entry point for callers that want the
/// verdict without running an estimate.
pub fn validate_query(table: &Table, query: &Query) -> Result<Validation, EstimateError> {
    check_columns(table, query)?;
    Ok(classify(table, query))
}

/// Where the final number of an [`Estimate`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateSource {
    /// The deep model's progressive-sampling estimate (possibly after a
    /// retry).
    Model,
    /// The deep model answered, but under a shrunken progressive-sample
    /// budget: the serving front-end engaged its latency-SLO degradation
    /// ladder (queue depth or observed tail latency over threshold) and
    /// traded accuracy for drain rate. Still a model estimate — consumers
    /// that only split model/baseline should treat it as [`Self::Model`].
    ModelDegraded,
    /// A validation shortcut: exactly `0` (empty region) or exactly `1`
    /// (trivial region), no sampling performed.
    Validation,
    /// The model stayed unhealthy through the retry; the histogram (AVI)
    /// baseline answered instead.
    Baseline,
    /// A routing policy sent the query to a fleet backend *instead of* the
    /// deep model — a deliberate, shape-based choice made before any
    /// sampling, not a degradation. The tag records which model family
    /// answered. Distinct from [`Self::Baseline`], which is the cascade's
    /// last-resort tier after the model failed.
    Routed(EstimatorFamily),
}

impl EstimateSource {
    /// Stable lowercase label for telemetry lines and reports.
    pub fn label(&self) -> &'static str {
        match self {
            EstimateSource::Model => "model",
            EstimateSource::ModelDegraded => "model_degraded",
            EstimateSource::Validation => "validation",
            EstimateSource::Baseline => "baseline",
            EstimateSource::Routed(family) => family.label(),
        }
    }

    /// Whether this estimate came from a routed fleet backend.
    pub fn is_routed(&self) -> bool {
        matches!(self, EstimateSource::Routed(_))
    }
}

/// One served estimate, with its degradation provenance. The cardinality
/// is always finite and inside `[0, N]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Selectivity in `[0, 1]`.
    pub selectivity: f64,
    /// Cardinality in `[0, N]` (`selectivity · num_rows`).
    pub card: f64,
    /// Which tier of the cascade produced the number.
    pub source: EstimateSource,
    /// Whether the first sampling attempt was unhealthy and a retry ran.
    pub retried: bool,
    /// Whether the raw value had to be clamped (or replaced, when even the
    /// baseline produced a non-finite value) to reach `[0, 1]`.
    pub clamped: bool,
}

/// Deterministic fault plan for the serving path. Queries are addressed by
/// their **serving index** — the value of the estimator's served-query
/// counter when the query arrives — so a plan written against a fixed call
/// sequence reproduces exactly. An empty plan (the default) is inert.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Serving indices whose *first* sampling attempt reports a NaN
    /// selectivity (as if the logits went non-finite mid-walk); the retry
    /// is clean, so these exercise the retry tier.
    pub nan_once: Vec<u64>,
    /// Serving indices whose every attempt reports NaN (as if the weights
    /// themselves are poisoned); these fall through to the baseline.
    pub nan_always: Vec<u64>,
    /// Serving indices whose sampling attempt panics, as a poisoned query
    /// crashing a pool worker would; exercises batch panic isolation.
    pub panic_queries: Vec<u64>,
    /// Corrupt one byte of every serialized checkpoint: `(offset, mask)`
    /// XORs `mask` into byte `offset % len`. Exercises the typed
    /// checkpoint-corruption errors end to end.
    pub corrupt_checkpoint: Option<(usize, u8)>,
}

impl FaultPlan {
    /// Whether the plan injects nothing.
    pub fn is_inert(&self) -> bool {
        self.nan_once.is_empty()
            && self.nan_always.is_empty()
            && self.panic_queries.is_empty()
            && self.corrupt_checkpoint.is_none()
    }

    /// Whether the attempt (`0` = first, `1` = retry) at serving index
    /// `index` must report NaN.
    pub fn nan_hits(&self, index: u64, attempt: u32) -> bool {
        self.nan_always.contains(&index) || (attempt == 0 && self.nan_once.contains(&index))
    }

    /// Whether sampling at serving index `index` must panic.
    pub fn panics(&self, index: u64) -> bool {
        self.panic_queries.contains(&index)
    }
}

/// Configuration of the serving cascade.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Validate queries before sampling (unknown-column rejection plus the
    /// exact empty/trivial shortcuts). Disabling sends every query to the
    /// sampler, as the pre-hardening code did.
    pub validate: bool,
    /// Retry an unhealthy sample once on a derived RNG substream before
    /// degrading to the baseline.
    pub retry: bool,
    /// Sample-budget multiplier for the retry attempt.
    pub retry_boost: usize,
    /// Equi-depth buckets of the lazily built histogram baseline.
    pub fallback_buckets: usize,
    /// Deterministic fault injection (inert by default).
    pub fault: FaultPlan,
    /// Numeric mode of the inference forward pass. `QuantMode::Int8`
    /// quantizes the snapshot's weights per column at swap time and runs the
    /// matmuls in int8 with f32 accumulation; training is always f32 and
    /// checkpoint bytes never change. Gated by the q-error parity suite.
    pub quant: QuantMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            validate: true,
            retry: true,
            retry_boost: 4,
            fallback_buckets: 64,
            fault: FaultPlan::default(),
            quant: QuantMode::F32,
        }
    }
}

/// Whether a sampled selectivity is trustworthy: finite and backed by at
/// least one live sample. `0.0` from the sampler means every progressive
/// sample died (`p_hat = 0` across the batch) — on a validated non-empty
/// region that is a failure mode, not an answer.
pub fn healthy(sel: f64) -> bool {
    sel.is_finite() && sel > 0.0
}

/// The derived substream for the retry attempt. Never drawn from the
/// estimator's RNG: an extra draw would desynchronize the sequential and
/// batched seed streams, which must stay bit-identical.
pub fn retry_seed(qseed: u64) -> u64 {
    qseed ^ 0x9e37_79b9_7f4a_7c15
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::Value;
    use uae_query::Predicate;

    fn table() -> Table {
        Table::from_columns(
            "t",
            vec![
                ("x".into(), (0..50i64).map(Value::Int).collect()),
                ("y".into(), (0..50i64).map(|v| Value::Int(v % 5)).collect()),
            ],
        )
    }

    #[test]
    fn unknown_columns_are_the_only_hard_error() {
        let t = table();
        let bad = Query::new(vec![Predicate::eq(7, 1i64)]);
        assert_eq!(
            validate_query(&t, &bad),
            Err(EstimateError::UnknownColumn { column: 7, num_cols: 2 })
        );
        // Out-of-domain literals and inverted ranges are answers, not errors.
        let out_of_domain = Query::new(vec![Predicate::eq(0, 999i64)]);
        assert_eq!(validate_query(&t, &out_of_domain), Ok(Validation::Empty));
        let inverted = Query::new(vec![Predicate::ge(0, 40i64), Predicate::le(0, 10i64)]);
        assert_eq!(validate_query(&t, &inverted), Ok(Validation::Empty));
    }

    #[test]
    fn trivial_and_sample_classification() {
        let t = table();
        assert_eq!(validate_query(&t, &Query::default()), Ok(Validation::Trivial));
        // A range covering the whole domain constrains nothing.
        let full = Query::new(vec![Predicate::le(0, 49i64)]);
        assert_eq!(validate_query(&t, &full), Ok(Validation::Trivial));
        let real = Query::new(vec![Predicate::le(0, 24i64)]);
        assert_eq!(validate_query(&t, &real), Ok(Validation::Sample));
    }

    #[test]
    fn fault_plan_addressing() {
        let plan = FaultPlan {
            nan_once: vec![3],
            nan_always: vec![5],
            panic_queries: vec![7],
            ..FaultPlan::default()
        };
        assert!(plan.nan_hits(3, 0) && !plan.nan_hits(3, 1));
        assert!(plan.nan_hits(5, 0) && plan.nan_hits(5, 1));
        assert!(plan.panics(7) && !plan.panics(3));
        assert!(!plan.is_inert());
        assert!(FaultPlan::default().is_inert());
    }

    #[test]
    fn health_and_retry_seed() {
        assert!(healthy(0.25));
        assert!(!healthy(0.0), "zero live samples is a failure mode");
        assert!(!healthy(f64::NAN));
        assert!(!healthy(f64::INFINITY));
        // The retry substream differs from the primary one but is a pure
        // function of it.
        assert_ne!(retry_seed(42), 42);
        assert_eq!(retry_seed(42), retry_seed(42));
    }
}
