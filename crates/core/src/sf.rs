//! Score-function (REINFORCE) gradient estimation for the query loss —
//! the alternative to the Gumbel-Softmax trick that the paper analyzes and
//! rejects in §4.3 (Eq. 7) because of its high, dimension-dependent
//! variance. Implemented here so the claim is testable: the ablation bench
//! compares gradient variance and training quality against DPS.
//!
//! The estimator: with a *discrete* progressive-sampling path
//! `z = (z_1, …, z_n)` drawn from the region-masked conditionals,
//!
//! ```text
//! ∇θ E[L] = E[ L(θ, z) · ∇θ log P_θ(z) + ∇θ L(θ, z) ]
//! ```
//!
//! Both terms are computed on one tape: the path is fixed (constant
//! inputs), `log P_θ(z)` is the sum of gathered, masked-renormalized
//! conditional log-probabilities, and `L(θ, z)` is the Q-error of the
//! density estimate `p̂(θ, z) = Π_i P_θ(z_i ∈ R_i | z_<i)` along the path.
//! A running-mean baseline reduces (but, as the paper predicts, does not
//! eliminate) the variance.

use std::sync::Arc;

use rand::RngExt;
use uae_tensor::tensor::softmax_in_place;
use uae_tensor::{NodeId, Tape, Tensor};

use crate::encoding::VirtualSchema;
use crate::model::ResMade;
use crate::train::TrainQuery;
use crate::vquery::{StepRegion, VirtualQuery};

/// One sampled progressive path for one query.
struct SampledPath {
    /// Sampled code per virtual column (`None` for skipped wildcards).
    codes: Vec<Option<u32>>,
    /// Region mask per constrained column (renormalization masks).
    masks: Vec<Option<Vec<f32>>>,
}

/// Draw a discrete progressive path for a query using the current model.
fn sample_path(
    raw: &crate::model::RawModel,
    schema: &VirtualSchema,
    vq: &VirtualQuery,
    rng: &mut impl RngExt,
) -> SampledPath {
    let nv = schema.num_virtual();
    let mut codes = vec![None; nv];
    let mut masks = vec![None; nv];
    let Some(last) = vq.last_constrained() else {
        return SampledPath { codes, masks };
    };
    let mut inputs = Tensor::zeros(1, schema.input_width());
    for v in 0..=last {
        let step = vq.step(v);
        if !step.is_constrained() {
            continue;
        }
        let codec = schema.codec(v);
        let domain = codec.domain();
        let hidden = raw.hidden(&inputs);
        let mut probs = raw.logits_col(&hidden, v);
        softmax_in_place(probs.row_mut(0));
        let mask: Vec<f32> = match step {
            StepRegion::Fixed(r) => r.to_mask(),
            StepRegion::LoOfSplit { hi_vcol, .. } => {
                let h = codes[*hi_vcol].expect("hi sampled before lo");
                vq.lo_region(v, h, domain as u32).to_mask()
            }
            StepRegion::Weighted(w) => w.iter().map(|&x| x as f32).collect(),
            StepRegion::Wildcard => unreachable!(),
        };
        // Sample from the mask-reweighted conditional.
        let row = probs.row(0);
        let total: f64 = row.iter().zip(&mask).map(|(&p, &m)| p as f64 * m as f64).sum();
        let code = if total <= 0.0 {
            // Dead path: fall back to the first admitted code (or 0).
            mask.iter().position(|&m| m > 0.0).unwrap_or(0) as u32
        } else {
            let target = rng.random::<f64>() * total;
            let mut acc = 0.0f64;
            let mut picked = domain as u32 - 1;
            for (c, (&p, &m)) in row.iter().zip(&mask).enumerate() {
                acc += p as f64 * m as f64;
                if acc >= target {
                    picked = c as u32;
                    break;
                }
            }
            picked
        };
        codes[v] = Some(code);
        masks[v] = Some(mask);
        let (bs, be) = schema.input_slice(v);
        raw.encode_into(v, code, &mut inputs.row_mut(0)[bs..be]);
    }
    SampledPath { codes, masks }
}

/// Running-mean baseline for variance reduction.
#[derive(Debug, Clone, Default)]
pub struct SfBaseline {
    mean: f64,
    count: u64,
}

impl SfBaseline {
    /// Current baseline value.
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Update with an observed loss.
    pub fn update(&mut self, loss: f64) {
        self.count += 1;
        self.mean += (loss - self.mean) / self.count as f64;
    }
}

/// Build the REINFORCE surrogate loss for a batch of queries. Minimizing it
/// with the usual backward pass yields the Eq. 7 gradient estimate.
///
/// Returns `(surrogate loss node, mean observed q-error)`.
#[allow(clippy::too_many_arguments)]
pub fn score_function_loss(
    tape: &mut Tape<'_>,
    model: &ResMade,
    store: &uae_tensor::ParamStore,
    schema: &VirtualSchema,
    batch: &[TrainQuery],
    qerror_cap: f32,
    baseline: &mut SfBaseline,
    rng: &mut impl RngExt,
) -> (NodeId, f64) {
    assert!(!batch.is_empty());
    let raw = model.snapshot(store);
    let mut per_query: Vec<NodeId> = Vec::with_capacity(batch.len());
    let mut observed = 0.0f64;

    for tq in batch {
        let path = sample_path(&raw, schema, &tq.vquery, rng);
        let nv = schema.num_virtual();

        // Fixed-path inputs for each step (teacher-forced with the
        // sampled codes).
        let mut inputs = Tensor::zeros(1, schema.input_width());
        let mut p_hat: Option<NodeId> = None;
        let mut log_p: Option<NodeId> = None;
        for v in 0..nv {
            let Some(mask) = &path.masks[v] else { continue };
            let x = tape.input(inputs.clone());
            let hidden = model.hidden_tape(tape, x);
            let logits = model.logits_col_tape(tape, hidden, v);
            let log_probs = tape.log_softmax(logits);
            let probs = tape.exp(log_probs);

            // p_in = Σ_v m(v) P(v | z_<v).
            let mask_node = tape.input(Tensor::from_vec(1, mask.len(), mask.clone()));
            let masked = tape.mul(probs, mask_node);
            let p_in = tape.row_sum(masked);
            let p_in = tape.clamp_min(p_in, 1e-12);
            p_hat = Some(match p_hat {
                Some(p) => tape.mul(p, p_in),
                None => p_in,
            });

            // log P(z_v | z_<v, masked) = log_probs[z_v] - log p_in.
            if let Some(code) = path.codes[v] {
                let picked = tape.gather_cols(log_probs, Arc::new(vec![code]));
                let ln_p_in = tape.ln(p_in);
                let cond = tape.sub(picked, ln_p_in);
                log_p = Some(match log_p {
                    Some(l) => tape.add(l, cond),
                    None => cond,
                });
                // Teacher-force the sampled code into the next step's input.
                let (bs, be) = schema.input_slice(v);
                raw.encode_into(v, code, &mut inputs.row_mut(0)[bs..be]);
            }
        }

        let Some(p_hat) = p_hat else {
            // No constrained column: selectivity 1, loss contribution of
            // q-error(1, truth).
            continue;
        };
        // L(θ, z): capped Q-error of the path's density estimate.
        let truth = tape.input(Tensor::scalar(tq.selectivity.max(1e-12) as f32));
        let truth2 = tape.input(Tensor::scalar(tq.selectivity.max(1e-12) as f32));
        let r1 = tape.div(p_hat, truth);
        let r2 = tape.div(truth2, p_hat);
        let q = tape.maximum(r1, r2);
        let neg = tape.mul_scalar(q, -1.0);
        let capped_neg = tape.clamp_min(neg, -qerror_cap);
        let loss_term = tape.mul_scalar(capped_neg, -1.0);

        let loss_value = tape.value(loss_term).scalar_value() as f64;
        observed += loss_value;
        let advantage = (loss_value - baseline.value()) as f32;
        baseline.update(loss_value);

        // Surrogate: advantage · log P(z) + L(θ, z).
        let surrogate = match log_p {
            Some(lp) => {
                let weighted = tape.mul_scalar(lp, advantage);
                tape.add(weighted, loss_term)
            }
            None => loss_term,
        };
        per_query.push(surrogate);
    }

    let total = per_query
        .into_iter()
        .reduce(|a, b| tape.add(a, b))
        .expect("at least one constrained query in the batch");
    let mean = tape.mul_scalar(total, 1.0 / batch.len() as f32);
    (mean, observed / batch.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ResMadeConfig;
    use uae_data::{Table, Value};
    use uae_query::{Predicate, Query};
    use uae_tensor::rng::seeded_rng;
    use uae_tensor::{Adam, GradStore, Optimizer, ParamStore};

    fn setup() -> (Table, VirtualSchema, ParamStore, ResMade) {
        let rows = 64i64;
        let t = Table::from_columns(
            "t",
            vec![
                ("a".into(), (0..rows).map(|r| Value::Int(r % 4)).collect()),
                ("b".into(), (0..rows).map(|r| Value::Int(r % 2)).collect()),
            ],
        );
        let schema = VirtualSchema::build(&t, usize::MAX);
        let mut store = ParamStore::new();
        let model =
            ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 16, blocks: 1, seed: 4 });
        (t, schema, store, model)
    }

    #[test]
    fn score_function_training_converges_on_one_query() {
        let (t, schema, mut store, model) = setup();
        let q = Query::new(vec![Predicate::eq(0, 1i64)]);
        let tq = TrainQuery { vquery: VirtualQuery::build(&t, &schema, &q), selectivity: 0.25 };
        let mut rng = seeded_rng(5);
        let mut opt = Adam::new(5e-3);
        let mut baseline = SfBaseline::default();
        let mut losses = Vec::new();
        for _ in 0..120 {
            let mut grads = GradStore::zeros_like(&store);
            let observed;
            {
                let mut tape = Tape::new(&store);
                let (loss, obs) = score_function_loss(
                    &mut tape,
                    &model,
                    &store,
                    &schema,
                    std::slice::from_ref(&tq),
                    1e4,
                    &mut baseline,
                    &mut rng,
                );
                observed = obs;
                tape.backward(loss, &mut grads);
            }
            losses.push(observed);
            opt.step(&mut store, &grads);
        }
        let early: f64 = losses[..15].iter().sum::<f64>() / 15.0;
        let late: f64 = losses[losses.len() - 15..].iter().sum::<f64>() / 15.0;
        assert!(
            late < early && late < 2.5,
            "REINFORCE should still converge on a trivial problem: early {early}, late {late}"
        );
    }

    #[test]
    fn baseline_tracks_mean() {
        let mut b = SfBaseline::default();
        assert_eq!(b.value(), 0.0);
        for v in [2.0, 4.0, 6.0] {
            b.update(v);
        }
        assert!((b.value() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gradients_are_nonzero_for_all_parameters() {
        let (t, schema, store, model) = setup();
        let q = Query::new(vec![Predicate::le(0, 2i64), Predicate::eq(1, 0i64)]);
        let tq = TrainQuery { vquery: VirtualQuery::build(&t, &schema, &q), selectivity: 0.4 };
        let mut rng = seeded_rng(6);
        let mut baseline = SfBaseline::default();
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let (loss, _) = score_function_loss(
            &mut tape,
            &model,
            &store,
            &schema,
            &[tq],
            1e4,
            &mut baseline,
            &mut rng,
        );
        tape.backward(loss, &mut grads);
        let nonzero =
            store.ids().filter(|&id| grads.get(id).data().iter().any(|&g| g != 0.0)).count();
        assert!(nonzero >= store.len() - 2, "only {nonzero}/{} params got gradient", store.len());
    }
}
