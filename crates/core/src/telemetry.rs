//! Training telemetry: typed per-epoch / per-incident events emitted by
//! the [`crate::Uae`] train loop, an observer hook to consume them, and a
//! JSONL sink for offline analysis (`--metrics-out` in the bench
//! binaries). Hybrid training dominates the cost of deploying UAE
//! (Alg. 3 runs for hours at paper scale), so the loop must be observable
//! without attaching a debugger: every epoch reports its loss split,
//! gradient health and divergence-guard activity.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Cumulative counters over the lifetime of one trainer (checkpointed, so
/// a resumed run continues the same step/epoch cursor).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrainStats {
    /// Completed epochs.
    pub epochs: u64,
    /// Attempted optimizer steps (including skipped and empty ones) — the
    /// global step cursor.
    pub steps: u64,
    /// Steps whose update was actually applied.
    pub executed_steps: u64,
    /// Executed steps whose gradient was norm-clipped.
    pub clipped_steps: u64,
    /// Steps skipped because the loss or gradient was non-finite.
    pub skipped_steps: u64,
    /// Divergence rollbacks (restore last-good snapshot + LR backoff).
    pub rollbacks: u64,
}

/// Everything one epoch reports.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochMetrics {
    /// Global 0-based epoch index (survives checkpoint/resume).
    pub epoch: u64,
    /// Steps attempted this epoch.
    pub steps: u64,
    /// Steps whose update was applied this epoch.
    pub executed_steps: u64,
    /// Steps skipped this epoch (non-finite loss/gradient).
    pub skipped_steps: u64,
    /// Executed steps that were gradient-clipped this epoch.
    pub clipped_steps: u64,
    /// Rollbacks triggered this epoch.
    pub rollbacks: u64,
    /// Mean combined loss over *executed* steps (`L_data + λ·L_query`).
    pub loss: f32,
    /// Mean unsupervised data loss over executed data steps, when data
    /// training is active.
    pub data_loss: Option<f32>,
    /// Mean supervised query loss (unscaled by λ) over executed query
    /// steps, when query training is active.
    pub query_loss: Option<f32>,
    /// Mean pre-clip gradient L2 norm over executed steps.
    pub grad_norm: f32,
    /// Learning rate at epoch end (backoff may lower it mid-epoch).
    pub lr: f32,
    /// Wall-clock seconds spent in the epoch.
    pub wall_s: f64,
}

/// A train-loop event.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainEvent {
    /// An epoch finished.
    Epoch(EpochMetrics),
    /// A step produced a non-finite loss or gradient and was skipped
    /// (weights untouched).
    StepSkipped {
        /// Global epoch index.
        epoch: u64,
        /// Global step cursor of the skipped step.
        step: u64,
        /// The offending loss value (NaN/∞, or finite when only the
        /// gradient norm overflowed).
        loss: f32,
    },
    /// Too many consecutive bad steps: weights and optimizer state were
    /// restored from the last known-good snapshot and the learning rate
    /// backed off.
    Rollback {
        /// Global epoch index.
        epoch: u64,
        /// Global step cursor at the rollback.
        step: u64,
        /// Learning rate after backoff.
        lr: f32,
    },
}

/// Consumer of train-loop events. Observers must be `Send` so estimators
/// carrying one can still move across threads.
pub trait TrainObserver: Send {
    /// Called synchronously from the train loop for every event.
    fn on_event(&mut self, event: &TrainEvent);
}

/// In-memory observer capturing every event — for tests and programmatic
/// inspection. The event log is shared, so callers keep a handle while the
/// observer itself is owned by the estimator.
#[derive(Debug, Clone, Default)]
pub struct MemoryObserver {
    /// The captured events, in emission order.
    pub events: Arc<Mutex<Vec<TrainEvent>>>,
}

impl MemoryObserver {
    /// A fresh observer plus the shared handle to its event log.
    pub fn new() -> (Self, Arc<Mutex<Vec<TrainEvent>>>) {
        let obs = MemoryObserver::default();
        let handle = Arc::clone(&obs.events);
        (obs, handle)
    }
}

impl TrainObserver for MemoryObserver {
    fn on_event(&mut self, event: &TrainEvent) {
        self.events.lock().expect("event log poisoned").push(event.clone());
    }
}

/// JSONL sink: one JSON object per event, tagged with a model label so
/// several estimators can share one metrics file.
pub struct JsonlObserver {
    label: String,
    out: BufWriter<File>,
}

impl JsonlObserver {
    /// Create (truncate) `path` and tag events with `label`.
    pub fn create(path: impl AsRef<Path>, label: impl Into<String>) -> std::io::Result<Self> {
        Ok(JsonlObserver { label: label.into(), out: BufWriter::new(File::create(path)?) })
    }

    /// Append to `path` (creating it if absent) — the bench binaries use
    /// this so every model trained in one run lands in the same file.
    pub fn append(path: impl AsRef<Path>, label: impl Into<String>) -> std::io::Result<Self> {
        let f = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlObserver { label: label.into(), out: BufWriter::new(f) })
    }
}

/// A JSON number, or `null` for non-finite values (which raw JSON cannot
/// represent).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

fn json_opt_f32(x: Option<f32>) -> String {
    match x {
        Some(v) => json_f64(v as f64),
        None => "null".to_owned(),
    }
}

/// Escape a string for inclusion in a JSON document.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl TrainObserver for JsonlObserver {
    fn on_event(&mut self, event: &TrainEvent) {
        let label = json_str(&self.label);
        let line = match event {
            TrainEvent::Epoch(m) => format!(
                concat!(
                    "{{\"event\":\"epoch\",\"model\":{},\"epoch\":{},\"steps\":{},",
                    "\"executed_steps\":{},\"skipped_steps\":{},\"clipped_steps\":{},",
                    "\"rollbacks\":{},\"loss\":{},\"data_loss\":{},\"query_loss\":{},",
                    "\"grad_norm\":{},\"lr\":{},\"wall_s\":{}}}"
                ),
                label,
                m.epoch,
                m.steps,
                m.executed_steps,
                m.skipped_steps,
                m.clipped_steps,
                m.rollbacks,
                json_f64(m.loss as f64),
                json_opt_f32(m.data_loss),
                json_opt_f32(m.query_loss),
                json_f64(m.grad_norm as f64),
                json_f64(m.lr as f64),
                json_f64(m.wall_s),
            ),
            TrainEvent::StepSkipped { epoch, step, loss } => format!(
                "{{\"event\":\"step_skipped\",\"model\":{},\"epoch\":{},\"step\":{},\"loss\":{}}}",
                label,
                epoch,
                step,
                json_f64(*loss as f64),
            ),
            TrainEvent::Rollback { epoch, step, lr } => format!(
                "{{\"event\":\"rollback\",\"model\":{},\"epoch\":{},\"step\":{},\"lr\":{}}}",
                label,
                epoch,
                step,
                json_f64(*lr as f64),
            ),
        };
        // Telemetry must never take training down: swallow I/O errors.
        let _ = writeln!(self.out, "{line}");
        if matches!(event, TrainEvent::Epoch(_)) {
            let _ = self.out.flush();
        }
    }
}

impl Drop for JsonlObserver {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Cumulative serving-side counters: every validation shortcut, retry,
/// baseline fallback, isolated panic and clamp over the lifetime of one
/// estimator. The serving analogue of [`TrainStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries served (every entry through the cascade, including
    /// rejected ones) — the serving-index cursor fault plans key on.
    pub served: u64,
    /// Queries rejected with a typed error (unknown column).
    pub rejected: u64,
    /// Validation shortcuts to an exact `0` (empty region).
    pub validated_empty: u64,
    /// Validation shortcuts to an exact `1` (trivial/full-wildcard).
    pub validated_trivial: u64,
    /// Unhealthy first attempts retried on a derived RNG substream.
    pub retries: u64,
    /// Queries degraded to the histogram baseline (or to `0` on the
    /// vquery paths, which have no baseline).
    pub fallbacks: u64,
    /// Panics caught and isolated (batch attempts plus per-query reruns).
    pub panics_isolated: u64,
    /// Final selectivities that had to be clamped into `[0, 1]` (or
    /// replaced because they were non-finite).
    pub clamped: u64,
    /// Sampled queries answered under a shrunken progressive-sample budget
    /// (latency-SLO degradation: the serving front-end trades accuracy for
    /// queue drain under load; results carry
    /// [`crate::serve::EstimateSource::ModelDegraded`]).
    pub degraded: u64,
    /// Queries a routing policy sent to a fleet backend instead of the
    /// deep model (results carry
    /// [`crate::serve::EstimateSource::Routed`]). Deliberate shape-based
    /// choices, **not** counted in `fallbacks` — a routed answer is not a
    /// degradation.
    pub routed: u64,
}

/// Why the serving front-end closed a micro-batch and handed it to an
/// executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The pending batch reached `max_batch`.
    Size,
    /// The oldest pending request reached `max_delay`.
    Deadline,
    /// The server is shutting down and drained whatever was pending.
    Drain,
}

impl FlushReason {
    /// Stable lowercase label (used in JSONL telemetry and stats keys).
    pub fn label(self) -> &'static str {
        match self {
            FlushReason::Size => "size",
            FlushReason::Deadline => "deadline",
            FlushReason::Drain => "drain",
        }
    }
}

impl std::fmt::Display for FlushReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A serving-path event. `index` is the query's serving index — the value
/// of the estimator's served-query counter when the query arrived.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// A query was rejected before any model work.
    QueryRejected {
        /// Serving index of the rejected query.
        index: u64,
        /// Rendered [`crate::serve::EstimateError`].
        error: String,
    },
    /// Validation answered exactly without sampling.
    ValidationShortcut {
        /// Serving index.
        index: u64,
        /// `true` for an empty region (→ 0), `false` for a trivial one
        /// (→ 1).
        empty: bool,
    },
    /// The first attempt was unhealthy; a retry ran on a derived
    /// substream with a boosted sample budget.
    Retry {
        /// Serving index.
        index: u64,
        /// The unhealthy value that triggered the retry (NaN for a
        /// panicked attempt).
        value: f64,
    },
    /// A sampling panic was caught. `index` is `None` when a whole batch
    /// attempt panicked (before the culprit was identified by per-query
    /// reruns).
    PanicIsolated {
        /// Serving index of the panicking query, when known.
        index: Option<u64>,
    },
    /// The retry was still unhealthy; the baseline answered.
    Fallback {
        /// Serving index.
        index: u64,
        /// The unhealthy value being replaced.
        value: f64,
    },
    /// The final selectivity was clamped into `[0, 1]`.
    Clamped {
        /// Serving index.
        index: u64,
        /// The raw pre-clamp value.
        raw: f64,
    },
    /// A sampled query ran under a shrunken sample budget (latency-SLO
    /// degradation requested by the serving front-end).
    Degraded {
        /// Serving index.
        index: u64,
        /// The shrunken per-query sample budget actually used.
        samples: usize,
        /// The configured (undegraded) budget.
        configured: usize,
    },
    /// The concurrent front-end closed a micro-batch and handed it to an
    /// executor.
    BatchFlushed {
        /// Monotonic batch sequence number (per server).
        batch: u64,
        /// Tenant the batch belongs to.
        tenant: String,
        /// Number of requests in the batch.
        size: usize,
        /// What closed the batch.
        reason: FlushReason,
        /// Requests still queued (submitted, not yet executed) at flush.
        queue_depth: usize,
    },
    /// A routing policy sent the query to a fleet backend instead of the
    /// deep model.
    Routed {
        /// Serving index (or server-wide request sequence number when
        /// emitted by the concurrent front-end).
        index: u64,
        /// Name of the backend that answered (e.g. `"DeepDB"`).
        backend: String,
        /// Stable family label of the backend (e.g. `"spn"`).
        family: &'static str,
        /// Discretized query-shape class id the decision keyed on.
        class: u16,
    },
    /// One request finished its trip through the concurrent front-end.
    RequestServed {
        /// Server-wide request sequence number.
        index: u64,
        /// Tenant that served it.
        tenant: String,
        /// Milliseconds spent queued and in a forming batch.
        queue_ms: f64,
        /// Milliseconds the executor spent on the batch containing it.
        execute_ms: f64,
    },
}

/// Consumer of serving-path events; `Send` for the same reason as
/// [`TrainObserver`].
pub trait ServeObserver: Send {
    /// Called synchronously from the estimate path for every event.
    fn on_serve_event(&mut self, event: &ServeEvent);
}

/// In-memory serve observer — the serving analogue of [`MemoryObserver`].
#[derive(Debug, Clone, Default)]
pub struct ServeMemoryObserver {
    /// The captured events, in emission order.
    pub events: Arc<Mutex<Vec<ServeEvent>>>,
}

impl ServeMemoryObserver {
    /// A fresh observer plus the shared handle to its event log.
    pub fn new() -> (Self, Arc<Mutex<Vec<ServeEvent>>>) {
        let obs = ServeMemoryObserver::default();
        let handle = Arc::clone(&obs.events);
        (obs, handle)
    }
}

impl ServeObserver for ServeMemoryObserver {
    fn on_serve_event(&mut self, event: &ServeEvent) {
        self.events.lock().expect("event log poisoned").push(event.clone());
    }
}

impl ServeObserver for JsonlObserver {
    fn on_serve_event(&mut self, event: &ServeEvent) {
        let label = json_str(&self.label);
        let line = match event {
            ServeEvent::QueryRejected { index, error } => format!(
                "{{\"event\":\"query_rejected\",\"model\":{},\"query\":{},\"error\":{}}}",
                label,
                index,
                json_str(error),
            ),
            ServeEvent::ValidationShortcut { index, empty } => format!(
                "{{\"event\":\"validation_shortcut\",\"model\":{label},\"query\":{index},\
                 \"empty\":{empty}}}"
            ),
            ServeEvent::Retry { index, value } => format!(
                "{{\"event\":\"retry\",\"model\":{},\"query\":{},\"value\":{}}}",
                label,
                index,
                json_f64(*value),
            ),
            ServeEvent::PanicIsolated { index } => {
                let idx = index.map_or("null".to_owned(), |i| i.to_string());
                format!("{{\"event\":\"panic_isolated\",\"model\":{label},\"query\":{idx}}}")
            }
            ServeEvent::Fallback { index, value } => format!(
                "{{\"event\":\"fallback\",\"model\":{},\"query\":{},\"value\":{}}}",
                label,
                index,
                json_f64(*value),
            ),
            ServeEvent::Clamped { index, raw } => format!(
                "{{\"event\":\"clamped\",\"model\":{},\"query\":{},\"raw\":{}}}",
                label,
                index,
                json_f64(*raw),
            ),
            ServeEvent::Degraded { index, samples, configured } => format!(
                "{{\"event\":\"degraded\",\"model\":{label},\"query\":{index},\
                 \"samples\":{samples},\"configured\":{configured}}}"
            ),
            ServeEvent::BatchFlushed { batch, tenant, size, reason, queue_depth } => format!(
                "{{\"event\":\"batch_flushed\",\"model\":{},\"batch\":{},\"tenant\":{},\
                 \"size\":{},\"reason\":{},\"queue_depth\":{}}}",
                label,
                batch,
                json_str(tenant),
                size,
                json_str(reason.label()),
                queue_depth,
            ),
            ServeEvent::Routed { index, backend, family, class } => format!(
                "{{\"event\":\"routed\",\"model\":{},\"query\":{},\"backend\":{},\
                 \"family\":{},\"class\":{}}}",
                label,
                index,
                json_str(backend),
                json_str(family),
                class,
            ),
            ServeEvent::RequestServed { index, tenant, queue_ms, execute_ms } => format!(
                "{{\"event\":\"request_served\",\"model\":{},\"request\":{},\"tenant\":{},\
                 \"queue_ms\":{},\"execute_ms\":{}}}",
                label,
                index,
                json_str(tenant),
                json_f64(*queue_ms),
                json_f64(*execute_ms),
            ),
        };
        // Telemetry must never take serving down: swallow I/O errors.
        let _ = writeln!(self.out, "{line}");
        // Degradation events are rare; flush each so a crashing process
        // still leaves the evidence on disk. The per-request/per-batch
        // front-end events are high-rate and stay buffered.
        if !matches!(
            event,
            ServeEvent::RequestServed { .. }
                | ServeEvent::BatchFlushed { .. }
                | ServeEvent::Routed { .. }
        ) {
            let _ = self.out.flush();
        }
    }
}

/// An online-learning-loop event (see [`crate::online`]). `t_ns` is the
/// loop's nanosecond clock — supplied by the caller of
/// [`crate::online::OnlineTrainer::round`], so tests drive it from a mock
/// clock and replays stamp identical times.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineEvent {
    /// A training round ran incremental epochs on the private branch.
    Trained {
        /// Round counter.
        round: u64,
        /// Loop clock at the round.
        t_ns: u64,
        /// Labeled queries drained into supervised epochs.
        queries: usize,
        /// Staged drift rows ingested into unsupervised epochs.
        rows: usize,
    },
    /// The shadow gate scored a candidate against the live model.
    Gated {
        /// Round counter.
        round: u64,
        /// Loop clock at the round.
        t_ns: u64,
        /// Holdout queries both models were scored on.
        evaluated: usize,
        /// Candidate median q-error on the holdout.
        candidate_median: f64,
        /// Candidate p95 q-error on the holdout.
        candidate_p95: f64,
        /// Baseline fallbacks the candidate's shadow clone needed (any
        /// fallback marks the candidate unhealthy).
        candidate_fallbacks: u64,
        /// Live-model median q-error on the same holdout.
        live_median: f64,
        /// Live-model p95 q-error on the same holdout.
        live_p95: f64,
        /// Verdict (stable label of [`crate::online::GateDecision`]).
        decision: String,
    },
    /// The gate passed: a new model version is ready to swap in.
    Promoted {
        /// Round counter.
        round: u64,
        /// Loop clock at the round.
        t_ns: u64,
        /// Version the candidate was published as.
        version: u64,
        /// Size of the versioned `UAEC` checkpoint.
        checkpoint_bytes: usize,
    },
    /// The gate failed: the candidate was discarded and the branch
    /// restored to its last promoted state.
    Rejected {
        /// Round counter.
        round: u64,
        /// Loop clock at the round.
        t_ns: u64,
        /// Verdict (stable label of [`crate::online::GateDecision`]).
        decision: String,
    },
    /// Post-promotion regression: the previously live version was
    /// republished.
    RolledBack {
        /// Round counter.
        round: u64,
        /// Loop clock at the round.
        t_ns: u64,
        /// Version the rollback was published as.
        version: u64,
        /// The version whose model was restored.
        restored_version: u64,
    },
    /// The gate passed but the write-ahead persistence sequence (intent →
    /// checkpoint → commit) failed, so the promotion was withheld: a
    /// version the journal cannot prove committed would silently vanish
    /// on recovery.
    PersistFailed {
        /// Round counter.
        round: u64,
        /// Loop clock at the round.
        t_ns: u64,
        /// The version that failed to persist (not published).
        version: u64,
        /// Rendered [`crate::persist::PersistError`].
        error: String,
    },
}

/// Consumer of online-loop events; `Send` for the same reason as
/// [`TrainObserver`].
pub trait OnlineObserver: Send {
    /// Called synchronously from the trainer loop for every event.
    fn on_online_event(&mut self, event: &OnlineEvent);
}

/// In-memory online observer — the online analogue of [`MemoryObserver`].
#[derive(Debug, Clone, Default)]
pub struct OnlineMemoryObserver {
    /// The captured events, in emission order.
    pub events: Arc<Mutex<Vec<OnlineEvent>>>,
}

impl OnlineMemoryObserver {
    /// A fresh observer plus the shared handle to its event log.
    pub fn new() -> (Self, Arc<Mutex<Vec<OnlineEvent>>>) {
        let obs = OnlineMemoryObserver::default();
        let handle = Arc::clone(&obs.events);
        (obs, handle)
    }
}

impl OnlineObserver for OnlineMemoryObserver {
    fn on_online_event(&mut self, event: &OnlineEvent) {
        self.events.lock().expect("event log poisoned").push(event.clone());
    }
}

impl OnlineObserver for JsonlObserver {
    fn on_online_event(&mut self, event: &OnlineEvent) {
        let label = json_str(&self.label);
        let line = match event {
            OnlineEvent::Trained { round, t_ns, queries, rows } => format!(
                "{{\"event\":\"online_trained\",\"model\":{label},\"round\":{round},\
                 \"t_ns\":{t_ns},\"queries\":{queries},\"rows\":{rows}}}"
            ),
            OnlineEvent::Gated {
                round,
                t_ns,
                evaluated,
                candidate_median,
                candidate_p95,
                candidate_fallbacks,
                live_median,
                live_p95,
                decision,
            } => format!(
                "{{\"event\":\"online_gated\",\"model\":{},\"round\":{},\"t_ns\":{},\
                 \"evaluated\":{},\"candidate_median\":{},\"candidate_p95\":{},\
                 \"candidate_fallbacks\":{},\"live_median\":{},\"live_p95\":{},\
                 \"decision\":{}}}",
                label,
                round,
                t_ns,
                evaluated,
                json_f64(*candidate_median),
                json_f64(*candidate_p95),
                candidate_fallbacks,
                json_f64(*live_median),
                json_f64(*live_p95),
                json_str(decision),
            ),
            OnlineEvent::Promoted { round, t_ns, version, checkpoint_bytes } => format!(
                "{{\"event\":\"online_promoted\",\"model\":{label},\"round\":{round},\
                 \"t_ns\":{t_ns},\"version\":{version},\"checkpoint_bytes\":{checkpoint_bytes}}}"
            ),
            OnlineEvent::Rejected { round, t_ns, decision } => format!(
                "{{\"event\":\"online_rejected\",\"model\":{},\"round\":{},\"t_ns\":{},\
                 \"decision\":{}}}",
                label,
                round,
                t_ns,
                json_str(decision),
            ),
            OnlineEvent::RolledBack { round, t_ns, version, restored_version } => format!(
                "{{\"event\":\"online_rolled_back\",\"model\":{label},\"round\":{round},\
                 \"t_ns\":{t_ns},\"version\":{version},\"restored_version\":{restored_version}}}"
            ),
            OnlineEvent::PersistFailed { round, t_ns, version, error } => format!(
                "{{\"event\":\"online_persist_failed\",\"model\":{},\"round\":{},\"t_ns\":{},\
                 \"version\":{},\"error\":{}}}",
                label,
                round,
                t_ns,
                version,
                json_str(error),
            ),
        };
        // Telemetry must never take the trainer down: swallow I/O errors.
        let _ = writeln!(self.out, "{line}");
        // Promotion decisions are rare and load-bearing; keep them on
        // disk even if the process dies mid-drill.
        let _ = self.out.flush();
    }
}

/// A cold-start recovery event (see the `uae-server` recovery module).
/// Wall-clock durations are measured by the recovery driver; everything
/// else is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// Recovery began scanning a state directory.
    Started {
        /// The state directory being recovered.
        dir: String,
    },
    /// A corrupt or untrusted artifact was renamed aside (never deleted).
    Quarantined {
        /// The quarantined file's *new* path.
        path: String,
        /// Why it was distrusted (torn journal tail, checksum mismatch,
        /// uncommitted intent, ...).
        reason: String,
    },
    /// One tenant's last provably-good version was republished.
    TenantRecovered {
        /// The tenant.
        tenant: String,
        /// The version restored.
        version: u64,
        /// Where the version was proven: `journal`, `manifest`, or `seed`
        /// (nothing recoverable — fresh model at version 0).
        source: String,
        /// Artifacts quarantined while walking this tenant's candidates.
        quarantined: usize,
    },
    /// Recovery finished and the manifest was rewritten.
    Finished {
        /// Tenants republished.
        tenants: usize,
        /// Total artifacts quarantined.
        quarantined: usize,
        /// Whether the journal had a torn tail.
        journal_torn: bool,
        /// Wall-clock recovery time (the unavailability window).
        ms: f64,
    },
}

/// Consumer of recovery events; `Send` for the same reason as
/// [`TrainObserver`].
pub trait RecoveryObserver: Send {
    /// Called synchronously from the recovery driver for every event.
    fn on_recovery_event(&mut self, event: &RecoveryEvent);
}

/// In-memory recovery observer — the recovery analogue of
/// [`MemoryObserver`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryMemoryObserver {
    /// The captured events, in emission order.
    pub events: Arc<Mutex<Vec<RecoveryEvent>>>,
}

impl RecoveryMemoryObserver {
    /// A fresh observer plus the shared handle to its event log.
    pub fn new() -> (Self, Arc<Mutex<Vec<RecoveryEvent>>>) {
        let obs = RecoveryMemoryObserver::default();
        let handle = Arc::clone(&obs.events);
        (obs, handle)
    }
}

impl RecoveryObserver for RecoveryMemoryObserver {
    fn on_recovery_event(&mut self, event: &RecoveryEvent) {
        self.events.lock().expect("event log poisoned").push(event.clone());
    }
}

impl RecoveryObserver for JsonlObserver {
    fn on_recovery_event(&mut self, event: &RecoveryEvent) {
        let label = json_str(&self.label);
        let line = match event {
            RecoveryEvent::Started { dir } => format!(
                "{{\"event\":\"recovery_started\",\"model\":{},\"dir\":{}}}",
                label,
                json_str(dir),
            ),
            RecoveryEvent::Quarantined { path, reason } => format!(
                "{{\"event\":\"recovery_quarantined\",\"model\":{},\"path\":{},\"reason\":{}}}",
                label,
                json_str(path),
                json_str(reason),
            ),
            RecoveryEvent::TenantRecovered { tenant, version, source, quarantined } => format!(
                "{{\"event\":\"recovery_tenant\",\"model\":{},\"tenant\":{},\"version\":{},\
                 \"source\":{},\"quarantined\":{}}}",
                label,
                json_str(tenant),
                version,
                json_str(source),
                quarantined,
            ),
            RecoveryEvent::Finished { tenants, quarantined, journal_torn, ms } => format!(
                "{{\"event\":\"recovery_finished\",\"model\":{label},\"tenants\":{tenants},\
                 \"quarantined\":{quarantined},\"journal_torn\":{journal_torn},\
                 \"recover_ms\":{}}}",
                json_f64(*ms),
            ),
        };
        // Recovery telemetry is the drill's artifact: flush every line so
        // a crash directly after recovery still leaves the record.
        let _ = writeln!(self.out, "{line}");
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_are_valid_shape() {
        let dir = std::env::temp_dir().join(format!("uae_telemetry_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.jsonl");
        {
            let mut obs = JsonlObserver::create(&path, "te\"st").unwrap();
            obs.on_event(&TrainEvent::Epoch(EpochMetrics {
                epoch: 0,
                steps: 4,
                executed_steps: 3,
                skipped_steps: 1,
                clipped_steps: 2,
                rollbacks: 0,
                loss: 1.5,
                data_loss: Some(1.25),
                query_loss: None,
                grad_norm: 2.0,
                lr: 2e-3,
                wall_s: 0.5,
            }));
            obs.on_event(&TrainEvent::StepSkipped { epoch: 0, step: 2, loss: f32::NAN });
            obs.on_event(&TrainEvent::Rollback { epoch: 0, step: 3, lr: 1e-3 });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"event\":\"epoch\"") && lines[0].contains("\"loss\":1.5"));
        assert!(lines[0].contains("\"query_loss\":null"));
        assert!(lines[0].contains("\"model\":\"te\\\"st\""));
        // Non-finite floats serialize as null, keeping the line valid JSON.
        assert!(lines[1].contains("\"loss\":null"));
        assert!(lines[2].contains("\"event\":\"rollback\"") && lines[2].contains("\"lr\":0.001"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_jsonl_lines_are_valid_shape() {
        let dir = std::env::temp_dir().join(format!("uae_serve_telemetry_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.jsonl");
        {
            let mut obs = JsonlObserver::create(&path, "serve").unwrap();
            obs.on_serve_event(&ServeEvent::QueryRejected {
                index: 0,
                error: "unknown column 9".into(),
            });
            obs.on_serve_event(&ServeEvent::ValidationShortcut { index: 1, empty: true });
            obs.on_serve_event(&ServeEvent::Retry { index: 2, value: f64::NAN });
            obs.on_serve_event(&ServeEvent::PanicIsolated { index: None });
            obs.on_serve_event(&ServeEvent::PanicIsolated { index: Some(3) });
            obs.on_serve_event(&ServeEvent::Fallback { index: 2, value: 0.0 });
            obs.on_serve_event(&ServeEvent::Clamped { index: 4, raw: 1.25 });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7);
        assert!(lines[0].contains("\"event\":\"query_rejected\""));
        assert!(lines[0].contains("\"error\":\"unknown column 9\""));
        assert!(lines[1].contains("\"empty\":true"));
        // NaN serializes as null, keeping the line valid JSON.
        assert!(lines[2].contains("\"event\":\"retry\"") && lines[2].contains("\"value\":null"));
        assert!(lines[3].contains("\"query\":null"));
        assert!(lines[4].contains("\"query\":3"));
        assert!(lines[5].contains("\"event\":\"fallback\""));
        assert!(lines[6].contains("\"raw\":1.25"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_memory_observer_captures_events() {
        let (mut obs, log) = ServeMemoryObserver::new();
        obs.on_serve_event(&ServeEvent::Fallback { index: 5, value: f64::NAN });
        let events = log.lock().unwrap();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], ServeEvent::Fallback { index: 5, .. }));
    }

    #[test]
    fn memory_observer_captures_events() {
        let (mut obs, log) = MemoryObserver::new();
        obs.on_event(&TrainEvent::Rollback { epoch: 1, step: 7, lr: 5e-4 });
        let events = log.lock().unwrap();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], TrainEvent::Rollback { epoch: 1, step: 7, .. }));
    }
}
