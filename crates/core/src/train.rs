//! Training losses and the hybrid training loop (paper §4.2 Eq. 2,
//! §4.3 Eq. 5–6, §4.4 Alg. 3).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::RngExt;
use uae_tensor::{NodeId, Tape, Tensor};

use crate::dps::{dps_selectivities, DpsConfig};
use crate::encoding::{ColEntry, VirtualSchema};
use crate::model::ResMade;
use crate::vquery::VirtualQuery;

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Adam learning rate.
    pub lr: f32,
    /// Data mini-batch size.
    pub batch_size: usize,
    /// Query mini-batch size (Alg. 3 line 4).
    pub query_batch: usize,
    /// Trade-off λ between data and query losses (Eq. 11; paper: 1e-4 on
    /// single tables, 10 on IMDB).
    pub lambda: f32,
    /// Differentiable-progressive-sampling settings (τ and S).
    pub dps: DpsConfig,
    /// Probability of wildcarding a column during data training (§4.6).
    pub wildcard_prob: f64,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f32,
    /// Cap applied to per-query Q-error inside the loss, bounding the
    /// gradient spikes of barely-trained models.
    pub qerror_cap: f32,
    /// RNG seed for batching, wildcard dropout and Gumbel noise.
    pub seed: u64,
    /// Consecutive non-finite steps tolerated before the trainer rolls the
    /// model back to its last known-good snapshot and backs the learning
    /// rate off (0 disables rollback; bad steps are still skipped so
    /// non-finite gradients can never reach the weights).
    pub max_bad_steps: u32,
    /// Multiplier applied to the learning rate on every rollback.
    pub lr_backoff: f32,
    /// Fault injection for tests and chaos drills: global step cursors
    /// (see [`crate::telemetry::TrainStats::steps`]) whose loss is forced
    /// non-finite, exercising the skip/rollback path deterministically.
    pub inject_nan_steps: Vec<u64>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lr: 2e-3,
            batch_size: 256,
            query_batch: 16,
            lambda: 1e-4,
            dps: DpsConfig { tau: 1.0, samples: 16 },
            wildcard_prob: 0.25,
            grad_clip: 8.0,
            qerror_cap: 1e4,
            seed: 0x0ae5eed,
            max_bad_steps: 3,
            lr_backoff: 0.5,
            inject_nan_steps: Vec::new(),
        }
    }
}

/// A training query: a translated region plus its true selectivity.
#[derive(Debug, Clone)]
pub struct TrainQuery {
    /// The query translated to virtual columns.
    pub vquery: VirtualQuery,
    /// True selectivity at labeling time.
    pub selectivity: f64,
}

/// Build the unsupervised data loss (Eq. 2): mean per-tuple negative
/// log-likelihood under the autoregressive factorization, with wildcard
/// dropout applied to the inputs (targets are always the true codes).
pub fn data_loss(
    tape: &mut Tape<'_>,
    model: &ResMade,
    schema: &VirtualSchema,
    rows: &[Vec<u32>],
    wildcard_prob: f64,
    rng: &mut StdRng,
) -> NodeId {
    assert!(!rows.is_empty(), "data loss over an empty batch");
    // Wildcard dropout is decided per *original* column so that both parts
    // of a factorized column appear or vanish together, matching how
    // queries constrain them.
    let nv = schema.num_virtual();
    let wildcards: Vec<Vec<bool>> = rows
        .iter()
        .map(|_| {
            let mut w = vec![false; nv];
            if wildcard_prob > 0.0 {
                for entry in schema.entries() {
                    if rng.random::<f64>() < wildcard_prob {
                        match *entry {
                            ColEntry::Single { vcol } => w[vcol] = true,
                            ColEntry::Split { hi, lo, .. } => {
                                w[hi] = true;
                                w[lo] = true;
                            }
                        }
                    }
                }
            }
            w
        })
        .collect();
    let x = model.input_node(tape, schema, rows, Some(&wildcards));
    let logits = model.forward_tape(tape, x);

    let mut acc: Option<NodeId> = None;
    for v in 0..nv {
        let (s, e) = schema.logit_slice(v);
        let slice = tape.slice_cols(logits, s, e);
        let ls = tape.log_softmax(slice);
        let targets: Arc<Vec<u32>> = Arc::new(rows.iter().map(|r| r[v]).collect());
        let picked = tape.gather_cols(ls, targets);
        acc = Some(match acc {
            Some(a) => tape.add(a, picked),
            None => picked,
        });
    }
    let total = acc.expect("at least one column");
    let mean = tape.mean_all(total);
    tape.mul_scalar(mean, -1.0)
}

/// Build the supervised query loss (Eq. 5 with Q-error as Discrepancy)
/// through differentiable progressive sampling, capping individual
/// Q-errors at `qerror_cap`.
pub fn query_loss(
    tape: &mut Tape<'_>,
    model: &ResMade,
    schema: &VirtualSchema,
    batch: &[TrainQuery],
    dps: &DpsConfig,
    qerror_cap: f32,
    rng: &mut impl RngExt,
) -> NodeId {
    assert!(!batch.is_empty(), "query loss over an empty batch");
    let vqs: Vec<VirtualQuery> = batch.iter().map(|tq| tq.vquery.clone()).collect();
    let sel = dps_selectivities(tape, model, schema, &vqs, dps, rng);
    let truth = Tensor::from_vec(
        batch.len(),
        1,
        batch.iter().map(|tq| tq.selectivity.max(1e-12) as f32).collect(),
    );
    let t1 = tape.input_ref(&truth);
    let t2 = tape.input_ref(&truth);
    let r1 = tape.div(sel, t1);
    let r2 = tape.div(t2, sel);
    let q = tape.maximum(r1, r2);
    let q = clamp_max(tape, q, qerror_cap);
    tape.mean_all(q)
}

/// `min(x, cap)` with pass-through gradient below the cap.
fn clamp_max(tape: &mut Tape<'_>, x: NodeId, cap: f32) -> NodeId {
    let neg = tape.mul_scalar(x, -1.0);
    let clamped = tape.clamp_min(neg, -cap);
    tape.mul_scalar(clamped, -1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ResMadeConfig;
    use uae_data::{Table, Value};
    use uae_query::{Predicate, Query};
    use uae_tensor::rng::seeded_rng;
    use uae_tensor::{Adam, GradStore, Optimizer, ParamStore};

    fn tiny_table() -> Table {
        // Strongly structured: b == a % 2.
        let rows = 64i64;
        Table::from_columns(
            "t",
            vec![
                ("a".into(), (0..rows).map(|r| Value::Int(r % 4)).collect()),
                ("b".into(), (0..rows).map(|r| Value::Int(r % 2)).collect()),
            ],
        )
    }

    #[test]
    fn data_loss_decreases_with_training() {
        let t = tiny_table();
        let schema = VirtualSchema::build(&t, usize::MAX);
        let mut store = ParamStore::new();
        let model =
            ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 16, blocks: 1, seed: 1 });
        let rows: Vec<Vec<u32>> =
            (0..t.num_rows()).map(|r| schema.to_virtual_codes(&t.row_codes(r))).collect();
        let mut rng = seeded_rng(1);
        let mut opt = Adam::new(5e-3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let mut grads = GradStore::zeros_like(&store);
            let mut tape = Tape::new(&store);
            let loss = data_loss(&mut tape, &model, &schema, &rows, 0.0, &mut rng);
            last = tape.value(loss).scalar_value();
            first.get_or_insert(last);
            tape.backward(loss, &mut grads);
            opt.step(&mut store, &grads);
        }
        let first = first.unwrap();
        assert!(last < first * 0.7, "data loss {first} → {last} did not improve");
        // The true distribution has entropy log(4) ≈ 1.386 nats per tuple
        // (b is determined by a); a fitted model should get close.
        assert!(last < 2.2, "final NLL {last} too high");
    }

    #[test]
    fn query_loss_trains_model_toward_true_selectivity() {
        let t = tiny_table();
        let schema = VirtualSchema::build(&t, usize::MAX);
        let mut store = ParamStore::new();
        let model =
            ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 16, blocks: 1, seed: 2 });
        // One query, true selectivity 0.25: a == 1.
        let q = Query::new(vec![Predicate::eq(0, 1i64)]);
        let tq = TrainQuery { vquery: VirtualQuery::build(&t, &schema, &q), selectivity: 0.25 };
        let dps = DpsConfig { tau: 1.0, samples: 8 };
        let mut rng = seeded_rng(3);
        let mut opt = Adam::new(5e-3);
        let mut losses = Vec::new();
        for _ in 0..80 {
            let mut grads = GradStore::zeros_like(&store);
            let mut tape = Tape::new(&store);
            let loss = query_loss(&mut tape, &model, &schema, &[tq.clone()], &dps, 1e4, &mut rng);
            losses.push(tape.value(loss).scalar_value());
            tape.backward(loss, &mut grads);
            opt.step(&mut store, &grads);
        }
        let early: f32 = losses[..10].iter().sum::<f32>() / 10.0;
        let late: f32 = losses[losses.len() - 10..].iter().sum::<f32>() / 10.0;
        assert!(
            late < early && late < 1.6,
            "query loss must drive Q-error toward 1: early {early}, late {late}"
        );
    }

    #[test]
    fn clamp_max_caps_values() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.input(Tensor::from_vec(1, 3, vec![0.5, 2.0, 10.0]));
        let y = clamp_max(&mut tape, x, 3.0);
        assert_eq!(tape.value(y).data(), &[0.5, 2.0, 3.0]);
    }
}
