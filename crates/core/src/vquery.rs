//! Translation of table-level query regions onto the model's virtual
//! columns, including the conditional regions of factorized columns.

use uae_data::Table;
use uae_query::{Query, QueryRegion, Region};

use crate::encoding::{ColEntry, VirtualSchema};

/// What (differentiable) progressive sampling must do at one virtual column.
#[derive(Debug, Clone)]
pub enum StepRegion {
    /// Column is unconstrained: feed the wildcard token and skip sampling
    /// (paper §4.6, wildcard skipping).
    Wildcard,
    /// Column is constrained by a fixed region (single columns, and the
    /// high part of factorized columns).
    Fixed(Region),
    /// The low part of a factorized column: its region depends on the high
    /// code sampled at `hi_vcol` (`lo = { l : (h << lo_bits) | l ∈ original }`).
    LoOfSplit {
        /// Region on the *original* (unfactorized) column.
        original: Region,
        /// Bit width of the low part.
        lo_bits: usize,
        /// Virtual column carrying the high part.
        hi_vcol: usize,
    },
    /// A per-value importance weight `w(v)` instead of a 0/1 region: the
    /// running estimate is multiplied by `Σ_v P(v | z_<v) · w(v)` and the
    /// next value is sampled from the re-weighted distribution. This is the
    /// *fanout scaling* of NeuroCard (paper §4.6): estimating a join over a
    /// subset of tables from a full-outer-join model multiplies by
    /// `1 / fanout` on every unjoined table's fanout column.
    Weighted(std::sync::Arc<Vec<f64>>),
}

impl StepRegion {
    /// Whether this step constrains the column.
    pub fn is_constrained(&self) -> bool {
        !matches!(self, StepRegion::Wildcard)
    }
}

/// A query translated to the virtual-column space.
#[derive(Debug, Clone)]
pub struct VirtualQuery {
    steps: Vec<StepRegion>,
}

impl VirtualQuery {
    /// Translate `query` on `table` through `schema`.
    pub fn build(table: &Table, schema: &VirtualSchema, query: &Query) -> Self {
        let qr = QueryRegion::build(table, query);
        Self::from_region(schema, &qr)
    }

    /// Translate a prebuilt table-level region.
    pub fn from_region(schema: &VirtualSchema, qr: &QueryRegion) -> Self {
        let mut steps: Vec<StepRegion> =
            (0..schema.num_virtual()).map(|_| StepRegion::Wildcard).collect();
        for (orig, entry) in schema.entries().iter().enumerate() {
            let Some(region) = qr.column(orig) else { continue };
            match *entry {
                ColEntry::Single { vcol } => {
                    steps[vcol] = StepRegion::Fixed(region.clone());
                }
                ColEntry::Split { hi, lo, lo_bits } => {
                    let hi_domain = schema.codec(hi).domain() as u32;
                    steps[hi] =
                        StepRegion::Fixed(VirtualSchema::hi_region(region, lo_bits, hi_domain));
                    steps[lo] =
                        StepRegion::LoOfSplit { original: region.clone(), lo_bits, hi_vcol: hi };
                }
            }
        }
        VirtualQuery { steps }
    }

    /// Per-virtual-column steps, in autoregressive order.
    pub fn steps(&self) -> &[StepRegion] {
        &self.steps
    }

    /// Step of one virtual column.
    pub fn step(&self, v: usize) -> &StepRegion {
        &self.steps[v]
    }

    /// Whether any step's fixed region is empty (unsatisfiable query).
    pub fn is_empty(&self) -> bool {
        self.steps.iter().any(|s| match s {
            StepRegion::Fixed(r) => r.is_empty(),
            StepRegion::Weighted(w) => w.iter().all(|&x| x <= 0.0),
            _ => false,
        })
    }

    /// Attach an importance weight vector to virtual column `v`
    /// (fanout scaling; see [`StepRegion::Weighted`]).
    ///
    /// # Panics
    /// Panics if the column is already constrained or the weight length
    /// does not look like a domain size.
    pub fn set_weighted(&mut self, v: usize, weights: Vec<f64>) {
        assert!(
            matches!(self.steps[v], StepRegion::Wildcard),
            "cannot overwrite a constrained step with weights"
        );
        self.steps[v] = StepRegion::Weighted(std::sync::Arc::new(weights));
    }

    /// Index of the last constrained step, if any (later steps need no
    /// model forward at all).
    pub fn last_constrained(&self) -> Option<usize> {
        self.steps.iter().rposition(StepRegion::is_constrained)
    }

    /// The low-part region for a concrete sampled high code.
    pub fn lo_region(&self, v: usize, hi_code: u32, lo_domain: u32) -> Region {
        match &self.steps[v] {
            StepRegion::LoOfSplit { original, lo_bits, .. } => {
                VirtualSchema::lo_region_given_hi(original, *lo_bits, hi_code, lo_domain)
            }
            _ => panic!("lo_region on a non-split step"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::{Table, Value};
    use uae_query::Predicate;

    fn wide_table() -> Table {
        Table::from_columns(
            "t",
            vec![
                ("w".into(), (0..600i64).map(Value::Int).collect()),
                ("s".into(), (0..600i64).map(|v| Value::Int(v % 4)).collect()),
            ],
        )
    }

    #[test]
    fn wildcards_and_fixed_steps() {
        let t = wide_table();
        let schema = VirtualSchema::build(&t, usize::MAX);
        let q = Query::new(vec![Predicate::eq(1, 2i64)]);
        let vq = VirtualQuery::build(&t, &schema, &q);
        assert!(matches!(vq.step(0), StepRegion::Wildcard));
        assert!(matches!(vq.step(1), StepRegion::Fixed(_)));
        assert_eq!(vq.last_constrained(), Some(1));
    }

    #[test]
    fn split_column_produces_hi_and_lo_steps() {
        let t = wide_table();
        let schema = VirtualSchema::build(&t, 256); // splits the 600-domain col
        assert_eq!(schema.num_virtual(), 3);
        let q = Query::new(vec![Predicate::ge(0, 100i64), Predicate::le(0, 299i64)]);
        let vq = VirtualQuery::build(&t, &schema, &q);
        let StepRegion::Fixed(hi) = vq.step(0) else { panic!("hi must be fixed") };
        let StepRegion::LoOfSplit { lo_bits, hi_vcol, .. } = vq.step(1) else {
            panic!("lo must be conditional")
        };
        assert_eq!(*hi_vcol, 0);
        // Exactness over the whole domain: (hi, lo) admitted iff code in [100, 300).
        let lo_domain = schema.codec(1).domain() as u32;
        for code in 0..600u32 {
            let h = code >> lo_bits;
            let l = code & ((1 << lo_bits) - 1);
            let ok = hi.contains(h) && vq.lo_region(1, h, lo_domain).contains(l);
            assert_eq!(ok, (100..300).contains(&code), "code {code}");
        }
    }

    #[test]
    fn empty_detection() {
        let t = wide_table();
        let schema = VirtualSchema::build(&t, usize::MAX);
        let q = Query::new(vec![Predicate::le(1, -5i64)]);
        let vq = VirtualQuery::build(&t, &schema, &q);
        assert!(vq.is_empty());
    }
}
