//! Adversarial-query hardening: estimates must stay finite and inside
//! `[0, N]` for inputs that used to be able to panic, NaN-poison the
//! sampler, or silently return garbage — full wildcards, empty and
//! inverted ranges, out-of-domain literals, unknown columns — on both the
//! sequential and the batched serving path, with the batched path staying
//! bit-identical to sequential calls under matched RNG state.

use uae_core::{
    EstimateError, EstimateSource, ResMadeConfig, TrainConfig, Uae, UaeConfig, Validation,
};
use uae_data::{Table, Value};
use uae_query::{CardEstimator, Predicate, Query};

fn table() -> Table {
    Table::from_columns(
        "adv",
        vec![
            ("age".into(), (0..200i64).map(|i| Value::Int(i % 50)).collect()),
            (
                "city".into(),
                (0..200).map(|i| Value::from(["ash", "birch", "cedar", "doum"][i % 4])).collect(),
            ),
        ],
    )
}

fn quick_uae(seed: u64) -> Uae {
    let t = table();
    let cfg = UaeConfig {
        model: ResMadeConfig { hidden: 24, blocks: 1, seed },
        train: TrainConfig { batch_size: 64, ..TrainConfig::default() },
        estimate_samples: 60,
        ..UaeConfig::default()
    };
    let mut uae = Uae::new(&t, cfg);
    uae.train_data(1);
    uae
}

/// Every adversarial shape plus some healthy queries, in one list — the
/// mix exercises validation shortcuts interleaved with real sampling.
fn workload() -> Vec<Query> {
    vec![
        // Healthy point + range queries.
        Query::new(vec![Predicate::eq(0, 7i64)]),
        Query::new(vec![Predicate::ge(0, 10i64), Predicate::le(0, 30i64)]),
        Query::new(vec![Predicate::eq(1, "birch")]),
        // Full wildcard: no predicates at all.
        Query::new(vec![]),
        // Predicates that constrain nothing (cover the whole domain).
        Query::new(vec![Predicate::ge(0, 0i64), Predicate::le(0, 49i64)]),
        // Inverted range: lower bound above upper bound.
        Query::new(vec![Predicate::ge(0, 40i64), Predicate::le(0, 10i64)]),
        // Empty range: entirely outside the domain.
        Query::new(vec![Predicate::ge(0, 1000i64)]),
        // Out-of-domain literals.
        Query::new(vec![Predicate::eq(0, 999i64)]),
        Query::new(vec![Predicate::eq(1, "no-such-city")]),
        // Another healthy query after the junk.
        Query::new(vec![Predicate::le(0, 5i64)]),
    ]
}

#[test]
fn full_wildcard_is_exactly_the_table_size() {
    let uae = quick_uae(3);
    let n = table().num_rows() as f64;
    let est = uae.try_estimate_card(&Query::new(vec![])).expect("wildcard is valid");
    assert_eq!(est.card, n);
    assert_eq!(est.selectivity, 1.0);
    assert_eq!(est.source, EstimateSource::Validation);
    // Predicates that span the whole domain shortcut the same way.
    let all = Query::new(vec![Predicate::ge(0, 0i64)]);
    let est = uae.try_estimate_card(&all).expect("all-covering is valid");
    assert_eq!(est.card, n);
    assert_eq!(uae.serve_stats().validated_trivial, 2);
}

#[test]
fn empty_inverted_and_out_of_domain_are_exactly_zero() {
    let uae = quick_uae(4);
    let cases = [
        Query::new(vec![Predicate::ge(0, 40i64), Predicate::le(0, 10i64)]),
        Query::new(vec![Predicate::ge(0, 1000i64)]),
        Query::new(vec![Predicate::eq(0, 999i64)]),
        Query::new(vec![Predicate::eq(1, "no-such-city")]),
    ];
    for q in &cases {
        let est = uae.try_estimate_card(q).expect("structurally valid");
        assert_eq!(est.card, 0.0, "{q:?} selects nothing");
        assert_eq!(est.source, EstimateSource::Validation);
    }
    assert_eq!(uae.serve_stats().validated_empty, cases.len() as u64);
}

#[test]
fn unknown_column_is_a_typed_error_not_a_panic() {
    let uae = quick_uae(5);
    let bad = Query::new(vec![Predicate::eq(99, 1i64)]);
    match uae.try_estimate_card(&bad) {
        Err(EstimateError::UnknownColumn { column: 99, num_cols: 2 }) => {}
        other => panic!("expected UnknownColumn error, got {other:?}"),
    }
    // The infallible facades degrade to 0 instead of panicking.
    assert_eq!(uae.estimate_card(&bad), 0.0);
    assert_eq!(uae.estimate_selectivity(&bad), 0.0);
    assert_eq!(uae.estimate_cards(std::slice::from_ref(&bad)), vec![0.0]);
    assert_eq!(uae.serve_stats().rejected, 4);
    // validate_query agrees without touching the estimator.
    let t = table();
    assert!(uae_core::validate_query(&t, &bad).is_err());
    assert!(matches!(
        uae_core::validate_query(&t, &Query::new(vec![])).expect("valid"),
        Validation::Trivial
    ));
}

#[test]
fn adversarial_estimates_are_finite_and_bounded_on_both_paths() {
    let n = table().num_rows() as f64;
    let queries = workload();

    // Sequential and batched runs on clones: same weights, same RNG seed.
    let base = quick_uae(6);
    let seq = base.clone();
    let bat = base.clone();
    let sequential: Vec<_> = queries.iter().map(|q| seq.try_estimate_card(q)).collect();
    let batched = bat.try_estimate_cards(&queries);

    for (q, est) in queries.iter().zip(&sequential) {
        let est = est.as_ref().expect("workload has no unknown columns");
        assert!(est.card.is_finite(), "{q:?} produced a non-finite card");
        assert!((0.0..=n).contains(&est.card), "{q:?} card {} escapes [0, {n}]", est.card);
        assert!((0.0..=1.0).contains(&est.selectivity));
    }

    // Bit-exact agreement, adversarial queries interleaved or not.
    for (i, (s, b)) in sequential.iter().zip(&batched).enumerate() {
        let (s, b) = (s.as_ref().expect("valid"), b.as_ref().expect("valid"));
        assert_eq!(
            s.card.to_bits(),
            b.card.to_bits(),
            "query {i}: sequential {} != batched {}",
            s.card,
            b.card
        );
        assert_eq!(s.source, b.source, "query {i}: paths disagree on source");
    }

    // Both runs recorded the same validation events.
    assert_eq!(seq.serve_stats(), bat.serve_stats());
    let stats = seq.serve_stats();
    assert_eq!(stats.served, queries.len() as u64);
    assert_eq!(stats.validated_trivial, 2);
    assert_eq!(stats.validated_empty, 4);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn batch_with_rejected_query_still_serves_the_rest() {
    let queries = {
        let mut qs = workload();
        qs.insert(2, Query::new(vec![Predicate::eq(7, 0i64)])); // unknown column
        qs
    };
    let base = quick_uae(7);
    let bat = base.clone();
    let results = bat.try_estimate_cards(&queries);
    assert!(matches!(results[2], Err(EstimateError::UnknownColumn { column: 7, .. })));

    // Healthy queries are bit-identical to a batch without the bad one:
    // rejected queries still consume exactly one RNG draw, like any other.
    let clean: Vec<Query> =
        queries.iter().enumerate().filter(|&(i, _)| i != 2).map(|(_, q)| q.clone()).collect();
    let reference = base.clone();
    let clean_results = reference.try_estimate_cards(&clean);
    // Queries before the rejected one share RNG positions with the clean
    // run; those after are offset by the rejected query's draw, so compare
    // only the prefix for bit-exactness and the rest for validity.
    for i in 0..2 {
        assert_eq!(
            results[i].as_ref().expect("valid").card.to_bits(),
            clean_results[i].as_ref().expect("valid").card.to_bits()
        );
    }
    for (i, r) in results.iter().enumerate() {
        if i == 2 {
            continue;
        }
        let est = r.as_ref().expect("valid");
        assert!(est.card.is_finite() && est.card >= 0.0);
    }
    assert_eq!(bat.serve_stats().rejected, 1);
}
