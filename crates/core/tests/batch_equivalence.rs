//! The batched inference engine must be a pure optimization: under matched
//! RNG state it returns bit-identical estimates to the sequential
//! progressive sampler, across wildcards, factorized (split) columns, and
//! weighted (fanout) steps — and its first-step memo must refresh whenever
//! the weights change.

use std::collections::HashSet;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use uae_core::infer::{progressive_sample, progressive_sample_batch};
use uae_core::vquery::VirtualQuery;
use uae_core::{ResMade, ResMadeConfig, TrainConfig, Uae, UaeConfig, VirtualSchema};
use uae_data::{census_like, Table, Value};
use uae_query::{generate_workload, Predicate, Query, WorkloadSpec};
use uae_tensor::ParamStore;

fn max_rel_err(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs() / x.abs().max(y.abs()).max(1e-300))
        .fold(0.0, f64::max)
}

fn quick_cfg() -> UaeConfig {
    UaeConfig {
        model: ResMadeConfig { hidden: 24, blocks: 1, seed: 5 },
        train: TrainConfig { batch_size: 128, ..TrainConfig::default() },
        estimate_samples: 120,
        ..UaeConfig::default()
    }
}

/// Mixed single-table workload (point, range, partial-wildcard queries):
/// sequential `estimate_selectivity` calls and one `estimate_batch` call
/// consume the estimator RNG stream identically, so the estimates agree to
/// machine precision.
#[test]
fn estimate_batch_matches_sequential_on_mixed_workload() {
    let t = census_like(900, 17);
    let mut uae = Uae::new(&t, quick_cfg());
    uae.train_data(1);
    let workload = generate_workload(&t, &WorkloadSpec::random(24, 41), &HashSet::new());
    let queries: Vec<Query> = workload.into_iter().map(|lq| lq.query).collect();

    // Clones share weights and reseed the estimation RNG identically.
    let seq = uae.clone();
    let bat = uae.clone();
    let sequential: Vec<f64> = queries.iter().map(|q| seq.estimate_selectivity(q)).collect();
    let batched = bat.estimate_batch(&queries);

    let err = max_rel_err(&sequential, &batched);
    assert!(err <= 1e-9, "batched diverges from sequential: rel err {err}");
    assert!(sequential.iter().any(|&s| s > 0.0), "degenerate workload");
}

/// Factorized wide columns introduce `LoOfSplit` steps whose region depends
/// on the per-row sampled hi code; the batch path must track those per
/// query exactly.
#[test]
fn estimate_batch_matches_sequential_with_split_columns() {
    let rows = 300;
    let cols = vec![
        ("wide".to_owned(), (0..rows).map(|r| Value::Int((r * 13 % 120) as i64)).collect()),
        ("mid".to_owned(), (0..rows).map(|r| Value::Int((r % 9) as i64)).collect()),
        ("small".to_owned(), (0..rows).map(|r| Value::Int((r % 4) as i64)).collect()),
    ];
    let t = Table::from_columns("t", cols);
    let cfg = UaeConfig { factor_threshold: 16, ..quick_cfg() };
    let mut uae = Uae::new(&t, cfg);
    uae.train_data(1);
    let queries = vec![
        Query::new(vec![Predicate::ge(0, 5i64), Predicate::le(0, 87i64)]),
        Query::new(vec![Predicate::le(0, 40i64), Predicate::eq(2, 1i64)]),
        Query::new(vec![Predicate::eq(1, 3i64)]),
        Query::new(vec![Predicate::ge(0, 100i64), Predicate::le(1, 5i64), Predicate::ge(2, 2i64)]),
        Query::default(), // no predicates: selectivity 1 in both paths
    ];

    let seq = uae.clone();
    let bat = uae.clone();
    let sequential: Vec<f64> = queries.iter().map(|q| seq.estimate_selectivity(q)).collect();
    let batched = bat.estimate_batch(&queries);
    let err = max_rel_err(&sequential, &batched);
    assert!(err <= 1e-9, "split-column batch diverges: rel err {err}");
    assert_eq!(batched[4], 1.0);
}

/// Weighted (fanout-scaled) steps — the join path — draw via importance
/// sampling; the batched walk must consume each query's RNG identically.
#[test]
fn batched_sampler_matches_sequential_with_weighted_steps() {
    let rows = 200;
    let cols = vec![
        ("a".to_owned(), (0..rows).map(|r| Value::Int((r % 6) as i64)).collect()),
        ("b".to_owned(), (0..rows).map(|r| Value::Int((r % 5) as i64)).collect()),
        ("c".to_owned(), (0..rows).map(|r| Value::Int((r % 3) as i64)).collect()),
    ];
    let t = Table::from_columns("t", cols);
    let schema = VirtualSchema::build(&t, usize::MAX);
    let mut store = ParamStore::new();
    let model =
        ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 16, blocks: 1, seed: 3 });
    let raw = model.snapshot(&store);

    let mut vqs: Vec<VirtualQuery> = Vec::new();
    // Fanout weights on the leading column plus a range on another.
    for (lo, hi) in [(0i64, 3i64), (1, 4), (2, 2)] {
        let q = Query::new(vec![Predicate::ge(1, lo), Predicate::le(1, hi)]);
        let mut vq = VirtualQuery::build(&t, &schema, &q);
        vq.set_weighted(0, vec![1.0, 2.0, 0.5, 3.0, 0.0, 1.5]);
        vqs.push(vq);
    }
    // One query with a weighted *last* column (no sampling after it).
    let q = Query::new(vec![Predicate::eq(0, 2i64)]);
    let mut vq = VirtualQuery::build(&t, &schema, &q);
    vq.set_weighted(2, vec![0.7, 1.3, 2.0]);
    vqs.push(vq);

    let s = 150;
    let seeds: Vec<u64> = (0..vqs.len() as u64).map(|i| 0xfeed + 77 * i).collect();
    let sequential: Vec<f64> = vqs
        .iter()
        .zip(&seeds)
        .map(|(vq, &seed)| {
            let mut rng = StdRng::seed_from_u64(seed);
            progressive_sample(&raw, &schema, vq, s, &mut rng)
        })
        .collect();
    let batched = progressive_sample_batch(&raw, &schema, &vqs, s, &seeds);
    let err = max_rel_err(&sequential, &batched);
    assert!(err <= 1e-9, "weighted batch diverges: rel err {err}");
}

/// The first-step distribution is memoized per snapshot: repeated reads
/// return the same allocation, and a fresh snapshot recomputes it.
#[test]
fn first_step_cache_is_shared_within_a_snapshot() {
    let t = census_like(300, 23);
    let uae = Uae::new(&t, quick_cfg());
    let schema = uae.schema().clone();
    let mut store = ParamStore::new();
    let model =
        ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 16, blocks: 1, seed: 9 });
    let raw = model.snapshot(&store);
    let a = raw.first_step_probs(0);
    let b = raw.first_step_probs(0);
    assert!(Arc::ptr_eq(&a, &b), "memo must be computed once per snapshot");
    let other = raw.first_step_probs(1);
    assert!(!Arc::ptr_eq(&a, &other));
    // A fresh snapshot starts with an empty memo.
    let raw2 = model.snapshot(&store);
    let c = raw2.first_step_probs(0);
    assert!(!Arc::ptr_eq(&a, &c));
    assert_eq!(*a, *c, "same weights, same distribution");
}

/// Training between batched estimates must refresh the first-step memo:
/// the weights change, so the cached all-wildcard distribution changes too.
#[test]
fn first_step_cache_refreshes_after_training() {
    let t = census_like(600, 29);
    let mut uae = Uae::new(&t, quick_cfg());
    // A query with non-trivial true selectivity, so estimates are neither
    // pinned at 0 nor at 1 and weight changes are observable.
    let w = generate_workload(&t, &WorkloadSpec::random(20, 13), &HashSet::new());
    let q = w
        .into_iter()
        .find(|lq| lq.selectivity > 0.05 && lq.selectivity < 0.95)
        .expect("workload has a mid-selectivity query")
        .query;
    let before = uae.estimate_batch(std::slice::from_ref(&q));
    uae.train_data(2);
    let after = uae.estimate_batch(std::slice::from_ref(&q));
    assert_ne!(before[0], after[0], "estimate unchanged after training — stale first-step cache?");
    // Incremental ingestion also changes weights and must also invalidate.
    let extra = t.take_rows(&(0..50).collect::<Vec<_>>());
    uae.ingest_data(&extra, 1);
    let after_ingest = uae.estimate_batch(std::slice::from_ref(&q));
    assert_ne!(after[0], after_ingest[0], "stale cache after ingest_data");
}
