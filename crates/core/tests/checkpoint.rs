//! Trainer checkpoint/resume and divergence-guard properties:
//!
//! * **Bit-exact resume** — training k epochs, checkpointing, restoring
//!   into a fresh estimator and training N−k more epochs must reproduce
//!   the weights *and* the per-epoch losses of an uninterrupted N-epoch
//!   run, byte for byte. This is what `UAEC` adds over the weights-only
//!   `UAEW` format: Adam moments, RNG streams, and the step cursor.
//! * **Divergence protection** — an injected non-finite loss must be
//!   skipped (weights untouched), and a sustained streak must roll the
//!   model back to its last-good snapshot with a learning-rate backoff;
//!   non-finite values never reach the weights.
//! * **Rejection** — truncated/corrupt/version-mismatched checkpoint
//!   bytes fail with typed errors and leave the estimator untouched.

use std::collections::HashSet;

use uae_core::{
    DpsConfig, LoadError, MemoryObserver, ResMadeConfig, TrainConfig, TrainEvent, Uae, UaeConfig,
};
use uae_data::census_like;
use uae_query::{generate_workload, LabeledQuery, WorkloadSpec};

fn quick_cfg(seed: u64) -> UaeConfig {
    UaeConfig {
        model: ResMadeConfig { hidden: 24, blocks: 1, seed: 5 },
        factor_threshold: usize::MAX,
        order: uae_core::ColumnOrder::Natural,
        encoding: uae_core::encoding::EncodingMode::Binary,
        train: TrainConfig {
            batch_size: 128,
            query_batch: 8,
            dps: DpsConfig { tau: 1.0, samples: 8 },
            seed,
            ..TrainConfig::default()
        },
        estimate_samples: 50,
        serve: uae_core::ServeConfig::default(),
    }
}

fn setup() -> (uae_data::Table, Vec<LabeledQuery>) {
    let t = census_like(900, 3);
    let col = uae_query::default_bounded_column(&t);
    let w = generate_workload(&t, &WorkloadSpec::in_workload(col, 40, 17), &HashSet::new());
    (t, w)
}

#[test]
fn resume_is_bit_exact_for_hybrid_training() {
    let (t, w) = setup();
    const N: usize = 5;
    const K: usize = 2;

    // Uninterrupted reference run.
    let mut full = Uae::new(&t, quick_cfg(3));
    let full_losses = full.train_hybrid(&w, N);

    // Interrupted run: k epochs, checkpoint, restore into a FRESH
    // estimator, n−k more epochs.
    let mut part = Uae::new(&t, quick_cfg(3));
    let mut part_losses = part.train_hybrid(&w, K);
    let blob = part.save_checkpoint();
    let mut resumed = Uae::new(&t, quick_cfg(3));
    resumed.load_checkpoint(&blob).expect("restore");
    assert_eq!(resumed.train_stats().epochs, K as u64, "epoch cursor must survive");
    part_losses.extend(resumed.train_hybrid(&w, N - K));

    // Per-epoch losses identical, bitwise.
    assert_eq!(full_losses.len(), part_losses.len());
    for (e, (a, b)) in full_losses.iter().zip(&part_losses).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "epoch {e}: {a} vs {b}");
    }
    // Weights identical, bytewise.
    assert_eq!(full.save_weights(), resumed.save_weights());
    assert_eq!(full.train_stats(), resumed.train_stats());
    // And the estimation streams line up too (est RNG is checkpointed).
    for lq in w.iter().take(5) {
        let a = full.estimate_selectivity(&lq.query);
        let b = resumed.estimate_selectivity(&lq.query);
        assert_eq!(a.to_bits(), b.to_bits(), "estimates must match bit-for-bit");
    }
}

#[test]
fn resume_is_bit_exact_for_data_only_training() {
    let (t, _) = setup();
    let mut full = Uae::new(&t, quick_cfg(9));
    let full_losses = full.train_data(4);

    let mut part = Uae::new(&t, quick_cfg(9));
    let mut losses = part.train_data(1);
    let mut resumed = Uae::new(&t, quick_cfg(9));
    resumed.load_checkpoint(&part.save_checkpoint()).expect("restore");
    losses.extend(resumed.train_data(3));

    assert_eq!(full_losses, losses);
    assert_eq!(full.save_weights(), resumed.save_weights());
}

#[test]
fn weights_only_restore_is_not_bit_exact() {
    // The negative control: restoring weights WITHOUT optimizer/RNG state
    // (the pre-UAEC behavior) diverges from the uninterrupted run — this
    // is exactly the gap the checkpoint format closes.
    let (t, w) = setup();
    let mut full = Uae::new(&t, quick_cfg(3));
    full.train_hybrid(&w, 4);

    let mut part = Uae::new(&t, quick_cfg(3));
    part.train_hybrid(&w, 2);
    let mut resumed = Uae::new(&t, quick_cfg(3));
    resumed.load_weights(&part.save_weights()).expect("load");
    resumed.train_hybrid(&w, 2);

    assert_ne!(
        full.save_weights(),
        resumed.save_weights(),
        "weights-only resume should NOT reproduce the uninterrupted trajectory"
    );
}

#[test]
fn checkpoint_file_round_trip_is_atomic_and_exact() {
    let (t, w) = setup();
    let dir = std::env::temp_dir().join(format!("uae_ckpt_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.uaec");

    let mut a = Uae::new(&t, quick_cfg(4));
    a.train_hybrid(&w, 2);
    a.write_checkpoint_file(&path).expect("write");
    // Overwrite with a later checkpoint — the rename must replace cleanly.
    a.train_hybrid(&w, 1);
    a.write_checkpoint_file(&path).expect("rewrite");

    let mut b = Uae::new(&t, quick_cfg(4));
    b.load_checkpoint_file(&path).expect("read");
    assert_eq!(a.save_weights(), b.save_weights());
    assert_eq!(a.train_stats(), b.train_stats());
    assert!(!dir.join("model.uaec.tmp").exists(), "atomic write must not leave temp files behind");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_checkpoints_are_rejected_and_leave_state_untouched() {
    let (t, w) = setup();
    let mut a = Uae::new(&t, quick_cfg(5));
    a.train_hybrid(&w, 1);
    let blob = a.save_checkpoint();

    let mut b = Uae::new(&t, quick_cfg(5));
    let pristine = b.save_weights();

    // Garbage magic.
    assert_eq!(b.load_checkpoint(b"nope"), Err(LoadError::BadMagic));
    // A weights blob is not a checkpoint.
    assert_eq!(b.load_checkpoint(&a.save_weights()), Err(LoadError::BadMagic));
    // Version bump.
    let mut v = blob.clone();
    v[4] = 42;
    assert_eq!(b.load_checkpoint(&v), Err(LoadError::BadVersion(42)));
    // Truncations at every section boundary-ish offset.
    for cut in [6, 20, blob.len() / 2, blob.len() - 1] {
        assert!(
            matches!(b.load_checkpoint(&blob[..cut]), Err(LoadError::Corrupt(_))),
            "truncation at {cut} must be Corrupt"
        );
    }
    // Trailing junk.
    let mut ext = blob.clone();
    ext.extend_from_slice(b"xx");
    assert!(matches!(b.load_checkpoint(&ext), Err(LoadError::Corrupt(_))));
    // Architecture mismatch (different hidden width) → ShapeMismatch.
    let mut cfg = quick_cfg(5);
    cfg.model.hidden = 16;
    let mut other = Uae::new(&t, cfg);
    assert!(matches!(other.load_checkpoint(&blob), Err(LoadError::ShapeMismatch(_))));
    // Every rejection left the estimator's weights untouched.
    assert_eq!(b.save_weights(), pristine);
}

#[test]
fn bit_flipped_checkpoints_fail_the_checksum_and_leave_state_untouched() {
    let (t, w) = setup();
    let mut a = Uae::new(&t, quick_cfg(10));
    a.train_hybrid(&w, 1);
    let blob = a.save_checkpoint();

    let mut b = Uae::new(&t, quick_cfg(10));
    let pristine = b.save_weights();

    // A single flipped bit anywhere in the body still parses structurally
    // — only the trailing checksum can catch it. Sweep a few offsets:
    // inside the nested weights blob, in the Adam moments, in the stats.
    for off in [20, blob.len() / 3, blob.len() / 2, blob.len() - 12] {
        let mut bad = blob.clone();
        bad[off] ^= 0x10;
        assert_eq!(
            b.load_checkpoint(&bad),
            Err(LoadError::ChecksumMismatch),
            "flip at byte {off} must be caught"
        );
    }
    // Damaging the checksum itself is the same failure.
    let mut bad = blob.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    assert_eq!(b.load_checkpoint(&bad), Err(LoadError::ChecksumMismatch));

    // Header flips keep their more specific diagnoses.
    let mut bad = blob.clone();
    bad[0] = b'X';
    assert_eq!(b.load_checkpoint(&bad), Err(LoadError::BadMagic));
    let mut bad = blob.clone();
    bad[5] = 1;
    assert!(matches!(b.load_checkpoint(&bad), Err(LoadError::BadVersion(_))));

    // None of the rejections moved the estimator, and the pristine blob
    // still loads afterwards.
    assert_eq!(b.save_weights(), pristine);
    b.load_checkpoint(&blob).expect("clean blob loads");
    assert_eq!(b.save_weights(), a.save_weights());
}

#[test]
fn truncated_checkpoint_file_is_rejected_with_a_typed_error() {
    let (t, w) = setup();
    let dir = std::env::temp_dir().join(format!("uae_ckpt_trunc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.uaec");

    let mut a = Uae::new(&t, quick_cfg(11));
    a.train_hybrid(&w, 1);
    a.write_checkpoint_file(&path).expect("write");

    // Simulate a torn write by truncating the file on disk.
    let full = std::fs::read(&path).unwrap();
    std::fs::write(&path, &full[..full.len() * 2 / 3]).unwrap();

    let mut b = Uae::new(&t, quick_cfg(11));
    let pristine = b.save_weights();
    match b.load_checkpoint_file(&path) {
        Err(uae_core::CheckpointError::Load(LoadError::Corrupt(_))) => {}
        other => panic!("truncated file must be Load(Corrupt(..)), got {other:?}"),
    }
    assert_eq!(b.save_weights(), pristine, "failed load must not touch the model");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_corruption_matrix_always_yields_typed_errors() {
    // The exhaustive reader-robustness drill: every prefix truncation and
    // a dense stride of single-byte flips over a real UAEC blob must come
    // back as a typed LoadError — never a panic, never a partial load —
    // and the pristine blob must still load afterwards (recovery from the
    // last good artifact).
    let (t, w) = setup();
    let mut a = Uae::new(&t, quick_cfg(12));
    a.train_hybrid(&w, 1);
    let blob = a.save_checkpoint();

    let mut b = Uae::new(&t, quick_cfg(12));
    let pristine = b.save_weights();

    for cut in 0..blob.len() {
        assert!(
            b.load_checkpoint(&blob[..cut]).is_err(),
            "truncation at byte {cut} must be rejected"
        );
    }
    // Dense stride over the body (co-prime with typical field sizes so
    // every alignment class is hit), plus both ends exactly.
    let stride = 97usize;
    let offsets = (0..blob.len()).step_by(stride).chain([blob.len() - 1]);
    for off in offsets {
        let mut bad = blob.clone();
        bad[off] ^= 0x20;
        assert!(b.load_checkpoint(&bad).is_err(), "bit flip at byte {off} must be rejected");
    }

    assert_eq!(b.save_weights(), pristine, "no rejection may touch the model");
    b.load_checkpoint(&blob).expect("the pristine blob still loads");
    assert_eq!(b.save_weights(), a.save_weights());
}

#[test]
fn injected_nan_steps_are_skipped_and_weights_stay_finite() {
    let (t, w) = setup();
    let mut cfg = quick_cfg(6);
    // One clean epoch (7 data steps on 900 rows @128), then poison three
    // consecutive steps of epoch 2 → skip, skip, skip-and-rollback.
    cfg.train.inject_nan_steps = vec![8, 9, 10];
    cfg.train.max_bad_steps = 3;
    let lr0 = cfg.train.lr;
    let mut uae = Uae::new(&t, cfg);
    let (obs, log) = MemoryObserver::new();
    uae.set_observer(Box::new(obs));

    let losses = uae.train_hybrid(&w, 3);

    // The trainer survived: every reported loss and every weight finite.
    assert!(losses.iter().all(|l| l.is_finite()), "losses {losses:?}");
    let schema = uae_core::VirtualSchema::build(&t, usize::MAX);
    let mut store = uae_tensor::ParamStore::new();
    let _net = uae_core::ResMade::new(&mut store, &schema, &quick_cfg(6).model);
    uae_core::serialize::load_params(&mut store, &uae.save_weights()).expect("same architecture");
    for id in store.ids() {
        assert!(
            store.get(id).data().iter().all(|v| v.is_finite()),
            "no non-finite value may survive in the weights"
        );
    }
    let stats = uae.train_stats();
    assert_eq!(stats.skipped_steps, 3, "all three poisoned steps skipped");
    assert_eq!(stats.rollbacks, 1, "streak of 3 triggers exactly one rollback");
    assert!(uae.train_config_mut().lr < lr0, "rollback must back the learning rate off");

    // Telemetry reported the incidents in order.
    let events = log.lock().unwrap();
    let skips: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            TrainEvent::StepSkipped { step, .. } => Some(*step),
            _ => None,
        })
        .collect();
    assert_eq!(skips, vec![8, 9, 10]);
    assert!(events.iter().any(|e| matches!(e, TrainEvent::Rollback { .. })));
    // Epoch metrics: the poisoned epoch reports its skips and divides the
    // loss over *executed* steps only (a skipped step contributes no
    // deflating zero).
    let epochs: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TrainEvent::Epoch(m) => Some(m.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(epochs.len(), 3);
    let poisoned = &epochs[1];
    assert_eq!(poisoned.skipped_steps, 3);
    assert_eq!(poisoned.executed_steps + poisoned.skipped_steps, poisoned.steps);
    assert!(poisoned.loss.is_finite());
    // Clean epochs around it skipped nothing.
    assert_eq!(epochs[0].skipped_steps, 0);
    assert_eq!(epochs[2].skipped_steps, 0);
}

#[test]
fn skipped_steps_do_not_deflate_the_epoch_loss() {
    // Same model/seed, one run clean and one with half of epoch 1's steps
    // poisoned: under the old `total / steps` accounting the poisoned run
    // would report roughly half the loss; over executed steps it stays in
    // the same band as the clean run.
    let (t, _) = setup();
    let mut clean = Uae::new(&t, quick_cfg(7));
    let clean_loss = clean.train_data(1)[0];

    let mut cfg = quick_cfg(7);
    cfg.train.inject_nan_steps = vec![0, 2, 4]; // 3 of the 8 steps of epoch 1
    cfg.train.max_bad_steps = 0; // skip-only: isolates the averaging fix
    let mut poisoned = Uae::new(&t, cfg);
    let poisoned_loss = poisoned.train_data(1)[0];

    assert_eq!(poisoned.train_stats().skipped_steps, 3);
    assert_eq!(poisoned.train_stats().rollbacks, 0);
    assert!(
        poisoned_loss > clean_loss * 0.8,
        "epoch loss must be averaged over executed steps only: clean {clean_loss}, \
         poisoned {poisoned_loss}"
    );
}

#[test]
fn all_steps_skipped_reports_zero_loss_and_untouched_weights() {
    let (t, _) = setup();
    let mut cfg = quick_cfg(8);
    cfg.train.inject_nan_steps = (0..32).collect();
    cfg.train.max_bad_steps = 0;
    let mut uae = Uae::new(&t, cfg);
    let before = uae.save_weights();
    let losses = uae.train_data(1);
    assert_eq!(losses, vec![0.0], "no executed steps → zero mean, not NaN");
    assert_eq!(uae.save_weights(), before, "skipped steps must leave the weights untouched");
}
