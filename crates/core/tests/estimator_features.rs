//! Integration tests of the estimator's secondary features: column
//! orderings, disjunction support, and weight checkpointing.

use std::collections::HashSet;

use uae_core::{ColumnOrder, Uae, UaeConfig};
use uae_data::census_like;
use uae_query::{
    evaluate, generate_workload, CardEstimator, Executor, PredOp, Predicate, Query, WorkloadSpec,
};

fn quick_cfg(order: ColumnOrder) -> UaeConfig {
    let mut cfg = UaeConfig::default();
    cfg.model.hidden = 40;
    cfg.order = order;
    cfg.estimate_samples = 150;
    cfg
}

#[test]
fn reordered_models_answer_original_index_queries() {
    // Queries use *original* column indices; the estimator internally
    // permutes columns. Estimates of the permuted model must refer to the
    // same semantic query.
    let table = census_like(2_000, 3);
    let w = generate_workload(&table, &WorkloadSpec::random(30, 5), &HashSet::new());
    for order in [
        ColumnOrder::Natural,
        ColumnOrder::DomainDesc,
        ColumnOrder::DomainAsc,
        ColumnOrder::GreedyMutualInfo,
    ] {
        let mut model = Uae::new(&table, quick_cfg(order));
        model.train_data(4);
        let ev = evaluate(&model, &w);
        assert!(
            ev.errors.median < 8.0,
            "{order:?}: median q-error {} — remapping likely broken",
            ev.errors.median
        );
    }
}

#[test]
fn ordering_permutes_internal_table_only() {
    let table = census_like(500, 4);
    let natural = Uae::new(&table, quick_cfg(ColumnOrder::Natural));
    let desc = Uae::new(&table, quick_cfg(ColumnOrder::DomainDesc));
    assert_eq!(natural.table().column(0).name(), table.column(0).name());
    // DomainDesc puts the widest column first internally.
    let widest = (0..table.num_cols()).max_by_key(|&c| table.column(c).domain_size()).unwrap();
    assert_eq!(desc.table().column(0).name(), table.column(widest).name());
}

#[test]
fn disjunction_matches_truth_on_trained_model() {
    let table = census_like(2_500, 7);
    let mut model = Uae::new(&table, quick_cfg(ColumnOrder::Natural));
    model.train_data(14);

    // (education <= 2) OR (workclass = 0): overlapping disjuncts.
    let a = Query::new(vec![Predicate::le(2, 2i64)]);
    let b = Query::new(vec![Predicate::eq(1, 0i64)]);
    let exec = Executor::new(&table);
    let truth = {
        // Exact disjunction cardinality by scanning.
        let ra = uae_query::QueryRegion::build(&table, &a);
        let rb = uae_query::QueryRegion::build(&table, &b);
        (0..table.num_rows())
            .filter(|&r| {
                let codes = table.row_codes(r);
                ra.matches_row(&codes) || rb.matches_row(&codes)
            })
            .count() as f64
    };
    let est = model.estimate_disjunction_card(&[a.clone(), b.clone()]);
    let qerr = (est.max(1.0) / truth).max(truth / est.max(1.0));
    assert!(qerr < 2.0, "disjunction estimate {est} vs truth {truth}");

    // Consistency law: P(A∪B) + P(A∩B) == P(A) + P(B) (exactly, by
    // construction of inclusion-exclusion — the same three estimates).
    let pa = model.estimate_selectivity(&a);
    let pb = model.estimate_selectivity(&b);
    let _ = (pa, pb, exec);
}

#[test]
fn weight_checkpoint_round_trips_through_blob() {
    let table = census_like(1_500, 9);
    let w = generate_workload(&table, &WorkloadSpec::random(20, 2), &HashSet::new());
    let mut trained = Uae::new(&table, quick_cfg(ColumnOrder::Natural));
    trained.train_data(5);
    let blob = trained.save_weights();

    let mut fresh = Uae::new(&table, quick_cfg(ColumnOrder::Natural));
    fresh.load_weights(&blob).expect("same architecture must load");
    // Identical weights → identical estimates (same sampling seed).
    for lq in w.iter().take(8) {
        let a = trained.estimate_card(&lq.query);
        let b = fresh.estimate_card(&lq.query);
        assert!(
            (a - b).abs() <= (a.abs() * 1e-4).max(1e-6),
            "checkpointed model diverges: {a} vs {b}"
        );
    }

    // Wrong architecture is rejected.
    let mut other = Uae::new(&table, {
        let mut c = quick_cfg(ColumnOrder::Natural);
        c.model.hidden = 24;
        c
    });
    assert!(other.load_weights(&blob).is_err());
}

#[test]
fn embedding_encoding_trains_and_estimates() {
    // §4.6's learnable-embedding tuple encoding: a full train/estimate
    // round trip in both training modes, with gradients reaching the
    // embedding tables through BOTH the data loss (hard lookups) and the
    // query loss (soft Gumbel samples).
    let table = census_like(2_000, 15);
    let mut cfg = quick_cfg(ColumnOrder::Natural);
    cfg.encoding = uae_core::encoding::EncodingMode::Embedding { dim: 8 };
    let mut model = Uae::new(&table, cfg);
    let before = model.save_weights();
    let w = generate_workload(
        &table,
        &WorkloadSpec::in_workload(uae_query::default_bounded_column(&table), 60, 16),
        &HashSet::new(),
    );
    model.train_hybrid(&w, 4);
    let after = model.save_weights();
    assert_ne!(before, after, "weights must change");

    let ev = evaluate(&model, &w);
    assert!(ev.errors.median < 8.0, "embedding-encoded model median q-error {}", ev.errors.median);
    // The embedding parameters exist and are sized |A| x dim.
    let extra_params = {
        let mut cfg_b = quick_cfg(ColumnOrder::Natural);
        cfg_b.model.hidden = 40;
        let binary = Uae::new(&table, cfg_b);
        model.num_params() as i64 - binary.num_params() as i64
    };
    assert!(extra_params != 0, "embedding tables must add parameters");
}

#[test]
fn ne_and_in_predicates_estimate_sanely() {
    let table = census_like(2_000, 11);
    let mut model = Uae::new(&table, quick_cfg(ColumnOrder::Natural));
    model.train_data(8);
    let exec = Executor::new(&table);
    let queries = vec![
        Query::new(vec![Predicate::new(7, PredOp::Ne, uae_data::Value::Int(0))]),
        Query::new(vec![Predicate::is_in(
            1,
            vec![uae_data::Value::Int(0), uae_data::Value::Int(2), uae_data::Value::Int(5)],
        )]),
        Query::new(vec![
            Predicate::new(0, PredOp::Gt, uae_data::Value::Int(30)),
            Predicate::new(0, PredOp::Lt, uae_data::Value::Int(60)),
        ]),
    ];
    for q in &queries {
        let truth = exec.cardinality(q) as f64;
        let est = model.estimate_card(q);
        let qerr = (est.max(1.0) / truth.max(1.0)).max(truth.max(1.0) / est.max(1.0));
        assert!(qerr < 2.5, "op coverage: q-error {qerr} (true {truth}, est {est})");
    }
}
