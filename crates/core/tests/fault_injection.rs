//! Deterministic fault injection through `FaultPlan`: NaN-poisoned
//! logits, panicking queries and checkpoint corruption are injected at
//! exact serving indices, and the cascade must (a) degrade only the
//! targeted query, (b) keep every other query bit-identical to a
//! fault-free run, and (c) record each recovery step in the serve
//! telemetry.

use uae_core::{
    EstimateSource, LoadError, ResMadeConfig, ServeEvent, ServeMemoryObserver, TrainConfig, Uae,
    UaeConfig,
};
use uae_data::{Table, Value};
use uae_query::{Predicate, Query};

fn table() -> Table {
    Table::from_columns(
        "faulty",
        vec![
            ("age".into(), (0..300i64).map(|i| Value::Int(i % 60)).collect()),
            ("tier".into(), (0..300i64).map(|i| Value::Int(i % 7)).collect()),
        ],
    )
}

fn quick_uae(seed: u64) -> Uae {
    let t = table();
    let cfg = UaeConfig {
        model: ResMadeConfig { hidden: 24, blocks: 1, seed },
        train: TrainConfig { batch_size: 64, ..TrainConfig::default() },
        estimate_samples: 60,
        ..UaeConfig::default()
    };
    let mut uae = Uae::new(&t, cfg);
    uae.train_data(1);
    uae
}

fn workload() -> Vec<Query> {
    vec![
        Query::new(vec![Predicate::eq(0, 7i64)]),
        Query::new(vec![Predicate::ge(0, 10i64), Predicate::le(0, 30i64)]),
        Query::new(vec![Predicate::eq(1, 3i64), Predicate::ge(0, 20i64)]),
        Query::new(vec![Predicate::le(1, 4i64)]),
        Query::new(vec![Predicate::ge(0, 45i64)]),
    ]
}

fn cards(uae: &Uae, queries: &[Query]) -> Vec<uae_core::Estimate> {
    uae.try_estimate_cards(queries)
        .into_iter()
        .map(|r| r.expect("workload queries are valid"))
        .collect()
}

/// NaN logits on every attempt: the target query falls through the retry
/// to the histogram baseline; everything else is bit-identical to the
/// fault-free clone.
#[test]
fn persistent_nan_degrades_one_query_to_baseline() {
    let n = table().num_rows() as f64;
    let queries = workload();
    let base = quick_uae(11);
    let clean = base.clone();
    let mut faulted = base.clone();
    faulted.serve_config_mut().fault.nan_always = vec![2];
    let (obs, log) = ServeMemoryObserver::new();
    faulted.set_serve_observer(Box::new(obs));

    let want = cards(&clean, &queries);
    let got = cards(&faulted, &queries);

    assert_eq!(got[2].source, EstimateSource::Baseline);
    assert!(got[2].retried);
    assert!(got[2].card.is_finite() && (0.0..=n).contains(&got[2].card));
    for (i, (w, g)) in want.iter().zip(&got).enumerate() {
        if i == 2 {
            continue;
        }
        assert_eq!(
            w.card.to_bits(),
            g.card.to_bits(),
            "query {i} must be untouched by the fault on query 2"
        );
        assert_eq!(g.source, EstimateSource::Model);
    }

    let stats = faulted.serve_stats();
    assert_eq!(stats.served, queries.len() as u64);
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.fallbacks, 1);
    let events = log.lock().expect("event log");
    assert!(events.iter().any(|e| matches!(e, ServeEvent::Retry { index: 2, .. })));
    assert!(events.iter().any(|e| matches!(e, ServeEvent::Fallback { index: 2, .. })));
}

/// NaN logits on the first attempt only: the derived-seed retry recovers a
/// model-sourced estimate and the baseline is never consulted.
#[test]
fn transient_nan_recovers_via_retry() {
    let n = table().num_rows() as f64;
    let queries = workload();
    let base = quick_uae(12);
    let clean = base.clone();
    let mut faulted = base.clone();
    faulted.serve_config_mut().fault.nan_once = vec![0];

    let want = cards(&clean, &queries);
    let got = cards(&faulted, &queries);

    assert_eq!(got[0].source, EstimateSource::Model);
    assert!(got[0].retried);
    assert!(got[0].card.is_finite() && (0.0..=n).contains(&got[0].card));
    for (i, (w, g)) in want.iter().zip(&got).enumerate().skip(1) {
        assert_eq!(w.card.to_bits(), g.card.to_bits(), "query {i} perturbed by retry of query 0");
    }
    let stats = faulted.serve_stats();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.fallbacks, 0);
    assert_eq!(stats.panics_isolated, 0);
}

/// A query that panics mid-batch: the batch attempt is isolated, healthy
/// queries are re-run on their original seeds (bit-identical results), the
/// poisoned query degrades to the baseline, and the process — including
/// the tensor worker pool — keeps serving afterwards.
#[test]
fn panicking_query_is_isolated_from_the_batch() {
    let n = table().num_rows() as f64;
    let queries = workload();
    let base = quick_uae(13);
    let clean = base.clone();
    let mut faulted = base.clone();
    faulted.serve_config_mut().fault.panic_queries = vec![1];
    let (obs, log) = ServeMemoryObserver::new();
    faulted.set_serve_observer(Box::new(obs));

    let want = cards(&clean, &queries);
    let got = cards(&faulted, &queries);

    assert_eq!(got[1].source, EstimateSource::Baseline);
    assert!(got[1].card.is_finite() && (0.0..=n).contains(&got[1].card));
    for (i, (w, g)) in want.iter().zip(&got).enumerate() {
        if i == 1 {
            continue;
        }
        assert_eq!(
            w.card.to_bits(),
            g.card.to_bits(),
            "query {i} must survive the batch panic bit-exactly"
        );
    }

    let stats = faulted.serve_stats();
    assert!(stats.panics_isolated >= 2, "batch-level and query-level isolation both recorded");
    assert_eq!(stats.fallbacks, 1);
    {
        let events = log.lock().expect("event log");
        assert!(events.iter().any(|e| matches!(e, ServeEvent::PanicIsolated { index: None })));
        assert!(events.iter().any(|e| matches!(e, ServeEvent::PanicIsolated { index: Some(1) })));
    }

    // The serving loop survives: the same estimator keeps answering, and
    // the shared tensor pool still runs parallel work.
    let after = faulted.try_estimate_card(&queries[0]).expect("still serving");
    assert!(after.card.is_finite());
    let doubled = uae_tensor::pool::parallel_map(64, |i| i * 2);
    assert!(doubled.iter().enumerate().all(|(i, &v)| v == i * 2));
}

/// The same panic fault on the sequential path: isolated, retried (the
/// retry panics too), then the baseline answers.
#[test]
fn panicking_query_is_isolated_sequentially() {
    let n = table().num_rows() as f64;
    let base = quick_uae(14);
    let mut faulted = base.clone();
    faulted.serve_config_mut().fault.panic_queries = vec![0];

    let est = faulted.try_estimate_card(&workload()[0]).expect("degraded, not dead");
    assert_eq!(est.source, EstimateSource::Baseline);
    assert!(est.card.is_finite() && (0.0..=n).contains(&est.card));
    let stats = faulted.serve_stats();
    assert_eq!(stats.panics_isolated, 2); // first attempt + retry
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.fallbacks, 1);
}

/// Checkpoint-corruption fault: the saved blob fails to load with a typed
/// checksum error, and the estimator that attempted the load is untouched
/// — same weights, same estimates.
#[test]
fn corrupted_checkpoint_is_rejected_and_model_survives() {
    let queries = workload();
    let mut writer = quick_uae(15);
    writer.serve_config_mut().fault.corrupt_checkpoint = Some((100, 0x20));
    let corrupted = writer.save_checkpoint();

    let mut reader = quick_uae(16);
    let weights_before = reader.save_weights();
    let probe_before = cards(&reader.clone(), &queries);

    assert_eq!(reader.load_checkpoint(&corrupted), Err(LoadError::ChecksumMismatch));

    // Validation happens before commit: nothing in the reader moved.
    assert_eq!(reader.save_weights(), weights_before);
    let probe_after = cards(&reader.clone(), &queries);
    for (b, a) in probe_before.iter().zip(&probe_after) {
        assert_eq!(b.card.to_bits(), a.card.to_bits());
    }

    // With the fault disabled the very same trainer state round-trips.
    writer.serve_config_mut().fault.corrupt_checkpoint = None;
    let clean = writer.save_checkpoint();
    reader.load_checkpoint(&clean).expect("clean checkpoint loads");
}
