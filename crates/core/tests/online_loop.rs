//! End-to-end tests of the online learning loop: deterministic replay
//! (same seed + same label stream ⇒ identical promotion decisions and
//! bit-identical promoted checkpoint bytes), the shadow gate rejecting a
//! NaN-poisoned candidate without touching the live model, and the
//! post-promotion probation watch rolling a regressed promotion back.

use std::collections::HashSet;

use uae_core::{
    GateDecision, OnlineConfig, OnlineFaultPlan, OnlineMemoryObserver, OnlineTrainer, QueryPool,
    ResMadeConfig, RoundOutcome, TrainConfig, Uae, UaeConfig,
};
use uae_data::census_like;
use uae_query::{generate_workload, label_queries, LabeledQuery, WorkloadSpec};

const ROWS: usize = 400;
const SEED: u64 = 0x0411e;

fn quick_uae(data_epochs: usize) -> Uae {
    let t = census_like(ROWS, SEED);
    let cfg = UaeConfig {
        model: ResMadeConfig { hidden: 24, blocks: 1, seed: 5 },
        train: TrainConfig { batch_size: 128, ..TrainConfig::default() },
        estimate_samples: 64,
        ..UaeConfig::default()
    };
    let mut uae = Uae::new(&t, cfg);
    uae.train_data(data_epochs);
    uae
}

/// A deterministic stream of labeled queries against the base table.
fn label_stream(n: usize, qseed: u64) -> Vec<LabeledQuery> {
    let t = census_like(ROWS, SEED);
    let queries = generate_workload(&t, &WorkloadSpec::random(n, qseed), &HashSet::new())
        .into_iter()
        .map(|lq| lq.query)
        .collect();
    label_queries(&t, queries)
}

fn small_online_config() -> OnlineConfig {
    OnlineConfig {
        trigger_fresh: 12,
        holdout: 8,
        query_epochs: 2,
        data_epochs: 1,
        ..OnlineConfig::default()
    }
}

/// Acceptance criterion: two trainers built from the same live model and
/// fed the identical label stream make identical promotion decisions,
/// and a promoted round's `UAEC` checkpoint bytes are bit-identical.
#[test]
fn replay_is_deterministic_and_checkpoints_bit_identical() {
    let live = quick_uae(1);
    let stream = label_stream(60, 0x5eed);

    let run = || {
        let pool = QueryPool::new(256);
        let mut trainer = OnlineTrainer::new(&live, small_online_config());
        let mut decisions = Vec::new();
        let mut checkpoints = Vec::new();
        for (i, chunk) in stream.chunks(20).enumerate() {
            pool.extend(chunk.iter().cloned());
            let report = trainer.round(&pool, &live, i as u64 * 1_000_000);
            match report.outcome {
                RoundOutcome::Idle => decisions.push("idle".to_owned()),
                RoundOutcome::Rejected(d) => decisions.push(format!("rejected:{d}")),
                RoundOutcome::Promoted { version, checkpoint, .. } => {
                    decisions.push(format!("promoted:v{version}"));
                    checkpoints.push(checkpoint);
                }
                RoundOutcome::RolledBack { version, restored_version, .. } => {
                    decisions.push(format!("rolledback:v{version}<-v{restored_version}"))
                }
                RoundOutcome::PersistFailed { version, .. } => {
                    panic!("no disk faults configured, yet v{version} failed to persist")
                }
            }
        }
        (decisions, checkpoints)
    };

    let (decisions_a, ckpts_a) = run();
    let (decisions_b, ckpts_b) = run();
    assert_eq!(decisions_a, decisions_b, "promotion decisions must replay identically");
    assert_eq!(ckpts_a.len(), ckpts_b.len());
    for (a, b) in ckpts_a.iter().zip(&ckpts_b) {
        assert_eq!(a, b, "promoted checkpoint bytes must be bit-identical across replays");
    }
    assert!(
        decisions_a.iter().any(|d| d.starts_with("promoted")),
        "the stream must drive at least one promotion, got {decisions_a:?}"
    );
}

/// Acceptance criterion: a fault-injected NaN candidate is rejected as
/// unhealthy by the shadow gate, the live model's weights are untouched,
/// and the trainer's branch recovers (the next clean round can promote).
#[test]
fn nan_candidate_is_rejected_and_live_model_untouched() {
    let live = quick_uae(1);
    let live_weights_before = live.save_weights();
    let stream = label_stream(48, 0xbad);

    let cfg =
        OnlineConfig { fault: OnlineFaultPlan { nan_rounds: vec![0] }, ..small_online_config() };
    let pool = QueryPool::new(256);
    let mut trainer = OnlineTrainer::new(&live, cfg);
    let (obs, events) = OnlineMemoryObserver::new();
    trainer.set_observer(Box::new(obs));

    pool.extend(stream.iter().take(24).cloned());
    let report = trainer.round(&pool, &live, 0);
    match report.outcome {
        RoundOutcome::Rejected(GateDecision::Unhealthy) => {}
        other => panic!("poisoned candidate must be rejected as unhealthy, got {other:?}"),
    }
    let cand = report.candidate.expect("candidate was scored");
    assert!(!cand.weights_finite, "the shadow score must flag the poisoned weights");
    assert_eq!(live.save_weights(), live_weights_before, "live model must be untouched");
    assert_eq!(trainer.version(), 0, "nothing was published");

    // The branch was restored from its last-good checkpoint: the next
    // (unpoisoned) round trains the same labels again and can promote.
    pool.extend(stream.iter().skip(24).cloned());
    let report = trainer.round(&pool, &live, 1_000_000);
    match report.outcome {
        RoundOutcome::Promoted { version, .. } => assert_eq!(version, 1),
        other => panic!("clean retry must promote, got {other:?}"),
    }

    let events = events.lock().expect("event log");
    assert!(events.iter().any(
        |e| matches!(e, uae_core::OnlineEvent::Rejected { decision, .. } if decision == "unhealthy")
    ));
    assert!(events.iter().any(|e| matches!(e, uae_core::OnlineEvent::Promoted { version: 1, .. })));
}

/// The probation watch: a promotion that regresses in the wild (here the
/// promoted live model is NaN-poisoned after the swap) is rolled back to
/// the prior version, whose weights match the pre-promotion live model.
#[test]
fn post_promotion_regression_rolls_back_to_prior() {
    let live = quick_uae(1);
    let prior_weights = live.save_weights();
    let stream = label_stream(64, 0x0111);

    let pool = QueryPool::new(256);
    let mut trainer = OnlineTrainer::new(&live, small_online_config());

    pool.extend(stream.iter().take(32).cloned());
    let report = trainer.round(&pool, &live, 0);
    let mut promoted = match report.outcome {
        RoundOutcome::Promoted { model, version, .. } => {
            assert_eq!(version, 1);
            model
        }
        other => panic!("first round must promote, got {other:?}"),
    };
    assert!(trainer.on_watch(), "a promotion opens a probation watch");

    // The promoted model diverges in production; fresh labels arrive.
    promoted.inject_weight_nan();
    pool.extend(stream.iter().skip(32).cloned());
    let report = trainer.round(&pool, &promoted, 2_000_000);
    match report.outcome {
        RoundOutcome::RolledBack { model, version, restored_version, .. } => {
            assert_eq!(version, 2, "a rollback publishes a new version");
            assert_eq!(restored_version, 0);
            assert_eq!(
                model.save_weights(),
                prior_weights,
                "the rollback must restore the pre-promotion weights"
            );
        }
        other => panic!("regressed promotion must roll back, got {other:?}"),
    }
    assert!(!trainer.on_watch(), "the watch is consumed by the rollback");
}

/// A promotion that holds up on post-promotion labels clears probation
/// without a rollback, and versioned checkpoints land in the configured
/// directory.
#[test]
fn healthy_promotion_clears_probation_and_writes_versioned_checkpoint() {
    let dir = std::env::temp_dir().join(format!("uae_online_ckpt_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let live = quick_uae(1);
    let stream = label_stream(64, 0x600d);

    let cfg = OnlineConfig { checkpoint_dir: Some(dir.clone()), ..small_online_config() };
    let pool = QueryPool::new(256);
    let mut trainer = OnlineTrainer::new(&live, cfg);

    pool.extend(stream.iter().take(32).cloned());
    let report = trainer.round(&pool, &live, 0);
    let promoted = match report.outcome {
        RoundOutcome::Promoted { model, checkpoint, .. } => {
            let on_disk = std::fs::read(dir.join("uae_v1.uaec")).expect("versioned checkpoint");
            assert_eq!(on_disk, checkpoint, "disk checkpoint must match the in-memory bytes");
            model
        }
        other => panic!("first round must promote, got {other:?}"),
    };

    // The healthy promoted model serves well; probation must clear.
    // Feed just enough post-promotion labels to judge probation but not
    // enough fresh ones to trigger another training round, so the watch
    // state is observable in isolation.
    pool.extend(stream.iter().skip(32).take(8).cloned());
    let report = trainer.round(&pool, &promoted, 1_000_000);
    assert!(!trainer.on_watch(), "a healthy promotion must clear the watch");
    assert!(
        matches!(report.outcome, RoundOutcome::Idle),
        "after probation clears, too few fresh labels means an idle round, got {:?}",
        report.outcome
    );
    std::fs::remove_dir_all(&dir).ok();
}
