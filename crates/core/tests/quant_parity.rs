//! The int8 inference path is gated by parity: its estimation quality must
//! stay within 5% (relative, median and p95 q-error) of the f32 path on a
//! table5-style workload, it must be strictly inference-only (training
//! state and checkpoint bytes are untouched by quantization), and it must
//! uphold the same sequential/batched bit-parity contract as f32.

use std::collections::HashSet;

use uae_core::{QuantMode, ResMadeConfig, TrainConfig, Uae, UaeConfig};
use uae_data::census_like;
use uae_query::{generate_workload, LabeledQuery, Query, WorkloadSpec};

fn quick_cfg() -> UaeConfig {
    UaeConfig {
        model: ResMadeConfig { hidden: 32, blocks: 1, seed: 11 },
        train: TrainConfig { batch_size: 128, ..TrainConfig::default() },
        estimate_samples: 200,
        ..UaeConfig::default()
    }
}

/// Multiplicative estimation error against the labeled truth, floored so
/// empty-region estimates stay finite.
fn q_error(est: f64, truth: f64) -> f64 {
    let est = est.max(1e-9);
    let truth = truth.max(1e-9);
    (est / truth).max(truth / est)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn q_error_profile(uae: &Uae, workload: &[LabeledQuery]) -> (f64, f64, Vec<f64>) {
    let queries: Vec<Query> = workload.iter().map(|lq| lq.query.clone()).collect();
    let sels = uae.estimate_batch(&queries);
    let mut qs: Vec<f64> =
        sels.iter().zip(workload).map(|(&est, lq)| q_error(est, lq.selectivity)).collect();
    qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (percentile(&qs, 0.5), percentile(&qs, 0.95), sels)
}

/// The q-error parity gate: median and p95 q-error under int8 inference
/// must land within 5% relative of the f32 path on the same workload.
#[test]
fn int8_q_error_within_five_percent_of_f32() {
    let t = census_like(1200, 31);
    let mut uae = Uae::new(&t, quick_cfg());
    uae.train_data(2);
    let workload = generate_workload(&t, &WorkloadSpec::random(48, 97), &HashSet::new());

    let f32_est = uae.clone();
    let (f32_median, f32_p95, f32_sels) = q_error_profile(&f32_est, &workload);

    let mut int8_est = uae.clone();
    int8_est.set_quant_mode(QuantMode::Int8);
    assert_eq!(int8_est.quant_mode(), QuantMode::Int8);
    let (i8_median, i8_p95, i8_sels) = q_error_profile(&int8_est, &workload);

    // Clones reseed identically, so the only difference between the two
    // estimate streams is the numeric mode — if no estimate moved at all,
    // the int8 path never actually engaged and this gate is vacuous.
    assert_ne!(f32_sels, i8_sels, "int8 mode produced bit-identical estimates — not engaged?");

    let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
    assert!(
        rel(i8_median, f32_median) <= 0.05,
        "median q-error parity broken: int8 {i8_median} vs f32 {f32_median}"
    );
    assert!(
        rel(i8_p95, f32_p95) <= 0.05,
        "p95 q-error parity broken: int8 {i8_p95} vs f32 {f32_p95}"
    );
    // Sanity: the model actually learned something on both paths.
    assert!(f32_median < 10.0, "f32 baseline degenerate: median {f32_median}");
}

/// Quantization is inference-only: estimating under int8 must not perturb
/// training state, and checkpoint bytes stay identical to a clone that
/// never quantized. Training afterwards proceeds from identical weights.
#[test]
fn int8_leaves_training_state_and_checkpoint_bytes_untouched() {
    let t = census_like(600, 7);
    let mut uae = Uae::new(&t, quick_cfg());
    uae.train_data(1);

    let mut pristine = uae.clone();
    let mut quantized = uae.clone();
    quantized.set_quant_mode(QuantMode::Int8);

    let workload = generate_workload(&t, &WorkloadSpec::random(8, 3), &HashSet::new());
    let queries: Vec<Query> = workload.into_iter().map(|lq| lq.query).collect();
    let _ = quantized.estimate_batch(&queries); // builds the quantized snapshot
    let _ = pristine.estimate_batch(&queries);

    assert_eq!(
        pristine.save_checkpoint(),
        quantized.save_checkpoint(),
        "int8 inference leaked into checkpoint bytes"
    );

    // Training from both estimators stays bit-identical: quantization never
    // touches the parameters the tape trains.
    let lp = pristine.train_data(1);
    let lq = quantized.train_data(1);
    assert_eq!(lp, lq, "training diverged after int8 inference");
}

/// The sequential/batched parity contract holds under int8 exactly as it
/// does under f32: the integer kernels are row-independent and the dequant
/// arithmetic has one shared op order, so batching changes nothing.
#[test]
fn int8_sequential_matches_batched() {
    let t = census_like(700, 19);
    let mut uae = Uae::new(&t, quick_cfg());
    uae.train_data(1);
    uae.set_quant_mode(QuantMode::Int8);
    let workload = generate_workload(&t, &WorkloadSpec::random(16, 23), &HashSet::new());
    let queries: Vec<Query> = workload.into_iter().map(|lq| lq.query).collect();

    let seq = uae.clone();
    let bat = uae.clone();
    let sequential: Vec<f64> = queries.iter().map(|q| seq.estimate_selectivity(q)).collect();
    let batched = bat.estimate_batch(&queries);
    for (i, (&s, &b)) in sequential.iter().zip(&batched).enumerate() {
        let rel = (s - b).abs() / s.abs().max(b.abs()).max(1e-300);
        assert!(rel <= 1e-9, "query {i}: sequential {s} vs batched {b}");
    }
    assert!(sequential.iter().any(|&s| s > 0.0), "degenerate workload");
}
