//! Satellite 4 — routing determinism. Decisions are pure functions of
//! (featurizer, policy, query): rebuilding a router from the same seeds
//! and replaying the same workload must reproduce every decision bit
//! for bit, and a whole fleet replay must reproduce every estimate —
//! the property the CI routing drill and calibration rely on.

use std::collections::HashSet;
use std::sync::Arc;

use uae_core::{
    BackendChoice, ResMadeConfig, RouteConfig, RoutedFleet, Router, TrainConfig, Uae, UaeConfig,
};
use uae_data::{kddcup_like, Table};
use uae_estimators::{HistogramEstimator, SpnConfig, SpnEstimator};
use uae_query::{generate_workload, CardEstimator, LabeledQuery, Query, WorkloadSpec};

fn wide_table() -> Table {
    // 32 columns ≥ the default wide_table threshold (30): the regime
    // where the threshold policy actually routes.
    kddcup_like(1500, 32, 4242)
}

fn workload(t: &Table, n: usize, qseed: u64) -> Vec<LabeledQuery> {
    generate_workload(t, &WorkloadSpec::random(n, qseed), &HashSet::new())
}

/// The default config with a correlation threshold low enough that
/// queries touching a same-latent-group column pair (e.g. f000/f001)
/// count as correlated → primary, while the typical random query's
/// touched pairs stay independent → routed. Both paths get exercised.
fn test_cfg() -> RouteConfig {
    RouteConfig { high_corr: 0.05, ..RouteConfig::default() }
}

/// Queries pinned to the correlated pair (columns 0 and 1 share a
/// group latent), guaranteeing some `Primary` decisions.
fn correlated_queries() -> Vec<Query> {
    use uae_query::Predicate;
    (0..4).map(|k| Query::new(vec![Predicate::le(0, k), Predicate::le(1, k + 1)])).collect()
}

fn quick_uae(t: &Table) -> Uae {
    let cfg = UaeConfig {
        model: ResMadeConfig { hidden: 24, blocks: 1, seed: 7 },
        train: TrainConfig { batch_size: 128, ..TrainConfig::default() },
        estimate_samples: 32,
        ..UaeConfig::default()
    };
    let mut uae = Uae::new(t, cfg);
    uae.train_data(1);
    uae
}

fn backends(t: &Table) -> Vec<Arc<dyn CardEstimator>> {
    vec![
        Arc::new(HistogramEstimator::new(t, 16)),
        Arc::new(SpnEstimator::new(t, &SpnConfig::default())),
    ]
}

/// Two independently constructed threshold routers over the same table
/// and config agree on every decision, and replaying the same workload
/// through one router is bit-identical.
#[test]
fn threshold_decisions_replay_identically() {
    let t = wide_table();
    let mut queries: Vec<Query> = workload(&t, 60, 11).into_iter().map(|lq| lq.query).collect();
    queries.extend(correlated_queries());

    let a = Router::threshold(&t, backends(&t), test_cfg());
    let b = Router::threshold(&t, backends(&t), test_cfg());

    let da = a.decide_batch(&queries);
    let db = b.decide_batch(&queries);
    assert_eq!(da, db, "independently built routers must agree");
    assert_eq!(da, a.decide_batch(&queries), "replay on one router must be identical");

    // The drill is only meaningful if both paths are actually taken.
    assert!(da.iter().any(|d| d.choice == BackendChoice::Primary), "no primary decision");
    assert!(
        da.iter().any(|d| matches!(d.choice, BackendChoice::Backend(_))),
        "no routed decision — the threshold never fired on the wide table"
    );
}

/// Calibration is deterministic: two routers calibrated from cloned
/// primaries (clones reseed the estimation RNG identically) on the same
/// holdout produce identical policies, witnessed over a probe workload.
#[test]
fn calibrated_policies_are_reproducible() {
    let t = wide_table();
    let uae = quick_uae(&t);
    let holdout = workload(&t, 48, 17);
    let probe: Vec<Query> = workload(&t, 40, 23).into_iter().map(|lq| lq.query).collect();

    let a = Router::calibrate(&t, &uae.clone(), backends(&t), &holdout, RouteConfig::default());
    let b = Router::calibrate(&t, &uae.clone(), backends(&t), &holdout, RouteConfig::default());

    assert_eq!(a.policy(), b.policy(), "same seeds + holdout ⇒ same calibrated policy");
    assert_eq!(a.decide_batch(&probe), b.decide_batch(&probe));
}

/// End-to-end fleet replay: two fleets over cloned primaries and the
/// same router serve the whole workload bit-identically — the primary's
/// RNG stream advances only for the queries routed to it, so identical
/// decisions imply identical streams.
#[test]
fn fleet_serves_bit_identically_on_replay() {
    let t = wide_table();
    let uae = quick_uae(&t);
    let mut queries: Vec<Query> = workload(&t, 30, 29).into_iter().map(|lq| lq.query).collect();
    queries.extend(correlated_queries());
    let router = Arc::new(Router::threshold(&t, backends(&t), test_cfg()));

    let fleet_a = RoutedFleet::new(Arc::new(uae.clone()), router.clone());
    let fleet_b = RoutedFleet::new(Arc::new(uae.clone()), router);

    let ra = fleet_a.try_estimate_cards(&queries);
    let rb = fleet_b.try_estimate_cards(&queries);
    assert_eq!(ra, rb, "fleet replies must replay bit-identically");
    assert_eq!(fleet_a.serve_stats(), fleet_b.serve_stats());
    assert!(fleet_a.serve_stats().routed > 0, "the replay must exercise the routed path");
    assert!(
        fleet_a.primary().serve_stats().served > 0,
        "correlated shapes must still reach the primary"
    );
}
