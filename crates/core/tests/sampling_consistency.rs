//! Property tests of the estimator-side invariants: progressive sampling,
//! uniform sampling and exhaustive enumeration must agree on small
//! domains, for arbitrary models (trained or not), queries and seeds —
//! because all three compute the same expectation under the same model.

use proptest::prelude::*;
use uae_core::infer::{exhaustive_selectivity, progressive_sample, uniform_sample_estimate};
use uae_core::{ResMade, ResMadeConfig, VirtualQuery, VirtualSchema};
use uae_data::{Table, Value};
use uae_query::{PredOp, Predicate, Query};
use uae_tensor::rng::seeded_rng;
use uae_tensor::ParamStore;

fn small_setup(domains: &[usize], seed: u64) -> (Table, VirtualSchema, ParamStore, ResMade) {
    let rows = 16;
    let cols = domains
        .iter()
        .enumerate()
        .map(|(j, &d)| {
            let vals: Vec<Value> = (0..rows).map(|r| Value::Int(((r + j) % d) as i64)).collect();
            (format!("c{j}"), vals)
        })
        .collect();
    let t = Table::from_columns("t", cols);
    let schema = VirtualSchema::build(&t, usize::MAX);
    let mut store = ParamStore::new();
    let model = ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 8, blocks: 1, seed });
    (t, schema, store, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Progressive and uniform sampling both converge to the exhaustive
    /// value (within Monte-Carlo tolerance) on arbitrary untrained models.
    #[test]
    fn samplers_agree_with_enumeration(
        seed in 0u64..1000,
        d0 in 2usize..6,
        d1 in 2usize..5,
        lo in 0i64..3,
        hi in 2i64..6,
    ) {
        let (t, schema, store, model) = small_setup(&[d0, d1, 3], seed);
        let raw = model.snapshot(&store);
        let q = Query::new(vec![
            Predicate::ge(0, lo.min(d0 as i64 - 1)),
            Predicate::new(0, PredOp::Le, Value::Int(hi)),
            Predicate::eq(1, (seed % d1 as u64) as i64),
        ]);
        let vq = VirtualQuery::build(&t, &schema, &q);
        let exact = exhaustive_selectivity(&raw, &schema, &vq);
        let mut rng = seeded_rng(seed ^ 0xf00);
        let prog = progressive_sample(&raw, &schema, &vq, 3000, &mut rng);
        let unif = uniform_sample_estimate(&raw, &schema, &vq, 3000, &mut rng);
        let tol = 0.12 * exact.max(0.03);
        prop_assert!((prog - exact).abs() < tol, "progressive {} vs exact {}", prog, exact);
        prop_assert!((unif - exact).abs() < tol * 2.0, "uniform {} vs exact {}", unif, exact);
    }

    /// Estimates are monotone in the region: widening a range cannot
    /// decrease exhaustive selectivity.
    #[test]
    fn exhaustive_is_monotone_in_region(seed in 0u64..500, cut in 1i64..4) {
        let (t, schema, store, model) = small_setup(&[6, 4], seed);
        let raw = model.snapshot(&store);
        let narrow = VirtualQuery::build(&t, &schema, &Query::new(vec![Predicate::le(0, cut)]));
        let wide =
            VirtualQuery::build(&t, &schema, &Query::new(vec![Predicate::le(0, cut + 1)]));
        let sn = exhaustive_selectivity(&raw, &schema, &narrow);
        let sw = exhaustive_selectivity(&raw, &schema, &wide);
        prop_assert!(sw >= sn - 1e-9, "widening decreased mass: {} -> {}", sn, sw);
    }

    /// Inclusion–exclusion (the paper's §3 disjunction mechanism):
    /// P(A ∪ B) = P(A) + P(B) − P(A ∩ B) holds exactly under exhaustive
    /// enumeration for same-column range unions.
    #[test]
    fn inclusion_exclusion_for_disjunctions(seed in 0u64..500) {
        let (t, schema, store, model) = small_setup(&[8, 3], seed);
        let raw = model.snapshot(&store);
        let sel = |q: &Query| {
            let vq = VirtualQuery::build(&t, &schema, q);
            exhaustive_selectivity(&raw, &schema, &vq)
        };
        // A: c0 <= 4, B: c0 >= 3 → A∪B = everything, A∩B = [3, 4].
        let a = sel(&Query::new(vec![Predicate::le(0, 4i64)]));
        let b = sel(&Query::new(vec![Predicate::ge(0, 3i64)]));
        let ab = sel(&Query::new(vec![Predicate::ge(0, 3i64), Predicate::le(0, 4i64)]));
        let union = sel(&Query::default());
        prop_assert!((a + b - ab - union).abs() < 1e-4,
            "inclusion-exclusion violated: {} + {} - {} != {}", a, b, ab, union);
    }
}
