use std::sync::Arc;

use uae_core::{RouteConfig, Router};
use uae_data::{Table, Value};
use uae_estimators::HistogramEstimator;
use uae_query::{CardEstimator, Predicate, Query};

fn table() -> Table {
    Table::from_columns(
        "t",
        vec![
            ("x".into(), (0..100i64).map(|v| Value::Int(v % 10)).collect()),
            ("y".into(), (0..100i64).map(|v| Value::Int(v % 5)).collect()),
        ],
    )
}

#[test]
fn decide_on_unknown_column_does_not_panic() {
    let t = table();
    let hist: Arc<dyn CardEstimator> = Arc::new(HistogramEstimator::new(&t, 16));
    let router = Router::threshold(&t, vec![hist], RouteConfig::default());
    // Column 9 does not exist — the serving contract says this should be
    // a typed error, never a panic.
    let q = Query::new(vec![Predicate::eq(9, 1i64)]);
    let d = router.decide(&q);
    let _ = d;
}
