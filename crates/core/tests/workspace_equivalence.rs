//! The plan/workspace refactor must be a pure optimization: the scratch
//! samplers (`progressive_sample_with`, `progressive_sample_batch_with`)
//! reuse buffers across queries and calls, yet return f64-bit-identical
//! estimates to the allocating oracles — across wildcards, factorized
//! (split) columns, weighted (fanout) steps, and shape-changing query
//! streams that force every buffer to grow and shrink.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uae_core::infer::{progressive_sample, progressive_sample_with, InferScratch};
use uae_core::infer_batch::{
    progressive_sample_batch, progressive_sample_batch_with, BatchScratch,
};
use uae_core::vquery::VirtualQuery;
use uae_core::{ResMade, ResMadeConfig, VirtualSchema};
use uae_data::{Table, Value};
use uae_query::{Predicate, Query};
use uae_tensor::ParamStore;

/// A table with a wide (factorized) column, two mid columns, and a small
/// one, so query streams mix `Fixed`, `LoOfSplit`, `Weighted`, and
/// wildcard steps.
fn setup(factor_threshold: usize) -> (Table, VirtualSchema, ParamStore, ResMade) {
    let rows = 400;
    let cols = vec![
        ("wide".to_owned(), (0..rows).map(|r| Value::Int((r * 7 % 150) as i64)).collect()),
        ("a".to_owned(), (0..rows).map(|r| Value::Int((r % 11) as i64)).collect()),
        ("b".to_owned(), (0..rows).map(|r| Value::Int((r % 6) as i64)).collect()),
        ("c".to_owned(), (0..rows).map(|r| Value::Int((r % 3) as i64)).collect()),
    ];
    let t = Table::from_columns("t", cols);
    let schema = VirtualSchema::build(&t, factor_threshold);
    let mut store = ParamStore::new();
    let model =
        ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 24, blocks: 1, seed: 13 });
    (t, schema, store, model)
}

/// A mixed query stream: ranges on the split column, points, partial
/// wildcards, a fanout-weighted step, and the empty query.
fn mixed_stream(t: &Table, schema: &VirtualSchema) -> Vec<VirtualQuery> {
    let mut vqs: Vec<VirtualQuery> = vec![
        Query::new(vec![Predicate::ge(0, 10i64), Predicate::le(0, 120i64)]),
        Query::new(vec![Predicate::eq(1, 4i64), Predicate::ge(2, 2i64)]),
        Query::new(vec![Predicate::le(0, 30i64), Predicate::eq(3, 1i64)]),
        Query::new(vec![Predicate::eq(2, 5i64)]),
        Query::default(),
        Query::new(vec![Predicate::ge(0, 140i64)]),
    ]
    .iter()
    .map(|q| VirtualQuery::build(t, schema, q))
    .collect();
    // Fanout weights on a leading column (the join path).
    let mut wq = VirtualQuery::build(t, schema, &Query::new(vec![Predicate::le(2, 3i64)]));
    wq.set_weighted(
        schema.num_virtual() - 1,
        (0..schema.codec(schema.num_virtual() - 1).domain()).map(|i| 0.5 + i as f64).collect(),
    );
    vqs.push(wq);
    vqs
}

/// One `InferScratch` carried across an entire mixed query stream returns
/// exactly what a fresh allocating sampler returns per query.
#[test]
fn scratch_sampler_matches_oracle_across_reuse() {
    for threshold in [usize::MAX, 16] {
        let (t, schema, store, model) = setup(threshold);
        let raw = model.snapshot(&store);
        let vqs = mixed_stream(&t, &schema);
        let mut scratch = InferScratch::new();
        // Varying sample counts force the input/probability buffers to
        // grow and shrink between queries.
        for (i, vq) in vqs.iter().enumerate() {
            for s in [64, 200, 17] {
                let seed = 0xace ^ ((i as u64) << 8) ^ s as u64;
                let mut r1 = StdRng::seed_from_u64(seed);
                let mut r2 = StdRng::seed_from_u64(seed);
                let oracle = progressive_sample(&raw, &schema, vq, s, &mut r1);
                let got = progressive_sample_with(&raw, &schema, vq, s, &mut r2, &mut scratch);
                assert_eq!(
                    oracle.to_bits(),
                    got.to_bits(),
                    "query {i}, s={s}, threshold={threshold}: oracle {oracle} vs scratch {got}"
                );
            }
        }
    }
}

/// One `BatchScratch` carried across repeated batch calls — with the query
/// set, batch size, and sample budget all changing call to call — returns
/// exactly what a fresh-scratch batch call returns.
#[test]
fn batch_scratch_reuse_is_bit_exact() {
    for threshold in [usize::MAX, 16] {
        let (t, schema, store, model) = setup(threshold);
        let raw = model.snapshot(&store);
        let vqs = mixed_stream(&t, &schema);
        let mut scratch = BatchScratch::new();
        // Shrinking then growing batches exercise the prefix-pool
        // return/take cycle and the stacked-tensor high-water mark.
        let slices: [&[VirtualQuery]; 4] = [&vqs, &vqs[..2], &vqs[3..], &vqs];
        for (call, qs) in slices.iter().enumerate() {
            for s in [150, 40] {
                let seeds: Vec<u64> = (0..qs.len() as u64)
                    .map(|i| 0xbeef ^ ((call as u64) << 16) ^ (31 * i) ^ s as u64)
                    .collect();
                let oracle = progressive_sample_batch(&raw, &schema, qs, s, &seeds);
                let got = progressive_sample_batch_with(&raw, &schema, qs, s, &seeds, &mut scratch);
                for (i, (o, g)) in oracle.iter().zip(&got).enumerate() {
                    assert_eq!(
                        o.to_bits(),
                        g.to_bits(),
                        "call {call}, query {i}, s={s}, threshold={threshold}: {o} vs {g}"
                    );
                }
            }
        }
    }
}

/// The batched scratch path agrees with the *sequential* oracle too (the
/// transitive check: batch-with == batch == per-query sequential).
#[test]
fn batch_scratch_matches_sequential_oracle() {
    let (t, schema, store, model) = setup(16);
    let raw = model.snapshot(&store);
    let vqs = mixed_stream(&t, &schema);
    let s = 120;
    let seeds: Vec<u64> = (0..vqs.len() as u64).map(|i| 0x5eed + 101 * i).collect();
    let mut scratch = BatchScratch::new();
    // Warm the scratch on a first pass, then measure the second.
    progressive_sample_batch_with(&raw, &schema, &vqs, s, &seeds, &mut scratch);
    let batched = progressive_sample_batch_with(&raw, &schema, &vqs, s, &seeds, &mut scratch);
    for (i, (vq, &seed)) in vqs.iter().zip(&seeds).enumerate() {
        let mut rng = StdRng::seed_from_u64(seed);
        let oracle = progressive_sample(&raw, &schema, vq, s, &mut rng);
        assert_eq!(
            oracle.to_bits(),
            batched[i].to_bits(),
            "query {i}: sequential oracle {oracle} vs warm batched {}",
            batched[i]
        );
    }
}
