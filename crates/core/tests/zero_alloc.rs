//! Allocation regression guard for the plan/workspace refactor: once the
//! scratch buffers are warm, steady-state estimate calls must perform
//! **zero** heap allocations in the tensor layer (`tensor_alloc_count`
//! stays flat), and the per-query global allocation count — everything,
//! including `Vec<u32>` code buffers and hash-map churn — is reported.
//!
//! The batched sampler's prefix/stacked buffers are sized by the *deduped*
//! prefix count, which varies with the RNG seeds: under an advancing seed
//! stream the high-water mark can still creep by a few rows per call, so
//! the exact-zero assertions run on deterministic workloads (fixed shapes
//! for the sequential path, fixed seeds for the batched path) and the
//! advancing-seed path gets a tight growth bound instead.
//!
//! Single `#[test]` on purpose: both counters are process-global, so a
//! concurrently running test that touches tensors would break the deltas.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use uae_core::infer_batch::{
    progressive_sample_batch, progressive_sample_batch_with, BatchScratch,
};
use uae_core::vquery::VirtualQuery;
use uae_core::{ResMade, ResMadeConfig, TrainConfig, Uae, UaeConfig, VirtualSchema};
use uae_data::census_like;
use uae_query::{generate_workload, Query, WorkloadSpec};
use uae_tensor::{tensor_alloc_count, ParamStore};

/// Counts every allocation and reallocation made through the global
/// allocator (deallocations are free of charge).
struct CountingAlloc;

static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_estimates_allocate_no_tensors() {
    let t = census_like(600, 7);
    let cfg = UaeConfig {
        model: ResMadeConfig { hidden: 32, blocks: 1, seed: 3 },
        train: TrainConfig { batch_size: 128, ..TrainConfig::default() },
        estimate_samples: 200,
        ..UaeConfig::default()
    };
    let mut uae = Uae::new(&t, cfg);
    uae.train_data(1);
    let workload = generate_workload(&t, &WorkloadSpec::random(16, 31), &HashSet::new());
    let queries: Vec<Query> = workload.into_iter().map(|lq| lq.query).collect();
    let rounds = 3u64;

    // --- sequential path: exact zero -----------------------------------
    // `InferScratch` shapes depend only on `estimate_samples` and the
    // schema, so after one warm call nothing in the tensor layer moves.
    for q in &queries {
        uae.estimate_selectivity(q);
    }
    let tensors_before = tensor_alloc_count();
    let global_before = GLOBAL_ALLOCS.load(Ordering::Relaxed);
    for _ in 0..rounds {
        for q in &queries {
            uae.estimate_selectivity(q);
        }
    }
    let tensor_delta = tensor_alloc_count() - tensors_before;
    let global_delta = GLOBAL_ALLOCS.load(Ordering::Relaxed) - global_before;
    eprintln!(
        "sequential steady state: {tensor_delta} tensor allocs, {} global allocs/query",
        global_delta / (rounds * queries.len() as u64)
    );
    assert_eq!(tensor_delta, 0, "warm estimate_selectivity must not allocate tensors");

    // --- batched path, fixed seeds: exact zero -------------------------
    // Identical seeds make every call identical, so the second call onward
    // reuses every buffer at its exact prior size.
    let schema = VirtualSchema::build(&t, usize::MAX);
    let mut store = ParamStore::new();
    let model =
        ResMade::new(&mut store, &schema, &ResMadeConfig { hidden: 32, blocks: 1, seed: 3 });
    let raw = model.snapshot(&store);
    let vqs: Vec<VirtualQuery> =
        queries.iter().map(|q| VirtualQuery::build(&t, &schema, q)).collect();
    let seeds: Vec<u64> = (0..vqs.len() as u64).map(|i| 0xfeed + 31 * i).collect();
    let mut scratch = BatchScratch::new();
    // Warm until the buffers reach their fixed point: the rebuild-and-swap
    // cycle rotates tensors through the prefix pool, so one capacity
    // upgrade per call can recur for ~pool-size calls before every
    // circulating buffer has grown to its orbit's maximum. Bounded, so a
    // genuinely structural per-call allocation still fails below.
    let mut stable = 0;
    for _ in 0..64 {
        let before = tensor_alloc_count();
        progressive_sample_batch_with(&raw, &schema, &vqs, 200, &seeds, &mut scratch);
        stable = if tensor_alloc_count() == before { stable + 1 } else { 0 };
        if stable >= 2 {
            break;
        }
    }
    let tensors_before = tensor_alloc_count();
    let global_before = GLOBAL_ALLOCS.load(Ordering::Relaxed);
    for _ in 0..rounds {
        progressive_sample_batch_with(&raw, &schema, &vqs, 200, &seeds, &mut scratch);
    }
    let tensor_delta = tensor_alloc_count() - tensors_before;
    let global_delta = GLOBAL_ALLOCS.load(Ordering::Relaxed) - global_before;
    eprintln!(
        "batched steady state (fixed seeds): {tensor_delta} tensor allocs, \
         {} global allocs/query",
        global_delta / (rounds * vqs.len() as u64)
    );
    assert_eq!(tensor_delta, 0, "warm fixed-seed batch must not allocate tensors");

    // Contrast: the allocating entry point (fresh scratch per call) on the
    // same workload — the floor a cold call pays even post-refactor. The
    // pre-refactor engine additionally allocated fresh hidden/logit/input
    // tensors every column round.
    let tensors_before = tensor_alloc_count();
    progressive_sample_batch(&raw, &schema, &vqs, 200, &seeds);
    let oracle_delta = tensor_alloc_count() - tensors_before;
    eprintln!("fresh-scratch entry point: {} tensor allocs/query", oracle_delta / vqs.len() as u64);

    // --- batched path, advancing seeds: bounded high-water growth ------
    for _ in 0..4 {
        uae.estimate_batch(&queries);
    }
    let tensors_before = tensor_alloc_count();
    let global_before = GLOBAL_ALLOCS.load(Ordering::Relaxed);
    for _ in 0..rounds {
        uae.estimate_batch(&queries);
    }
    let tensor_delta = tensor_alloc_count() - tensors_before;
    let global_delta = GLOBAL_ALLOCS.load(Ordering::Relaxed) - global_before;
    eprintln!(
        "batched steady state (advancing seeds): {tensor_delta} tensor allocs, \
         {} global allocs/query",
        global_delta / (rounds * queries.len() as u64)
    );
    // Only the stacked/prefix buffers may grow, and only when a round's
    // deduped prefix count exceeds everything seen before.
    assert!(
        tensor_delta <= 2 * rounds,
        "estimate_batch tensor traffic beyond high-water growth: {tensor_delta}"
    );
}
