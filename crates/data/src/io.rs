//! CSV ingestion — the adoption path for real datasets (the paper's DMV,
//! Census and Kddcup98 are all CSV exports).
//!
//! A deliberately small, dependency-free reader: comma separation,
//! double-quote quoting with `""` escapes, optional header row, automatic
//! integer/string typing per column (a column is integer-typed only if
//! *every* non-empty cell parses as `i64`). Empty cells become the string
//! `""` or integer-typed columns' sentinel `i64::MIN` — dictionary-encoded
//! like any other value, they never collide with real data silently.

use std::io::BufRead;

use crate::table::Table;
use crate::value::Value;

/// CSV parsing options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Whether the first row is a header with column names.
    pub has_header: bool,
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Maximum number of rows to read (`usize::MAX` = all).
    pub max_rows: usize,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions { has_header: true, delimiter: ',', max_rows: usize::MAX }
    }
}

/// Errors from CSV ingestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A row had a different number of fields than the first row.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
        /// Fields expected.
        expected: usize,
    },
    /// Unterminated quoted field at end of input.
    UnterminatedQuote {
        /// 1-based line number where the field started.
        line: usize,
    },
    /// The input contained no data rows.
    Empty,
    /// Underlying I/O failure.
    Io(String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::RaggedRow { line, found, expected } => {
                write!(f, "line {line}: {found} fields, expected {expected}")
            }
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            CsvError::Empty => write!(f, "no data rows"),
            CsvError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Read a table from CSV text.
///
/// ```
/// use uae_data::{table_from_csv, CsvOptions, Value};
///
/// let csv = "city,pop\nOslo,700\nBergen,280\n";
/// let t = table_from_csv("no", std::io::Cursor::new(csv), &CsvOptions::default()).unwrap();
/// assert_eq!(t.num_rows(), 2);
/// assert_eq!(t.column(1).value(0), &Value::Int(700));
/// ```
pub fn table_from_csv(
    name: &str,
    input: impl BufRead,
    opts: &CsvOptions,
) -> Result<Table, CsvError> {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut header: Option<Vec<String>> = None;
    for (lineno, line) in input.lines().enumerate() {
        let line = line.map_err(|e| CsvError::Io(e.to_string()))?;
        if line.is_empty() {
            continue;
        }
        let fields = split_csv_line(&line, opts.delimiter)
            .ok_or(CsvError::UnterminatedQuote { line: lineno + 1 })?;
        if opts.has_header && header.is_none() {
            header = Some(fields);
            continue;
        }
        if let Some(first) = rows.first() {
            if fields.len() != first.len() {
                return Err(CsvError::RaggedRow {
                    line: lineno + 1,
                    found: fields.len(),
                    expected: first.len(),
                });
            }
        } else if let Some(h) = &header {
            if fields.len() != h.len() {
                return Err(CsvError::RaggedRow {
                    line: lineno + 1,
                    found: fields.len(),
                    expected: h.len(),
                });
            }
        }
        rows.push(fields);
        if rows.len() >= opts.max_rows {
            break;
        }
    }
    if rows.is_empty() {
        return Err(CsvError::Empty);
    }
    let ncols = rows[0].len();
    let names: Vec<String> = match header {
        Some(h) => h,
        None => (0..ncols).map(|c| format!("col{c}")).collect(),
    };

    // Type inference and conversion in one pass: parse optimistically as
    // integers, and fall back to strings on the first cell that refuses —
    // no second parse that could disagree with the first.
    let columns = (0..ncols)
        .map(|c| {
            let mut ints: Option<Vec<i64>> = Some(Vec::with_capacity(rows.len()));
            for r in &rows {
                let Some(parsed) = ints.as_mut() else { break };
                if r[c].is_empty() {
                    parsed.push(i64::MIN);
                } else if let Ok(v) = r[c].trim().parse::<i64>() {
                    parsed.push(v);
                } else {
                    ints = None;
                }
            }
            let values: Vec<Value> = match ints {
                Some(parsed) => parsed.into_iter().map(Value::Int).collect(),
                None => rows.iter().map(|r| Value::Str(r[c].trim().to_owned())).collect(),
            };
            (names[c].clone(), values)
        })
        .collect();
    Ok(Table::from_columns(name, columns))
}

/// Split one CSV record; `None` on an unterminated quote.
fn split_csv_line(line: &str, delim: char) -> Option<Vec<String>> {
    let mut out = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else if c == '"' && field.is_empty() {
            in_quotes = true;
        } else if c == delim {
            out.push(std::mem::take(&mut field));
        } else {
            field.push(c);
        }
    }
    if in_quotes {
        return None;
    }
    out.push(field);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn typed_columns_and_header() {
        let csv = "age,name,score\n34,Alice,10\n28,Bob,20\n34,\"Chen, Wei\",15\n";
        let t = table_from_csv("people", Cursor::new(csv), &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_cols(), 3);
        assert_eq!(t.column(0).name(), "age");
        assert_eq!(t.column(0).value(0), &Value::Int(34));
        assert_eq!(t.column(1).value(2), &Value::from("Chen, Wei"));
        assert_eq!(t.column(0).domain_size(), 2); // 34 appears twice
    }

    #[test]
    fn no_header_and_custom_delimiter() {
        let csv = "1|x\n2|y\n";
        let opts = CsvOptions { has_header: false, delimiter: '|', ..CsvOptions::default() };
        let t = table_from_csv("t", Cursor::new(csv), &opts).unwrap();
        assert_eq!(t.column(0).name(), "col0");
        assert_eq!(t.column(1).value(1), &Value::from("y"));
    }

    #[test]
    fn quoted_quotes_round_trip() {
        let csv = "s\n\"he said \"\"hi\"\"\"\n";
        let t = table_from_csv("t", Cursor::new(csv), &CsvOptions::default()).unwrap();
        assert_eq!(t.column(0).value(0), &Value::from("he said \"hi\""));
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let csv = "a,b\n1,2\n3\n";
        let err = table_from_csv("t", Cursor::new(csv), &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, CsvError::RaggedRow { line: 3, found: 1, expected: 2 }));
    }

    #[test]
    fn unterminated_quote_is_rejected() {
        let csv = "a\n\"oops\n";
        let err = table_from_csv("t", Cursor::new(csv), &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, CsvError::UnterminatedQuote { .. }));
    }

    #[test]
    fn mixed_column_falls_back_to_string() {
        let csv = "v\n1\ntwo\n3\n";
        let t = table_from_csv("t", Cursor::new(csv), &CsvOptions::default()).unwrap();
        assert_eq!(t.column(0).value(0), &Value::from("1"));
        assert_eq!(t.column(0).domain_size(), 3);
    }

    #[test]
    fn empty_input_is_an_error() {
        let err = table_from_csv("t", Cursor::new("a,b\n"), &CsvOptions::default()).unwrap_err();
        assert_eq!(err, CsvError::Empty);
    }

    #[test]
    fn max_rows_truncates() {
        let csv = "v\n1\n2\n3\n4\n";
        let opts = CsvOptions { max_rows: 2, ..CsvOptions::default() };
        let t = table_from_csv("t", Cursor::new(csv), &opts).unwrap();
        assert_eq!(t.num_rows(), 2);
    }
}
