//! # uae-data — column store, synthetic datasets and dataset statistics
//!
//! The storage substrate of the UAE reproduction:
//!
//! * [`Value`] / [`Column`] / [`Table`] — dictionary-encoded column store
//!   where code order equals value order (so range predicates become code
//!   ranges);
//! * [`synth`] — seeded generators standing in for the paper's DMV, Census
//!   and Kddcup98 datasets (see `DESIGN.md` §1 for the substitution
//!   rationale);
//! * [`stats`] — the skewness and NCIE correlation measures the paper uses
//!   to characterize datasets (§5.1.1);
//! * [`par`] — scoped-thread helpers for parallel scans.

pub mod io;
pub mod par;
pub mod stats;
pub mod synth;
pub mod table;
pub mod value;

pub use io::{table_from_csv, CsvOptions};
pub use synth::{census_like, dataset_by_name, dmv_large_like, dmv_like, kddcup_like};
pub use table::{Column, Table};
pub use value::Value;
