//! Data-parallel scan helpers backed by the persistent worker pool.
//!
//! Ground-truth query execution and dataset statistics are embarrassingly
//! parallel over rows or queries; these helpers split index ranges into
//! contiguous chunks and run them on `uae_tensor::pool` — the same
//! process-wide pool the matmul kernels use — instead of spawning fresh
//! scoped threads per call.

use std::ops::Range;

/// Number of worker threads to use by default: available parallelism capped
/// at 8 (the workloads here are memory-bound beyond that).
pub fn default_threads() -> usize {
    uae_tensor::pool::pool_threads()
}

/// Split `0..n` into at most `threads` contiguous chunks.
pub fn chunk_ranges(n: usize, threads: usize) -> Vec<Range<usize>> {
    let threads = threads.max(1).min(n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for i in 0..threads {
        let len = base + usize::from(i < extra);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Apply `f` to each chunk of `0..n` in parallel and collect the results in
/// chunk order.
pub fn par_map_ranges<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(n, threads);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(&f).collect();
    }
    uae_tensor::pool::parallel_map(ranges.len(), |i| f(ranges[i].clone()))
}

/// Parallel map over a slice, preserving order.
pub fn par_map_slice<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let per_chunk =
        par_map_ranges(items.len(), threads, |r| items[r].iter().map(&f).collect::<Vec<_>>());
    per_chunk.into_iter().flatten().collect()
}

/// Parallel sum of a per-range counting function.
pub fn par_count(n: usize, threads: usize, f: impl Fn(Range<usize>) -> u64 + Sync) -> u64 {
    par_map_ranges(n, threads, f).into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_once() {
        for n in [0usize, 1, 7, 100, 101] {
            for t in [1usize, 3, 8, 200] {
                let ranges = chunk_ranges(n, t);
                let mut covered = vec![false; n];
                for r in &ranges {
                    for i in r.clone() {
                        assert!(!covered[i], "index {i} covered twice");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} t={t} left gaps");
            }
        }
    }

    #[test]
    fn par_count_matches_serial() {
        let n = 10_000;
        let serial: u64 = (0..n as u64).filter(|x| x % 7 == 0).count() as u64;
        let parallel = par_count(n, 4, |r| r.filter(|x| x % 7 == 0).count() as u64);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_slice_preserves_order() {
        let xs: Vec<i32> = (0..1000).collect();
        let ys = par_map_slice(&xs, 5, |x| x * 2);
        assert!(ys.iter().enumerate().all(|(i, &y)| y == i as i32 * 2));
    }
}
