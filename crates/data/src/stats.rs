//! Dataset statistics used by the paper's §5.1.1 to characterize datasets:
//! Fisher–Pearson standardized moment coefficient for *skewness* and the
//! Nonlinear Correlation Information Entropy (NCIE, Wang et al. 2005) for
//! *correlation*. Smaller values mean weaker skew / correlation.

use crate::table::{Column, Table};
use crate::value::Value;

/// Fisher–Pearson standardized moment coefficient `g1 = m3 / m2^{3/2}` of a
/// column, computed over the numeric interpretation of its values
/// (integer payloads for [`Value::Int`], dictionary codes otherwise).
pub fn column_skewness(col: &Column) -> f64 {
    let xs: Vec<f64> = (0..col.codes().len())
        .map(|r| match col.value(r) {
            Value::Int(v) => *v as f64,
            Value::Str(_) => col.code(r) as f64,
        })
        .collect();
    skewness(&xs)
}

/// Fisher–Pearson skewness of a sample; 0.0 for degenerate samples.
pub fn skewness(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let m2 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    let m3 = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n as f64;
    if m2 <= 1e-12 {
        0.0
    } else {
        m3 / m2.powf(1.5)
    }
}

/// Dataset skewness: mean of the absolute per-column skewness coefficients
/// (the paper reports a single number per dataset).
pub fn dataset_skewness(table: &Table) -> f64 {
    if table.num_cols() == 0 {
        return 0.0;
    }
    let total: f64 = table.columns().iter().map(|c| column_skewness(c).abs()).sum();
    total / table.num_cols() as f64
}

/// Nonlinear correlation coefficient between two columns: mutual
/// information of the `b x b` rank-grid histogram, normalized by the
/// smaller of the two binned marginal entropies (so heavily skewed columns,
/// whose rank bins collapse, are not misread as independent). `ncc ∈ [0, 1]`
/// with 0 = independent and 1 = deterministic.
pub fn ncc(a: &Column, b_col: &Column, b: usize) -> f64 {
    let n = a.codes().len();
    assert_eq!(n, b_col.codes().len());
    if n == 0 || b < 2 {
        return 0.0;
    }
    let ra = rank_bins(a, b);
    let rb = rank_bins(b_col, b);
    let mut joint = vec![0u64; b * b];
    for i in 0..n {
        joint[ra[i] * b + rb[i]] += 1;
    }
    let mut pa = vec![0f64; b];
    let mut pb = vec![0f64; b];
    for i in 0..b {
        for j in 0..b {
            let p = joint[i * b + j] as f64 / n as f64;
            pa[i] += p;
            pb[j] += p;
        }
    }
    let mut mi = 0.0f64;
    for i in 0..b {
        for j in 0..b {
            let p = joint[i * b + j] as f64 / n as f64;
            if p > 0.0 && pa[i] > 0.0 && pb[j] > 0.0 {
                mi += p * (p / (pa[i] * pb[j])).ln();
            }
        }
    }
    let entropy =
        |ps: &[f64]| -> f64 { ps.iter().filter(|&&p| p > 0.0).map(|&p| -p * p.ln()).sum() };
    let h = entropy(&pa).min(entropy(&pb));
    if h < 1e-9 {
        return 0.0;
    }
    (mi / h).clamp(0.0, 1.0)
}

/// Rank-grid bin of every row of a column: rows are ranked by code (which is
/// value order) and split into `b` equal-frequency bins.
fn rank_bins(col: &Column, b: usize) -> Vec<usize> {
    let n = col.codes().len();
    let hist = col.histogram();
    // cumulative rank of each code's first occurrence
    let mut cum = vec![0u64; hist.len() + 1];
    for (i, &h) in hist.iter().enumerate() {
        cum[i + 1] = cum[i] + h;
    }
    col.codes()
        .iter()
        .map(|&c| {
            // mid-rank of this code's value block
            let mid = cum[c as usize] + hist[c as usize] / 2;
            ((mid as usize * b) / n).min(b - 1)
        })
        .collect()
}

/// NCIE of a table (Wang et al. 2005): build the nonlinear correlation
/// matrix `R` (`R[i][j] = ncc(i, j)`, diagonal 1) and compute
/// `NCIE = 1 + Σ_i (λ_i / n) · log_n(λ_i / n)` over its eigenvalues.
/// 0 = fully uncorrelated attributes, 1 = perfectly correlated.
pub fn ncie(table: &Table, bins: usize) -> f64 {
    let n = table.num_cols();
    if n < 2 {
        return 0.0;
    }
    let mut r = vec![0.0f64; n * n];
    for i in 0..n {
        r[i * n + i] = 1.0;
        for j in i + 1..n {
            let c = ncc(table.column(i), table.column(j), bins);
            r[i * n + j] = c;
            r[j * n + i] = c;
        }
    }
    let eigs = symmetric_eigenvalues(&mut r, n);
    let nf = n as f64;
    let mut h = 0.0f64;
    for &l in &eigs {
        let p = (l / nf).max(0.0);
        if p > 1e-12 {
            h += p * p.ln() / nf.ln();
        }
    }
    (1.0 + h).clamp(0.0, 1.0)
}

/// Eigenvalues of a symmetric matrix via the cyclic Jacobi rotation method.
/// `a` is row-major `n x n` and is destroyed.
pub fn symmetric_eigenvalues(a: &mut [f64], n: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n);
    for _sweep in 0..64 {
        let mut off = 0.0f64;
        for i in 0..n {
            for j in i + 1..n {
                off += a[i * n + j] * a[i * n + j];
            }
        }
        if off < 1e-18 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = a[p * n + q];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
            }
        }
    }
    (0..n).map(|i| a[i * n + i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn int_col(name: &str, xs: &[i64]) -> Column {
        let vals: Vec<Value> = xs.iter().map(|&v| v.into()).collect();
        Column::from_values(name, &vals)
    }

    #[test]
    fn skewness_of_symmetric_sample_is_zero() {
        let xs: Vec<f64> = vec![-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&xs).abs() < 1e-9);
    }

    #[test]
    fn skewness_sign_follows_tail() {
        // Long right tail → positive skew.
        let right: Vec<f64> = vec![0.0, 0.0, 0.0, 0.0, 10.0];
        assert!(skewness(&right) > 1.0);
        let left: Vec<f64> = vec![0.0, 0.0, 0.0, 0.0, -10.0];
        assert!(skewness(&left) < -1.0);
    }

    #[test]
    fn ncc_detects_dependence() {
        // y = x (deterministic) vs a genuinely random column.
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let xs: Vec<i64> = (0..2000).map(|i| i % 50).collect();
        let ys_dep: Vec<i64> = xs.clone();
        let ys_ind: Vec<i64> = (0..2000).map(|_| rng.random_range(0..50)).collect();
        let cx = int_col("x", &xs);
        let dep = ncc(&cx, &int_col("y", &ys_dep), 10);
        let ind = ncc(&cx, &int_col("y", &ys_ind), 10);
        assert!(dep > 0.8, "dependent ncc = {dep}");
        assert!(ind < 0.25, "independent ncc = {ind}");
    }

    #[test]
    fn ncc_degenerate_columns_read_as_independent() {
        // Constant columns carry zero entropy: correlation against them
        // is undefined, and the router must not read them as a
        // correlated subspace. Same for the empty and single-row cases.
        let c_const = int_col("k", &[7; 500]);
        let c_vary = int_col("x", &(0..500).collect::<Vec<i64>>());
        assert_eq!(ncc(&c_const, &c_vary, 10), 0.0, "constant vs varying");
        assert_eq!(ncc(&c_vary, &c_const, 10), 0.0, "varying vs constant");
        assert_eq!(ncc(&c_const, &c_const, 10), 0.0, "constant vs itself");

        let empty = int_col("e", &[]);
        assert_eq!(ncc(&empty, &int_col("e2", &[]), 10), 0.0, "empty columns");

        let one_a = int_col("a", &[3]);
        let one_b = int_col("b", &[9]);
        assert_eq!(ncc(&one_a, &one_b, 10), 0.0, "single-row columns");

        // Fewer than two bins cannot hold a joint distribution.
        assert_eq!(ncc(&c_vary, &c_vary, 1), 0.0, "degenerate bin count");
        assert_eq!(ncc(&c_vary, &c_vary, 0), 0.0, "zero bins");
    }

    #[test]
    fn ncc_near_constant_column_stays_finite_and_bounded() {
        // One stray value in an otherwise-constant column: the marginal
        // entropy is tiny but nonzero — the normalization must not blow
        // past the [0, 1] contract or go non-finite.
        let mut xs = vec![5i64; 1000];
        xs[500] = 6;
        let near_const = int_col("nc", &xs);
        let vary = int_col("x", &(0..1000).map(|i| i % 40).collect::<Vec<i64>>());
        let v = ncc(&near_const, &vary, 10);
        assert!(v.is_finite(), "near-constant ncc must be finite, got {v}");
        assert!((0.0..=1.0).contains(&v), "ncc out of [0,1]: {v}");
        // A near-constant column says almost nothing about an
        // independent counter — correlation should stay low.
        assert!(v < 0.5, "near-constant vs independent ncc = {v}");
    }

    #[test]
    fn skewness_of_constant_and_tiny_samples_is_zero() {
        assert_eq!(skewness(&[4.0; 100]), 0.0, "zero variance");
        assert_eq!(skewness(&[]), 0.0, "empty");
        assert_eq!(skewness(&[1.0]), 0.0, "single observation");
        assert_eq!(skewness(&[1.0, 2.0]), 0.0, "two observations");
        assert_eq!(column_skewness(&int_col("k", &[7; 50])), 0.0, "constant column");
    }

    #[test]
    fn ncie_orders_correlated_above_independent() {
        let n = 3000usize;
        let base: Vec<i64> = (0..n as i64).map(|i| (i * i + 17) % 40).collect();
        let correlated = Table::new(
            "corr",
            vec![
                int_col("a", &base),
                int_col("b", &base.iter().map(|v| v / 2).collect::<Vec<_>>()),
                int_col("c", &base.iter().map(|v| 40 - v).collect::<Vec<_>>()),
            ],
        );
        let indep = Table::new(
            "ind",
            vec![
                int_col("a", &base),
                int_col("b", &(0..n as i64).map(|i| (i * 13 + 5) % 37).collect::<Vec<_>>()),
                int_col("c", &(0..n as i64).map(|i| (i * 29 + 1) % 23).collect::<Vec<_>>()),
            ],
        );
        let hi = ncie(&correlated, 8);
        let lo = ncie(&indep, 8);
        assert!(hi > lo + 0.1, "ncie correlated {hi} vs independent {lo}");
    }

    #[test]
    fn jacobi_eigenvalues_of_diagonal() {
        let mut a = vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, -2.0];
        let mut e = symmetric_eigenvalues(&mut a, 3);
        e.sort_by(f64::total_cmp);
        assert!((e[0] + 2.0).abs() < 1e-9);
        assert!((e[1] - 1.0).abs() < 1e-9);
        assert!((e[2] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn jacobi_eigenvalues_known_matrix() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let mut a = vec![2.0, 1.0, 1.0, 2.0];
        let mut e = symmetric_eigenvalues(&mut a, 2);
        e.sort_by(f64::total_cmp);
        assert!((e[0] - 1.0).abs() < 1e-9 && (e[1] - 3.0).abs() < 1e-9);
    }
}
