//! Synthetic dataset generators standing in for the paper's real datasets.
//!
//! The paper evaluates on DMV (strong skew & correlation, domains 2–2101),
//! Census (weak skew & correlation, domains 2–123) and Kddcup98 (100
//! columns, domains 2–43, many independent attribute groups). None of those
//! files ship with this repository, so each generator reproduces the
//! *structural properties the paper's findings hinge on* — domain-size
//! spectrum, marginal skew, and inter-attribute correlation topology — with
//! a deterministic seeded construction. `DESIGN.md` §1 documents the
//! substitution argument; [`crate::stats`] provides the same skewness / NCIE
//! measurements the paper uses so the properties can be verified.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::table::{Column, Table};
use crate::value::Value;

/// Zipf-distributed sampler over `0..n` with exponent `s`
/// (`P(k) ∝ 1 / (k+1)^s`).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precompute the CDF for `n` items with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// SplitMix64 — deterministic hash used for the latent-cluster → value maps.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Deterministic per-(cluster, column) value.
///
/// Uses a power-law map `v = ⌊domain · u^3.5⌋` of a per-(cluster, column)
/// uniform hash `u`, which (a) concentrates cluster values near the low end
/// of the domain so the *numeric* marginal is right-skewed, and (b) stays
/// injective-ish for wide domains so the latent cluster remains recoverable
/// from the value — preserving strong inter-column correlation.
fn cluster_value(seed: u64, c: u64, col: u64, domain: usize) -> i64 {
    let h = splitmix64(seed ^ c.wrapping_mul(0x9e37_79b9) ^ (col.wrapping_mul(0x85eb_ca6b) << 17));
    let u = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform in [0, 1)
    let v = (domain as f64 * u.powf(3.5)) as i64;
    v.min(domain as i64 - 1)
}

/// DMV-like dataset: 11 columns, domain sizes spanning 2–2101, strong skew
/// and strong attribute correlation (paper: skewness 4.9, NCIE 0.23).
///
/// Unlike the grouped Kddcup generator, the correlations here form a
/// **high-cardinality functional-dependency chain**
/// (`state → county`, `reg_class → body_type → use_type`,
/// `(state, reg_class) → date`, `county → scofflaw/suspension/revocation`)
/// with thousands of distinct dependency patterns. Bounded-size
/// row-clustering models (SPNs) cannot enumerate them — reproducing the
/// paper's finding (5) that DeepDB degrades at the tail on DMV — while
/// autoregressive conditionals capture them naturally.
pub fn dmv_like(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let state_z = Zipf::new(89, 1.3);
    let class_z = Zipf::new(75, 1.2);
    let color_z = Zipf::new(68, 1.1);
    let county_noise = Zipf::new(63, 1.2);
    let body_noise = Zipf::new(36, 1.3);
    let fuel_noise = Zipf::new(9, 1.6);
    let use_noise = Zipf::new(5, 1.5);

    // Deterministic dependency maps (value-level, not cluster-level).
    let dep = |a: i64, tag: u64, domain: usize| -> i64 {
        (splitmix64(seed ^ (a as u64).wrapping_mul(0x9e37_79b9) ^ (tag << 23)) % domain as u64)
            as i64
    };

    let names = [
        "reg_valid_date",
        "state",
        "reg_class",
        "color",
        "county",
        "body_type",
        "fuel_type",
        "use_type",
        "scofflaw",
        "suspension",
        "revocation",
    ];
    let mut cols: Vec<Vec<Value>> = names.iter().map(|_| Vec::with_capacity(rows)).collect();
    for _ in 0..rows {
        let state = state_z.sample(&mut rng) as i64;
        let reg_class = class_z.sample(&mut rng) as i64;
        // county is (almost) a function of state: 89 distinct patterns.
        let county = if rng.random::<f64>() < 0.92 {
            dep(state, 1, 63)
        } else {
            county_noise.sample(&mut rng) as i64
        };
        let body_type = if rng.random::<f64>() < 0.90 {
            dep(reg_class, 2, 36)
        } else {
            body_noise.sample(&mut rng) as i64
        };
        let fuel_type = if rng.random::<f64>() < 0.88 {
            dep(reg_class, 3, 9)
        } else {
            fuel_noise.sample(&mut rng) as i64
        };
        let use_type = if rng.random::<f64>() < 0.88 {
            dep(body_type, 4, 5)
        } else {
            use_noise.sample(&mut rng) as i64
        };
        // date depends on (state, reg_class): thousands of patterns, with
        // local jitter so ranges behave smoothly.
        let date = if rng.random::<f64>() < 0.85 {
            let base = dep(state * 128 + reg_class, 5, 2101);
            (base + rng.random_range(-25..=25i64)).clamp(0, 2100)
        } else {
            // Skewed independent fallback toward recent dates.
            let u: f64 = rng.random();
            (2100.0 * (1.0 - u * u)) as i64
        };
        let color = color_z.sample(&mut rng) as i64;
        // Binary flags keyed off county with heavy skew.
        let mut flag = |tag: u64, p_base: f64| -> i64 {
            let biased = dep(county, tag, 100) < 12; // ~12% of counties
            let p = if biased { 0.55 } else { p_base };
            i64::from(rng.random::<f64>() < p)
        };
        let scofflaw = flag(6, 0.03);
        let suspension = flag(7, 0.05);
        let revocation = flag(8, 0.02);
        for (col, v) in cols.iter_mut().zip([
            date, state, reg_class, color, county, body_type, fuel_type, use_type, scofflaw,
            suspension, revocation,
        ]) {
            col.push(Value::Int(v));
        }
    }
    let columns = names.iter().zip(cols).map(|(n, vs)| Column::from_values(*n, &vs)).collect();
    Table::new("dmv_like", columns)
}

/// DMV-large-like dataset (paper §5.1.1): the DMV columns plus columns
/// with very large NDVs — a 100%-unique `vin` and a high-cardinality
/// `city` — used to stress-test sensitivity to very large domains
/// (column factorization / embedding encodings, §4.6).
pub fn dmv_large_like(rows: usize, seed: u64) -> Table {
    let base = dmv_like(rows, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb16);
    let city_domain = (rows / 4).clamp(64, 31_000);
    let city_z = Zipf::new(city_domain, 1.05);
    // vin: unique per row (shuffled so code order is uninformative).
    let mut vins: Vec<i64> = (0..rows as i64).collect();
    for i in (1..vins.len()).rev() {
        let j = rng.random_range(0..=i);
        vins.swap(i, j);
    }
    let vin_col = Column::from_values("vin", &vins.into_iter().map(Value::Int).collect::<Vec<_>>());
    let city_col = Column::from_values(
        "city",
        &(0..rows).map(|_| Value::Int(city_z.sample(&mut rng) as i64)).collect::<Vec<_>>(),
    );
    let mut columns: Vec<Column> = base.columns().to_vec();
    columns.push(vin_col);
    columns.push(city_col);
    // A few more mid-size columns to reach the paper's 16.
    for (name, domain, s) in
        [("plate_class", 120usize, 1.0f64), ("owner_type", 4, 1.2), ("zip_bucket", 800, 0.8)]
    {
        let z = Zipf::new(domain, s);
        columns.push(Column::from_values(
            name,
            &(0..rows).map(|_| Value::Int(z.sample(&mut rng) as i64)).collect::<Vec<_>>(),
        ));
    }
    Table::new("dmv_large_like", columns)
}

/// Census-like dataset: 14 mixed columns, domains 2–123, weak skew and weak
/// correlation (paper: skewness 2.1, NCIE 0.15).
pub fn census_like(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let workclass_z = Zipf::new(9, 0.9);
    let education_z = Zipf::new(16, 0.6);
    let marital_z = Zipf::new(7, 0.5);
    let occupation_z = Zipf::new(15, 0.4);
    let relationship_z = Zipf::new(6, 0.6);
    let race_z = Zipf::new(5, 1.0);
    let gain_z = Zipf::new(122, 0.4);
    let loss_z = Zipf::new(98, 0.3);
    let country_z = Zipf::new(42, 1.2);

    let names = [
        "age",
        "workclass",
        "education",
        "education_num",
        "marital_status",
        "occupation",
        "relationship",
        "race",
        "sex",
        "capital_gain",
        "capital_loss",
        "hours_per_week",
        "native_country",
        "income",
    ];
    let mut cols: Vec<Vec<Value>> = names.iter().map(|_| Vec::with_capacity(rows)).collect();
    for _ in 0..rows {
        // Bell-shaped age in 17..90 (sum of uniforms).
        let age = 17 + (0..4).map(|_| rng.random_range(0..19i64)).sum::<i64>();
        let workclass = workclass_z.sample(&mut rng) as i64;
        let education = education_z.sample(&mut rng) as i64;
        // education_num tracks education closely (the one strong pair).
        let education_num =
            if rng.random::<f64>() < 0.92 { education } else { rng.random_range(0..16i64) };
        let marital = marital_z.sample(&mut rng) as i64;
        // occupation mildly correlated with workclass.
        let occupation = if rng.random::<f64>() < 0.25 {
            (workclass * 2 + 1).min(14)
        } else {
            occupation_z.sample(&mut rng) as i64
        };
        let relationship = relationship_z.sample(&mut rng) as i64;
        let race = race_z.sample(&mut rng) as i64;
        let sex = i64::from(rng.random::<f64>() < 0.40);
        let gain = if rng.random::<f64>() < 0.62 { 0 } else { 1 + gain_z.sample(&mut rng) as i64 };
        let loss = if rng.random::<f64>() < 0.66 { 0 } else { 1 + loss_z.sample(&mut rng) as i64 };
        let hours = (1 + (0..3).map(|_| rng.random_range(0..33i64)).sum::<i64>() / 2).min(96);
        let country = country_z.sample(&mut rng) as i64;
        // income weakly driven by education and age.
        let p_high = 0.08 + 0.02 * education as f64 + if age > 35 { 0.10 } else { 0.0 };
        let income = i64::from(rng.random::<f64>() < p_high);
        for (col, v) in cols.iter_mut().zip([
            age,
            workclass,
            education,
            education_num,
            marital,
            occupation,
            relationship,
            race,
            sex,
            gain,
            loss,
            hours,
            country,
            income,
        ]) {
            col.push(Value::Int(v));
        }
    }
    let columns = names.iter().zip(cols).map(|(n, vs)| Column::from_values(*n, &vs)).collect();
    Table::new("census_like", columns)
}

/// Kddcup98-like dataset: `ncols` (default 100) columns with domains 2–43,
/// organized as small correlated groups that are mutually independent —
/// the structure behind the paper's finding (6) that SPNs shine and
/// autoregressive models degrade at the tail on this dataset.
pub fn kddcup_like(rows: usize, ncols: usize, seed: u64) -> Table {
    assert!(ncols >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    const GROUP: usize = 5;
    let ngroups = ncols.div_ceil(GROUP);
    // Per-column domain sizes in 2..=43, deterministic from the seed.
    let domains: Vec<usize> =
        (0..ncols).map(|j| 2 + (splitmix64(seed ^ (j as u64 * 77)) % 42) as usize).collect();
    let fallbacks: Vec<Zipf> = domains.iter().map(|&d| Zipf::new(d, 1.5)).collect();
    const LATENTS: usize = 24;
    let group_latent = Zipf::new(LATENTS, 1.3);
    // Per-(latent, column) shared values within each group.
    let cluster_vals: Vec<Vec<i64>> = (0..LATENTS)
        .map(|c| (0..ncols).map(|j| cluster_value(seed, c as u64, j as u64, domains[j])).collect())
        .collect();

    let mut cols: Vec<Vec<Value>> = (0..ncols).map(|_| Vec::with_capacity(rows)).collect();
    for _ in 0..rows {
        // One latent per group; groups are independent of each other.
        let latents: Vec<usize> = (0..ngroups).map(|_| group_latent.sample(&mut rng)).collect();
        for j in 0..ncols {
            let g = j / GROUP;
            let v = if rng.random::<f64>() < 0.60 {
                cluster_vals[latents[g]][j]
            } else {
                fallbacks[j].sample(&mut rng) as i64
            };
            cols[j].push(Value::Int(v));
        }
    }
    let columns = (0..ncols).map(|j| Column::from_values(format!("f{j:03}"), &cols[j])).collect();
    Table::new("kddcup_like", columns)
}

/// Look up a generator by dataset name (`"dmv"`, `"census"`, `"kddcup"`).
pub fn dataset_by_name(name: &str, rows: usize, seed: u64) -> Option<Table> {
    match name {
        "dmv" | "dmv_like" => Some(dmv_like(rows, seed)),
        "dmv-large" | "dmv_large" | "dmv_large_like" => Some(dmv_large_like(rows, seed)),
        "census" | "census_like" => Some(census_like(rows, seed)),
        "kddcup" | "kddcup_like" | "kddcup98" => Some(kddcup_like(rows, 100, seed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{dataset_skewness, ncie};

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(10, 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4] && counts[4] > counts[9]);
        assert!(counts[0] > 6000, "head mass {}", counts[0]);
    }

    #[test]
    fn dmv_like_shape() {
        let t = dmv_like(5000, 42);
        assert_eq!(t.num_cols(), 11);
        assert_eq!(t.num_rows(), 5000);
        let sizes = t.domain_sizes();
        assert!(sizes.iter().any(|&s| s > 500), "needs a wide column: {sizes:?}");
        assert!(sizes.contains(&2), "needs binary columns: {sizes:?}");
    }

    #[test]
    fn dmv_like_is_deterministic() {
        let a = dmv_like(500, 7);
        let b = dmv_like(500, 7);
        for c in 0..a.num_cols() {
            assert_eq!(a.column(c).codes(), b.column(c).codes());
        }
    }

    #[test]
    fn dmv_is_more_correlated_and_skewed_than_census() {
        let dmv = dmv_like(6000, 1);
        let census = census_like(6000, 1);
        let (dc, cc) = (ncie(&dmv, 8), ncie(&census, 8));
        assert!(dc > cc, "NCIE dmv {dc} should exceed census {cc}");
        let (ds, cs) = (dataset_skewness(&dmv), dataset_skewness(&census));
        assert!(ds > cs, "skewness dmv {ds} should exceed census {cs}");
    }

    #[test]
    fn census_like_shape() {
        let t = census_like(2000, 3);
        assert_eq!(t.num_cols(), 14);
        assert!(t.domain_sizes().iter().all(|&s| (2..=200).contains(&s)));
    }

    #[test]
    fn kddcup_like_shape_and_domains() {
        let t = kddcup_like(1500, 100, 5);
        assert_eq!(t.num_cols(), 100);
        assert!(
            t.domain_sizes().iter().all(|&s| (2..=43).contains(&s)),
            "domains must stay in 2..=43"
        );
    }

    #[test]
    fn dataset_lookup() {
        assert!(dataset_by_name("dmv", 100, 0).is_some());
        assert!(dataset_by_name("census", 100, 0).is_some());
        assert!(dataset_by_name("kddcup", 100, 0).is_some());
        assert!(dataset_by_name("nope", 100, 0).is_none());
    }
}
