//! Dictionary-encoded column store.
//!
//! A [`Table`] holds one [`Column`] per attribute. Each column keeps a
//! sorted dictionary of distinct [`Value`]s and a dense vector of `u32`
//! codes (one per row). Sorting the dictionary by natural value order makes
//! code order agree with value order, so range predicates translate into
//! code ranges — exactly the "bijection transformation without any
//! information loss" of the paper's §4.2.

use std::collections::HashMap;

use crate::value::Value;

/// One dictionary-encoded attribute.
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    /// Distinct values in ascending natural order; `dict[code]` is the value.
    dict: Vec<Value>,
    /// Per-row codes into `dict`.
    codes: Vec<u32>,
}

impl Column {
    /// Build a column from raw values, constructing the dictionary.
    pub fn from_values(name: impl Into<String>, values: &[Value]) -> Self {
        let mut dict: Vec<Value> = values.to_vec();
        dict.sort();
        dict.dedup();
        let index: HashMap<&Value, u32> =
            dict.iter().enumerate().map(|(i, v)| (v, i as u32)).collect();
        let codes = values.iter().map(|v| index[v]).collect();
        Column { name: name.into(), dict, codes }
    }

    /// Build a column directly from codes and an already-sorted dictionary.
    ///
    /// # Panics
    /// Panics if the dictionary is not strictly ascending or a code is out
    /// of range.
    pub fn from_codes(name: impl Into<String>, dict: Vec<Value>, codes: Vec<u32>) -> Self {
        assert!(dict.windows(2).all(|w| w[0] < w[1]), "dictionary must be strictly ascending");
        let n = dict.len() as u32;
        assert!(codes.iter().all(|&c| c < n), "code out of dictionary range");
        Column { name: name.into(), dict, codes }
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of distinct values (the paper's `|A_i|`).
    pub fn domain_size(&self) -> usize {
        self.dict.len()
    }

    /// The sorted dictionary.
    pub fn dict(&self) -> &[Value] {
        &self.dict
    }

    /// Per-row codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Code of row `r`.
    #[inline]
    pub fn code(&self, r: usize) -> u32 {
        self.codes[r]
    }

    /// Value of row `r`.
    pub fn value(&self, r: usize) -> &Value {
        &self.dict[self.codes[r] as usize]
    }

    /// Dictionary code of a value, if present.
    pub fn code_of(&self, v: &Value) -> Option<u32> {
        self.dict.binary_search(v).ok().map(|i| i as u32)
    }

    /// Smallest code whose value is `>= v` (i.e. the lower bound), or
    /// `domain_size()` if every value is smaller.
    pub fn lower_bound(&self, v: &Value) -> u32 {
        self.dict.partition_point(|d| d < v) as u32
    }

    /// Smallest code whose value is `> v`, or `domain_size()`.
    pub fn upper_bound(&self, v: &Value) -> u32 {
        self.dict.partition_point(|d| d <= v) as u32
    }

    /// Frequency of each code.
    pub fn histogram(&self) -> Vec<u64> {
        let mut h = vec![0u64; self.dict.len()];
        for &c in &self.codes {
            h[c as usize] += 1;
        }
        h
    }

    fn append_codes(&mut self, other: &Column) {
        assert_eq!(self.dict, other.dict, "appending rows requires identical dictionaries");
        self.codes.extend_from_slice(&other.codes);
    }
}

/// A relation: a set of equally long dictionary-encoded columns.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
    nrows: usize,
}

impl Table {
    /// Build a table from columns.
    ///
    /// # Panics
    /// Panics if columns have differing lengths.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        let nrows = columns.first().map_or(0, |c| c.codes().len());
        assert!(
            columns.iter().all(|c| c.codes().len() == nrows),
            "all columns must have the same number of rows"
        );
        Table { name: name.into(), columns, nrows }
    }

    /// Build a table from per-column raw values.
    pub fn from_columns(name: impl Into<String>, cols: Vec<(String, Vec<Value>)>) -> Self {
        let columns = cols.into_iter().map(|(n, vs)| Column::from_values(n, &vs)).collect();
        Table::new(name, columns)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows (`|T|`).
    pub fn num_rows(&self) -> usize {
        self.nrows
    }

    /// Number of attributes (`n`).
    pub fn num_cols(&self) -> usize {
        self.columns.len()
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by position.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Column position by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name() == name)
    }

    /// Domain sizes of all columns.
    pub fn domain_sizes(&self) -> Vec<usize> {
        self.columns.iter().map(Column::domain_size).collect()
    }

    /// The codes of one row.
    pub fn row_codes(&self, r: usize) -> Vec<u32> {
        self.columns.iter().map(|c| c.code(r)).collect()
    }

    /// A new table with the rows whose indices are given (used for sampling
    /// and for splitting incremental-data partitions).
    pub fn take_rows(&self, rows: &[usize]) -> Table {
        let columns = self
            .columns
            .iter()
            .map(|c| {
                let codes = rows.iter().map(|&r| c.code(r)).collect();
                Column::from_codes(c.name().to_owned(), c.dict().to_vec(), codes)
            })
            .collect();
        Table::new(self.name.clone(), columns)
    }

    /// A new table with columns re-ordered by `perm` (`perm[i]` = original
    /// index of the new `i`-th column). Used by autoregressive-ordering
    /// strategies.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..num_cols()`.
    pub fn select_columns(&self, perm: &[usize]) -> Table {
        assert_eq!(perm.len(), self.num_cols(), "permutation length mismatch");
        let mut seen = vec![false; self.num_cols()];
        for &p in perm {
            assert!(!std::mem::replace(&mut seen[p], true), "duplicate column {p} in permutation");
        }
        let columns = perm.iter().map(|&p| self.columns[p].clone()).collect();
        Table::new(self.name.clone(), columns)
    }

    /// Append the rows of `other`; dictionaries must match exactly
    /// (incremental data in the paper's §4.5 arrives in the same domain).
    pub fn append(&mut self, other: &Table) {
        assert_eq!(self.num_cols(), other.num_cols(), "column count mismatch");
        for (c, oc) in self.columns.iter_mut().zip(other.columns()) {
            c.append_codes(oc);
        }
        self.nrows += other.nrows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names_column() -> Column {
        let vals: Vec<Value> =
            ["James", "Tim", "Paul", "Tim", "James"].iter().map(|&s| s.into()).collect();
        Column::from_values("name", &vals)
    }

    #[test]
    fn dictionary_is_sorted_and_bijective() {
        // The paper's example: {James, Tim, Paul} → James:0, Paul:1, Tim:2.
        let col = names_column();
        assert_eq!(col.domain_size(), 3);
        assert_eq!(col.code_of(&"James".into()), Some(0));
        assert_eq!(col.code_of(&"Paul".into()), Some(1));
        assert_eq!(col.code_of(&"Tim".into()), Some(2));
        assert_eq!(col.codes(), &[0, 2, 1, 2, 0]);
        // Round trip: decode every row back to its original value.
        assert_eq!(col.value(1), &Value::from("Tim"));
    }

    #[test]
    fn bounds() {
        let vals: Vec<Value> = [10i64, 20, 30].iter().map(|&v| v.into()).collect();
        let col = Column::from_values("x", &vals);
        assert_eq!(col.lower_bound(&Value::Int(15)), 1);
        assert_eq!(col.lower_bound(&Value::Int(20)), 1);
        assert_eq!(col.upper_bound(&Value::Int(20)), 2);
        assert_eq!(col.lower_bound(&Value::Int(99)), 3);
        assert_eq!(col.upper_bound(&Value::Int(-5)), 0);
    }

    #[test]
    fn histogram_counts() {
        let col = names_column();
        assert_eq!(col.histogram(), vec![2, 1, 2]);
    }

    #[test]
    fn table_roundtrip_and_take_rows() {
        let t = Table::from_columns(
            "t",
            vec![
                ("a".into(), vec![1i64.into(), 2i64.into(), 3i64.into()]),
                ("b".into(), vec!["x".into(), "y".into(), "x".into()]),
            ],
        );
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_cols(), 2);
        assert_eq!(t.column_index("b"), Some(1));
        let sub = t.take_rows(&[2, 0]);
        assert_eq!(sub.num_rows(), 2);
        assert_eq!(sub.column(0).value(0), &Value::Int(3));
        assert_eq!(sub.column(1).value(1), &Value::from("x"));
    }

    #[test]
    fn append_rows() {
        let mut t = Table::from_columns(
            "t",
            vec![("a".into(), vec![1i64.into(), 2i64.into(), 3i64.into()])],
        );
        let extra = t.take_rows(&[0, 1]);
        t.append(&extra);
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.column(0).code(3), 0);
    }

    #[test]
    #[should_panic(expected = "same number of rows")]
    fn ragged_table_panics() {
        let a = Column::from_values("a", &[Value::Int(1)]);
        let b = Column::from_values("b", &[Value::Int(1), Value::Int(2)]);
        let _ = Table::new("bad", vec![a, b]);
    }
}
