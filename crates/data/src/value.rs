//! Cell values and their natural ordering.
//!
//! The paper encodes each attribute's values "into integers in a natural order"
//! (§4.2). We support integer and string attributes; dictionary encoding in
//! [`crate::table`] sorts values by this order so that *code order equals
//! value order*, which is what makes range predicates meaningful on codes.

use std::cmp::Ordering;
use std::fmt;

/// A single cell value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// 64-bit integer (also used for dictionary-encoded floats and dates).
    Int(i64),
    /// UTF-8 string (categorical attributes).
    Str(String),
}

impl Value {
    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Natural order: integers by value, strings lexicographically;
    /// integers sort before strings in (pathological) mixed columns.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Int(_), Value::Str(_)) => Ordering::Less,
            (Value::Str(_), Value::Int(_)) => Ordering::Greater,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_order() {
        assert!(Value::Int(-3) < Value::Int(7));
        assert!(Value::Str("James".into()) < Value::Str("Paul".into()));
        assert!(Value::Str("Paul".into()) < Value::Str("Tim".into()));
        assert!(Value::Int(i64::MAX) < Value::Str("".into()));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_str(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from("x").to_string(), "x");
    }
}
