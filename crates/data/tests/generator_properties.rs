//! Property tests of the dataset generators and statistics: the
//! substitution argument of DESIGN.md §1 depends on these invariants
//! holding at every scale and seed.

use proptest::prelude::*;
use uae_data::stats::{dataset_skewness, ncie};
use uae_data::{census_like, dmv_large_like, dmv_like, kddcup_like, Table};

fn check_table_well_formed(t: &Table) {
    for c in t.columns() {
        assert_eq!(c.codes().len(), t.num_rows());
        // Dictionary strictly ascending, codes in range.
        assert!(c.dict().windows(2).all(|w| w[0] < w[1]));
        let d = c.domain_size() as u32;
        assert!(c.codes().iter().all(|&code| code < d));
        // Every dictionary entry is actually used (domains are the values
        // present, per the paper's §3 convention).
        let mut used = vec![false; c.domain_size()];
        for &code in c.codes() {
            used[code as usize] = true;
        }
        assert!(used.iter().all(|&u| u), "column {} has unused dictionary entries", c.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn generators_produce_well_formed_tables(rows in 200usize..1500, seed in 0u64..1000) {
        for t in [
            dmv_like(rows, seed),
            census_like(rows, seed),
            kddcup_like(rows, 30, seed),
        ] {
            prop_assert_eq!(t.num_rows(), rows);
            check_table_well_formed(&t);
        }
    }

    #[test]
    fn generators_are_deterministic(seed in 0u64..1000) {
        let a = dmv_like(400, seed);
        let b = dmv_like(400, seed);
        for c in 0..a.num_cols() {
            prop_assert_eq!(a.column(c).codes(), b.column(c).codes());
        }
    }

    #[test]
    fn different_seeds_differ(seed in 0u64..1000) {
        let a = census_like(500, seed);
        let b = census_like(500, seed ^ 0xdead_beef);
        let any_diff =
            (0..a.num_cols()).any(|c| a.column(c).codes() != b.column(c).codes());
        prop_assert!(any_diff);
    }
}

#[test]
fn characterization_statistics_order_datasets_like_the_paper() {
    // Paper §5.1.1: NCIE(dmv)=0.23 > NCIE(census)=0.15; kdd has the most
    // correlation per its groups (0.32) but here groups are sparser —
    // require only dmv > census, the ordering the findings depend on.
    let dmv = dmv_like(8_000, 3);
    let census = census_like(8_000, 3);
    assert!(ncie(&dmv, 8) > ncie(&census, 8));
    assert!(dataset_skewness(&dmv) > dataset_skewness(&census));
}

#[test]
fn dmv_large_extends_dmv() {
    let t = dmv_large_like(2_000, 9);
    check_table_well_formed(&t);
    assert_eq!(t.num_cols(), 16);
    // Paper: includes a 100%-unique column.
    assert!(t.domain_sizes().contains(&2_000));
}

#[test]
fn domain_spectrum_matches_paper() {
    // DMV: 2..2101 (here: up to 2101 dictionary capacity; at 20K rows the
    // date column fills most of it); Kddcup: 2..43.
    let dmv = dmv_like(20_000, 1);
    let sizes = dmv.domain_sizes();
    assert!(sizes.iter().any(|&s| s == 2));
    assert!(sizes.iter().any(|&s| s > 1_000));
    let kdd = kddcup_like(3_000, 100, 1);
    assert!(kdd.domain_sizes().iter().all(|&s| (2..=43).contains(&s)));
}
