//! Chow–Liu tree Bayesian network (paper §5.1.4 "BayesNet", after Chow &
//! Liu 1968): the maximum-mutual-information spanning tree over the
//! attributes, with conditional probability tables on the edges and exact
//! tree message passing for region queries.
//!
//! Wide columns are binned to at most `max_bins` equal-width code ranges to
//! bound CPT size; within-bin mass is spread uniformly over the bin's codes
//! when intersecting regions (the usual histogram assumption).

use uae_data::Table;
use uae_query::{CardEstimator, EstimatorFamily, Query, QueryCost, QueryRegion, Region};

/// Chow–Liu tree estimator.
#[derive(Debug)]
pub struct BayesNetEstimator {
    name: String,
    table: Table,
    total_rows: usize,
    bins: Vec<Binning>,
    /// Parent of each column in the tree (root: usize::MAX).
    parent: Vec<usize>,
    /// Children lists.
    children: Vec<Vec<usize>>,
    /// Root column.
    root: usize,
    /// `cpt[c][pb * nbins_c + cb] = P(col c in bin cb | parent in bin pb)`;
    /// the root stores its marginal with `pb = 0`.
    cpt: Vec<Vec<f64>>,
}

/// Equal-width binning of a column's code space.
#[derive(Debug, Clone)]
struct Binning {
    domain: u32,
    nbins: u32,
}

impl Binning {
    fn new(domain: u32, max_bins: u32) -> Self {
        Binning { domain, nbins: domain.min(max_bins).max(1) }
    }

    #[inline]
    fn bin_of(&self, code: u32) -> u32 {
        ((code as u64 * self.nbins as u64) / self.domain as u64) as u32
    }

    /// Code range `[lo, hi)` of a bin.
    fn bin_range(&self, b: u32) -> (u32, u32) {
        let lo = ((b as u64 * self.domain as u64).div_ceil(self.nbins as u64)) as u32;
        let hi = (((b + 1) as u64 * self.domain as u64).div_ceil(self.nbins as u64)) as u32;
        (lo, hi.min(self.domain))
    }

    /// Fraction of bin `b`'s codes inside `region` (uniform-within-bin).
    fn region_weight(&self, b: u32, region: &Region) -> f64 {
        let (lo, hi) = self.bin_range(b);
        if lo >= hi {
            return 0.0;
        }
        let overlap: u32 =
            region.ranges().iter().map(|&(rlo, rhi)| rhi.min(hi).saturating_sub(rlo.max(lo))).sum();
        overlap as f64 / (hi - lo) as f64
    }
}

impl BayesNetEstimator {
    /// Learn the Chow–Liu tree from `table`, binning columns to at most
    /// `max_bins` values.
    pub fn new(table: &Table, max_bins: u32) -> Self {
        let n = table.num_cols();
        assert!(n >= 1);
        let bins: Vec<Binning> = table
            .columns()
            .iter()
            .map(|c| Binning::new(c.domain_size() as u32, max_bins))
            .collect();
        let rows = table.num_rows();
        // Binned codes, column-major.
        let binned: Vec<Vec<u32>> = (0..n)
            .map(|c| table.column(c).codes().iter().map(|&v| bins[c].bin_of(v)).collect())
            .collect();

        // Pairwise mutual information.
        let mut mi = vec![0.0f64; n * n];
        for a in 0..n {
            for b in a + 1..n {
                let m = pairwise_mi(&binned[a], &binned[b], bins[a].nbins, bins[b].nbins, rows);
                mi[a * n + b] = m;
                mi[b * n + a] = m;
            }
        }

        // Prim's maximum spanning tree from column 0.
        let root = 0usize;
        let mut parent = vec![usize::MAX; n];
        let mut in_tree = vec![false; n];
        let mut best = vec![f64::NEG_INFINITY; n];
        let mut best_from = vec![usize::MAX; n];
        in_tree[root] = true;
        for c in 1..n {
            best[c] = mi[root * n + c];
            best_from[c] = root;
        }
        for _ in 1..n {
            let mut pick = usize::MAX;
            let mut pick_v = f64::NEG_INFINITY;
            for c in 0..n {
                if !in_tree[c] && best[c] > pick_v {
                    pick = c;
                    pick_v = best[c];
                }
            }
            in_tree[pick] = true;
            parent[pick] = best_from[pick];
            for c in 0..n {
                if !in_tree[c] && mi[pick * n + c] > best[c] {
                    best[c] = mi[pick * n + c];
                    best_from[c] = pick;
                }
            }
        }
        let mut children = vec![Vec::new(); n];
        for c in 0..n {
            if parent[c] != usize::MAX {
                children[parent[c]].push(c);
            }
        }

        // CPTs with Laplace smoothing.
        let mut cpt = vec![Vec::new(); n];
        for c in 0..n {
            let nb = bins[c].nbins as usize;
            if parent[c] == usize::MAX {
                let mut counts = vec![1.0f64; nb];
                for &b in &binned[c] {
                    counts[b as usize] += 1.0;
                }
                let total: f64 = counts.iter().sum();
                cpt[c] = counts.into_iter().map(|v| v / total).collect();
            } else {
                let p = parent[c];
                let np = bins[p].nbins as usize;
                let mut counts = vec![1.0f64; np * nb];
                for r in 0..rows {
                    counts[binned[p][r] as usize * nb + binned[c][r] as usize] += 1.0;
                }
                for pb in 0..np {
                    let row = &mut counts[pb * nb..(pb + 1) * nb];
                    let total: f64 = row.iter().sum();
                    for v in row {
                        *v /= total;
                    }
                }
                cpt[c] = counts;
            }
        }

        BayesNetEstimator {
            name: "BayesNet".to_owned(),
            table: table.clone(),
            total_rows: rows,
            bins,
            parent,
            children,
            root,
            cpt,
        }
    }

    /// Exact tree message passing over the query's per-column regions.
    fn message_passing_selectivity(&self, query: &Query) -> f64 {
        let qr = QueryRegion::build(&self.table, query);
        if qr.is_empty() {
            return 0.0;
        }
        // Bottom-up messages: msg_c(pb) = Σ_cb w_c(cb) P(cb | pb) Π msgs.
        let root_msg = self.message(self.root, &qr);
        let marginal = &self.cpt[self.root];
        let weights = self.node_weights(self.root, &qr);
        let mut p = 0.0f64;
        for b in 0..self.bins[self.root].nbins as usize {
            p += marginal[b] * weights[b] * root_msg[b];
        }
        p.clamp(0.0, 1.0)
    }

    /// Product of children messages at each bin of `node`.
    fn message(&self, node: usize, qr: &QueryRegion) -> Vec<f64> {
        let nb = self.bins[node].nbins as usize;
        let mut out = vec![1.0f64; nb];
        for &ch in &self.children[node] {
            let ch_msg = self.message(ch, qr);
            let ch_w = self.node_weights(ch, qr);
            let nc = self.bins[ch].nbins as usize;
            let table = &self.cpt[ch];
            for (pb, o) in out.iter_mut().enumerate() {
                let mut s = 0.0f64;
                let row = &table[pb * nc..(pb + 1) * nc];
                for cb in 0..nc {
                    s += row[cb] * ch_w[cb] * ch_msg[cb];
                }
                *o *= s;
            }
        }
        out
    }

    /// Per-bin region weights of a node (1.0 everywhere when unconstrained).
    fn node_weights(&self, node: usize, qr: &QueryRegion) -> Vec<f64> {
        let nb = self.bins[node].nbins as usize;
        match qr.column(node) {
            None => vec![1.0; nb],
            Some(region) => {
                (0..nb as u32).map(|b| self.bins[node].region_weight(b, region)).collect()
            }
        }
    }
}

fn pairwise_mi(xs: &[u32], ys: &[u32], nx: u32, ny: u32, rows: usize) -> f64 {
    let (nx, ny) = (nx as usize, ny as usize);
    let mut joint = vec![0u32; nx * ny];
    for r in 0..rows {
        joint[xs[r] as usize * ny + ys[r] as usize] += 1;
    }
    let mut px = vec![0.0f64; nx];
    let mut py = vec![0.0f64; ny];
    for x in 0..nx {
        for y in 0..ny {
            let p = joint[x * ny + y] as f64 / rows as f64;
            px[x] += p;
            py[y] += p;
        }
    }
    let mut mi = 0.0f64;
    for x in 0..nx {
        for y in 0..ny {
            let p = joint[x * ny + y] as f64 / rows as f64;
            if p > 0.0 {
                mi += p * (p / (px[x] * py[y])).ln();
            }
        }
    }
    mi
}

impl CardEstimator for BayesNetEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_rows(&self) -> f64 {
        self.total_rows as f64
    }

    fn estimate_selectivity(&self, query: &Query) -> f64 {
        self.message_passing_selectivity(query)
    }

    fn size_bytes(&self) -> usize {
        self.cpt.iter().map(|t| t.len() * 8).sum::<usize>() + self.parent.len() * 8
    }

    fn family(&self) -> EstimatorFamily {
        EstimatorFamily::BayesNet
    }

    fn cost_class(&self) -> QueryCost {
        QueryCost::Cheap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::Value;
    use uae_query::Predicate;

    /// b = a exactly; c independent of both.
    fn dependent_table() -> Table {
        let n = 4000i64;
        Table::from_columns(
            "t",
            vec![
                ("a".into(), (0..n).map(|v| Value::Int(v % 8)).collect()),
                ("b".into(), (0..n).map(|v| Value::Int(v % 8)).collect()),
                ("c".into(), (0..n).map(|v| Value::Int((v * 7 + 3) % 5)).collect()),
            ],
        )
    }

    #[test]
    fn tree_links_the_dependent_pair() {
        let t = dependent_table();
        let bn = BayesNetEstimator::new(&t, 64);
        // a and b must be adjacent in the tree.
        let adjacent = bn.parent[1] == 0 || bn.parent[0] == 1;
        assert!(adjacent, "chow-liu should link the perfectly dependent columns");
    }

    #[test]
    fn captures_pairwise_dependence_unlike_avi() {
        let t = dependent_table();
        let bn = BayesNetEstimator::new(&t, 64);
        // P(a=1, b=1) = 1/8 under the true joint; AVI would give 1/64.
        let q = Query::new(vec![Predicate::eq(0, 1i64), Predicate::eq(1, 1i64)]);
        let sel = bn.estimate_selectivity(&q);
        assert!((sel - 0.125).abs() < 0.02, "tree estimate {sel} should be near 1/8");
    }

    #[test]
    fn contradictory_dependent_predicates_get_low_mass() {
        let t = dependent_table();
        let bn = BayesNetEstimator::new(&t, 64);
        // a=1 AND b=2 never co-occurs.
        let q = Query::new(vec![Predicate::eq(0, 1i64), Predicate::eq(1, 2i64)]);
        assert!(bn.estimate_selectivity(&q) < 0.01);
    }

    #[test]
    fn unconstrained_query_is_one() {
        let t = dependent_table();
        let bn = BayesNetEstimator::new(&t, 64);
        let sel = bn.estimate_selectivity(&Query::default());
        assert!((sel - 1.0).abs() < 1e-6);
    }

    #[test]
    fn binning_covers_domain() {
        let b = Binning::new(2101, 128);
        let mut covered = 0u32;
        for bin in 0..b.nbins {
            let (lo, hi) = b.bin_range(bin);
            covered += hi - lo;
            for c in lo..hi {
                assert_eq!(b.bin_of(c), bin, "code {c}");
            }
        }
        assert_eq!(covered, 2101);
    }

    #[test]
    fn range_queries_use_partial_bins() {
        let n = 2000i64;
        let t = Table::from_columns(
            "t",
            vec![("x".into(), (0..n).map(|v| Value::Int(v % 500)).collect())],
        );
        let bn = BayesNetEstimator::new(&t, 32);
        let q = Query::new(vec![Predicate::le(0, 124i64)]);
        let sel = bn.estimate_selectivity(&q);
        assert!((sel - 0.25).abs() < 0.05, "sel {sel}");
    }
}
