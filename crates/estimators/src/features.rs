//! Query featurization shared by the supervised baselines (MSCN, LR).

use uae_data::Table;
use uae_query::{PredOp, Query, QueryRegion};

/// Featurizer bound to a table's schema (column count and domains — the
/// metadata any query-driven estimator is allowed to know).
#[derive(Debug, Clone)]
pub struct QueryFeaturizer {
    table: Table,
}

impl QueryFeaturizer {
    /// A featurizer over `table`'s schema.
    pub fn new(table: &Table) -> Self {
        QueryFeaturizer { table: table.clone() }
    }

    /// The underlying table (schema access).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// MSCN-style set-pooled features: the average over predicates of
    /// `[one-hot column ‖ one-hot operator ‖ normalized literal]`
    /// (Kipf et al., adapted to single tables by dropping the join module).
    pub fn mscn_features(&self, query: &Query) -> Vec<f32> {
        let ncols = self.table.num_cols();
        let width = ncols + PredOp::NUM_KINDS + 1;
        let mut out = vec![0.0f32; width];
        if query.predicates.is_empty() {
            return out;
        }
        for pred in &query.predicates {
            out[pred.column] += 1.0;
            out[ncols + pred.op.feature_index()] += 1.0;
            let col = self.table.column(pred.column);
            let d = col.domain_size().max(2) as f32;
            let pos = match &pred.op {
                PredOp::In(vals) => {
                    let mut acc = 0.0f32;
                    for v in vals {
                        acc += col.lower_bound(v) as f32 / (d - 1.0);
                    }
                    acc / vals.len().max(1) as f32
                }
                _ => col.lower_bound(&pred.value) as f32 / (d - 1.0),
            };
            out[width - 1] += pos.clamp(0.0, 1.0);
        }
        let inv = 1.0 / query.predicates.len() as f32;
        for v in &mut out {
            *v *= inv;
        }
        out
    }

    /// Width of [`QueryFeaturizer::mscn_features`] vectors.
    pub fn mscn_width(&self) -> usize {
        self.table.num_cols() + PredOp::NUM_KINDS + 1
    }

    /// Range features for LR (Dutt et al. style): per column the normalized
    /// `[lo, hi]` of the admitted code interval (`[0, 1]` when
    /// unconstrained).
    pub fn range_features(&self, query: &Query) -> Vec<f64> {
        let qr = QueryRegion::build(&self.table, query);
        let mut out = Vec::with_capacity(2 * self.table.num_cols());
        for (c, reg) in qr.columns().iter().enumerate() {
            let d = self.table.column(c).domain_size().max(1) as f64;
            match reg {
                None => {
                    out.push(0.0);
                    out.push(1.0);
                }
                Some(region) => {
                    let ranges = region.ranges();
                    if ranges.is_empty() {
                        out.push(0.0);
                        out.push(0.0);
                    } else {
                        out.push(ranges[0].0 as f64 / d);
                        out.push(ranges[ranges.len() - 1].1 as f64 / d);
                    }
                }
            }
        }
        out
    }

    /// Width of [`QueryFeaturizer::range_features`] vectors.
    pub fn range_width(&self) -> usize {
        2 * self.table.num_cols()
    }

    /// Bitmap of which rows of `sample` satisfy `query` (the extra features
    /// of MSCN+sampling).
    pub fn sample_bitmap(&self, sample: &Table, query: &Query) -> Vec<f32> {
        let qr = QueryRegion::build(sample, query);
        (0..sample.num_rows())
            .map(|r| {
                let codes: Vec<u32> = sample.row_codes(r);
                if qr.matches_row(&codes) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::Value;
    use uae_query::Predicate;

    fn table() -> Table {
        Table::from_columns(
            "t",
            vec![
                ("x".into(), (0..100i64).map(Value::Int).collect()),
                ("y".into(), (0..100i64).map(|v| Value::Int(v % 5)).collect()),
            ],
        )
    }

    #[test]
    fn mscn_features_average_predicates() {
        let t = table();
        let f = QueryFeaturizer::new(&t);
        let q = Query::new(vec![Predicate::le(0, 49i64), Predicate::eq(1, 2i64)]);
        let v = f.mscn_features(&q);
        assert_eq!(v.len(), f.mscn_width());
        // Each predicate contributes 0.5 to its column slot.
        assert_eq!(v[0], 0.5);
        assert_eq!(v[1], 0.5);
        // Op one-hots: Le at index ncols+3, Eq at ncols+0.
        assert_eq!(v[2 + 3], 0.5);
        assert_eq!(v[2], 0.5);
    }

    #[test]
    fn range_features_encode_bounds() {
        let t = table();
        let f = QueryFeaturizer::new(&t);
        let q = Query::new(vec![Predicate::ge(0, 25i64), Predicate::le(0, 74i64)]);
        let v = f.range_features(&q);
        assert_eq!(v.len(), 4);
        assert!((v[0] - 0.25).abs() < 1e-9);
        assert!((v[1] - 0.75).abs() < 1e-9);
        // Unconstrained column: full range.
        assert_eq!(&v[2..], &[0.0, 1.0]);
    }

    #[test]
    fn bitmap_marks_matching_rows() {
        let t = table();
        let f = QueryFeaturizer::new(&t);
        let sample = t.take_rows(&[0, 10, 60, 90]);
        let q = Query::new(vec![Predicate::le(0, 49i64)]);
        assert_eq!(f.sample_bitmap(&sample, &q), vec![1.0, 1.0, 0.0, 0.0]);
    }
}
