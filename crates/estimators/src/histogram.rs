//! Per-column equi-depth histograms combined under the attribute-value-
//! independence (AVI) assumption — the classic DBMS estimator (and the
//! "PostgreSQL-like" baseline of the optimizer study, Figure 6).

use uae_data::{Column, Table};
use uae_query::{CardEstimator, EstimatorFamily, Query, QueryCost, QueryRegion, Region};

/// One column's equi-depth histogram over dictionary codes.
#[derive(Debug, Clone)]
pub struct ColumnHistogram {
    /// Bucket upper bounds (exclusive, ascending); the last equals the
    /// domain size.
    bounds: Vec<u32>,
    /// Fraction of rows per bucket.
    freqs: Vec<f64>,
    domain: u32,
}

impl ColumnHistogram {
    /// Build an equi-depth histogram with at most `buckets` buckets.
    pub fn build(col: &Column, buckets: usize) -> Self {
        let hist = col.histogram();
        let total: u64 = hist.iter().sum();
        let domain = hist.len() as u32;
        let buckets = buckets.max(1).min(hist.len());
        let per_bucket = (total as f64 / buckets as f64).max(1.0);
        let mut bounds = Vec::with_capacity(buckets);
        let mut freqs = Vec::with_capacity(buckets);
        let mut acc = 0u64;
        let mut filled = 0u64;
        for (c, &h) in hist.iter().enumerate() {
            acc += h;
            if acc as f64 >= per_bucket * (bounds.len() + 1) as f64 || c + 1 == hist.len() {
                bounds.push(c as u32 + 1);
                freqs.push((acc - filled) as f64 / total.max(1) as f64);
                filled = acc;
            }
        }
        ColumnHistogram { bounds, freqs, domain }
    }

    /// Estimated `P(col ∈ region)` assuming uniformity inside buckets.
    pub fn region_fraction(&self, region: &Region) -> f64 {
        let mut p = 0.0f64;
        let mut lo = 0u32;
        for (i, &hi) in self.bounds.iter().enumerate() {
            // overlap of [lo, hi) with the region, in codes
            let bucket_width = (hi - lo) as f64;
            if bucket_width > 0.0 {
                let overlap: u32 = region
                    .ranges()
                    .iter()
                    .map(|&(rlo, rhi)| rhi.min(hi).saturating_sub(rlo.max(lo)))
                    .sum();
                p += self.freqs[i] * overlap as f64 / bucket_width;
            }
            lo = hi;
        }
        p.clamp(0.0, 1.0)
    }

    /// Number of stored scalars.
    pub fn num_scalars(&self) -> usize {
        self.bounds.len() + self.freqs.len()
    }

    /// Domain size the histogram was built over.
    pub fn domain(&self) -> u32 {
        self.domain
    }
}

/// AVI estimator: product of per-column marginal fractions.
#[derive(Debug)]
pub struct HistogramEstimator {
    name: String,
    columns: Vec<ColumnHistogram>,
    total_rows: usize,
    table: Table,
}

impl HistogramEstimator {
    /// Build per-column equi-depth histograms with `buckets` buckets each.
    pub fn new(table: &Table, buckets: usize) -> Self {
        HistogramEstimator {
            name: "Histogram".to_owned(),
            columns: table.columns().iter().map(|c| ColumnHistogram::build(c, buckets)).collect(),
            total_rows: table.num_rows(),
            table: table.clone(),
        }
    }
}

impl CardEstimator for HistogramEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_rows(&self) -> f64 {
        self.total_rows as f64
    }

    fn estimate_selectivity(&self, query: &Query) -> f64 {
        let region = QueryRegion::build(&self.table, query);
        if region.is_empty() {
            return 0.0;
        }
        let mut p = 1.0f64;
        for (c, reg) in region.columns().iter().enumerate() {
            if let Some(reg) = reg {
                p *= self.columns[c].region_fraction(reg);
            }
        }
        p
    }

    fn size_bytes(&self) -> usize {
        self.columns.iter().map(|h| h.num_scalars() * 8).sum()
    }

    fn family(&self) -> EstimatorFamily {
        EstimatorFamily::Histogram
    }

    fn cost_class(&self) -> QueryCost {
        QueryCost::Trivial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::Value;
    use uae_query::Predicate;

    fn uniform_table() -> Table {
        Table::from_columns(
            "t",
            vec![
                ("x".into(), (0..1000i64).map(Value::Int).collect()),
                ("y".into(), (0..1000i64).map(|v| Value::Int(v % 4)).collect()),
            ],
        )
    }

    #[test]
    fn marginal_fractions_are_exact_on_uniform_data() {
        let t = uniform_table();
        let est = HistogramEstimator::new(&t, 50);
        let q = Query::new(vec![Predicate::le(0, 249i64)]);
        let e = est.estimate_card(&q);
        assert!((e - 250.0).abs() < 30.0, "estimate {e}");
    }

    #[test]
    fn independence_assumption_multiplies() {
        let t = uniform_table();
        let est = HistogramEstimator::new(&t, 50);
        let q = Query::new(vec![Predicate::le(0, 499i64), Predicate::eq(1, 1i64)]);
        // AVI: 0.5 * 0.25 = 0.125 → 125 rows (true value is 125 here too).
        let e = est.estimate_card(&q);
        assert!((e - 125.0).abs() < 25.0, "estimate {e}");
    }

    #[test]
    fn histogram_fraction_sums_to_one() {
        let t = uniform_table();
        let h = ColumnHistogram::build(t.column(0), 16);
        let full = Region::all(h.domain());
        assert!((h.region_fraction(&full) - 1.0).abs() < 1e-9);
        let empty = Region::empty(h.domain());
        assert_eq!(h.region_fraction(&empty), 0.0);
    }

    #[test]
    fn skewed_column_buckets_adapt() {
        // 90% of rows have value 0; equi-depth must isolate it.
        let vals: Vec<Value> =
            (0..1000i64).map(|v| Value::Int(if v < 900 { 0 } else { v % 50 })).collect();
        let t = Table::from_columns("t", vec![("x".into(), vals)]);
        let est = HistogramEstimator::new(&t, 10);
        let q = Query::new(vec![Predicate::eq(0, 0i64)]);
        let e = est.estimate_card(&q);
        assert!(e > 500.0, "head value underestimated: {e}");
    }
}
