//! Gaussian kernel density estimation over the code space (paper §5.1.4
//! "KDE", Gunopulos et al.), with Scott's rule bandwidths, plus the
//! query-driven **Feedback-KDE** variant (Heimel et al.) that numerically
//! optimizes the bandwidths against a labeled workload.

use uae_data::Table;
use uae_query::{
    CardEstimator, EstimatorFamily, LabeledQuery, Query, QueryCost, QueryRegion, Region,
};

/// Error function approximation (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
#[inline]
pub fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal PDF.
#[inline]
fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Gaussian-product KDE estimator over a uniform row sample.
#[derive(Debug)]
pub struct KdeEstimator {
    name: String,
    /// Sample points, column-major codes as f64.
    points: Vec<Vec<f64>>,
    /// Per-column bandwidths.
    bandwidths: Vec<f64>,
    table: Table,
    total_rows: usize,
}

impl KdeEstimator {
    /// Build a KDE from a uniform sample of `ratio` of the rows. Bandwidths
    /// follow Scott's rule `h_i = σ_i · m^(-1/(d+4))`.
    pub fn new(table: &Table, ratio: f64, seed: u64) -> Self {
        let d = table.num_cols();
        let sample = sample_table(table, ratio, seed);
        let m = sample.num_rows();
        let points: Vec<Vec<f64>> =
            (0..d).map(|c| sample.column(c).codes().iter().map(|&v| v as f64).collect()).collect();
        let bandwidths = points
            .iter()
            .map(|xs| {
                let mean = xs.iter().sum::<f64>() / m as f64;
                let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / m.max(1) as f64;
                let sigma = var.sqrt().max(0.5);
                sigma * (m as f64).powf(-1.0 / (d as f64 + 4.0))
            })
            .collect();
        KdeEstimator {
            name: "KDE".to_owned(),
            points,
            bandwidths,
            table: table.clone(),
            total_rows: table.num_rows(),
        }
    }

    /// Number of kernel centers.
    pub fn sample_size(&self) -> usize {
        self.points.first().map_or(0, Vec::len)
    }

    fn kernel_selectivity(&self, query: &Query) -> f64 {
        let qr = QueryRegion::build(&self.table, query);
        if qr.is_empty() {
            return 0.0;
        }
        let m = self.sample_size();
        if m == 0 {
            return 0.0;
        }
        let constrained: Vec<(usize, &Region)> = qr
            .columns()
            .iter()
            .enumerate()
            .filter_map(|(c, r)| r.as_ref().map(|r| (c, r)))
            .collect();
        let mut total = 0.0f64;
        for s in 0..m {
            let mut p = 1.0f64;
            for &(c, region) in &constrained {
                p *= self.kernel_mass(c, self.points[c][s], region);
                if p == 0.0 {
                    break;
                }
            }
            total += p;
        }
        (total / m as f64).clamp(0.0, 1.0)
    }

    /// Mass a kernel centered at `x` puts inside `region` on column `c`.
    fn kernel_mass(&self, c: usize, x: f64, region: &Region) -> f64 {
        let h = self.bandwidths[c];
        region
            .ranges()
            .iter()
            .map(|&(lo, hi)| {
                let a = (lo as f64 - 0.5 - x) / h;
                let b = (hi as f64 - 0.5 - x) / h;
                phi(b) - phi(a)
            })
            .sum()
    }

    /// Read access to the bandwidths (Feedback-KDE mutates them).
    pub fn bandwidths(&self) -> &[f64] {
        &self.bandwidths
    }
}

fn sample_table(table: &Table, ratio: f64, seed: u64) -> Table {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let n = table.num_rows();
    let target = ((n as f64 * ratio).round() as usize).clamp(1, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..target {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(target);
    table.take_rows(&idx)
}

impl CardEstimator for KdeEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_rows(&self) -> f64 {
        self.total_rows as f64
    }

    fn estimate_selectivity(&self, query: &Query) -> f64 {
        self.kernel_selectivity(query)
    }

    fn size_bytes(&self) -> usize {
        self.sample_size() * self.table.num_cols() * 4 + self.bandwidths.len() * 8
    }

    fn family(&self) -> EstimatorFamily {
        EstimatorFamily::Kde
    }

    fn cost_class(&self) -> QueryCost {
        QueryCost::Moderate
    }
}

/// Feedback-KDE: starts from [`KdeEstimator`] and refines the per-column
/// log-bandwidths by gradient descent on the squared selectivity error of a
/// labeled workload (the *SquaredQ/Batch* setting of Heimel et al.).
#[derive(Debug)]
pub struct FeedbackKdeEstimator {
    inner: KdeEstimator,
}

impl FeedbackKdeEstimator {
    /// Optimize the bandwidths of `kde` against the workload.
    pub fn new(mut kde: KdeEstimator, workload: &[LabeledQuery], epochs: usize, lr: f64) -> Self {
        kde.name = "Feedback-KDE".to_owned();
        let regions: Vec<QueryRegion> =
            workload.iter().map(|lq| QueryRegion::build(&kde.table, &lq.query)).collect();
        let mut log_h: Vec<f64> = kde.bandwidths.iter().map(|h| h.ln()).collect();
        for _ in 0..epochs {
            let mut grad = vec![0.0f64; log_h.len()];
            for (lq, qr) in workload.iter().zip(&regions) {
                let (est, dsel_dlogh) = kde.selectivity_and_grad(qr);
                let err = est - lq.selectivity;
                for (g, d) in grad.iter_mut().zip(&dsel_dlogh) {
                    *g += 2.0 * err * d;
                }
            }
            let scale = 1.0 / workload.len().max(1) as f64;
            for (lh, g) in log_h.iter_mut().zip(&grad) {
                *lh -= lr * g * scale;
                *lh = lh.clamp(-3.0, 8.0);
            }
            for (h, lh) in kde.bandwidths.iter_mut().zip(&log_h) {
                *h = lh.exp();
            }
        }
        FeedbackKdeEstimator { inner: kde }
    }
}

impl KdeEstimator {
    /// Selectivity and its gradient w.r.t. per-column log-bandwidths.
    fn selectivity_and_grad(&self, qr: &QueryRegion) -> (f64, Vec<f64>) {
        let m = self.sample_size();
        let d = self.table.num_cols();
        let mut grad = vec![0.0f64; d];
        if qr.is_empty() || m == 0 {
            return (0.0, grad);
        }
        let constrained: Vec<(usize, &Region)> = qr
            .columns()
            .iter()
            .enumerate()
            .filter_map(|(c, r)| r.as_ref().map(|r| (c, r)))
            .collect();
        let mut total = 0.0f64;
        for s in 0..m {
            // per-column masses and d(mass)/d(log h)
            let mut masses = Vec::with_capacity(constrained.len());
            let mut dmass = Vec::with_capacity(constrained.len());
            for &(c, region) in &constrained {
                let h = self.bandwidths[c];
                let x = self.points[c][s];
                let mut mass = 0.0f64;
                let mut dm = 0.0f64;
                for &(lo, hi) in region.ranges() {
                    let a = (lo as f64 - 0.5 - x) / h;
                    let b = (hi as f64 - 0.5 - x) / h;
                    mass += phi(b) - phi(a);
                    // dΦ(u)/d(log h) = φ(u) · (-u)
                    dm += normal_pdf(b) * (-b) - normal_pdf(a) * (-a);
                }
                masses.push(mass);
                dmass.push(dm);
            }
            let p: f64 = masses.iter().product();
            total += p;
            for (k, &(c, _)) in constrained.iter().enumerate() {
                if masses[k] > 1e-300 {
                    grad[c] += p / masses[k] * dmass[k];
                }
            }
        }
        let inv = 1.0 / m as f64;
        for g in &mut grad {
            *g *= inv;
        }
        (total * inv, grad)
    }
}

impl CardEstimator for FeedbackKdeEstimator {
    fn name(&self) -> &str {
        &self.inner.name
    }

    fn num_rows(&self) -> f64 {
        self.inner.num_rows()
    }

    fn estimate_selectivity(&self, query: &Query) -> f64 {
        self.inner.estimate_selectivity(query)
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }

    fn family(&self) -> EstimatorFamily {
        EstimatorFamily::Kde
    }

    fn cost_class(&self) -> QueryCost {
        QueryCost::Moderate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::Value;
    use uae_query::{label_queries, Predicate};

    fn table() -> Table {
        Table::from_columns(
            "t",
            vec![
                ("x".into(), (0..2000i64).map(|v| Value::Int(v % 100)).collect()),
                ("y".into(), (0..2000i64).map(|v| Value::Int((v / 100) % 20)).collect()),
            ],
        )
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-9);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }

    #[test]
    fn phi_is_a_cdf() {
        assert!((phi(0.0) - 0.5).abs() < 1e-9);
        assert!(phi(5.0) > 0.999_999);
        assert!(phi(-5.0) < 1e-6);
    }

    #[test]
    fn kde_estimates_uniform_range() {
        let t = table();
        let kde = KdeEstimator::new(&t, 0.5, 1);
        let q = Query::new(vec![Predicate::le(0, 49i64)]);
        let e = kde.estimate_card(&q);
        assert!((e - 1000.0).abs() < 200.0, "estimate {e}");
    }

    #[test]
    fn feedback_kde_does_not_hurt_on_training_workload() {
        let t = table();
        let kde = KdeEstimator::new(&t, 0.3, 2);
        let queries: Vec<Query> =
            (0..20).map(|i| Query::new(vec![Predicate::le(0, (i * 5) as i64)])).collect();
        let workload = label_queries(&t, queries);
        let base_err: f64 = workload
            .iter()
            .map(|lq| (kde.estimate_selectivity(&lq.query) - lq.selectivity).powi(2))
            .sum();
        let fb = FeedbackKdeEstimator::new(KdeEstimator::new(&t, 0.3, 2), &workload, 20, 0.3);
        let fb_err: f64 = workload
            .iter()
            .map(|lq| {
                let sel = fb.estimate_card(&lq.query) / t.num_rows() as f64;
                (sel - lq.selectivity).powi(2)
            })
            .sum();
        assert!(fb_err <= base_err * 1.05, "feedback {fb_err} vs base {base_err}");
    }

    #[test]
    fn kernel_mass_of_full_domain_is_near_one() {
        let t = table();
        let kde = KdeEstimator::new(&t, 0.2, 3);
        let full = Region::all(t.column(0).domain_size() as u32);
        let mass = kde.kernel_mass(0, 50.0, &full);
        assert!(mass > 0.95, "mass {mass}");
    }
}
