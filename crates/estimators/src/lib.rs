//! # uae-estimators — the nine baseline cardinality estimators
//!
//! Every method UAE is compared against in the paper's §5.1.4, implemented
//! from scratch on the same substrates:
//!
//! | Paper name | Type | Here |
//! |---|---|---|
//! | LR | query-driven | [`LinearRegressionEstimator`] |
//! | MSCN-base | query-driven | [`MscnEstimator`] (`sample_rows = 0`) |
//! | Sampling | data-driven | [`SamplingEstimator`] |
//! | BayesNet | data-driven | [`BayesNetEstimator`] (Chow–Liu tree) |
//! | KDE | data-driven | [`KdeEstimator`] |
//! | DeepDB | data-driven | [`SpnEstimator`] |
//! | Naru | data-driven | `uae_core::Uae` trained with data only |
//! | MSCN+sampling | hybrid | [`MscnEstimator`] (`sample_rows > 0`) |
//! | Feedback-KDE | hybrid | [`FeedbackKdeEstimator`] |
//!
//! A per-column equi-depth [`HistogramEstimator`] (AVI) is included as the
//! PostgreSQL-like estimator for the optimizer study (Figure 6), and the
//! paper's "also compared, performed worse" baselines ship too:
//! [`MhistEstimator`] (MaxDiff multi-dimensional histogram) and
//! [`QuickSelEstimator`] (uniform mixture model) and [`StHolesEstimator`]
//! (workload-aware multidimensional histogram).

pub mod bayesnet;
pub mod features;
pub mod histogram;
pub mod kde;
pub mod lr;
pub mod mhist;
pub mod mscn;
pub mod quicksel;
pub mod sampling;
pub mod spn;
pub mod stholes;

pub use bayesnet::BayesNetEstimator;
pub use features::QueryFeaturizer;
pub use histogram::HistogramEstimator;
pub use kde::{FeedbackKdeEstimator, KdeEstimator};
pub use lr::LinearRegressionEstimator;
pub use mhist::MhistEstimator;
pub use mscn::{MscnConfig, MscnEstimator};
pub use quicksel::QuickSelEstimator;
pub use sampling::SamplingEstimator;
pub use spn::{SpnConfig, SpnEstimator};
pub use stholes::StHolesEstimator;
