//! The LR baseline (paper §5.1.4, method 2): ridge regression from
//! range-encoded query features to log-selectivity, solved in closed form
//! via the normal equations and a Cholesky factorization.

use uae_data::Table;
use uae_query::{CardEstimator, EstimatorFamily, LabeledQuery, Query, QueryCost};

use crate::features::QueryFeaturizer;

/// Linear-regression estimator.
#[derive(Debug)]
pub struct LinearRegressionEstimator {
    name: String,
    featurizer: QueryFeaturizer,
    /// Weights, last entry is the intercept.
    weights: Vec<f64>,
    total_rows: usize,
}

impl LinearRegressionEstimator {
    /// Fit ridge regression (`alpha` = L2 penalty) on a labeled workload.
    pub fn new(table: &Table, workload: &[LabeledQuery], alpha: f64) -> Self {
        let featurizer = QueryFeaturizer::new(table);
        let dim = featurizer.range_width() + 1; // + intercept
        let mut xtx = vec![0.0f64; dim * dim];
        let mut xty = vec![0.0f64; dim];
        let min_sel = 1.0 / table.num_rows().max(2) as f64;
        for lq in workload {
            let mut x = featurizer.range_features(&lq.query);
            x.push(1.0);
            let y = lq.selectivity.max(min_sel).ln();
            for i in 0..dim {
                xty[i] += x[i] * y;
                for j in 0..dim {
                    xtx[i * dim + j] += x[i] * x[j];
                }
            }
        }
        for i in 0..dim {
            xtx[i * dim + i] += alpha;
        }
        let weights = cholesky_solve(&mut xtx, &xty, dim).unwrap_or_else(|| vec![0.0; dim]);
        LinearRegressionEstimator {
            name: "LR".to_owned(),
            featurizer,
            weights,
            total_rows: table.num_rows(),
        }
    }

    fn predict_log_sel(&self, query: &Query) -> f64 {
        let mut x = self.featurizer.range_features(query);
        x.push(1.0);
        x.iter().zip(&self.weights).map(|(a, b)| a * b).sum()
    }
}

/// Solve `A w = b` for symmetric positive-definite `A` (destroyed).
/// Returns `None` if the factorization breaks down.
pub fn cholesky_solve(a: &mut [f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    // A = L L^T, stored in the lower triangle of `a`.
    for j in 0..n {
        let mut d = a[j * n + j];
        for k in 0..j {
            d -= a[j * n + k] * a[j * n + k];
        }
        if d <= 1e-12 {
            return None;
        }
        let d = d.sqrt();
        a[j * n + j] = d;
        for i in j + 1..n {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= a[i * n + k] * a[j * n + k];
            }
            a[i * n + j] = s / d;
        }
    }
    // Forward solve L z = b.
    let mut z = vec![0.0f64; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= a[i * n + k] * z[k];
        }
        z[i] = s / a[i * n + i];
    }
    // Back solve L^T w = z.
    let mut w = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut s = z[i];
        for k in i + 1..n {
            s -= a[k * n + i] * w[k];
        }
        w[i] = s / a[i * n + i];
    }
    Some(w)
}

impl CardEstimator for LinearRegressionEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_rows(&self) -> f64 {
        self.total_rows as f64
    }

    fn estimate_selectivity(&self, query: &Query) -> f64 {
        self.predict_log_sel(query).exp().clamp(0.0, 1.0)
    }

    fn size_bytes(&self) -> usize {
        self.weights.len() * 8
    }

    fn family(&self) -> EstimatorFamily {
        EstimatorFamily::Regression
    }

    fn cost_class(&self) -> QueryCost {
        QueryCost::Trivial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use uae_data::{census_like, Value};
    use uae_query::{evaluate, generate_workload, label_queries, Predicate, WorkloadSpec};

    #[test]
    fn cholesky_solves_small_system() {
        // A = [[4,2],[2,3]], b = [10, 8] → w = [1.75, 1.5].
        let mut a = vec![4.0, 2.0, 2.0, 3.0];
        let w = cholesky_solve(&mut a, &[10.0, 8.0], 2).unwrap();
        assert!((w[0] - 1.75).abs() < 1e-9);
        assert!((w[1] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn cholesky_detects_singularity() {
        let mut a = vec![1.0, 1.0, 1.0, 1.0];
        assert!(cholesky_solve(&mut a, &[1.0, 1.0], 2).is_none());
    }

    #[test]
    fn lr_fits_uniform_ranges_reasonably() {
        // On uniform data, log-sel of a range is roughly linear in (hi - lo)
        // for moderate widths — LR should at least capture the trend.
        let t =
            Table::from_columns("t", vec![("x".into(), (0..1000i64).map(Value::Int).collect())]);
        let queries: Vec<Query> =
            (1..40).map(|i| Query::new(vec![Predicate::le(0, (i * 25) as i64)])).collect();
        let workload = label_queries(&t, queries);
        let lr = LinearRegressionEstimator::new(&t, &workload, 1e-3);
        // Wider range must estimate higher than a narrow one.
        let narrow = lr.estimate_card(&Query::new(vec![Predicate::le(0, 50i64)]));
        let wide = lr.estimate_card(&Query::new(vec![Predicate::le(0, 900i64)]));
        assert!(wide > narrow, "wide {wide} vs narrow {narrow}");
    }

    #[test]
    fn lr_is_tiny() {
        let t = census_like(800, 5);
        let col = uae_query::default_bounded_column(&t);
        let w = generate_workload(&t, &WorkloadSpec::in_workload(col, 60, 1), &HashSet::new());
        let lr = LinearRegressionEstimator::new(&t, &w, 1e-3);
        // The paper reports 14–17KB; ours is even smaller (pure weights).
        assert!(lr.size_bytes() < 16 * 1024);
        let ev = evaluate(&lr, &w);
        assert!(ev.errors.median.is_finite());
    }

    use uae_data::Table;
}
