//! MHIST — multi-dimensional MaxDiff histogram (Poosala & Ioannidis),
//! one of the "also compared, performed worse" baselines of the paper's
//! §5.1.4. Buckets are axis-aligned boxes over code space; construction
//! greedily splits the most "critical" bucket at its largest marginal
//! frequency gap; estimation assumes uniformity inside buckets.

use uae_data::Table;
use uae_query::{CardEstimator, EstimatorFamily, Query, QueryCost, QueryRegion};

/// One axis-aligned bucket.
#[derive(Debug, Clone)]
struct Bucket {
    /// Per-dimension half-open code range `[lo, hi)`.
    bounds: Vec<(u32, u32)>,
    /// Rows contained (build-time only).
    rows: Vec<u32>,
}

impl Bucket {
    fn volume(&self) -> f64 {
        self.bounds.iter().map(|&(lo, hi)| (hi - lo) as f64).product()
    }
}

/// The finished estimator: buckets with counts only.
#[derive(Debug)]
pub struct MhistEstimator {
    name: String,
    bounds: Vec<Vec<(u32, u32)>>,
    counts: Vec<u64>,
    total_rows: usize,
    table: Table,
}

impl MhistEstimator {
    /// Build an MHIST with at most `max_buckets` buckets.
    pub fn new(table: &Table, max_buckets: usize) -> Self {
        let ncols = table.num_cols();
        let root = Bucket {
            bounds: (0..ncols).map(|c| (0u32, table.column(c).domain_size() as u32)).collect(),
            rows: (0..table.num_rows() as u32).collect(),
        };
        let mut buckets = vec![root];
        while buckets.len() < max_buckets {
            // Critical bucket: most rows with a splittable extent.
            let Some(idx) = buckets
                .iter()
                .enumerate()
                .filter(|(_, b)| b.rows.len() > 1 && b.volume() > 1.0)
                .max_by_key(|(_, b)| b.rows.len())
                .map(|(i, _)| i)
            else {
                break;
            };
            let bucket = buckets.swap_remove(idx);
            match split_maxdiff(table, &bucket) {
                Some((a, b)) => {
                    buckets.push(a);
                    buckets.push(b);
                }
                None => {
                    buckets.push(bucket);
                    break;
                }
            }
        }
        let counts = buckets.iter().map(|b| b.rows.len() as u64).collect();
        let bounds = buckets.into_iter().map(|b| b.bounds).collect();
        MhistEstimator {
            name: "MHIST".to_owned(),
            bounds,
            counts,
            total_rows: table.num_rows(),
            table: table.clone(),
        }
    }

    /// Number of buckets actually built.
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    fn selectivity_from_buckets(&self, query: &Query) -> f64 {
        let qr = QueryRegion::build(&self.table, query);
        if qr.is_empty() {
            return 0.0;
        }
        let mut mass = 0.0f64;
        for (bounds, &count) in self.bounds.iter().zip(&self.counts) {
            if count == 0 {
                continue;
            }
            let mut frac = 1.0f64;
            for (c, &(blo, bhi)) in bounds.iter().enumerate() {
                if let Some(region) = qr.column(c) {
                    let width = (bhi - blo) as f64;
                    if width <= 0.0 {
                        frac = 0.0;
                        break;
                    }
                    let overlap: u32 = region
                        .ranges()
                        .iter()
                        .map(|&(rlo, rhi)| rhi.min(bhi).saturating_sub(rlo.max(blo)))
                        .sum();
                    frac *= overlap as f64 / width;
                    if frac == 0.0 {
                        break;
                    }
                }
            }
            mass += count as f64 * frac;
        }
        (mass / self.total_rows.max(1) as f64).clamp(0.0, 1.0)
    }
}

/// Split a bucket along the dimension with the largest adjacent-frequency
/// difference (MaxDiff), at that gap.
fn split_maxdiff(table: &Table, bucket: &Bucket) -> Option<(Bucket, Bucket)> {
    let mut best: Option<(usize, u32, f64)> = None; // (dim, split code, diff)
    for (c, &(lo, hi)) in bucket.bounds.iter().enumerate() {
        if hi - lo < 2 {
            continue;
        }
        // Marginal frequencies of this bucket's rows over [lo, hi).
        let mut freq = vec![0u32; (hi - lo) as usize];
        let codes = table.column(c).codes();
        for &r in &bucket.rows {
            freq[(codes[r as usize] - lo) as usize] += 1;
        }
        for i in 0..freq.len() - 1 {
            let diff = (freq[i] as f64 - freq[i + 1] as f64).abs();
            if best.as_ref().is_none_or(|&(_, _, d)| diff > d) {
                best = Some((c, lo + i as u32 + 1, diff));
            }
        }
    }
    let (dim, at, _) = best?;
    let codes = table.column(dim).codes();
    let (mut left_rows, mut right_rows) = (Vec::new(), Vec::new());
    for &r in &bucket.rows {
        if codes[r as usize] < at {
            left_rows.push(r);
        } else {
            right_rows.push(r);
        }
    }
    let mut left = Bucket { bounds: bucket.bounds.clone(), rows: left_rows };
    left.bounds[dim].1 = at;
    let mut right = Bucket { bounds: bucket.bounds.clone(), rows: right_rows };
    right.bounds[dim].0 = at;
    Some((left, right))
}

impl CardEstimator for MhistEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_rows(&self) -> f64 {
        self.total_rows as f64
    }

    fn estimate_selectivity(&self, query: &Query) -> f64 {
        self.selectivity_from_buckets(query)
    }

    fn size_bytes(&self) -> usize {
        // bounds (2 u32 per dim) + count per bucket
        self.bounds.iter().map(|b| b.len() * 8 + 8).sum()
    }

    fn family(&self) -> EstimatorFamily {
        EstimatorFamily::MultiDimHistogram
    }

    fn cost_class(&self) -> QueryCost {
        QueryCost::Cheap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::Value;
    use uae_query::Predicate;

    fn table() -> Table {
        Table::from_columns(
            "t",
            vec![
                ("x".into(), (0..1000i64).map(|v| Value::Int(v % 50)).collect()),
                ("y".into(), (0..1000i64).map(|v| Value::Int((v / 50) % 4)).collect()),
            ],
        )
    }

    #[test]
    fn buckets_partition_all_rows() {
        let t = table();
        let m = MhistEstimator::new(&t, 32);
        assert!(m.num_buckets() <= 32);
        let total: u64 = m.counts.iter().sum();
        assert_eq!(total, 1000);
        // Full-domain query returns everything.
        assert!((m.estimate_selectivity(&Query::default()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn range_estimates_are_reasonable_on_uniform_data() {
        let t = table();
        let m = MhistEstimator::new(&t, 64);
        let q = Query::new(vec![Predicate::le(0, 24i64)]);
        let e = m.estimate_card(&q);
        assert!((e - 500.0).abs() < 100.0, "estimate {e}");
    }

    #[test]
    fn spike_isolated_by_maxdiff() {
        // 80% of mass at x = 0; MaxDiff should cut right after the spike.
        let vals: Vec<Value> =
            (0..1000i64).map(|v| Value::Int(if v < 800 { 0 } else { 1 + v % 30 })).collect();
        let t = Table::from_columns("t", vec![("x".into(), vals)]);
        let m = MhistEstimator::new(&t, 16);
        let q = Query::new(vec![Predicate::eq(0, 0i64)]);
        let e = m.estimate_card(&q);
        assert!(e > 600.0, "spike underestimated: {e}");
    }
}
