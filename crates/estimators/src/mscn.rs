//! MSCN (Kipf et al., CIDR 2019) adapted to single tables — the paper's
//! query-driven deep baseline — in two flavours:
//!
//! * **MSCN-base**: set-pooled predicate features → MLP;
//! * **MSCN+sampling**: the same network with a bitmap of materialized
//!   sample hits appended to the features (the hybrid baseline that the
//!   paper shows gains a lot from data information).
//!
//! The network regresses the *normalized log-selectivity* (the original's
//! target transform) with an MSE loss.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use uae_data::Table;
use uae_query::{CardEstimator, EstimatorFamily, LabeledQuery, Query, QueryCost};
use uae_tensor::rng::he_uniform;
use uae_tensor::{Adam, GradStore, Optimizer, ParamId, ParamStore, Tape, Tensor};

use crate::features::QueryFeaturizer;

/// MSCN hyper-parameters (paper defaults: 2 layers of 256 units).
#[derive(Debug, Clone)]
pub struct MscnConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Number of materialized sample rows (0 = MSCN-base).
    pub sample_rows: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for MscnConfig {
    fn default() -> Self {
        MscnConfig { hidden: 256, epochs: 40, batch: 64, lr: 1e-3, sample_rows: 0, seed: 77 }
    }
}

/// The MSCN estimator.
pub struct MscnEstimator {
    name: String,
    featurizer: QueryFeaturizer,
    sample: Option<Table>,
    store: ParamStore,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    w3: ParamId,
    b3: ParamId,
    /// log(1/|T|): output 0.0 ↔ minimum selectivity, 1.0 ↔ selectivity 1.
    ln_min: f64,
    total_rows: usize,
}

impl MscnEstimator {
    /// Train MSCN on a labeled workload.
    pub fn new(table: &Table, workload: &[LabeledQuery], cfg: &MscnConfig) -> Self {
        let featurizer = QueryFeaturizer::new(table);
        let sample = (cfg.sample_rows > 0).then(|| {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xbead);
            let n = table.num_rows();
            let take = cfg.sample_rows.min(n);
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..take {
                let j = rng.random_range(i..n);
                idx.swap(i, j);
            }
            idx.truncate(take);
            table.take_rows(&idx)
        });
        let in_dim = featurizer.mscn_width() + sample.as_ref().map_or(0, Table::num_rows);

        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let h = cfg.hidden;
        let w1 = store.add("w1", he_uniform(&mut rng, in_dim, h));
        let b1 = store.add("b1", Tensor::zeros(1, h));
        let w2 = store.add("w2", he_uniform(&mut rng, h, h));
        let b2 = store.add("b2", Tensor::zeros(1, h));
        let w3 = store.add("w3", he_uniform(&mut rng, h, 1));
        let b3 = store.add("b3", Tensor::zeros(1, 1));

        let mut est = MscnEstimator {
            name: if sample.is_some() { "MSCN+sampling" } else { "MSCN-base" }.to_owned(),
            featurizer,
            sample,
            store,
            w1,
            b1,
            w2,
            b2,
            w3,
            b3,
            ln_min: (1.0 / table.num_rows().max(2) as f64).ln(),
            total_rows: table.num_rows(),
        };
        est.fit(workload, cfg, &mut rng);
        est
    }

    fn features(&self, query: &Query) -> Vec<f32> {
        let mut f = self.featurizer.mscn_features(query);
        if let Some(sample) = &self.sample {
            f.extend(self.featurizer.sample_bitmap(sample, query));
        }
        f
    }

    fn target(&self, selectivity: f64) -> f32 {
        // Map ln(sel) ∈ [ln_min, 0] to [0, 1].
        let s = selectivity.max((self.ln_min).exp());
        (1.0 - s.ln() / self.ln_min) as f32
    }

    fn inverse_target(&self, y: f64) -> f64 {
        ((1.0 - y.clamp(0.0, 1.0)) * self.ln_min).exp()
    }

    fn fit(&mut self, workload: &[LabeledQuery], cfg: &MscnConfig, rng: &mut StdRng) {
        if workload.is_empty() {
            return;
        }
        let feats: Vec<Vec<f32>> = workload.iter().map(|lq| self.features(&lq.query)).collect();
        let targets: Vec<f32> = workload.iter().map(|lq| self.target(lq.selectivity)).collect();
        let mut opt = Adam::new(cfg.lr);
        let n = workload.len();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..cfg.epochs {
            // Shuffle.
            for i in (1..n).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(cfg.batch) {
                let b = chunk.len();
                let dim = feats[0].len();
                let mut x = Tensor::zeros(b, dim);
                let mut y = Tensor::zeros(b, 1);
                for (r, &i) in chunk.iter().enumerate() {
                    x.row_mut(r).copy_from_slice(&feats[i]);
                    y.set(r, 0, targets[i]);
                }
                let mut grads = GradStore::zeros_like(&self.store);
                {
                    let mut tape = Tape::new(&self.store);
                    let xn = tape.input(x);
                    let pred = self.forward(&mut tape, xn);
                    let yn = tape.input(y);
                    let diff = tape.sub(pred, yn);
                    let sq = tape.mul(diff, diff);
                    let loss = tape.mean_all(sq);
                    tape.backward(loss, &mut grads);
                }
                opt.step(&mut self.store, &grads);
            }
        }
    }

    fn forward(&self, tape: &mut Tape<'_>, x: uae_tensor::NodeId) -> uae_tensor::NodeId {
        let w1 = tape.param(self.w1);
        let b1 = tape.param(self.b1);
        let h = tape.matmul(x, w1);
        let h = tape.add_bias(h, b1);
        let h = tape.relu(h);
        let w2 = tape.param(self.w2);
        let b2 = tape.param(self.b2);
        let h = tape.matmul(h, w2);
        let h = tape.add_bias(h, b2);
        let h = tape.relu(h);
        let w3 = tape.param(self.w3);
        let b3 = tape.param(self.b3);
        let o = tape.matmul(h, w3);
        let o = tape.add_bias(o, b3);
        tape.sigmoid(o)
    }
}

impl CardEstimator for MscnEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_rows(&self) -> f64 {
        self.total_rows as f64
    }

    fn estimate_selectivity(&self, query: &Query) -> f64 {
        let f = self.features(query);
        let mut tape = Tape::new(&self.store);
        let x = tape.input(Tensor::from_vec(1, f.len(), f));
        let y = self.forward(&mut tape, x);
        self.inverse_target(tape.value(y).scalar_value() as f64)
    }

    fn size_bytes(&self) -> usize {
        self.store.size_bytes()
            + self.sample.as_ref().map_or(0, |s| s.num_rows() * s.num_cols() * 4)
    }

    fn family(&self) -> EstimatorFamily {
        EstimatorFamily::Regression
    }

    fn cost_class(&self) -> QueryCost {
        QueryCost::Moderate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use uae_data::census_like;
    use uae_query::{evaluate, generate_workload, WorkloadSpec};

    fn quick_cfg(sample_rows: usize) -> MscnConfig {
        MscnConfig { hidden: 64, epochs: 25, batch: 32, sample_rows, ..MscnConfig::default() }
    }

    #[test]
    fn mscn_learns_training_distribution() {
        let t = census_like(2000, 1);
        let col = uae_query::default_bounded_column(&t);
        let train = generate_workload(&t, &WorkloadSpec::in_workload(col, 150, 1), &HashSet::new());
        let excl = uae_query::fingerprints(&train);
        let test = generate_workload(&t, &WorkloadSpec::in_workload(col, 40, 2), &excl);
        let mscn = MscnEstimator::new(&t, &train, &quick_cfg(0));
        let ev = evaluate(&mscn, &test);
        assert_eq!(ev.name, "MSCN-base");
        assert!(ev.errors.median < 30.0, "median q-error {}", ev.errors.median);
    }

    #[test]
    fn sampling_features_help_on_shifted_workload() {
        let t = census_like(2000, 2);
        let col = uae_query::default_bounded_column(&t);
        let train = generate_workload(&t, &WorkloadSpec::in_workload(col, 150, 3), &HashSet::new());
        let random = generate_workload(&t, &WorkloadSpec::random(40, 4), &HashSet::new());
        let base = MscnEstimator::new(&t, &train, &quick_cfg(0));
        let plus = MscnEstimator::new(&t, &train, &quick_cfg(256));
        let eb = evaluate(&base, &random);
        let ep = evaluate(&plus, &random);
        assert_eq!(ep.name, "MSCN+sampling");
        // The paper's finding (7): data information boosts supervised
        // methods, most visibly on out-of-workload queries.
        assert!(
            ep.errors.median <= eb.errors.median * 1.5,
            "sampling features should not hurt much: {} vs {}",
            ep.errors.median,
            eb.errors.median
        );
    }

    #[test]
    fn target_transform_round_trips() {
        let t = census_like(500, 3);
        let mscn = MscnEstimator::new(&t, &[], &quick_cfg(0));
        for sel in [1.0, 0.1, 0.01, 1.0 / 500.0] {
            let y = mscn.target(sel) as f64;
            let back = mscn.inverse_target(y);
            assert!((back - sel).abs() / sel < 1e-3, "{sel} → {y} → {back}");
        }
    }
}
