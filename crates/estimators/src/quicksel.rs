//! QuickSel-style uniform mixture model (Park et al., SIGMOD 2020) — the
//! query-driven mixture baseline from the paper's related work (Table 1,
//! "Mixture models"). The data distribution is modeled as a weighted
//! mixture of uniform distributions over boxes derived from the training
//! queries; weights are fit by (projected) least squares so that each
//! training query's probability matches its observed selectivity.

use uae_data::Table;
use uae_query::{CardEstimator, EstimatorFamily, LabeledQuery, Query, QueryCost, QueryRegion};

/// QuickSel-style estimator.
#[derive(Debug)]
pub struct QuickSelEstimator {
    name: String,
    /// Mixture component boxes: per column, admitted-code interval
    /// `[lo, hi)` (full domain when unconstrained).
    boxes: Vec<Vec<(u32, u32)>>,
    weights: Vec<f64>,
    table: Table,
    total_rows: usize,
}

impl QuickSelEstimator {
    /// Fit the mixture to a labeled workload. At most `max_components`
    /// training-query boxes are used (subsampled deterministically), plus
    /// one full-domain base component so the mixture always covers the
    /// whole space.
    pub fn new(table: &Table, workload: &[LabeledQuery], max_components: usize) -> Self {
        let step = workload.len().div_ceil(max_components.max(1)).max(1);
        let chosen: Vec<&LabeledQuery> =
            workload.iter().step_by(step).take(max_components.max(1)).collect();
        let full: Vec<(u32, u32)> =
            (0..table.num_cols()).map(|c| (0, table.column(c).domain_size() as u32)).collect();
        let mut boxes: Vec<Vec<(u32, u32)>> = vec![full];
        boxes.extend(chosen.iter().map(|lq| query_box(table, &lq.query)));
        let k = boxes.len();
        let m = chosen.len();

        // A[i][j] = P_j(query_i): mass component j puts inside query i's box.
        let mut a = vec![0.0f64; m * k];
        for (i, lq) in chosen.iter().enumerate() {
            let qb = query_box(table, &lq.query);
            for (j, cb) in boxes.iter().enumerate() {
                a[i * k + j] = box_overlap_mass(cb, &qb);
            }
        }
        let b: Vec<f64> = chosen.iter().map(|lq| lq.selectivity).collect();

        // Ridge least squares (AᵀA + αI) w = Aᵀ b, then project onto the
        // simplex-ish constraint set (w ≥ 0, Σ w = 1).
        let mut xtx = vec![0.0f64; k * k];
        let mut xty = vec![0.0f64; k];
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            for p in 0..k {
                xty[p] += row[p] * b[i];
                for q in 0..k {
                    xtx[p * k + q] += row[p] * row[q];
                }
            }
        }
        for p in 0..k {
            xtx[p * k + p] += 1e-6;
        }
        let mut w =
            crate::lr::cholesky_solve(&mut xtx, &xty, k).unwrap_or_else(|| vec![1.0 / k as f64; k]);
        for wj in &mut w {
            *wj = wj.max(0.0);
        }
        let total: f64 = w.iter().sum();
        if total > 0.0 {
            for wj in &mut w {
                *wj /= total;
            }
        } else {
            w[0] = 1.0; // fall back to the uniform base component
        }

        QuickSelEstimator {
            name: "QuickSel".to_owned(),
            boxes,
            weights: w,
            table: table.clone(),
            total_rows: table.num_rows(),
        }
    }

    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.boxes.len()
    }
}

/// Bounding box of a query's per-column regions.
fn query_box(table: &Table, query: &Query) -> Vec<(u32, u32)> {
    let qr = QueryRegion::build(table, query);
    (0..table.num_cols())
        .map(|c| {
            let d = table.column(c).domain_size() as u32;
            match qr.column(c) {
                None => (0, d),
                Some(region) => {
                    let ranges = region.ranges();
                    if ranges.is_empty() {
                        (0, 0)
                    } else {
                        (ranges[0].0, ranges[ranges.len() - 1].1)
                    }
                }
            }
        })
        .collect()
}

/// Mass a uniform distribution over `component` puts inside `query`:
/// the per-dimension overlap fraction product.
fn box_overlap_mass(component: &[(u32, u32)], query: &[(u32, u32)]) -> f64 {
    let mut mass = 1.0f64;
    for (&(clo, chi), &(qlo, qhi)) in component.iter().zip(query) {
        let width = (chi - clo) as f64;
        if width <= 0.0 {
            return 0.0;
        }
        let overlap = qhi.min(chi).saturating_sub(qlo.max(clo)) as f64;
        mass *= overlap / width;
        if mass == 0.0 {
            return 0.0;
        }
    }
    mass
}

impl CardEstimator for QuickSelEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_rows(&self) -> f64 {
        self.total_rows as f64
    }

    /// Estimated selectivity: `Σ_j w_j · P_j(q)`.
    fn estimate_selectivity(&self, query: &Query) -> f64 {
        let qb = query_box(&self.table, query);
        let mut sel = 0.0f64;
        for (cb, &w) in self.boxes.iter().zip(&self.weights) {
            if w > 0.0 {
                sel += w * box_overlap_mass(cb, &qb);
            }
        }
        sel.clamp(0.0, 1.0)
    }

    fn size_bytes(&self) -> usize {
        self.boxes.iter().map(|b| b.len() * 8).sum::<usize>() + self.weights.len() * 8
    }

    fn family(&self) -> EstimatorFamily {
        EstimatorFamily::Mixture
    }

    fn cost_class(&self) -> QueryCost {
        QueryCost::Cheap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::Value;
    use uae_query::{label_queries, Predicate};

    fn table() -> Table {
        Table::from_columns("t", vec![("x".into(), (0..1000i64).map(Value::Int).collect())])
    }

    #[test]
    fn fits_disjoint_training_ranges() {
        let t = table();
        // Training queries tile the domain in 10 disjoint ranges.
        let queries: Vec<Query> = (0..10)
            .map(|i| {
                Query::new(vec![
                    Predicate::ge(0, (i * 100) as i64),
                    Predicate::le(0, (i * 100 + 99) as i64),
                ])
            })
            .collect();
        let workload = label_queries(&t, queries);
        let qs = QuickSelEstimator::new(&t, &workload, 32);
        // Each training range has true selectivity 0.1; the fit should be
        // close on the training points.
        let mut worst: f64 = 0.0;
        for lq in &workload {
            let e = qs.estimate_selectivity(&lq.query);
            worst = worst.max((e - lq.selectivity).abs());
        }
        assert!(worst < 0.05, "worst training residual {worst}");
    }

    #[test]
    fn weights_remain_nonnegative_and_subnormalized() {
        let t = table();
        let queries: Vec<Query> =
            (0..20).map(|i| Query::new(vec![Predicate::le(0, (i * 50) as i64)])).collect();
        let workload = label_queries(&t, queries);
        let qs = QuickSelEstimator::new(&t, &workload, 16);
        assert!(qs.weights.iter().all(|&w| w >= 0.0));
        assert!((qs.weights.iter().sum::<f64>() - 1.0).abs() < 1e-6, "weights must sum to 1");
        assert!(qs.num_components() <= 17); // 16 + base component
    }

    #[test]
    fn interpolates_between_training_queries() {
        let t = table();
        let queries: Vec<Query> =
            (1..=10).map(|i| Query::new(vec![Predicate::le(0, (i * 100 - 1) as i64)])).collect();
        let workload = label_queries(&t, queries);
        let qs = QuickSelEstimator::new(&t, &workload, 16);
        // An unseen half-way query should land between its neighbours.
        let q = Query::new(vec![Predicate::le(0, 249i64)]);
        let e = qs.estimate_selectivity(&q);
        assert!((0.1..=0.45).contains(&e), "interpolated selectivity {e}");
    }
}
