//! The Sampling baseline: keep a uniform fraction `p` of the tuples and
//! answer queries by scanning the sample (paper §5.1.4, method 3).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use uae_data::Table;
use uae_query::{CardEstimator, EstimatorFamily, Query, QueryCost, QueryRegion};

/// Uniform-sample estimator.
#[derive(Debug)]
pub struct SamplingEstimator {
    name: String,
    sample: Table,
    total_rows: usize,
}

impl SamplingEstimator {
    /// Materialize a uniform sample of `ratio` (0, 1] of `table`, seeded.
    pub fn new(table: &Table, ratio: f64, seed: u64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "sample ratio must be in (0, 1]");
        let n = table.num_rows();
        let target = ((n as f64 * ratio).round() as usize).clamp(1, n);
        let mut rng = StdRng::seed_from_u64(seed);
        // Floyd-ish sampling: shuffle indices, take prefix.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..target {
            let j = rng.random_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(target);
        SamplingEstimator {
            name: "Sampling".to_owned(),
            sample: table.take_rows(&idx),
            total_rows: n,
        }
    }

    /// Number of sampled tuples.
    pub fn sample_size(&self) -> usize {
        self.sample.num_rows()
    }
}

impl CardEstimator for SamplingEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_rows(&self) -> f64 {
        self.total_rows as f64
    }

    fn estimate_selectivity(&self, query: &Query) -> f64 {
        let region = QueryRegion::build(&self.sample, query);
        if region.is_empty() {
            return 0.0;
        }
        let mut hits = 0usize;
        let m = self.sample.num_rows();
        'rows: for r in 0..m {
            for (c, reg) in region.columns().iter().enumerate() {
                if let Some(reg) = reg {
                    if !reg.contains(self.sample.column(c).code(r)) {
                        continue 'rows;
                    }
                }
            }
            hits += 1;
        }
        hits as f64 / m as f64
    }

    fn family(&self) -> EstimatorFamily {
        EstimatorFamily::Sampling
    }

    fn cost_class(&self) -> QueryCost {
        QueryCost::Moderate
    }

    fn size_bytes(&self) -> usize {
        // One u32 code per cell plus dictionaries are shared with the base
        // table; count the codes (what a real system would materialize).
        self.sample.num_rows() * self.sample.num_cols() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::Value;
    use uae_query::Predicate;

    fn table() -> Table {
        Table::from_columns(
            "t",
            vec![("x".into(), (0..1000i64).map(|v| Value::Int(v % 10)).collect())],
        )
    }

    #[test]
    fn full_sample_is_exact() {
        let t = table();
        let est = SamplingEstimator::new(&t, 1.0, 1);
        let q = Query::new(vec![Predicate::eq(0, 3i64)]);
        assert_eq!(est.estimate_card(&q), 100.0);
    }

    #[test]
    fn partial_sample_is_unbiased_ish() {
        let t = table();
        let est = SamplingEstimator::new(&t, 0.2, 2);
        assert_eq!(est.sample_size(), 200);
        let q = Query::new(vec![Predicate::le(0, 4i64)]);
        let e = est.estimate_card(&q);
        assert!((e - 500.0).abs() < 100.0, "estimate {e} too far from 500");
    }

    #[test]
    fn size_reflects_ratio() {
        let t = table();
        let small = SamplingEstimator::new(&t, 0.1, 3);
        let big = SamplingEstimator::new(&t, 0.5, 3);
        assert!(small.size_bytes() < big.size_bytes());
    }
}
