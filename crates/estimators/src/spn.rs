//! A sum-product-network estimator in the spirit of DeepDB's RSPNs
//! (paper §5.1.4, method 6).
//!
//! Structure learning recursively alternates:
//! * **column splits** — partition the attributes into groups that look
//!   pairwise independent (normalized mutual information below a
//!   threshold), producing a *product* node;
//! * **row splits** — 2-means clustering of the rows, producing a weighted
//!   *sum* node;
//! * **leaves** — per-code histograms over a single attribute.
//!
//! Estimation evaluates `P(X ∈ R)` bottom-up: leaves return in-region
//! histogram mass, product nodes multiply, sum nodes mix. This reproduces
//! DeepDB's characteristic behaviour in the paper: excellent when the
//! independence structure is real (Census, Kddcup98), degraded when
//! attributes are strongly correlated (DMV).

use uae_data::Table;
use uae_query::{CardEstimator, EstimatorFamily, Query, QueryCost, QueryRegion, Region};

/// SPN hyper-parameters.
#[derive(Debug, Clone)]
pub struct SpnConfig {
    /// Stop row-splitting below this many rows.
    pub min_rows: usize,
    /// Normalized-MI threshold below which two columns count as independent.
    pub independence_threshold: f64,
    /// Bin count for the pairwise-dependence test.
    pub test_bins: usize,
    /// Maximum tree depth (safety bound).
    pub max_depth: usize,
}

impl Default for SpnConfig {
    fn default() -> Self {
        SpnConfig { min_rows: 256, independence_threshold: 0.03, test_bins: 10, max_depth: 16 }
    }
}

#[derive(Debug)]
enum Node {
    /// Weighted mixture over row clusters.
    Sum { weights: Vec<f64>, children: Vec<Node> },
    /// Product over independent column groups.
    Product { children: Vec<Node> },
    /// Histogram over one column's codes.
    Leaf { column: usize, freqs: Vec<f64> },
}

/// DeepDB-style SPN estimator.
#[derive(Debug)]
pub struct SpnEstimator {
    name: String,
    root: Node,
    table: Table,
    total_rows: usize,
    num_scalars: usize,
}

impl SpnEstimator {
    /// Learn an SPN over the table.
    pub fn new(table: &Table, cfg: &SpnConfig) -> Self {
        let rows: Vec<u32> = (0..table.num_rows() as u32).collect();
        let cols: Vec<usize> = (0..table.num_cols()).collect();
        let root = learn(table, &rows, &cols, cfg, 0);
        let num_scalars = count_scalars(&root);
        SpnEstimator {
            name: "DeepDB".to_owned(),
            root,
            table: table.clone(),
            total_rows: table.num_rows(),
            num_scalars,
        }
    }

    /// Estimated expectation `E[ Π_c w_c(X_c) · 1[X ∈ R] ]` — selectivity
    /// with optional per-column importance weights (`weights[c][code]`).
    /// Used by join estimation for NeuroCard-style fanout scaling.
    pub fn estimate_constrained(&self, query: &Query, weights: &[Option<Vec<f64>>]) -> f64 {
        assert_eq!(weights.len(), self.table.num_cols());
        let qr = QueryRegion::build(&self.table, query);
        if qr.is_empty() {
            return 0.0;
        }
        let regions: Vec<Option<&Region>> =
            (0..self.table.num_cols()).map(|c| qr.column(c)).collect();
        eval(&self.root, &regions, weights).max(0.0)
    }

    /// Nodes in the learned structure (diagnostics).
    pub fn num_scalars(&self) -> usize {
        self.num_scalars
    }
}

fn learn(table: &Table, rows: &[u32], cols: &[usize], cfg: &SpnConfig, depth: usize) -> Node {
    if cols.len() == 1 {
        return leaf(table, rows, cols[0]);
    }
    // Attempt a column split via pairwise dependence components.
    if depth < cfg.max_depth {
        let comps = independent_components(table, rows, cols, cfg);
        if comps.len() > 1 {
            let children = comps.iter().map(|g| learn(table, rows, g, cfg, depth + 1)).collect();
            return Node::Product { children };
        }
    }
    // Row split via 2-means, unless too small or too deep. Row splits may
    // repeat down the tree (clusters keep shrinking, so min_rows plus
    // max_depth guarantee termination).
    if rows.len() >= cfg.min_rows && depth < cfg.max_depth {
        if let Some((a, b)) = two_means(table, rows, cols) {
            let wa = a.len() as f64 / rows.len() as f64;
            let children = vec![
                learn(table, &a, cols, cfg, depth + 1),
                learn(table, &b, cols, cfg, depth + 1),
            ];
            return Node::Sum { weights: vec![wa, 1.0 - wa], children };
        }
    }
    // Fallback: force independence (naive factorization terminates).
    let children = cols.iter().map(|&c| leaf(table, rows, c)).collect();
    Node::Product { children }
}

fn leaf(table: &Table, rows: &[u32], column: usize) -> Node {
    let col = table.column(column);
    let mut freqs = vec![0.0f64; col.domain_size()];
    for &r in rows {
        freqs[col.code(r as usize) as usize] += 1.0;
    }
    let total = rows.len().max(1) as f64;
    for f in &mut freqs {
        *f /= total;
    }
    Node::Leaf { column, freqs }
}

/// Connected components of the "dependent" graph over `cols`.
fn independent_components(
    table: &Table,
    rows: &[u32],
    cols: &[usize],
    cfg: &SpnConfig,
) -> Vec<Vec<usize>> {
    let k = cols.len();
    let binned: Vec<Vec<u32>> = cols
        .iter()
        .map(|&c| {
            let col = table.column(c);
            let d = col.domain_size() as u64;
            let nb = cfg.test_bins.min(col.domain_size()) as u64;
            rows.iter().map(|&r| ((col.code(r as usize) as u64 * nb) / d) as u32).collect()
        })
        .collect();
    let mut dsu: Vec<usize> = (0..k).collect();
    fn find(dsu: &mut Vec<usize>, x: usize) -> usize {
        if dsu[x] != x {
            let r = find(dsu, dsu[x]);
            dsu[x] = r;
        }
        dsu[x]
    }
    for i in 0..k {
        for j in i + 1..k {
            if normalized_mi(&binned[i], &binned[j], cfg.test_bins) > cfg.independence_threshold {
                let (a, b) = (find(&mut dsu, i), find(&mut dsu, j));
                dsu[a] = b;
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &col) in cols.iter().enumerate().take(k) {
        let r = find(&mut dsu, i);
        groups[r].push(col);
    }
    groups.into_iter().filter(|g| !g.is_empty()).collect()
}

fn normalized_mi(xs: &[u32], ys: &[u32], bins: usize) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let mut joint = vec![0u32; bins * bins];
    for i in 0..n {
        joint[xs[i] as usize * bins + ys[i] as usize] += 1;
    }
    let mut px = vec![0.0f64; bins];
    let mut py = vec![0.0f64; bins];
    for x in 0..bins {
        for y in 0..bins {
            let p = joint[x * bins + y] as f64 / n as f64;
            px[x] += p;
            py[y] += p;
        }
    }
    let ent = |ps: &[f64]| ps.iter().filter(|&&p| p > 0.0).map(|&p| -p * p.ln()).sum::<f64>();
    let (hx, hy) = (ent(&px), ent(&py));
    if hx.min(hy) < 1e-9 {
        return 0.0;
    }
    let mut mi = 0.0f64;
    for x in 0..bins {
        for y in 0..bins {
            let p = joint[x * bins + y] as f64 / n as f64;
            if p > 0.0 && px[x] > 0.0 && py[y] > 0.0 {
                mi += p * (p / (px[x] * py[y])).ln();
            }
        }
    }
    mi / hx.min(hy)
}

/// 2-means over rows (features: normalized codes of `cols`); a handful of
/// Lloyd iterations is plenty for a split decision.
fn two_means(table: &Table, rows: &[u32], cols: &[usize]) -> Option<(Vec<u32>, Vec<u32>)> {
    let n = rows.len();
    if n < 4 {
        return None;
    }
    let feats: Vec<Vec<f64>> = cols
        .iter()
        .map(|&c| {
            let col = table.column(c);
            let d = (col.domain_size().max(2) - 1) as f64;
            rows.iter().map(|&r| col.code(r as usize) as f64 / d).collect()
        })
        .collect();
    let k = cols.len();
    // Deterministic init: first and most-distant-from-first points.
    let mut c0: Vec<f64> = (0..k).map(|f| feats[f][0]).collect();
    let far = (0..n)
        .max_by(|&a, &b| {
            let da: f64 = (0..k).map(|f| (feats[f][a] - c0[f]).powi(2)).sum();
            let db: f64 = (0..k).map(|f| (feats[f][b] - c0[f]).powi(2)).sum();
            da.total_cmp(&db)
        })
        .unwrap_or(n - 1);
    let mut c1: Vec<f64> = (0..k).map(|f| feats[f][far]).collect();
    let mut assign = vec![false; n];
    for _ in 0..6 {
        for i in 0..n {
            let d0: f64 = (0..k).map(|f| (feats[f][i] - c0[f]).powi(2)).sum();
            let d1: f64 = (0..k).map(|f| (feats[f][i] - c1[f]).powi(2)).sum();
            assign[i] = d1 < d0;
        }
        let mut n0 = 0usize;
        let mut n1 = 0usize;
        let mut s0 = vec![0.0f64; k];
        let mut s1 = vec![0.0f64; k];
        for i in 0..n {
            if assign[i] {
                n1 += 1;
                for f in 0..k {
                    s1[f] += feats[f][i];
                }
            } else {
                n0 += 1;
                for f in 0..k {
                    s0[f] += feats[f][i];
                }
            }
        }
        if n0 == 0 || n1 == 0 {
            return None;
        }
        for f in 0..k {
            c0[f] = s0[f] / n0 as f64;
            c1[f] = s1[f] / n1 as f64;
        }
    }
    let a: Vec<u32> = rows.iter().zip(&assign).filter(|(_, &x)| !x).map(|(&r, _)| r).collect();
    let b: Vec<u32> = rows.iter().zip(&assign).filter(|(_, &x)| x).map(|(&r, _)| r).collect();
    if a.is_empty() || b.is_empty() {
        None
    } else {
        Some((a, b))
    }
}

fn eval(node: &Node, regions: &[Option<&Region>], col_weights: &[Option<Vec<f64>>]) -> f64 {
    match node {
        Node::Leaf { column, freqs } => {
            let w = col_weights[*column].as_deref();
            match (regions[*column], w) {
                (None, None) => 1.0,
                (Some(region), None) => region.iter_codes().map(|c| freqs[c as usize]).sum(),
                (None, Some(w)) => freqs.iter().zip(w).map(|(f, wv)| f * wv).sum(),
                (Some(region), Some(w)) => {
                    region.iter_codes().map(|c| freqs[c as usize] * w[c as usize]).sum()
                }
            }
        }
        Node::Product { children } => {
            children.iter().map(|ch| eval(ch, regions, col_weights)).product()
        }
        Node::Sum { weights, children } => {
            weights.iter().zip(children).map(|(w, ch)| w * eval(ch, regions, col_weights)).sum()
        }
    }
}

fn count_scalars(node: &Node) -> usize {
    match node {
        Node::Leaf { freqs, .. } => freqs.len(),
        Node::Product { children } => children.iter().map(count_scalars).sum::<usize>() + 1,
        Node::Sum { weights, children } => {
            weights.len() + children.iter().map(count_scalars).sum::<usize>()
        }
    }
}

impl CardEstimator for SpnEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_rows(&self) -> f64 {
        self.total_rows as f64
    }

    fn estimate_selectivity(&self, query: &Query) -> f64 {
        let none = vec![None; self.table.num_cols()];
        self.estimate_constrained(query, &none)
    }

    fn size_bytes(&self) -> usize {
        self.num_scalars * 8
    }

    fn family(&self) -> EstimatorFamily {
        EstimatorFamily::Spn
    }

    fn cost_class(&self) -> QueryCost {
        QueryCost::Cheap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::Value;
    use uae_query::Predicate;

    #[test]
    fn independent_columns_split_into_product() {
        // Two genuinely independent columns.
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 3000;
        let t = Table::from_columns(
            "t",
            vec![
                ("a".into(), (0..n).map(|_| Value::Int(rng.random_range(0..10))).collect()),
                ("b".into(), (0..n).map(|_| Value::Int(rng.random_range(0..8))).collect()),
            ],
        );
        let spn = SpnEstimator::new(&t, &SpnConfig::default());
        assert!(matches!(spn.root, Node::Product { .. }), "independent cols → product root");
        // P(a<5, b=3) ≈ 0.5 * 0.125.
        let q = Query::new(vec![Predicate::le(0, 4i64), Predicate::eq(1, 3i64)]);
        let sel = spn.estimate_selectivity(&q);
        assert!((sel - 0.0625).abs() < 0.02, "sel {sel}");
    }

    #[test]
    fn correlated_columns_fall_back_to_sum_nodes() {
        // b = a exactly: a product root would be wrong.
        let n = 3000i64;
        let t = Table::from_columns(
            "t",
            vec![
                ("a".into(), (0..n).map(|v| Value::Int(v % 10)).collect()),
                ("b".into(), (0..n).map(|v| Value::Int(v % 10)).collect()),
            ],
        );
        let spn = SpnEstimator::new(&t, &SpnConfig::default());
        let q = Query::new(vec![Predicate::eq(0, 3i64), Predicate::eq(1, 3i64)]);
        let sel = spn.estimate_selectivity(&q);
        // True P = 0.1; AVI would say 0.01. SPN should land well above AVI.
        assert!(sel > 0.03, "correlated sel {sel} collapsed to independence");
    }

    #[test]
    fn unconstrained_evaluates_to_one() {
        let n = 1000i64;
        let t = Table::from_columns(
            "t",
            vec![("a".into(), (0..n).map(|v| Value::Int(v % 7)).collect())],
        );
        let spn = SpnEstimator::new(&t, &SpnConfig::default());
        assert!((spn.estimate_selectivity(&Query::default()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn leaf_mass_matches_marginal() {
        let n = 1000i64;
        let t = Table::from_columns(
            "t",
            vec![("a".into(), (0..n).map(|v| Value::Int(v % 4)).collect())],
        );
        let spn = SpnEstimator::new(&t, &SpnConfig::default());
        let q = Query::new(vec![Predicate::eq(0, 2i64)]);
        assert!((spn.estimate_selectivity(&q) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn size_grows_with_structure() {
        let n = 2000i64;
        let t = Table::from_columns(
            "t",
            vec![
                ("a".into(), (0..n).map(|v| Value::Int(v % 16)).collect()),
                ("b".into(), (0..n).map(|v| Value::Int((v % 16) / 2)).collect()),
                ("c".into(), (0..n).map(|v| Value::Int((v * 31 + 7) % 9)).collect()),
            ],
        );
        let spn = SpnEstimator::new(&t, &SpnConfig::default());
        assert!(spn.size_bytes() > 0);
        assert!(spn.num_scalars() >= 16 + 8 + 9);
    }
}
