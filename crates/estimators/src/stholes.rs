//! STHoles (Bruno, Chaudhuri & Gravano, SIGMOD 2001) — the classic
//! workload-aware multidimensional histogram, one of the baselines the
//! paper ran ("we also compared with STHoles [12]…").
//!
//! The histogram is a tree of nested axis-aligned buckets: each query's
//! feedback (the true row count inside every intersected bucket) "drills a
//! hole" — a child bucket carrying the observed count — so density
//! concentrates where the workload looks. A bucket budget is enforced by
//! merging the parent–child pair with the smallest density difference.
//!
//! Feedback here is computed exactly with the executor, mirroring the
//! original system's scan instrumentation.

use uae_data::Table;
use uae_query::{CardEstimator, EstimatorFamily, LabeledQuery, Query, QueryCost, QueryRegion};

/// Axis-aligned box over dictionary codes, `[lo, hi)` per column.
type BBox = Vec<(u32, u32)>;

fn box_volume(b: &BBox) -> f64 {
    b.iter().map(|&(lo, hi)| (hi.saturating_sub(lo)) as f64).product()
}

fn box_intersect(a: &BBox, b: &BBox) -> Option<BBox> {
    let mut out = Vec::with_capacity(a.len());
    for (&(alo, ahi), &(blo, bhi)) in a.iter().zip(b) {
        let lo = alo.max(blo);
        let hi = ahi.min(bhi);
        if lo >= hi {
            return None;
        }
        out.push((lo, hi));
    }
    Some(out)
}

fn box_contains(outer: &BBox, inner: &BBox) -> bool {
    outer.iter().zip(inner).all(|(&(olo, ohi), &(ilo, ihi))| olo <= ilo && ihi <= ohi)
}

#[derive(Debug, Clone)]
struct Bucket {
    bbox: BBox,
    /// Rows attributed to this bucket, excluding its holes.
    frequency: f64,
    children: Vec<Bucket>,
}

impl Bucket {
    /// Volume owned by this bucket = box volume − children volumes.
    fn own_volume(&self) -> f64 {
        let v =
            box_volume(&self.bbox) - self.children.iter().map(|c| box_volume(&c.bbox)).sum::<f64>();
        v.max(1.0)
    }

    fn count_buckets(&self) -> usize {
        1 + self.children.iter().map(Bucket::count_buckets).sum::<usize>()
    }

    /// Estimated rows inside `q` (uniformity within the owned region,
    /// holes handled recursively).
    fn estimate(&self, q: &BBox) -> f64 {
        let Some(inter) = box_intersect(&self.bbox, q) else { return 0.0 };
        let mut est = 0.0;
        // Overlap with the owned region ≈ overlap with the whole box minus
        // the children's boxes (children are disjoint from each other).
        let mut overlap = box_volume(&inter);
        for ch in &self.children {
            if let Some(ci) = box_intersect(&ch.bbox, &inter) {
                overlap -= box_volume(&ci);
            }
            est += ch.estimate(q);
        }
        est + self.frequency * (overlap.max(0.0) / self.own_volume())
    }

    /// Drill a hole for an observed (box, count) pair.
    fn drill(&mut self, hole: &BBox, count: f64) {
        // Recurse into a child that fully contains the hole.
        for ch in &mut self.children {
            if box_contains(&ch.bbox, hole) {
                ch.drill(hole, count);
                return;
            }
        }
        if self.bbox == *hole {
            // The hole covers this bucket exactly: update the frequency.
            let child_total: f64 = self.children.iter().map(|c| c.frequency).sum();
            self.frequency = (count - child_total).max(0.0);
            return;
        }
        // Absorb children that the hole swallows.
        let mut swallowed = Vec::new();
        self.children.retain(|ch| {
            if box_contains(hole, &ch.bbox) {
                swallowed.push(ch.clone());
                false
            } else {
                true
            }
        });
        // Children partially overlapping the hole: shrink the hole to stay
        // disjoint (the classic STHoles "shrink" step, done per axis).
        let mut shrunk = hole.clone();
        for ch in &self.children {
            if let Some(inter) = box_intersect(&ch.bbox, &shrunk) {
                // Shrink along the axis that loses the least volume.
                let mut best: Option<(usize, bool, f64)> = None;
                for (axis, (&(ilo, ihi), &(slo, shi))) in inter.iter().zip(&shrunk).enumerate() {
                    // Cut below or above the intersection on this axis.
                    let cut_low = (ihi - slo) as f64 / (shi - slo).max(1) as f64;
                    let cut_high = (shi - ilo) as f64 / (shi - slo).max(1) as f64;
                    for (frac, from_low) in [(cut_low, true), (cut_high, false)] {
                        if best.as_ref().is_none_or(|&(_, _, f)| frac < f) {
                            best = Some((axis, from_low, frac));
                        }
                    }
                }
                if let Some((axis, from_low, _)) = best {
                    let (ilo, ihi) = inter[axis];
                    if from_low {
                        shrunk[axis].0 = ihi;
                    } else {
                        shrunk[axis].1 = ilo;
                    }
                    if shrunk[axis].0 >= shrunk[axis].1 {
                        return; // hole vanished
                    }
                }
            }
        }
        let swallowed_count: f64 = swallowed.iter().map(|c| c.frequency).sum();
        // Frequency moves from this bucket into the hole.
        let moved = (count - swallowed_count).clamp(0.0, self.frequency);
        self.frequency -= moved;
        self.children.push(Bucket { bbox: shrunk, frequency: moved, children: swallowed });
    }

    /// Merge the parent–child pair with the most similar density; returns
    /// whether a merge happened.
    fn merge_cheapest(&mut self) -> bool {
        // Find (path) of the cheapest parent-child merge in this subtree.
        fn cheapest(b: &Bucket) -> Option<(usize, f64)> {
            let mut best: Option<(usize, f64)> = None;
            for (i, ch) in b.children.iter().enumerate() {
                let d_parent = b.frequency / b.own_volume();
                let d_child = ch.frequency / ch.own_volume();
                let penalty = (d_parent - d_child).abs() * box_volume(&ch.bbox);
                if best.as_ref().is_none_or(|&(_, p)| penalty < p) {
                    best = Some((i, penalty));
                }
            }
            best
        }
        // Greedy: merge at the deepest level first to keep the tree tidy.
        for ch in &mut self.children {
            if !ch.children.is_empty() && ch.merge_cheapest() {
                return true;
            }
        }
        if let Some((i, _)) = cheapest(self) {
            let ch = self.children.remove(i);
            self.frequency += ch.frequency;
            self.children.extend(ch.children);
            return true;
        }
        false
    }
}

/// STHoles estimator.
#[derive(Debug)]
pub struct StHolesEstimator {
    name: String,
    root: Bucket,
    table: Table,
    max_buckets: usize,
}

impl StHolesEstimator {
    /// An empty histogram (one root bucket with uniformity assumptions).
    pub fn new(table: &Table, max_buckets: usize) -> Self {
        let bbox: BBox = table.columns().iter().map(|c| (0u32, c.domain_size() as u32)).collect();
        StHolesEstimator {
            name: "STHoles".to_owned(),
            root: Bucket { bbox, frequency: table.num_rows() as f64, children: Vec::new() },
            table: table.clone(),
            max_buckets: max_buckets.max(1),
        }
    }

    /// Refine with a labeled workload (each query drills holes using exact
    /// per-bucket feedback from the executor).
    pub fn refine(&mut self, workload: &[LabeledQuery]) {
        for lq in workload {
            self.refine_one(&lq.query);
        }
    }

    fn refine_one(&mut self, query: &Query) {
        let Some(qbox) = self.query_box(query) else { return };
        // Feedback: exact count inside (query ∩ bucket) for every bucket
        // the query intersects — collect the intersection boxes first.
        let mut holes: Vec<BBox> = Vec::new();
        collect_holes(&self.root, &qbox, &mut holes);
        // Count rows per hole (one scan per hole; holes are few).
        for hole in holes {
            let count = self.count_box(&hole) as f64;
            self.root.drill(&hole, count);
        }
        while self.root.count_buckets() > self.max_buckets {
            if !self.root.merge_cheapest() {
                break;
            }
        }
    }

    /// Number of buckets currently held.
    pub fn num_buckets(&self) -> usize {
        self.root.count_buckets()
    }

    fn query_box(&self, query: &Query) -> Option<BBox> {
        let qr = QueryRegion::build(&self.table, query);
        if qr.is_empty() {
            return None;
        }
        Some(
            (0..self.table.num_cols())
                .map(|c| {
                    let d = self.table.column(c).domain_size() as u32;
                    match qr.column(c) {
                        None => (0, d),
                        Some(region) => {
                            let ranges = region.ranges();
                            (ranges[0].0, ranges[ranges.len() - 1].1)
                        }
                    }
                })
                .collect(),
        )
    }

    fn count_box(&self, b: &BBox) -> u64 {
        let mut count = 0u64;
        'rows: for r in 0..self.table.num_rows() {
            for (c, &(lo, hi)) in b.iter().enumerate() {
                let code = self.table.column(c).code(r);
                if code < lo || code >= hi {
                    continue 'rows;
                }
            }
            count += 1;
        }
        count
    }
}

fn collect_holes(bucket: &Bucket, qbox: &BBox, out: &mut Vec<BBox>) {
    if let Some(inter) = box_intersect(&bucket.bbox, qbox) {
        out.push(inter);
        for ch in &bucket.children {
            collect_holes(ch, qbox, out);
        }
    }
}

impl CardEstimator for StHolesEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_rows(&self) -> f64 {
        self.table.num_rows() as f64
    }

    /// Estimated selectivity (bounding-box semantics, like the original).
    fn estimate_selectivity(&self, query: &Query) -> f64 {
        let Some(qbox) = self.query_box(query) else { return 0.0 };
        (self.root.estimate(&qbox) / self.table.num_rows().max(1) as f64).clamp(0.0, 1.0)
    }

    fn size_bytes(&self) -> usize {
        // Per bucket: bbox (2 u32 per dim) + frequency.
        self.num_buckets() * (self.table.num_cols() * 8 + 8)
    }

    fn family(&self) -> EstimatorFamily {
        EstimatorFamily::WorkloadHistogram
    }

    fn cost_class(&self) -> QueryCost {
        QueryCost::Cheap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::Value;
    use uae_query::{label_queries, Predicate};

    fn skewed_table() -> Table {
        // 90% of rows in the [0, 10) x [0, 10) corner.
        let n = 2000usize;
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            if i % 10 != 0 {
                xs.push(Value::Int((i % 10) as i64));
                ys.push(Value::Int(((i / 10) % 10) as i64));
            } else {
                xs.push(Value::Int(10 + (i % 90) as i64));
                ys.push(Value::Int(10 + ((i / 7) % 90) as i64));
            }
        }
        Table::from_columns("t", vec![("x".into(), xs), ("y".into(), ys)])
    }

    #[test]
    fn unrefined_histogram_assumes_uniformity() {
        let t = skewed_table();
        let st = StHolesEstimator::new(&t, 32);
        // The hot corner is 1% of the volume but 90% of the rows; the
        // uniform root must underestimate it badly.
        let q = Query::new(vec![Predicate::le(0, 9i64), Predicate::le(1, 9i64)]);
        let est = st.estimate_card(&q);
        assert!(est < 300.0, "uniform estimate {est} should be far below 1800");
    }

    #[test]
    fn refinement_fixes_the_workload_region() {
        let t = skewed_table();
        let mut st = StHolesEstimator::new(&t, 32);
        let q = Query::new(vec![Predicate::le(0, 9i64), Predicate::le(1, 9i64)]);
        let workload = label_queries(&t, vec![q.clone()]);
        let before = (st.estimate_card(&q) - workload[0].cardinality as f64).abs();
        st.refine(&workload);
        let after = (st.estimate_card(&q) - workload[0].cardinality as f64).abs();
        assert!(
            after < before / 4.0,
            "refinement should fix the drilled region: {before} → {after}"
        );
        assert!(st.num_buckets() > 1);
    }

    #[test]
    fn bucket_budget_is_enforced() {
        let t = skewed_table();
        let mut st = StHolesEstimator::new(&t, 8);
        let queries: Vec<Query> = (0..30)
            .map(|i| {
                Query::new(vec![
                    Predicate::ge(0, (i % 15) as i64),
                    Predicate::le(0, (i % 15 + 20) as i64),
                ])
            })
            .collect();
        st.refine(&label_queries(&t, queries));
        assert!(st.num_buckets() <= 8, "budget exceeded: {}", st.num_buckets());
    }

    #[test]
    fn total_mass_is_conserved() {
        let t = skewed_table();
        let mut st = StHolesEstimator::new(&t, 16);
        let queries: Vec<Query> =
            (0..10).map(|i| Query::new(vec![Predicate::le(0, (i * 9) as i64)])).collect();
        st.refine(&label_queries(&t, queries));
        let full = Query::default();
        let est = st.estimate_card(&full);
        let truth = t.num_rows() as f64;
        assert!(
            (est - truth).abs() / truth < 0.25,
            "full-table estimate {est} drifted from {truth}"
        );
    }
}
