//! Regime tests: each estimator family fails exactly where its modeling
//! assumption breaks — the causal claims behind the paper's findings
//! (3)–(7), tested directly rather than via leaderboard positions.

use std::collections::HashSet;

use uae_data::{Table, Value};
use uae_estimators::{
    BayesNetEstimator, HistogramEstimator, KdeEstimator, MhistEstimator, QuickSelEstimator,
    SamplingEstimator, SpnConfig, SpnEstimator, StHolesEstimator,
};
use uae_query::{
    evaluate, generate_workload, label_queries, CardEstimator, Predicate, Query, WorkloadSpec,
};

/// Two perfectly correlated columns: AVI's nightmare.
fn correlated_table() -> Table {
    let n = 4_000i64;
    Table::from_columns(
        "corr",
        vec![
            ("a".into(), (0..n).map(|v| Value::Int(v % 20)).collect()),
            ("b".into(), (0..n).map(|v| Value::Int(v % 20)).collect()),
            ("c".into(), (0..n).map(|v| Value::Int((v * 13 + 5) % 7)).collect()),
        ],
    )
}

#[test]
fn avi_histograms_break_on_correlation_while_structure_learners_do_not() {
    let t = correlated_table();
    // a = 3 AND b = 3: true selectivity 1/20; AVI predicts 1/400.
    let q = Query::new(vec![Predicate::eq(0, 3i64), Predicate::eq(1, 3i64)]);
    let truth = 4_000.0 / 20.0;

    let avi = HistogramEstimator::new(&t, 64);
    let avi_est = avi.estimate_card(&q);
    assert!(avi_est < truth / 5.0, "AVI must underestimate: {avi_est} vs {truth}");

    for est in [
        &BayesNetEstimator::new(&t, 64) as &dyn CardEstimator,
        &SpnEstimator::new(&t, &SpnConfig::default()),
    ] {
        let e = est.estimate_card(&q);
        let qerr = (e.max(1.0) / truth).max(truth / e.max(1.0));
        assert!(qerr < 2.5, "{} q-error {qerr} on the correlated pair", est.name());
    }
}

#[test]
fn tiny_samples_miss_rare_values() {
    // A value present in 0.05% of rows is usually absent from a 1% sample;
    // sampling then estimates 0 while the truth is 10 — the classic
    // small-sample failure the paper attributes to sampling at the tail.
    let n = 20_000i64;
    let t = Table::from_columns(
        "rare",
        vec![("x".into(), (0..n).map(|v| Value::Int(if v < 10 { 999 } else { v % 50 })).collect())],
    );
    let q = Query::new(vec![Predicate::eq(0, 999i64)]);
    let s = SamplingEstimator::new(&t, 0.01, 7);
    let est = s.estimate_card(&q);
    // Either zero (value missed) or a large multiple (value over-sampled):
    // rarely close. Accept the test if the estimate is "unstable": off by
    // more than 2x in either direction across this seed.
    let qerr = (est.max(1.0) / 10.0).max(10.0 / est.max(1.0));
    assert!(qerr > 1.8, "sample estimate {est} suspiciously accurate for a rare value");
}

#[test]
fn workload_aware_methods_improve_inside_the_workload_region() {
    // Dataset seed picked so the refinement margin is well clear of the
    // run-to-run noise of workload generation (the claim itself is only
    // statistical: on some streams an unlucky drill-down order leaves the
    // refined histogram marginally worse on held-out queries).
    let t = uae_data::dmv_like(6_000, 0x7e59);
    let col = uae_query::default_bounded_column(&t);
    let train = generate_workload(&t, &WorkloadSpec::in_workload(col, 120, 1), &HashSet::new());
    let test = generate_workload(
        &t,
        &WorkloadSpec::in_workload(col, 40, 2),
        &uae_query::fingerprints(&train),
    );

    // STHoles refined by the workload must beat its own unrefined root.
    let unrefined = StHolesEstimator::new(&t, 64);
    let before = evaluate(&unrefined, &test);
    let mut refined = StHolesEstimator::new(&t, 64);
    refined.refine(&train);
    let after = evaluate(&refined, &test);
    assert!(
        after.errors.median <= before.errors.median,
        "STHoles refinement regressed: {} → {}",
        before.errors.median,
        after.errors.median
    );

    // QuickSel fits the workload region better than a blind guess of 1 row.
    let qs = QuickSelEstimator::new(&t, &train, 64);
    let ev = evaluate(&qs, &test);
    assert!(ev.errors.median < 200.0, "QuickSel median {}", ev.errors.median);
}

#[test]
fn kde_degrades_as_domains_grow() {
    // Same rows, same sample budget; wider domain → worse KDE accuracy.
    let n = 6_000usize;
    let make = |domain: i64| {
        Table::from_columns(
            "t",
            vec![(
                "x".into(),
                (0..n as i64)
                    .map(|v| {
                        Value::Int((uae_data::synth::splitmix64(v as u64) % domain as u64) as i64)
                    })
                    .collect(),
            )],
        )
    };
    let eval_kde = |t: &Table| {
        let queries: Vec<Query> = (1..=20)
            .map(|i| {
                let hi = t.column(0).domain_size() as i64 * i / 21;
                Query::new(vec![Predicate::le(0, hi)])
            })
            .collect();
        let w = label_queries(t, queries);
        let kde = KdeEstimator::new(t, 0.02, 3);
        evaluate(&kde, &w).errors.mean
    };
    let narrow = eval_kde(&make(16));
    let wide = eval_kde(&make(4_000));
    assert!(
        wide >= narrow * 0.8,
        "KDE should not get better on much wider domains: {narrow} vs {wide}"
    );
}

#[test]
fn mhist_beats_equi_depth_avi_under_correlation() {
    let t = correlated_table();
    let queries: Vec<Query> = (0..20)
        .map(|i| Query::new(vec![Predicate::eq(0, i % 20), Predicate::eq(1, i % 20)]))
        .collect();
    let w = label_queries(&t, queries);
    let avi = evaluate(&HistogramEstimator::new(&t, 64), &w);
    let mhist = evaluate(&MhistEstimator::new(&t, 256), &w);
    assert!(
        mhist.errors.median <= avi.errors.median,
        "multidimensional buckets should help on correlated equality pairs: \
         MHIST {} vs AVI {}",
        mhist.errors.median,
        avi.errors.median
    );
}

#[test]
fn dmv_large_generator_has_the_advertised_shape() {
    let t = uae_data::dmv_large_like(3_000, 5);
    assert_eq!(t.num_cols(), 16, "paper: 16 columns");
    let vin = t.column_index("vin").expect("vin column");
    assert_eq!(t.column(vin).domain_size(), 3_000, "vin must be unique");
    let city = t.column_index("city").expect("city column");
    assert!(t.column(city).domain_size() > 200, "city must be wide");
}
