//! Join-capable baselines for Table 5: DeepDB (SPN over the join sample
//! with fanout-scaled evaluation) and MSCN+sampling (flat featurization of
//! the translated join query).

use uae_estimators::{MscnConfig, MscnEstimator, SpnConfig, SpnEstimator};
use uae_query::LabeledQuery;

use crate::estimator::{fanout_weights, flat_query, JoinCardEstimator};
use crate::sampler::JoinSample;
use crate::schema::{JoinQuery, LabeledJoinQuery};

/// DeepDB-style SPN learned on the materialized join sample. Joined
/// dimensions contribute `ind = 1` predicates; unjoined dimensions are
/// fanout-scaled through the SPN's weighted evaluation.
pub struct JoinSpn {
    spn: SpnEstimator,
    sample: JoinSample,
}

impl JoinSpn {
    /// Learn the SPN on the join sample.
    pub fn new(sample: JoinSample, cfg: &SpnConfig) -> Self {
        let spn = SpnEstimator::new(&sample.table, cfg);
        JoinSpn { spn, sample }
    }
}

impl JoinCardEstimator for JoinSpn {
    fn name(&self) -> &str {
        "DeepDB"
    }

    fn estimate_join_card(&self, query: &JoinQuery) -> f64 {
        let flat = flat_query(&self.sample.layout, query);
        let mut weights: Vec<Option<Vec<f64>>> = vec![None; self.sample.table.num_cols()];
        for (col, w) in fanout_weights(&self.sample, query) {
            weights[col] = Some(w);
        }
        self.spn.estimate_constrained(&flat, &weights) * self.sample.outer_size as f64
    }

    fn size_bytes(&self) -> usize {
        use uae_query::CardEstimator as _;
        self.spn.size_bytes()
    }
}

/// MSCN+sampling over joins: join queries are translated to flat queries
/// over the join-sample schema (indicator predicates encode the join set),
/// then featurized and regressed exactly like the single-table MSCN.
pub struct JoinMscn {
    mscn: MscnEstimator,
    sample: JoinSample,
    /// Cardinality normalizer (the full outer join size).
    outer: f64,
}

impl JoinMscn {
    /// Train on a labeled join workload.
    pub fn new(sample: JoinSample, workload: &[LabeledJoinQuery], cfg: &MscnConfig) -> Self {
        let outer = sample.outer_size as f64;
        let flat_workload: Vec<LabeledQuery> = workload
            .iter()
            .map(|lq| LabeledQuery {
                query: flat_query(&sample.layout, &lq.query),
                cardinality: lq.cardinality,
                selectivity: lq.cardinality as f64 / outer,
            })
            .collect();
        let mscn = MscnEstimator::new(&sample.table, &flat_workload, cfg);
        JoinMscn { mscn, sample, outer }
    }
}

impl JoinCardEstimator for JoinMscn {
    fn name(&self) -> &str {
        "MSCN+sampling"
    }

    fn estimate_join_card(&self, query: &JoinQuery) -> f64 {
        use uae_query::CardEstimator as _;
        let flat = flat_query(&self.sample.layout, query);
        // The inner MSCN was trained on J-normalized selectivities; its
        // "cardinality" is relative to the sample's row count.
        let sel = self.mscn.estimate_card(&flat) / self.sample.table.num_rows() as f64;
        sel * self.outer
    }

    fn size_bytes(&self) -> usize {
        use uae_query::CardEstimator as _;
        self.mscn.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::JoinExecutor;
    use crate::sampler::sample_outer_join;
    use crate::synth::imdb_like;
    use crate::workload::{generate_join_workload, JoinWorkloadSpec};
    use std::collections::HashSet;

    #[test]
    fn join_spn_tracks_pure_join() {
        let s = imdb_like(400, 21);
        let sample = sample_outer_join(&s, 4000, 16, 1);
        let spn = JoinSpn::new(sample, &SpnConfig::default());
        let q = JoinQuery { dims: vec![0, 1, 2], ..Default::default() };
        let truth = JoinExecutor::new(&s).cardinality(&q) as f64;
        let est = spn.estimate_join_card(&q);
        let qerr = (est.max(1.0) / truth).max(truth / est.max(1.0));
        assert!(qerr < 3.0, "DeepDB join est {est} vs truth {truth}");
    }

    #[test]
    fn join_mscn_learns_focused_workload() {
        let s = imdb_like(400, 22);
        let sample = sample_outer_join(&s, 3000, 16, 2);
        let train =
            generate_join_workload(&s, &JoinWorkloadSpec::focused(0, 60, 5), &HashSet::new());
        let mscn = JoinMscn::new(
            sample,
            &train,
            &MscnConfig { hidden: 64, epochs: 30, sample_rows: 0, ..MscnConfig::default() },
        );
        // In-distribution estimates should be in a sane band.
        let errs: Vec<f64> = train
            .iter()
            .take(20)
            .map(|lq| {
                let est = mscn.estimate_join_card(&lq.query).max(1.0);
                let t = lq.cardinality as f64;
                (est / t).max(t / est)
            })
            .collect();
        let median = {
            let mut e = errs.clone();
            e.sort_by(f64::total_cmp);
            e[e.len() / 2]
        };
        assert!(median < 20.0, "median training q-error {median}");
    }
}
