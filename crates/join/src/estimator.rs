//! Join cardinality estimation over a full-outer-join sample (§4.6):
//! a UAE (or data-only NeuroCard) autoregressive model trained on the
//! sampled join, with indicator predicates for joined tables and
//! `1/fanout` importance weights for unjoined ones.

use uae_core::{TrainQuery, Uae, UaeConfig, VirtualQuery};
use uae_data::Table;
use uae_query::{Predicate, Query};

use crate::sampler::JoinSample;
use crate::schema::{JoinQuery, LabeledJoinQuery};

/// Estimators over a star schema.
pub trait JoinCardEstimator {
    /// Display name.
    fn name(&self) -> &str;
    /// Estimated cardinality of a join query.
    fn estimate_join_card(&self, query: &JoinQuery) -> f64;
    /// Estimated cardinalities of a batch of join queries. The default
    /// loops over [`JoinCardEstimator::estimate_join_card`];
    /// [`JoinUae`] overrides it with the cross-query batched sampler.
    fn estimate_join_cards(&self, queries: &[JoinQuery]) -> Vec<f64> {
        queries.iter().map(|q| self.estimate_join_card(q)).collect()
    }
    /// Model size in bytes.
    fn size_bytes(&self) -> usize;
}

/// UAE over a join sample. Trained with data only this is the NeuroCard
/// baseline; trained hybrid it is the paper's UAE for joins (Table 5).
pub struct JoinUae {
    name: String,
    uae: Uae,
    sample: JoinSample,
}

impl JoinUae {
    /// Build an untrained model over the materialized join sample.
    pub fn new(sample: JoinSample, cfg: UaeConfig) -> Self {
        let uae = Uae::new(&sample.table, cfg);
        JoinUae { name: "UAE-join".to_owned(), uae, sample }
    }

    /// Rename (e.g. `"NeuroCard"` for the data-only variant).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The underlying single-table estimator.
    pub fn uae(&self) -> &Uae {
        &self.uae
    }

    /// Mutable access to the underlying estimator (e.g. to change the
    /// progressive-sample budget between benchmark sweeps).
    pub fn uae_mut(&mut self) -> &mut Uae {
        &mut self.uae
    }

    /// Attach a training observer (per-epoch metrics, divergence events)
    /// to the underlying estimator.
    pub fn set_observer(&mut self, observer: Box<dyn uae_core::TrainObserver>) {
        self.uae.set_observer(observer);
    }

    /// Serialize the full trainer state (`UAEC`) of the underlying
    /// estimator; resuming a long hybrid join training run continues
    /// bit-exactly.
    pub fn save_checkpoint(&self) -> Vec<u8> {
        self.uae.save_checkpoint()
    }

    /// Restore a checkpoint produced by [`JoinUae::save_checkpoint`] on a
    /// model built over the identical join sample and configuration.
    pub fn load_checkpoint(&mut self, bytes: &[u8]) -> Result<(), uae_core::LoadError> {
        self.uae.load_checkpoint(bytes)
    }

    /// Atomically persist a checkpoint file (temp write + fsync + rename
    /// + parent-directory fsync).
    pub fn write_checkpoint_file(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), uae_core::PersistError> {
        self.uae.write_checkpoint_file(path)
    }

    /// Restore from a file written by [`JoinUae::write_checkpoint_file`].
    pub fn load_checkpoint_file(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), uae_core::CheckpointError> {
        self.uae.load_checkpoint_file(path)
    }

    /// Cumulative training counters of the underlying estimator.
    pub fn train_stats(&self) -> &uae_core::TrainStats {
        self.uae.train_stats()
    }

    /// Unsupervised training on the join sample (NeuroCard).
    pub fn train_data(&mut self, epochs: usize) -> Vec<f32> {
        self.uae.train_data(epochs)
    }

    /// Hybrid training with a labeled join workload (UAE, Alg. 3 with
    /// fanout-scaled query translation).
    pub fn train_hybrid(&mut self, workload: &[LabeledJoinQuery], epochs: usize) -> Vec<f32> {
        let tqs = self.prepare(workload);
        self.uae.train_hybrid_prepared(&tqs, epochs)
    }

    /// Query-only training (UAE-Q over joins).
    pub fn train_queries(&mut self, workload: &[LabeledJoinQuery], epochs: usize) -> Vec<f32> {
        let tqs = self.prepare(workload);
        self.uae.train_queries_prepared(&tqs, epochs)
    }

    fn prepare(&self, workload: &[LabeledJoinQuery]) -> Vec<TrainQuery> {
        workload
            .iter()
            .map(|lq| TrainQuery {
                vquery: self.translate(&lq.query),
                selectivity: lq.cardinality as f64 / self.sample.outer_size.max(1) as f64,
            })
            .collect()
    }

    /// Translate a join query onto the sample's flat columns (see
    /// [`flat_query`] / [`fanout_weights`]).
    pub fn translate(&self, q: &JoinQuery) -> VirtualQuery {
        let mut vq = self.uae.translate(&flat_query(&self.sample.layout, q));
        for (col, weights) in fanout_weights(&self.sample, q) {
            let vcol = single_vcol(&self.uae, col);
            vq.set_weighted(vcol, weights);
        }
        vq
    }

    /// Estimated join cardinality. Steady-state calls reuse the underlying
    /// estimator's inference scratch (input rows, hidden/logit buffers), so
    /// repeated estimates allocate nothing in the tensor layer.
    pub fn estimate(&self, q: &JoinQuery) -> f64 {
        let vq = self.translate(q);
        self.uae.estimate_vquery(&vq) * self.sample.outer_size as f64
    }

    /// Estimated cardinalities for a batch of join queries through the
    /// cross-query batched sampler (one stacked forward per column round
    /// instead of one per query). The stacked input, per-query prefix
    /// tables, and probability buffers persist across calls.
    pub fn estimate_batch(&self, qs: &[JoinQuery]) -> Vec<f64> {
        let vqs: Vec<VirtualQuery> = qs.iter().map(|q| self.translate(q)).collect();
        let outer = self.sample.outer_size as f64;
        self.uae.estimate_vquery_batch(&vqs).into_iter().map(|sel| sel * outer).collect()
    }

    /// The materialized sample (diagnostics / tests).
    pub fn sample(&self) -> &JoinSample {
        &self.sample
    }
}

/// Translate a join query to a flat single-table [`Query`] over the join
/// sample: content predicates keep their (offset) columns and every joined
/// dimension adds `ind = 1`.
pub fn flat_query(layout: &crate::sampler::JoinLayout, q: &JoinQuery) -> Query {
    let mut preds: Vec<Predicate> = Vec::new();
    for p in &q.fact_preds {
        // Fact content columns come first, at the same positions.
        preds.push(Predicate { column: p.column, op: p.op.clone(), value: p.value.clone() });
    }
    for (d, dl) in layout.dims.iter().enumerate() {
        if q.dims.contains(&d) {
            preds.push(Predicate::eq(dl.indicator, 1i64));
        }
    }
    for (d, p) in &q.dim_preds {
        let dl = layout.dims[*d];
        preds.push(Predicate {
            column: dl.content_start + p.column,
            op: p.op.clone(),
            value: p.value.clone(),
        });
    }
    Query::new(preds)
}

/// Fanout-scaling weights for every dimension the query does *not* join:
/// `(flat fanout column, per-code weight 1 / max(fanout, 1))`.
pub fn fanout_weights(sample: &JoinSample, q: &JoinQuery) -> Vec<(usize, Vec<f64>)> {
    sample
        .layout
        .dims
        .iter()
        .enumerate()
        .filter(|(d, _)| !q.dims.contains(d))
        .map(|(_, dl)| {
            let col = sample.table.column(dl.fanout);
            let weights: Vec<f64> = col
                .dict()
                .iter()
                .map(|v| {
                    let f = v.as_int().expect("fanout values are ints").max(1);
                    1.0 / f as f64
                })
                .collect();
            (dl.fanout, weights)
        })
        .collect()
}

/// Virtual column of an (unfactorized) table column.
fn single_vcol(uae: &Uae, table_col: usize) -> usize {
    match uae.schema().entries()[table_col] {
        uae_core::encoding::ColEntry::Single { vcol } => vcol,
        uae_core::encoding::ColEntry::Split { .. } => {
            panic!("fanout columns must not be factorized (cap the fanout)")
        }
    }
}

impl JoinCardEstimator for JoinUae {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate_join_card(&self, query: &JoinQuery) -> f64 {
        self.estimate(query)
    }

    fn estimate_join_cards(&self, queries: &[JoinQuery]) -> Vec<f64> {
        self.estimate_batch(queries)
    }

    fn size_bytes(&self) -> usize {
        use uae_query::CardEstimator as _;
        self.uae.size_bytes()
    }
}

/// Helper exposing the sample table for baselines that want to train on
/// the same materialized join (e.g. DeepDB over joins).
pub fn sample_table(sample: &JoinSample) -> &Table {
    &sample.table
}

impl crate::optimizer::SubplanEstimator for JoinUae {
    fn name(&self) -> &str {
        &self.name
    }
    fn subplan_card(&self, query: &JoinQuery) -> f64 {
        self.estimate(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::JoinExecutor;
    use crate::sampler::sample_outer_join;
    use crate::synth::imdb_like;
    use uae_core::{DpsConfig, ResMadeConfig, TrainConfig};

    fn quick_cfg() -> UaeConfig {
        UaeConfig {
            model: ResMadeConfig { hidden: 32, blocks: 1, seed: 11 },
            factor_threshold: usize::MAX,
            order: uae_core::ColumnOrder::Natural,
            encoding: uae_core::encoding::EncodingMode::Binary,
            train: TrainConfig {
                batch_size: 128,
                query_batch: 8,
                dps: DpsConfig { tau: 1.0, samples: 8 },
                lambda: 1.0,
                ..TrainConfig::default()
            },
            estimate_samples: 200,
            serve: uae_core::ServeConfig::default(),
        }
    }

    #[test]
    fn translate_sets_indicators_and_weights() {
        let s = imdb_like(300, 7);
        let sample = sample_outer_join(&s, 1500, 16, 1);
        let ju = JoinUae::new(sample, quick_cfg());
        let q = JoinQuery {
            dims: vec![0],
            fact_preds: vec![Predicate::ge(0, 50i64)],
            dim_preds: vec![(0, Predicate::eq(0, 1i64))],
        };
        let vq = ju.translate(&q);
        // Unjoined dims 1 and 2 must carry weighted fanout steps.
        let weighted = vq
            .steps()
            .iter()
            .filter(|s| matches!(s, uae_core::vquery::StepRegion::Weighted(_)))
            .count();
        assert_eq!(weighted, 2);
    }

    #[test]
    fn batched_join_estimates_match_sequential() {
        use crate::workload::{generate_join_workload, JoinWorkloadSpec};
        let s = imdb_like(300, 7);
        // Two identical estimators: `Uae::clone`/fresh construction reseed
        // the estimation RNG, so sequential and batched runs start from the
        // same stream.
        let mk = || {
            let sample = sample_outer_join(&s, 1500, 16, 1);
            let mut ju = JoinUae::new(sample, quick_cfg());
            ju.train_data(1);
            ju
        };
        // Random subsets exercise fanout (weighted) steps and indicators.
        let w = generate_join_workload(
            &s,
            &JoinWorkloadSpec::random(12, 9),
            &std::collections::HashSet::new(),
        );
        let queries: Vec<JoinQuery> = w.iter().map(|lq| lq.query.clone()).collect();
        let a = mk();
        let seq: Vec<f64> = queries.iter().map(|q| a.estimate(q)).collect();
        let b = mk();
        let bat = b.estimate_batch(&queries);
        for (i, (s_est, b_est)) in seq.iter().zip(&bat).enumerate() {
            let denom = s_est.abs().max(1e-12);
            assert!(
                ((s_est - b_est) / denom).abs() <= 1e-9,
                "query {i}: sequential {s_est} vs batched {b_est}"
            );
        }
    }

    #[test]
    fn trained_neurocard_tracks_pure_join_sizes() {
        let s = imdb_like(400, 8);
        let exec = JoinExecutor::new(&s);
        let sample = sample_outer_join(&s, 4000, 16, 2);
        let mut nc = JoinUae::new(sample, quick_cfg()).with_name("NeuroCard");
        nc.train_data(4);
        // Inner join of all three tables.
        let q = JoinQuery { dims: vec![0, 1, 2], ..Default::default() };
        let truth = exec.cardinality(&q) as f64;
        let est = nc.estimate(&q);
        let qerr = (est.max(1.0) / truth).max(truth / est.max(1.0));
        assert!(qerr < 3.0, "pure join est {est} vs truth {truth} (q-error {qerr})");
        // Subset join exercises fanout scaling.
        let q01 = JoinQuery { dims: vec![0], ..Default::default() };
        let truth01 = exec.cardinality(&q01) as f64;
        let est01 = nc.estimate(&q01);
        let qerr01 = (est01.max(1.0) / truth01).max(truth01 / est01.max(1.0));
        assert!(qerr01 < 3.5, "subset join est {est01} vs truth {truth01} (q-error {qerr01})");
    }
}
