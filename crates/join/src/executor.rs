//! Exact join-query execution over the base tables (ground truth for the
//! join experiments).
//!
//! For a star join the cardinality factorizes per fact row:
//! `Card(q) = Σ_t 1[fact preds](t) · Π_{d ∈ q.dims} |{r ∈ matches_d(t) : dim preds}|`.

use uae_data::par::{default_threads, par_count, par_map_slice};
use uae_query::QueryRegion;

use crate::schema::{JoinQuery, LabeledJoinQuery, StarSchema};

/// Exact star-join executor.
#[derive(Debug)]
pub struct JoinExecutor<'a> {
    schema: &'a StarSchema,
    threads: usize,
}

impl<'a> JoinExecutor<'a> {
    /// An executor over a star schema.
    pub fn new(schema: &'a StarSchema) -> Self {
        JoinExecutor { schema, threads: default_threads() }
    }

    /// True cardinality of a join query.
    pub fn cardinality(&self, q: &JoinQuery) -> u64 {
        q.validate(self.schema);
        let fact_region = QueryRegion::build(&self.schema.fact, &q.fact_query());
        if fact_region.is_empty() {
            return 0;
        }
        let dim_regions: Vec<(usize, QueryRegion)> = q
            .dims
            .iter()
            .map(|&d| (d, QueryRegion::build(&self.schema.dims[d].content, &q.dim_query(d))))
            .collect();
        if dim_regions.iter().any(|(_, r)| r.is_empty()) {
            return 0;
        }
        let schema = self.schema;
        par_count(schema.fact.num_rows(), self.threads, |rows| {
            let mut total = 0u64;
            'fact: for t in rows {
                for (c, reg) in fact_region.columns().iter().enumerate() {
                    if let Some(reg) = reg {
                        if !reg.contains(schema.fact.column(c).code(t)) {
                            continue 'fact;
                        }
                    }
                }
                let mut prod = 1u64;
                for (d, reg) in &dim_regions {
                    let dim = &schema.dims[*d];
                    let mut count = 0u64;
                    'dim: for &r in schema.matches(*d, t) {
                        for (c, creg) in reg.columns().iter().enumerate() {
                            if let Some(creg) = creg {
                                if !creg.contains(dim.content.column(c).code(r as usize)) {
                                    continue 'dim;
                                }
                            }
                        }
                        count += 1;
                    }
                    if count == 0 {
                        continue 'fact;
                    }
                    prod *= count;
                }
                total += prod;
            }
            total
        })
    }

    /// Cardinalities of many queries, parallelized over queries.
    pub fn cardinalities(&self, queries: &[JoinQuery]) -> Vec<u64> {
        let schema = self.schema;
        par_map_slice(queries, self.threads, |q| JoinExecutor { schema, threads: 1 }.cardinality(q))
    }
}

/// Label join queries with exact cardinalities.
pub fn label_join_queries(schema: &StarSchema, queries: Vec<JoinQuery>) -> Vec<LabeledJoinQuery> {
    let exec = JoinExecutor::new(schema);
    let cards = exec.cardinalities(&queries);
    queries
        .into_iter()
        .zip(cards)
        .map(|(query, cardinality)| LabeledJoinQuery { query, cardinality })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DimTable;
    use uae_data::{Table, Value};
    use uae_query::Predicate;

    fn schema() -> StarSchema {
        let fact = Table::from_columns(
            "fact",
            vec![("a".into(), vec![0i64, 1, 2, 3].into_iter().map(Value::Int).collect())],
        );
        let d0 = DimTable::new(
            Table::from_columns(
                "d0",
                vec![("x".into(), vec![10i64, 10, 11, 12].into_iter().map(Value::Int).collect())],
            ),
            vec![0, 0, 1, 3],
        );
        StarSchema::new(fact, vec![d0])
    }

    #[test]
    fn pure_join_counts_fanouts() {
        let s = schema();
        let exec = JoinExecutor::new(&s);
        let q = JoinQuery { dims: vec![0], ..Default::default() };
        // Inner join size = 2 + 1 + 0 + 1 = 4.
        assert_eq!(exec.cardinality(&q), 4);
    }

    #[test]
    fn predicates_on_both_sides() {
        let s = schema();
        let exec = JoinExecutor::new(&s);
        // fact.a <= 1 AND d0.x = 10 → fact row 0 matches twice, row 1 zero.
        let q = JoinQuery {
            dims: vec![0],
            fact_preds: vec![Predicate::le(0, 1i64)],
            dim_preds: vec![(0, Predicate::eq(0, 10i64))],
        };
        assert_eq!(exec.cardinality(&q), 2);
    }

    #[test]
    fn fact_only_query_counts_fact_rows() {
        let s = schema();
        let exec = JoinExecutor::new(&s);
        let q =
            JoinQuery { dims: vec![], fact_preds: vec![Predicate::ge(0, 2i64)], dim_preds: vec![] };
        assert_eq!(exec.cardinality(&q), 2);
    }

    #[test]
    fn batch_labels_match_singles() {
        let s = schema();
        let exec = JoinExecutor::new(&s);
        let queries = vec![JoinQuery { dims: vec![0], ..Default::default() }, JoinQuery::default()];
        let labeled = label_join_queries(&s, queries.clone());
        for (q, lq) in queries.iter().zip(&labeled) {
            assert_eq!(exec.cardinality(q), lq.cardinality);
        }
    }
}
