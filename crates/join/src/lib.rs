//! # uae-join — multi-table join estimation and the optimizer study
//!
//! The substrate behind the paper's join experiments (§4.6, Table 5,
//! Figure 6):
//!
//! * [`schema`] — star schemas with PK–FK joins and [`JoinQuery`];
//! * [`synth`] — the IMDB-like generator (DESIGN.md §1 substitution);
//! * [`executor`] — exact join cardinalities over the base tables;
//! * [`sampler`] — uniform full-outer-join sampling with indicator and
//!   fanout virtual columns (Exact-Weight specialized to star joins);
//! * [`estimator`] — [`JoinUae`]: the autoregressive model over the join
//!   sample; data-only training reproduces **NeuroCard**, hybrid training
//!   is **UAE for joins** (fanout scaling handles subset joins);
//! * [`workload`] — JOB-light-ranges-focused / JOB-light-style generators;
//! * [`optimizer`] — the Figure-6 cost-model study: left-deep join-order
//!   optimization under each estimator's cardinalities, plans costed under
//!   truth.

pub mod baselines;
pub mod estimator;
pub mod executor;
pub mod optimizer;
pub mod sampler;
pub mod schema;
pub mod synth;
pub mod workload;

pub use baselines::{JoinMscn, JoinSpn};
pub use estimator::{fanout_weights, flat_query, JoinCardEstimator, JoinUae};
pub use executor::{label_join_queries, JoinExecutor};
pub use optimizer::{best_plan, plan_cost, study_query, Plan, PostgresLike, SubplanEstimator};
pub use sampler::{sample_outer_join, JoinSample};
pub use schema::{DimTable, JoinQuery, LabeledJoinQuery, StarSchema};
pub use synth::imdb_like;
pub use workload::{generate_join_workload, JoinWorkloadSpec};
