//! Cost-model query-optimizer study (paper §5.6, Figure 6).
//!
//! The paper injects estimator cardinalities into PostgreSQL and measures
//! execution-time speedups. We reproduce the mechanism with a cost-model
//! simulator: a left-deep join-order optimizer chooses the plan that
//! minimizes the `C_out` cost (the sum of intermediate-result
//! cardinalities) *under the estimator being studied*, and every chosen
//! plan is then costed under the **true** cardinalities. The speedup of an
//! estimator on a query is `true_cost(baseline plan) / true_cost(plan)` —
//! exactly the quantity Figure 6 reports, with the cost model standing in
//! for wall-clock execution.

use crate::executor::JoinExecutor;
use crate::schema::{JoinQuery, StarSchema};
use uae_query::QueryRegion;

/// Cardinality oracle for optimizer subplans.
pub trait SubplanEstimator {
    /// Display name.
    fn name(&self) -> &str;
    /// Estimated cardinality of a (sub)query.
    fn subplan_card(&self, query: &JoinQuery) -> f64;
}

/// The true-cardinality oracle (the "optimal plan" reference).
pub struct TruthEstimator<'a> {
    exec: JoinExecutor<'a>,
}

impl<'a> TruthEstimator<'a> {
    /// Oracle over a schema.
    pub fn new(schema: &'a StarSchema) -> Self {
        TruthEstimator { exec: JoinExecutor::new(schema) }
    }
}

impl SubplanEstimator for TruthEstimator<'_> {
    fn name(&self) -> &str {
        "Truth"
    }
    fn subplan_card(&self, query: &JoinQuery) -> f64 {
        self.exec.cardinality(query) as f64
    }
}

/// PostgreSQL-like estimator: exact single-column marginals combined under
/// attribute-value independence, PK–FK joins under key uniformity
/// (`|F ⋈ D| = sel_F |F| · sel_D |D| / |F|`).
pub struct PostgresLike<'a> {
    schema: &'a StarSchema,
}

impl<'a> PostgresLike<'a> {
    /// Build over a schema (uses only per-column statistics).
    pub fn new(schema: &'a StarSchema) -> Self {
        PostgresLike { schema }
    }

    fn avi_selectivity(table: &uae_data::Table, query: &uae_query::Query) -> f64 {
        let qr = QueryRegion::build(table, query);
        if qr.is_empty() {
            return 0.0;
        }
        let n = table.num_rows().max(1) as f64;
        let mut sel = 1.0f64;
        for (c, reg) in qr.columns().iter().enumerate() {
            if let Some(reg) = reg {
                let hist = table.column(c).histogram();
                let mass: u64 = reg.iter_codes().map(|code| hist[code as usize]).sum();
                sel *= mass as f64 / n;
            }
        }
        sel
    }
}

impl SubplanEstimator for PostgresLike<'_> {
    fn name(&self) -> &str {
        "PostgreSQL"
    }

    fn subplan_card(&self, query: &JoinQuery) -> f64 {
        let fact = &self.schema.fact;
        let nfact = fact.num_rows().max(1) as f64;
        let mut card = nfact * Self::avi_selectivity(fact, &query.fact_query());
        for &d in &query.dims {
            let dim = &self.schema.dims[d].content;
            let sel = Self::avi_selectivity(dim, &query.dim_query(d));
            // Key-uniformity join selectivity: 1 / |fact|.
            card *= sel * dim.num_rows() as f64 / nfact;
        }
        card.max(1.0)
    }
}

/// A left-deep plan: the fact table followed by dimensions in join order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Dimension join order.
    pub order: Vec<usize>,
}

/// `C_out` cost of a plan under a cardinality oracle: the sum of all
/// intermediate result sizes (fact selection plus every non-final prefix).
pub fn plan_cost(query: &JoinQuery, plan: &Plan, est: &dyn SubplanEstimator) -> f64 {
    let k = plan.order.len();
    let mut cost = est.subplan_card(&query.prefix(&plan.order, 0)); // σ(fact)
    for i in 1..k {
        cost += est.subplan_card(&query.prefix(&plan.order, i));
    }
    cost
}

/// The plan with minimal estimated cost (exhaustive over left-deep orders).
pub fn best_plan(query: &JoinQuery, est: &dyn SubplanEstimator) -> Plan {
    let mut best: Option<(f64, Plan)> = None;
    for order in permutations(&query.dims) {
        let plan = Plan { order };
        let cost = plan_cost(query, &plan, est);
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, plan));
        }
    }
    best.expect("at least one order").1
}

/// All permutations of a slice (join sets are small: ≤ 4 dimensions).
pub fn permutations(xs: &[usize]) -> Vec<Vec<usize>> {
    if xs.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, &x) in xs.iter().enumerate() {
        let mut rest = xs.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

/// Result of the optimizer study for one query and one estimator.
#[derive(Debug, Clone)]
pub struct StudyRow {
    /// Estimator name.
    pub estimator: String,
    /// True cost of the plan chosen under this estimator's cardinalities.
    pub true_cost: f64,
    /// Speedup over the baseline (PostgreSQL-like) plan: `> 1` means the
    /// estimator produced a better plan.
    pub speedup_vs_baseline: f64,
}

/// Run the Figure-6 study for one query: every estimator picks its plan;
/// plans are costed under truth; speedups are relative to the baseline's
/// plan.
pub fn study_query(
    schema: &StarSchema,
    query: &JoinQuery,
    estimators: &[&dyn SubplanEstimator],
) -> Vec<StudyRow> {
    let truth = TruthEstimator::new(schema);
    let baseline = PostgresLike::new(schema);
    let base_plan = best_plan(query, &baseline);
    let base_cost = plan_cost(query, &base_plan, &truth).max(1.0);
    estimators
        .iter()
        .map(|est| {
            let plan = best_plan(query, *est);
            let true_cost = plan_cost(query, &plan, &truth).max(1.0);
            StudyRow {
                estimator: est.name().to_owned(),
                true_cost,
                speedup_vs_baseline: base_cost / true_cost,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::imdb_like;
    use crate::workload::{generate_join_workload, JoinWorkloadSpec};
    use std::collections::HashSet;

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
        assert_eq!(permutations(&[]).len(), 1);
    }

    #[test]
    fn truth_plans_never_lose_to_baseline() {
        let s = imdb_like(600, 13);
        let w = generate_join_workload(
            &s,
            &JoinWorkloadSpec {
                seed: 3,
                num_queries: 10,
                bounded: Some((0, (0.0, 1.0), 0.10)),
                nf_range: (1, 3),
                all_dims: true,
            },
            &HashSet::new(),
        );
        let truth = TruthEstimator::new(&s);
        for lq in &w {
            let rows = study_query(&s, &lq.query, &[&truth as &dyn SubplanEstimator]);
            assert!(
                rows[0].speedup_vs_baseline >= 1.0 - 1e-9,
                "truth plan slower than baseline: {}",
                rows[0].speedup_vs_baseline
            );
        }
    }

    #[test]
    fn postgres_like_multiplies_independent_selectivities() {
        let s = imdb_like(500, 14);
        let pg = PostgresLike::new(&s);
        // Pure join: estimate ≈ |fact| · Π |dim|/|fact| = Π |dim| / |fact|^(k-1)
        let q = JoinQuery { dims: vec![0], ..Default::default() };
        let est = pg.subplan_card(&q);
        let expect = s.dims[0].content.num_rows() as f64;
        assert!((est - expect).abs() / expect < 0.01, "est {est} vs {expect}");
    }

    #[test]
    fn plan_cost_sums_prefixes() {
        let s = imdb_like(300, 15);
        let truth = TruthEstimator::new(&s);
        let q = JoinQuery { dims: vec![0, 1], ..Default::default() };
        let plan = Plan { order: vec![0, 1] };
        let cost = plan_cost(&q, &plan, &truth);
        let exec = JoinExecutor::new(&s);
        let expect = exec.cardinality(&q.prefix(&[0, 1], 0)) as f64
            + exec.cardinality(&q.prefix(&[0, 1], 1)) as f64;
        assert!((cost - expect).abs() < 1e-9);
    }
}
