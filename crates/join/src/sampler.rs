//! Uniform sampling of the full outer star join with indicator and fanout
//! virtual columns (the Exact-Weight scheme of Zhao et al., specialized to
//! star joins, as used by NeuroCard and by UAE's §4.6).
//!
//! Each fact row `t` appears `Π_d max(fanout_d(t), 1)` times in the full
//! outer join; sampling a join row uniformly therefore means sampling `t`
//! with probability proportional to that weight and then drawing one
//! matching row (or the NULL extension) per dimension independently.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use uae_data::{Table, Value};

use crate::schema::StarSchema;

/// Sentinel content value of NULL-extended dimension rows. Real content
/// values are non-negative, so the sentinel sorts first and is excluded by
/// every predicate anchored at real values once `ind = 1` is required.
pub const NULL_SENTINEL: i64 = -1;

/// Layout of the materialized join-sample table.
#[derive(Debug, Clone)]
pub struct JoinLayout {
    /// Number of fact content columns (they come first).
    pub fact_cols: usize,
    /// Per dimension: `(indicator column, fanout column, first content
    /// column, number of content columns)`.
    pub dims: Vec<DimLayout>,
    /// Cap applied to stored fanout values.
    pub fanout_cap: usize,
}

/// Column positions of one dimension inside the join sample.
#[derive(Debug, Clone, Copy)]
pub struct DimLayout {
    /// Indicator column (0 = NULL-extended, 1 = joined).
    pub indicator: usize,
    /// Fanout column (stores `min(fanout, cap)`, 0 for NULL rows).
    pub fanout: usize,
    /// First content column.
    pub content_start: usize,
    /// Number of content columns.
    pub content_cols: usize,
}

/// A materialized uniform sample of the full outer join.
#[derive(Debug)]
pub struct JoinSample {
    /// The sample as a flat table (fact content ‖ per-dim ind/fanout/content).
    pub table: Table,
    /// Column layout.
    pub layout: JoinLayout,
    /// Exact size of the full outer join.
    pub outer_size: u64,
}

/// Draw `n` uniform rows from the full outer join of `schema`.
pub fn sample_outer_join(
    schema: &StarSchema,
    n: usize,
    fanout_cap: usize,
    seed: u64,
) -> JoinSample {
    assert!(n > 0 && fanout_cap >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let nfact = schema.fact.num_rows();
    // Cumulative weights for exact-weight fact-row sampling.
    let mut cum = Vec::with_capacity(nfact);
    let mut acc = 0.0f64;
    for t in 0..nfact {
        let w: u64 = (0..schema.num_dims()).map(|d| schema.fanout(d, t).max(1) as u64).product();
        acc += w as f64;
        cum.push(acc);
    }
    let outer_size = schema.outer_join_size();

    // Column builders.
    let mut fact_vals: Vec<Vec<Value>> =
        (0..schema.fact.num_cols()).map(|_| Vec::with_capacity(n)).collect();
    struct DimBuild {
        ind: Vec<Value>,
        fanout: Vec<Value>,
        content: Vec<Vec<Value>>,
    }
    let mut dim_builds: Vec<DimBuild> = schema
        .dims
        .iter()
        .map(|d| DimBuild {
            ind: Vec::with_capacity(n),
            fanout: Vec::with_capacity(n),
            content: (0..d.content.num_cols()).map(|_| Vec::with_capacity(n)).collect(),
        })
        .collect();

    for _ in 0..n {
        let u: f64 = rng.random::<f64>() * acc;
        let t = cum.partition_point(|&c| c < u).min(nfact - 1);
        for (c, vals) in fact_vals.iter_mut().enumerate() {
            vals.push(schema.fact.column(c).value(t).clone());
        }
        for (d, build) in dim_builds.iter_mut().enumerate() {
            let matches = schema.matches(d, t);
            if matches.is_empty() {
                build.ind.push(Value::Int(0));
                build.fanout.push(Value::Int(0));
                for col in &mut build.content {
                    col.push(Value::Int(NULL_SENTINEL));
                }
            } else {
                let pick = matches[rng.random_range(0..matches.len())] as usize;
                build.ind.push(Value::Int(1));
                build.fanout.push(Value::Int(matches.len().min(fanout_cap) as i64));
                for (c, col) in build.content.iter_mut().enumerate() {
                    col.push(schema.dims[d].content.column(c).value(pick).clone());
                }
            }
        }
    }

    // Assemble the flat table and layout.
    let mut cols: Vec<(String, Vec<Value>)> = Vec::new();
    for (c, vals) in fact_vals.into_iter().enumerate() {
        cols.push((format!("fact.{}", schema.fact.column(c).name()), vals));
    }
    let fact_cols = schema.fact.num_cols();
    let mut dims = Vec::with_capacity(schema.num_dims());
    for (d, build) in dim_builds.into_iter().enumerate() {
        let name = schema.dims[d].content.name().to_owned();
        let indicator = cols.len();
        cols.push((format!("{name}.__ind"), build.ind));
        let fanout = cols.len();
        cols.push((format!("{name}.__fanout"), build.fanout));
        let content_start = cols.len();
        let content_cols = build.content.len();
        for (c, vals) in build.content.into_iter().enumerate() {
            cols.push((format!("{name}.{}", schema.dims[d].content.column(c).name()), vals));
        }
        dims.push(DimLayout { indicator, fanout, content_start, content_cols });
    }

    JoinSample {
        table: Table::from_columns("join_sample", cols),
        layout: JoinLayout { fact_cols, dims, fanout_cap },
        outer_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::imdb_like;

    #[test]
    fn sample_shape_and_layout() {
        let s = imdb_like(400, 3);
        let js = sample_outer_join(&s, 2000, 32, 1);
        assert_eq!(js.table.num_rows(), 2000);
        let expected_cols = 2 + 3 * 2 + (2 + 2 + 1);
        assert_eq!(js.table.num_cols(), expected_cols);
        assert_eq!(js.layout.dims.len(), 3);
        assert_eq!(js.outer_size, s.outer_join_size());
    }

    #[test]
    fn null_rows_are_consistent() {
        let s = imdb_like(400, 4);
        let js = sample_outer_join(&s, 3000, 32, 2);
        for d in &js.layout.dims {
            let ind = js.table.column(d.indicator);
            let fan = js.table.column(d.fanout);
            for r in 0..js.table.num_rows() {
                let joined = ind.value(r).as_int().unwrap() == 1;
                let f = fan.value(r).as_int().unwrap();
                if joined {
                    assert!(f >= 1, "joined row with fanout {f}");
                    for c in 0..d.content_cols {
                        let v = js.table.column(d.content_start + c).value(r).as_int().unwrap();
                        assert!(v >= 0, "joined row with NULL content");
                    }
                } else {
                    assert_eq!(f, 0);
                    for c in 0..d.content_cols {
                        let v = js.table.column(d.content_start + c).value(r).as_int().unwrap();
                        assert_eq!(v, NULL_SENTINEL);
                    }
                }
            }
        }
    }

    #[test]
    fn join_frequencies_track_outer_join() {
        // P(ind_d = 1) in the sample ≈ (Σ_t f_d(t)≥1 weighted) / |J|.
        let s = imdb_like(300, 5);
        let js = sample_outer_join(&s, 8000, 32, 3);
        let d = &js.layout.dims[0];
        let ind = js.table.column(d.indicator);
        let sampled: f64 =
            (0..js.table.num_rows()).map(|r| ind.value(r).as_int().unwrap() as f64).sum::<f64>()
                / js.table.num_rows() as f64;
        // Exact probability from the schema.
        let mut num = 0u64;
        for t in 0..s.fact.num_rows() {
            let w: u64 = (0..s.num_dims()).map(|dd| s.fanout(dd, t).max(1) as u64).product();
            if s.fanout(0, t) > 0 {
                num += w;
            }
        }
        let exact = num as f64 / s.outer_join_size() as f64;
        assert!((sampled - exact).abs() < 0.03, "sampled {sampled} vs exact {exact}");
    }
}
