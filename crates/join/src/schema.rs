//! Multi-table star schemas with PK–FK joins (the substrate for the
//! paper's IMDB join experiments, §4.6 and Table 5).

use uae_data::Table;
use uae_query::{Predicate, Query};

/// A dimension table joined to the fact table by a foreign key.
#[derive(Debug, Clone)]
pub struct DimTable {
    /// Table of *content* columns (the FK is kept separately).
    pub content: Table,
    /// `fk[r]` = fact row this dimension row joins to.
    pub fk: Vec<u32>,
}

impl DimTable {
    /// Build a dimension table, validating FK range later in the schema.
    pub fn new(content: Table, fk: Vec<u32>) -> Self {
        assert_eq!(content.num_rows(), fk.len(), "fk length mismatch");
        DimTable { content, fk }
    }
}

/// A star schema: one fact table and several dimension tables.
#[derive(Debug, Clone)]
pub struct StarSchema {
    /// Fact-table content columns.
    pub fact: Table,
    /// Dimension tables.
    pub dims: Vec<DimTable>,
    /// `groups[d][t]` = dimension-`d` rows joining fact row `t`.
    groups: Vec<Vec<Vec<u32>>>,
}

impl StarSchema {
    /// Build the schema and its join indexes.
    pub fn new(fact: Table, dims: Vec<DimTable>) -> Self {
        let n = fact.num_rows();
        let groups = dims
            .iter()
            .map(|d| {
                let mut g: Vec<Vec<u32>> = vec![Vec::new(); n];
                for (r, &f) in d.fk.iter().enumerate() {
                    assert!((f as usize) < n, "fk {f} out of range");
                    g[f as usize].push(r as u32);
                }
                g
            })
            .collect();
        StarSchema { fact, dims, groups }
    }

    /// Number of dimension tables.
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Matching dimension rows of a fact row.
    pub fn matches(&self, dim: usize, fact_row: usize) -> &[u32] {
        &self.groups[dim][fact_row]
    }

    /// Fanout of a fact row into a dimension.
    pub fn fanout(&self, dim: usize, fact_row: usize) -> usize {
        self.groups[dim][fact_row].len()
    }

    /// Size of the full outer join `Σ_t Π_d max(fanout_d(t), 1)`.
    pub fn outer_join_size(&self) -> u64 {
        (0..self.fact.num_rows())
            .map(|t| (0..self.num_dims()).map(|d| self.fanout(d, t).max(1) as u64).product::<u64>())
            .sum()
    }
}

/// A conjunctive query over a star schema: a set of joined dimensions plus
/// per-table predicates. The fact table always participates.
#[derive(Debug, Clone, Default)]
pub struct JoinQuery {
    /// Indices of the joined dimension tables.
    pub dims: Vec<usize>,
    /// Predicates on fact content columns.
    pub fact_preds: Vec<Predicate>,
    /// Predicates on dimension content columns: `(dim index, predicate)`.
    /// Every referenced dimension must appear in `dims`.
    pub dim_preds: Vec<(usize, Predicate)>,
}

impl JoinQuery {
    /// Validate internal consistency.
    pub fn validate(&self, schema: &StarSchema) {
        for &d in &self.dims {
            assert!(d < schema.num_dims(), "dim {d} out of range");
        }
        for (d, p) in &self.dim_preds {
            assert!(self.dims.contains(d), "predicate on unjoined dim {d}");
            assert!(p.column < schema.dims[*d].content.num_cols());
        }
        for p in &self.fact_preds {
            assert!(p.column < schema.fact.num_cols());
        }
    }

    /// Number of tables participating (fact + dims).
    pub fn num_tables(&self) -> usize {
        1 + self.dims.len()
    }

    /// The fact-table part as a single-table [`Query`].
    pub fn fact_query(&self) -> Query {
        Query::new(self.fact_preds.clone())
    }

    /// The predicates on one dimension as a single-table [`Query`].
    pub fn dim_query(&self, dim: usize) -> Query {
        Query::new(
            self.dim_preds.iter().filter(|(d, _)| *d == dim).map(|(_, p)| p.clone()).collect(),
        )
    }

    /// The subquery joining only the first `k` dims of a join order —
    /// used by the optimizer to cost left-deep prefixes.
    pub fn prefix(&self, order: &[usize], k: usize) -> JoinQuery {
        let dims: Vec<usize> = order[..k].to_vec();
        JoinQuery {
            dims: dims.clone(),
            fact_preds: self.fact_preds.clone(),
            dim_preds: self.dim_preds.iter().filter(|(d, _)| dims.contains(d)).cloned().collect(),
        }
    }
}

/// A join query labeled with its true cardinality.
#[derive(Debug, Clone)]
pub struct LabeledJoinQuery {
    /// The query.
    pub query: JoinQuery,
    /// Its exact cardinality over the base tables.
    pub cardinality: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::Value;

    pub(crate) fn tiny_schema() -> StarSchema {
        // fact: 4 rows, one content column.
        let fact = Table::from_columns(
            "fact",
            vec![("a".into(), vec![0i64, 1, 2, 3].into_iter().map(Value::Int).collect())],
        );
        // dim0: fanouts [2, 1, 0, 1]
        let d0 = DimTable::new(
            Table::from_columns(
                "d0",
                vec![("x".into(), vec![10i64, 11, 12, 13].into_iter().map(Value::Int).collect())],
            ),
            vec![0, 0, 1, 3],
        );
        // dim1: fanouts [1, 2, 1, 0]
        let d1 = DimTable::new(
            Table::from_columns(
                "d1",
                vec![("y".into(), vec![5i64, 6, 7, 8].into_iter().map(Value::Int).collect())],
            ),
            vec![0, 1, 1, 2],
        );
        StarSchema::new(fact, vec![d0, d1])
    }

    #[test]
    fn fanouts_and_outer_size() {
        let s = tiny_schema();
        assert_eq!(s.fanout(0, 0), 2);
        assert_eq!(s.fanout(0, 2), 0);
        assert_eq!(s.fanout(1, 1), 2);
        // Σ max(f0,1)*max(f1,1) = 2*1 + 1*2 + 1*1 + 1*1 = 6
        assert_eq!(s.outer_join_size(), 6);
    }

    #[test]
    fn prefix_filters_predicates() {
        let q = JoinQuery {
            dims: vec![0, 1],
            fact_preds: vec![Predicate::eq(0, 1i64)],
            dim_preds: vec![(0, Predicate::eq(0, 10i64)), (1, Predicate::eq(0, 6i64))],
        };
        let p = q.prefix(&[1, 0], 1);
        assert_eq!(p.dims, vec![1]);
        assert_eq!(p.dim_preds.len(), 1);
        assert_eq!(p.dim_preds[0].0, 1);
        assert_eq!(p.fact_preds.len(), 1);
    }

    #[test]
    #[should_panic(expected = "unjoined dim")]
    fn validate_rejects_predicates_on_unjoined_dims() {
        let s = tiny_schema();
        let q = JoinQuery {
            dims: vec![0],
            fact_preds: vec![],
            dim_preds: vec![(1, Predicate::eq(0, 6i64))],
        };
        q.validate(&s);
    }
}
