//! IMDB-like synthetic star schema (DESIGN.md §1 substitution for the
//! paper's title ⋈ movie_companies ⋈ movie_info experiments).
//!
//! The generator reproduces the structural properties the join experiments
//! exercise: skewed per-title fanouts, fanouts *correlated* with a fact
//! attribute (production year), and correlated content columns across the
//! join — the conditions under which independence-based join estimates
//! (and SPN ensembles) go wrong.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use uae_data::synth::Zipf;
use uae_data::{Table, Value};

use crate::schema::{DimTable, StarSchema};

/// Generate an IMDB-like star schema.
///
/// * fact `title(production_year, kind)` — `titles` rows;
/// * `movie_companies(company_type, country)` — fanout 0–6, larger for
///   recent years;
/// * `movie_info(info_type, rating)` — fanout 0–8, rating correlated with
///   year;
/// * `cast_info(role)` — fanout 0–10 (used by the optimizer study's wider
///   joins).
pub fn imdb_like(titles: usize, seed: u64) -> StarSchema {
    let mut rng = StdRng::seed_from_u64(seed);
    let year_z = Zipf::new(120, 0.7);
    let kind_z = Zipf::new(7, 1.2);

    let mut years = Vec::with_capacity(titles);
    let mut kinds = Vec::with_capacity(titles);
    for _ in 0..titles {
        // Years skew toward the high end (recent movies): invert the Zipf.
        let y = 119 - year_z.sample(&mut rng) as i64;
        years.push(Value::Int(y));
        kinds.push(Value::Int(kind_z.sample(&mut rng) as i64));
    }
    let fact = Table::from_columns(
        "title",
        vec![("production_year".into(), years.clone()), ("kind".into(), kinds.clone())],
    );

    // movie_companies: fanout correlated with year (recent → more).
    let ctype_z = Zipf::new(4, 1.0);
    let country_z = Zipf::new(40, 1.5);
    let mut mc_fk = Vec::new();
    let mut mc_ctype = Vec::new();
    let mut mc_country = Vec::new();
    for t in 0..titles {
        let year = years[t].as_int().expect("int year");
        let base = if year > 90 {
            3.0
        } else if year > 60 {
            1.5
        } else {
            0.8
        };
        let fanout = sample_fanout(&mut rng, base, 6);
        for _ in 0..fanout {
            mc_fk.push(t as u32);
            // company type correlated with title kind
            let kind = kinds[t].as_int().expect("int kind");
            let ct =
                if rng.random::<f64>() < 0.6 { kind % 4 } else { ctype_z.sample(&mut rng) as i64 };
            mc_ctype.push(Value::Int(ct));
            mc_country.push(Value::Int(country_z.sample(&mut rng) as i64));
        }
    }
    let mc = DimTable::new(
        Table::from_columns(
            "movie_companies",
            vec![("company_type".into(), mc_ctype), ("country".into(), mc_country)],
        ),
        mc_fk,
    );

    // movie_info: rating correlated with year.
    let itype_z = Zipf::new(20, 1.1);
    let mut mi_fk = Vec::new();
    let mut mi_itype = Vec::new();
    let mut mi_rating = Vec::new();
    for (t, year) in years.iter().enumerate().take(titles) {
        let year = year.as_int().expect("int year");
        let fanout = sample_fanout(&mut rng, 1.8, 8);
        for _ in 0..fanout {
            mi_fk.push(t as u32);
            mi_itype.push(Value::Int(itype_z.sample(&mut rng) as i64));
            let base = (year / 13).min(9);
            let rating = (base + rng.random_range(-2..=2i64)).clamp(0, 9);
            mi_rating.push(Value::Int(rating));
        }
    }
    let mi = DimTable::new(
        Table::from_columns(
            "movie_info",
            vec![("info_type".into(), mi_itype), ("rating".into(), mi_rating)],
        ),
        mi_fk,
    );

    // cast_info: heavier fanout, role correlated with kind.
    let role_z = Zipf::new(12, 1.0);
    let mut ci_fk = Vec::new();
    let mut ci_role = Vec::new();
    for (t, kind) in kinds.iter().enumerate().take(titles) {
        let fanout = sample_fanout(&mut rng, 2.2, 10);
        let kind = kind.as_int().expect("int kind");
        for _ in 0..fanout {
            ci_fk.push(t as u32);
            let role =
                if rng.random::<f64>() < 0.4 { kind % 12 } else { role_z.sample(&mut rng) as i64 };
            ci_role.push(Value::Int(role));
        }
    }
    let ci = DimTable::new(Table::from_columns("cast_info", vec![("role".into(), ci_role)]), ci_fk);

    StarSchema::new(fact, vec![mc, mi, ci])
}

/// Skewed fanout: geometric-ish with mean ≈ `base`, capped.
fn sample_fanout(rng: &mut StdRng, base: f64, cap: usize) -> usize {
    let mut f = 0usize;
    let p = base / (base + 1.0);
    while f < cap && rng.random::<f64>() < p {
        f += 1;
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape() {
        let s = imdb_like(500, 1);
        assert_eq!(s.num_dims(), 3);
        assert_eq!(s.fact.num_cols(), 2);
        assert!(s.dims[0].content.num_rows() > 200, "movie_companies too small");
        assert!(s.outer_join_size() > s.fact.num_rows() as u64);
    }

    #[test]
    fn deterministic() {
        let a = imdb_like(200, 9);
        let b = imdb_like(200, 9);
        assert_eq!(a.outer_join_size(), b.outer_join_size());
        assert_eq!(a.dims[1].fk, b.dims[1].fk);
    }

    #[test]
    fn fanouts_correlate_with_year() {
        let s = imdb_like(3000, 2);
        let year_col = s.fact.column(0);
        let (mut recent, mut old) = ((0usize, 0usize), (0usize, 0usize));
        for t in 0..s.fact.num_rows() {
            let year = year_col.value(t).as_int().unwrap();
            let f = s.fanout(0, t);
            if year > 90 {
                recent = (recent.0 + f, recent.1 + 1);
            } else if year < 50 {
                old = (old.0 + f, old.1 + 1);
            }
        }
        let recent_avg = recent.0 as f64 / recent.1.max(1) as f64;
        let old_avg = old.0 as f64 / old.1.max(1) as f64;
        assert!(recent_avg > old_avg, "recent {recent_avg} vs old {old_avg}");
    }
}
