//! Join workload generation (paper §5.1.2, join experiments).
//!
//! `JOB-light-ranges-focused`: one join template (all dimensions joined),
//! a bounded range on `title.production_year` (center window + target
//! volume), and 2–5 random content filters anchored at an actually-joined
//! tuple. The JOB-light-style *random* workload drops the bounded
//! attribute and joins a random subset of the dimensions, probing
//! robustness to workload shifts (and exercising fanout scaling).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use uae_query::{PredOp, Predicate};

use crate::executor::label_join_queries;
use crate::schema::{JoinQuery, LabeledJoinQuery, StarSchema};

/// Join-workload parameters.
#[derive(Debug, Clone)]
pub struct JoinWorkloadSpec {
    /// RNG seed.
    pub seed: u64,
    /// Number of (satisfiable, distinct) queries.
    pub num_queries: usize,
    /// Bounded attribute on the fact table: `(column, center window,
    /// volume fraction)`; `None` = random workload.
    pub bounded: Option<(usize, (f64, f64), f64)>,
    /// Inclusive range of random content filters.
    pub nf_range: (usize, usize),
    /// `true` joins all dimensions (the single JOB-light template);
    /// `false` picks a random subset per query.
    pub all_dims: bool,
}

impl JoinWorkloadSpec {
    /// JOB-light-ranges-focused defaults: bounded year, all dims joined.
    pub fn focused(fact_col: usize, num_queries: usize, seed: u64) -> Self {
        JoinWorkloadSpec {
            seed,
            num_queries,
            bounded: Some((fact_col, (0.0, 1.0), 0.05)),
            nf_range: (2, 4),
            all_dims: true,
        }
    }

    /// JOB-light-style random workload: no bounded attribute, random
    /// dimension subsets.
    pub fn random(num_queries: usize, seed: u64) -> Self {
        JoinWorkloadSpec { seed, num_queries, bounded: None, nf_range: (1, 3), all_dims: false }
    }
}

/// Generate a labeled join workload (cardinality ≥ 1, deduplicated,
/// disjoint from `exclude`).
pub fn generate_join_workload(
    schema: &StarSchema,
    spec: &JoinWorkloadSpec,
    exclude: &HashSet<u64>,
) -> Vec<LabeledJoinQuery> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut seen = exclude.clone();
    let mut out = Vec::with_capacity(spec.num_queries);
    let mut guard = 0;
    while out.len() < spec.num_queries {
        guard += 1;
        assert!(guard < 200, "join workload generation stalled");
        let want = spec.num_queries - out.len();
        let candidates: Vec<JoinQuery> =
            (0..(want * 2).max(8)).map(|_| generate_query(schema, spec, &mut rng)).collect();
        for lq in label_join_queries(schema, candidates) {
            if lq.cardinality == 0 {
                continue;
            }
            if seen.insert(fingerprint(&lq.query)) {
                out.push(lq);
                if out.len() == spec.num_queries {
                    break;
                }
            }
        }
    }
    out
}

/// Stable fingerprint of a join query.
pub fn fingerprint(q: &JoinQuery) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    q.dims.hash(&mut h);
    for p in &q.fact_preds {
        (0usize, p.column, p.op.feature_index()).hash(&mut h);
        p.value.hash(&mut h);
    }
    for (d, p) in &q.dim_preds {
        (1usize, *d, p.column, p.op.feature_index()).hash(&mut h);
        p.value.hash(&mut h);
    }
    h.finish()
}

/// Fingerprints of a whole workload.
pub fn fingerprints(workload: &[LabeledJoinQuery]) -> HashSet<u64> {
    workload.iter().map(|lq| fingerprint(&lq.query)).collect()
}

fn generate_query(schema: &StarSchema, spec: &JoinWorkloadSpec, rng: &mut StdRng) -> JoinQuery {
    let ndims = schema.num_dims();
    let dims: Vec<usize> = if spec.all_dims {
        (0..ndims).collect()
    } else {
        let k = rng.random_range(0..=ndims);
        let mut pool: Vec<usize> = (0..ndims).collect();
        let mut picked = Vec::new();
        for _ in 0..k {
            let i = rng.random_range(0..pool.len());
            picked.push(pool.swap_remove(i));
        }
        picked.sort_unstable();
        picked
    };

    // Anchor: a fact row with matches in every joined dimension.
    let anchor = (0..64)
        .map(|_| rng.random_range(0..schema.fact.num_rows()))
        .find(|&t| dims.iter().all(|&d| schema.fanout(d, t) > 0))
        .unwrap_or(0);

    let mut fact_preds = Vec::new();
    let mut bounded_col = None;
    if let Some((col, (wlo, whi), vol)) = spec.bounded {
        bounded_col = Some(col);
        let c = schema.fact.column(col);
        let d = c.domain_size();
        let width = ((vol * d as f64).round() as usize).max(1);
        let lo_center = (wlo * d as f64) as usize;
        let hi_center = ((whi * d as f64) as usize).max(lo_center + 1).min(d);
        let center = rng.random_range(lo_center..hi_center);
        let lo = center.saturating_sub(width / 2);
        let hi = (lo + width).min(d) - 1;
        fact_preds.push(Predicate::ge(col, c.dict()[lo].clone()));
        fact_preds.push(Predicate::le(col, c.dict()[hi].clone()));
    }

    // Random content filters over fact + joined dims.
    let mut candidates: Vec<(Option<usize>, usize)> = Vec::new();
    for c in 0..schema.fact.num_cols() {
        if Some(c) != bounded_col {
            candidates.push((None, c));
        }
    }
    for &d in &dims {
        for c in 0..schema.dims[d].content.num_cols() {
            candidates.push((Some(d), c));
        }
    }
    let (lo, hi) = spec.nf_range;
    let nf = rng.random_range(lo..=hi.min(candidates.len().max(1)));
    let mut dim_preds = Vec::new();
    for _ in 0..nf {
        if candidates.is_empty() {
            break;
        }
        let i = rng.random_range(0..candidates.len());
        let (dim, col) = candidates.swap_remove(i);
        match dim {
            None => {
                let c = schema.fact.column(col);
                let v = c.value(anchor).clone();
                fact_preds.push(Predicate::new(col, pick_op(rng, c.domain_size()), v));
            }
            Some(d) => {
                let matches = schema.matches(d, anchor);
                let row = matches[rng.random_range(0..matches.len())] as usize;
                let c = schema.dims[d].content.column(col);
                let v = c.value(row).clone();
                dim_preds.push((d, Predicate::new(col, pick_op(rng, c.domain_size()), v)));
            }
        }
    }
    JoinQuery { dims, fact_preds, dim_preds }
}

fn pick_op(rng: &mut StdRng, domain: usize) -> PredOp {
    if domain <= 2 {
        return PredOp::Eq;
    }
    match rng.random::<f64>() {
        x if x < 0.45 => PredOp::Eq,
        x if x < 0.73 => PredOp::Le,
        _ => PredOp::Ge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::imdb_like;

    #[test]
    fn focused_workload_joins_all_dims_and_is_satisfiable() {
        let s = imdb_like(500, 2);
        let w = generate_join_workload(&s, &JoinWorkloadSpec::focused(0, 25, 3), &HashSet::new());
        assert_eq!(w.len(), 25);
        assert!(w.iter().all(|lq| lq.cardinality >= 1));
        assert!(w.iter().all(|lq| lq.query.dims == vec![0, 1, 2]));
        // Bounded attribute present on every query.
        assert!(w
            .iter()
            .all(|lq| lq.query.fact_preds.iter().filter(|p| p.column == 0).count() >= 2));
    }

    #[test]
    fn random_workload_varies_join_subsets() {
        let s = imdb_like(500, 2);
        let w = generate_join_workload(&s, &JoinWorkloadSpec::random(30, 5), &HashSet::new());
        assert_eq!(w.len(), 30);
        let distinct_subsets: HashSet<Vec<usize>> =
            w.iter().map(|lq| lq.query.dims.clone()).collect();
        assert!(distinct_subsets.len() > 2, "subsets: {distinct_subsets:?}");
    }

    #[test]
    fn workloads_deduplicate_across_exclusions() {
        let s = imdb_like(400, 4);
        let train =
            generate_join_workload(&s, &JoinWorkloadSpec::focused(0, 20, 1), &HashSet::new());
        let excl = fingerprints(&train);
        let test = generate_join_workload(&s, &JoinWorkloadSpec::focused(0, 20, 2), &excl);
        assert!(excl.is_disjoint(&fingerprints(&test)));
    }
}
