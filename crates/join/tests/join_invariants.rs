//! Invariants of the join substrate: sampler unbiasedness, executor
//! algebra, and optimizer consistency.

use std::collections::HashSet;

use proptest::prelude::*;
use uae_join::optimizer::{
    best_plan, permutations, plan_cost, PostgresLike, SubplanEstimator, TruthEstimator,
};
use uae_join::{
    generate_join_workload, imdb_like, sample_outer_join, JoinExecutor, JoinQuery, JoinWorkloadSpec,
};
use uae_query::Predicate;

#[test]
fn sampler_is_unbiased_for_fanout_moments() {
    // E[min(fanout_d, cap) | sampled row joined] matches the exact
    // weighted mean over the outer join.
    let schema = imdb_like(400, 51);
    let sample = sample_outer_join(&schema, 30_000, 32, 52);
    for (d, dl) in sample.layout.dims.iter().enumerate() {
        // Exact: Σ_t w(t)·min(f_d(t),cap) / Σ_t w(t), counting NULL rows
        // as fanout 0.
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for t in 0..schema.fact.num_rows() {
            let w: f64 =
                (0..schema.num_dims()).map(|dd| schema.fanout(dd, t).max(1) as f64).product();
            num += w * schema.fanout(d, t).min(32) as f64;
            den += w;
        }
        let exact = num / den;
        let fan = sample.table.column(dl.fanout);
        let sampled: f64 = (0..sample.table.num_rows())
            .map(|r| fan.value(r).as_int().unwrap() as f64)
            .sum::<f64>()
            / sample.table.num_rows() as f64;
        assert!(
            (sampled - exact).abs() < 0.15 * exact.max(0.5),
            "dim {d}: sampled mean fanout {sampled} vs exact {exact}"
        );
    }
}

#[test]
fn executor_monotone_in_predicates() {
    // Adding a predicate can only shrink a join's cardinality.
    let schema = imdb_like(500, 53);
    let exec = JoinExecutor::new(&schema);
    let base = JoinQuery { dims: vec![0, 1], ..Default::default() };
    let with_pred = JoinQuery {
        dims: vec![0, 1],
        fact_preds: vec![Predicate::ge(0, 60i64)],
        dim_preds: vec![],
    };
    let more = JoinQuery {
        dims: vec![0, 1],
        fact_preds: vec![Predicate::ge(0, 60i64)],
        dim_preds: vec![(0, Predicate::eq(0, 1i64))],
    };
    let (a, b, c) =
        (exec.cardinality(&base), exec.cardinality(&with_pred), exec.cardinality(&more));
    assert!(a >= b && b >= c, "monotonicity violated: {a} {b} {c}");
}

#[test]
fn subset_join_never_exceeds_superset_fanout_product() {
    // card(F ⋈ d0) ≤ card(F ⋈ d0 ⋈ d1) requires every F⋈d0 row to have a
    // d1 match — NOT generally true; instead test the true containment:
    // joining an extra table multiplies each row by its fanout, so
    // card(all dims) == Σ over (F⋈d0) rows of fanout products, which the
    // executor must agree with when no predicates are present.
    let schema = imdb_like(300, 54);
    let exec = JoinExecutor::new(&schema);
    let all = exec.cardinality(&JoinQuery { dims: vec![0, 1, 2], ..Default::default() });
    let manual: u64 = (0..schema.fact.num_rows())
        .map(|t| {
            (schema.fanout(0, t) as u64)
                * (schema.fanout(1, t) as u64)
                * (schema.fanout(2, t) as u64)
        })
        .sum();
    assert_eq!(all, manual);
}

#[test]
fn optimizer_cost_is_order_sensitive_and_truth_picks_the_min() {
    let schema = imdb_like(700, 55);
    let queries = generate_join_workload(
        &schema,
        &JoinWorkloadSpec {
            seed: 56,
            num_queries: 8,
            bounded: Some((0, (0.0, 1.0), 0.1)),
            nf_range: (1, 3),
            all_dims: true,
        },
        &HashSet::new(),
    );
    let truth = TruthEstimator::new(&schema);
    for lq in &queries {
        let chosen = best_plan(&lq.query, &truth);
        let chosen_cost = plan_cost(&lq.query, &chosen, &truth);
        for order in permutations(&lq.query.dims) {
            let c = plan_cost(&lq.query, &uae_join::Plan { order }, &truth);
            assert!(
                chosen_cost <= c + 1e-9,
                "best_plan missed a cheaper order: {chosen_cost} vs {c}"
            );
        }
    }
}

#[test]
fn postgres_like_is_exact_on_pure_pk_fk_joins() {
    // With no predicates, |F ⋈ D| = |D| exactly (every dim row has one
    // fact parent), and the key-uniformity formula reproduces it.
    let schema = imdb_like(300, 57);
    let pg = PostgresLike::new(&schema);
    let exec = JoinExecutor::new(&schema);
    for d in 0..schema.num_dims() {
        let q = JoinQuery { dims: vec![d], ..Default::default() };
        let est = pg.subplan_card(&q);
        let truth = exec.cardinality(&q) as f64;
        assert!((est - truth).abs() / truth < 0.02, "dim {d}: pg {est} vs truth {truth}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Outer-join size equals the sum of per-row fanout products for any
    /// generated schema.
    #[test]
    fn outer_size_matches_definition(titles in 50usize..200, seed in 0u64..500) {
        let schema = imdb_like(titles, seed);
        let manual: u64 = (0..schema.fact.num_rows())
            .map(|t| {
                (0..schema.num_dims())
                    .map(|d| schema.fanout(d, t).max(1) as u64)
                    .product::<u64>()
            })
            .sum();
        prop_assert_eq!(schema.outer_join_size(), manual);
    }
}
