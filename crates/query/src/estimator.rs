//! The interface every cardinality estimator in this repository implements
//! (UAE and all nine baselines), plus evaluation helpers shared by the
//! benchmark harness.
//!
//! [`CardEstimator`] is object-safe and `Send + Sync`: a fleet of
//! heterogeneous estimators can live behind `Arc<dyn CardEstimator>` in a
//! server registry and be shared across executor threads. The unified
//! surface is selectivity-first — `estimate_selectivity` is the one
//! required estimation method, and cardinalities derive from it via
//! [`CardEstimator::num_rows`] — which retires the ad-hoc per-type
//! `estimate_selectivity` inherent methods the baselines used to expose.

use std::time::Instant;

use crate::executor::LabeledQuery;
use crate::metrics::ErrorSummary;
use crate::predicate::Query;

/// Model-family tag, used by routing policies and telemetry to identify
/// which kind of backend produced an estimate without downcasting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EstimatorFamily {
    /// Deep autoregressive model (UAE / Naru-style).
    Autoregressive,
    /// Per-column 1-D histograms under the independence assumption.
    Histogram,
    /// Multi-dimensional equi-depth histogram.
    MultiDimHistogram,
    /// Sum-product network.
    Spn,
    /// Bayesian network over discretized columns.
    BayesNet,
    /// Kernel density estimator.
    Kde,
    /// Uniform row sampling.
    Sampling,
    /// Query-driven regression (linear or MLP, e.g. LR / MSCN).
    Regression,
    /// Query-driven mixture model (QuickSel-style).
    Mixture,
    /// Workload-aware histogram (STHoles-style).
    WorkloadHistogram,
    /// A routed fleet of heterogeneous backends.
    Fleet,
    /// Anything else (test doubles, wrappers).
    Other,
}

impl EstimatorFamily {
    /// Stable lowercase label for telemetry lines and reports.
    pub fn label(self) -> &'static str {
        match self {
            EstimatorFamily::Autoregressive => "autoregressive",
            EstimatorFamily::Histogram => "histogram",
            EstimatorFamily::MultiDimHistogram => "mhist",
            EstimatorFamily::Spn => "spn",
            EstimatorFamily::BayesNet => "bayesnet",
            EstimatorFamily::Kde => "kde",
            EstimatorFamily::Sampling => "sampling",
            EstimatorFamily::Regression => "regression",
            EstimatorFamily::Mixture => "mixture",
            EstimatorFamily::WorkloadHistogram => "stholes",
            EstimatorFamily::Fleet => "fleet",
            EstimatorFamily::Other => "other",
        }
    }
}

/// Coarse per-query inference cost class — the routing policy's cost
/// hook. Classes compare by `Ord`: `Trivial < Cheap < Moderate <
/// Expensive`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QueryCost {
    /// O(filters) arithmetic — per-column histogram lookups.
    Trivial,
    /// Small model traversal — SPN, BayesNet, mixture evaluation.
    Cheap,
    /// Sample scans or shallow network forward passes.
    Moderate,
    /// Progressive sampling through a deep autoregressive model.
    Expensive,
}

/// A trained cardinality estimator.
///
/// Object-safe and `Send + Sync` so heterogeneous fleets can be shared
/// across serving threads behind `Arc<dyn CardEstimator>`.
pub trait CardEstimator: Send + Sync {
    /// Display name (matches the paper's tables).
    fn name(&self) -> &str;

    /// Number of rows in the table this estimator was built over —
    /// the scale factor between selectivity and cardinality.
    fn num_rows(&self) -> f64;

    /// Estimated selectivity of a query, in `[0, 1]`. This is the one
    /// required estimation method; cardinalities derive from it.
    fn estimate_selectivity(&self, query: &Query) -> f64;

    /// Estimated cardinality (row count) of a query. The default scales
    /// [`CardEstimator::estimate_selectivity`] by
    /// [`CardEstimator::num_rows`].
    fn estimate_card(&self, query: &Query) -> f64 {
        self.estimate_selectivity(query) * self.num_rows()
    }

    /// Estimated cardinalities of a batch of queries. The default loops
    /// over [`CardEstimator::estimate_card`]; estimators with a
    /// cheaper amortized path (UAE's cross-query batched sampler) override
    /// this.
    fn estimate_cards(&self, queries: &[Query]) -> Vec<f64> {
        queries.iter().map(|q| self.estimate_card(q)).collect()
    }

    /// Approximate in-memory size of the estimator's state, in bytes
    /// (the paper's "Size" column).
    fn size_bytes(&self) -> usize;

    /// Which model family this estimator belongs to (metadata hook for
    /// routing and telemetry).
    fn family(&self) -> EstimatorFamily {
        EstimatorFamily::Other
    }

    /// Coarse per-query inference cost (cost hook for routing).
    fn cost_class(&self) -> QueryCost {
        QueryCost::Moderate
    }
}

/// A `dyn`-compatible borrow: `&dyn CardEstimator` works anywhere a
/// concrete estimator does.
impl CardEstimator for &dyn CardEstimator {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn num_rows(&self) -> f64 {
        (**self).num_rows()
    }
    fn estimate_selectivity(&self, query: &Query) -> f64 {
        (**self).estimate_selectivity(query)
    }
    fn estimate_card(&self, query: &Query) -> f64 {
        (**self).estimate_card(query)
    }
    fn estimate_cards(&self, queries: &[Query]) -> Vec<f64> {
        (**self).estimate_cards(queries)
    }
    fn size_bytes(&self) -> usize {
        (**self).size_bytes()
    }
    fn family(&self) -> EstimatorFamily {
        (**self).family()
    }
    fn cost_class(&self) -> QueryCost {
        (**self).cost_class()
    }
}

/// Result of evaluating one estimator on one workload.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Estimator name.
    pub name: String,
    /// Q-error summary over the workload.
    pub errors: ErrorSummary,
    /// Mean estimation latency per query, in milliseconds.
    pub mean_latency_ms: f64,
    /// Estimator size in bytes.
    pub size_bytes: usize,
}

/// Evaluate an estimator against a labeled workload.
pub fn evaluate(estimator: &dyn CardEstimator, workload: &[LabeledQuery]) -> Evaluation {
    let start = Instant::now();
    let queries: Vec<Query> = workload.iter().map(|lq| lq.query.clone()).collect();
    let estimates: Vec<f64> = estimator.estimate_cards(&queries);
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    let truth: Vec<f64> = workload.iter().map(|lq| lq.cardinality as f64).collect();
    Evaluation {
        name: estimator.name().to_owned(),
        errors: ErrorSummary::from_estimates(&truth, &estimates),
        mean_latency_ms: elapsed / workload.len().max(1) as f64,
        size_bytes: estimator.size_bytes(),
    }
}

/// Pretty size like the paper's tables (`17KB`, `2.0MB`).
pub fn format_size(bytes: usize) -> String {
    if bytes < 1024 {
        format!("{bytes}B")
    } else if bytes < 1024 * 1024 {
        format!("{:.0}KB", bytes as f64 / 1024.0)
    } else {
        format!("{:.1}MB", bytes as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Oracle(f64);
    impl CardEstimator for Oracle {
        fn name(&self) -> &str {
            "oracle"
        }
        fn num_rows(&self) -> f64 {
            1000.0
        }
        fn estimate_selectivity(&self, _q: &Query) -> f64 {
            self.0 / 1000.0
        }
        fn size_bytes(&self) -> usize {
            8
        }
    }

    #[test]
    fn evaluate_summarizes_errors() {
        let w = vec![
            LabeledQuery { query: Query::default(), cardinality: 100, selectivity: 0.1 },
            LabeledQuery { query: Query::default(), cardinality: 50, selectivity: 0.05 },
        ];
        let ev = evaluate(&Oracle(100.0), &w);
        assert_eq!(ev.errors.max, 2.0);
        assert_eq!(ev.size_bytes, 8);
        assert!(ev.mean_latency_ms >= 0.0);
    }

    #[test]
    fn default_card_scales_selectivity_by_rows() {
        let est = Oracle(250.0);
        assert_eq!(est.estimate_card(&Query::default()), 250.0);
        assert_eq!(est.estimate_cards(&[Query::default(), Query::default()]), vec![250.0, 250.0]);
    }

    #[test]
    fn trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn CardEstimator>();
    }

    #[test]
    fn family_labels_are_stable() {
        assert_eq!(EstimatorFamily::Autoregressive.label(), "autoregressive");
        assert_eq!(EstimatorFamily::Fleet.label(), "fleet");
        assert!(QueryCost::Trivial < QueryCost::Expensive);
    }

    #[test]
    fn sizes_format() {
        assert_eq!(format_size(500), "500B");
        assert_eq!(format_size(17 * 1024), "17KB");
        assert_eq!(format_size(2 * 1024 * 1024), "2.0MB");
    }
}
