//! The interface every cardinality estimator in this repository implements
//! (UAE and all nine baselines), plus evaluation helpers shared by the
//! benchmark harness.

use std::time::Instant;

use crate::executor::LabeledQuery;
use crate::metrics::ErrorSummary;
use crate::predicate::Query;

/// A trained cardinality estimator.
pub trait CardinalityEstimator {
    /// Display name (matches the paper's tables).
    fn name(&self) -> &str;

    /// Estimated cardinality (row count) of a query.
    fn estimate_card(&self, query: &Query) -> f64;

    /// Estimated cardinalities of a batch of queries. The default loops
    /// over [`CardinalityEstimator::estimate_card`]; estimators with a
    /// cheaper amortized path (UAE's cross-query batched sampler) override
    /// this.
    fn estimate_cards(&self, queries: &[Query]) -> Vec<f64> {
        queries.iter().map(|q| self.estimate_card(q)).collect()
    }

    /// Approximate in-memory size of the estimator's state, in bytes
    /// (the paper's "Size" column).
    fn size_bytes(&self) -> usize;
}

/// Result of evaluating one estimator on one workload.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Estimator name.
    pub name: String,
    /// Q-error summary over the workload.
    pub errors: ErrorSummary,
    /// Mean estimation latency per query, in milliseconds.
    pub mean_latency_ms: f64,
    /// Estimator size in bytes.
    pub size_bytes: usize,
}

/// Evaluate an estimator against a labeled workload.
pub fn evaluate(estimator: &dyn CardinalityEstimator, workload: &[LabeledQuery]) -> Evaluation {
    let start = Instant::now();
    let queries: Vec<Query> = workload.iter().map(|lq| lq.query.clone()).collect();
    let estimates: Vec<f64> = estimator.estimate_cards(&queries);
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    let truth: Vec<f64> = workload.iter().map(|lq| lq.cardinality as f64).collect();
    Evaluation {
        name: estimator.name().to_owned(),
        errors: ErrorSummary::from_estimates(&truth, &estimates),
        mean_latency_ms: elapsed / workload.len().max(1) as f64,
        size_bytes: estimator.size_bytes(),
    }
}

/// Pretty size like the paper's tables (`17KB`, `2.0MB`).
pub fn format_size(bytes: usize) -> String {
    if bytes < 1024 {
        format!("{bytes}B")
    } else if bytes < 1024 * 1024 {
        format!("{:.0}KB", bytes as f64 / 1024.0)
    } else {
        format!("{:.1}MB", bytes as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Oracle(f64);
    impl CardinalityEstimator for Oracle {
        fn name(&self) -> &str {
            "oracle"
        }
        fn estimate_card(&self, _q: &Query) -> f64 {
            self.0
        }
        fn size_bytes(&self) -> usize {
            8
        }
    }

    #[test]
    fn evaluate_summarizes_errors() {
        let w = vec![
            LabeledQuery { query: Query::default(), cardinality: 100, selectivity: 0.1 },
            LabeledQuery { query: Query::default(), cardinality: 50, selectivity: 0.05 },
        ];
        let ev = evaluate(&Oracle(100.0), &w);
        assert_eq!(ev.errors.max, 2.0);
        assert_eq!(ev.size_bytes, 8);
        assert!(ev.mean_latency_ms >= 0.0);
    }

    #[test]
    fn sizes_format() {
        assert_eq!(format_size(500), "500B");
        assert_eq!(format_size(17 * 1024), "17KB");
        assert_eq!(format_size(2 * 1024 * 1024), "2.0MB");
    }
}
