//! Exact (ground-truth) query execution by parallel column scans.
//!
//! Provides the true cardinalities `Card(q)` used as training labels for
//! the supervised estimators and as the reference in every q-error
//! measurement.

use uae_data::par::{default_threads, par_count, par_map_slice};
use uae_data::Table;

use crate::predicate::Query;
use crate::region::QueryRegion;

/// Exact executor over one table.
#[derive(Debug)]
pub struct Executor<'a> {
    table: &'a Table,
    threads: usize,
}

impl<'a> Executor<'a> {
    /// An executor using the default thread count.
    pub fn new(table: &'a Table) -> Self {
        Executor { table, threads: default_threads() }
    }

    /// Override the worker-thread count.
    pub fn with_threads(table: &'a Table, threads: usize) -> Self {
        Executor { table, threads: threads.max(1) }
    }

    /// The table being scanned.
    pub fn table(&self) -> &Table {
        self.table
    }

    /// True cardinality of one query.
    pub fn cardinality(&self, query: &Query) -> u64 {
        let region = QueryRegion::build(self.table, query);
        self.cardinality_of_region(&region)
    }

    /// True cardinality given a prebuilt region.
    pub fn cardinality_of_region(&self, region: &QueryRegion) -> u64 {
        if region.is_empty() {
            return 0;
        }
        // Scan only constrained columns, cheapest (most selective) first is
        // unknowable without stats, so order by position; short-circuit per row.
        let constrained: Vec<usize> =
            (0..self.table.num_cols()).filter(|&i| region.column(i).is_some()).collect();
        if constrained.is_empty() {
            return self.table.num_rows() as u64;
        }
        let cols: Vec<&[u32]> = constrained.iter().map(|&i| self.table.column(i).codes()).collect();
        let regs: Vec<&crate::region::Region> =
            constrained.iter().map(|&i| region.column(i).expect("constrained")).collect();
        par_count(self.table.num_rows(), self.threads, |rows| {
            let mut count = 0u64;
            for r in rows {
                if cols.iter().zip(&regs).all(|(codes, reg)| reg.contains(codes[r])) {
                    count += 1;
                }
            }
            count
        })
    }

    /// True selectivity `Sel(q) = Card(q) / |T|`.
    pub fn selectivity(&self, query: &Query) -> f64 {
        if self.table.num_rows() == 0 {
            return 0.0;
        }
        self.cardinality(query) as f64 / self.table.num_rows() as f64
    }

    /// Cardinalities of many queries, parallelized over queries.
    pub fn cardinalities(&self, queries: &[Query]) -> Vec<u64> {
        // Parallelize across queries (each query scan stays single-threaded
        // to avoid nested thread pools).
        let table = self.table;
        par_map_slice(queries, self.threads, |q| Executor::with_threads(table, 1).cardinality(q))
    }
}

/// A query labeled with its true cardinality — one entry of the workload
/// log `(Q, C)` from the paper's problem statement.
#[derive(Debug, Clone)]
pub struct LabeledQuery {
    /// The query.
    pub query: Query,
    /// Its true cardinality on the table at labeling time.
    pub cardinality: u64,
    /// Its true selectivity at labeling time.
    pub selectivity: f64,
}

/// Label a batch of queries with ground truth.
pub fn label_queries(table: &Table, queries: Vec<Query>) -> Vec<LabeledQuery> {
    let exec = Executor::new(table);
    let cards = exec.cardinalities(&queries);
    let n = table.num_rows().max(1) as f64;
    queries
        .into_iter()
        .zip(cards)
        .map(|(query, cardinality)| LabeledQuery {
            query,
            cardinality,
            selectivity: cardinality as f64 / n,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{PredOp, Predicate};
    use uae_data::Value;

    fn table() -> Table {
        // x: 0..100, y = x % 10
        Table::from_columns(
            "t",
            vec![
                ("x".into(), (0..100i64).map(Value::Int).collect()),
                ("y".into(), (0..100i64).map(|v| Value::Int(v % 10)).collect()),
            ],
        )
    }

    #[test]
    fn cardinality_of_simple_range() {
        let t = table();
        let exec = Executor::new(&t);
        let q = Query::new(vec![Predicate::le(0, 49i64)]);
        assert_eq!(exec.cardinality(&q), 50);
        assert!((exec.selectivity(&q) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conjunction_intersects() {
        let t = table();
        let exec = Executor::new(&t);
        let q = Query::new(vec![Predicate::le(0, 49i64), Predicate::eq(1, 3i64)]);
        // x in 0..=49 with x % 10 == 3 → {3, 13, 23, 33, 43}
        assert_eq!(exec.cardinality(&q), 5);
    }

    #[test]
    fn empty_and_full_queries() {
        let t = table();
        let exec = Executor::new(&t);
        assert_eq!(exec.cardinality(&Query::default()), 100);
        let none = Query::new(vec![Predicate::new(0, PredOp::Lt, Value::Int(0))]);
        assert_eq!(exec.cardinality(&none), 0);
    }

    #[test]
    fn batch_matches_single() {
        let t = table();
        let exec = Executor::new(&t);
        let queries: Vec<Query> = (0..20)
            .map(|i| {
                Query::new(vec![Predicate::ge(0, i as i64 * 5), Predicate::eq(1, (i % 10) as i64)])
            })
            .collect();
        let batch = exec.cardinalities(&queries);
        for (q, &c) in queries.iter().zip(&batch) {
            assert_eq!(exec.cardinality(q), c);
        }
    }

    #[test]
    fn label_queries_attaches_truth() {
        let t = table();
        let labeled = label_queries(&t, vec![Query::new(vec![Predicate::le(0, 9i64)])]);
        assert_eq!(labeled[0].cardinality, 10);
        assert!((labeled[0].selectivity - 0.1).abs() < 1e-12);
    }
}
