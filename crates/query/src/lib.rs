//! # uae-query — predicates, regions, ground truth, workloads, metrics
//!
//! The query substrate of the UAE reproduction:
//!
//! * [`predicate`] — conjunctive queries with `=, !=, <, <=, >, >=, IN`
//!   (paper §3);
//! * [`region`] — per-column code regions `R^q = R_1 x … x R_n` (§4.2),
//!   with masks for (differentiable) progressive sampling;
//! * [`executor`] — exact parallel-scan ground truth and query labeling;
//! * [`workload`] — the §5.1.2 generators: bounded-attribute in-workload
//!   queries, random queries, and the shifted windows of §5.4;
//! * [`metrics`] — q-error (Eq. 6) and mean/median/95th/max summaries;
//! * [`report`] — selectivity-distribution histograms (Figure 3).

pub mod estimator;
pub mod executor;
pub mod metrics;
pub mod parse;
pub mod predicate;
pub mod region;
pub mod report;
pub mod workload;

pub use estimator::{evaluate, CardEstimator, EstimatorFamily, Evaluation, QueryCost};
pub use executor::{label_queries, Executor, LabeledQuery};
pub use metrics::{q_error, ErrorSummary};
pub use parse::{parse_disjunction, parse_query};
pub use predicate::{PredOp, Predicate, Query};
pub use region::{predicate_region, QueryRegion, Region};
pub use workload::{
    default_bounded_column, fingerprints, generate_correlated_workload, generate_workload,
    BoundedSpec, CorrelatedSpec, WorkloadSpec,
};
