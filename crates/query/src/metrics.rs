//! The q-error metric (paper Eq. 6) and error summaries.

/// Q-error between a true and an estimated cardinality:
/// `max(1, c/ĉ, ĉ/c)` with both sides floored at 1 row so that empty
/// results do not divide by zero (the convention of Moerkotte et al. and of
/// the paper's evaluation).
///
/// A non-finite input (NaN or ±∞ on either side) yields `+∞`: such an
/// estimate is maximally wrong, and Rust's `f64::max` would otherwise
/// *discard* a NaN operand — `f64::NAN.max(1.0) == 1.0` — silently scoring
/// a diverged model as perfect. The shadow-eval gate sorts on these values,
/// so "broken" must compare worse than every finite error.
pub fn q_error(true_card: f64, est_card: f64) -> f64 {
    if !true_card.is_finite() || !est_card.is_finite() {
        return f64::INFINITY;
    }
    let t = true_card.max(1.0);
    let e = est_card.max(1.0);
    (t / e).max(e / t).max(1.0)
}

/// Summary of a q-error distribution, matching the columns of the paper's
/// Tables 2–5 (mean / median / 95th / max).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
    /// Number of observations.
    pub count: usize,
}

impl ErrorSummary {
    /// Summarize a sample of q-errors. Returns all-1 for an empty sample.
    /// NaN observations are treated as `+∞` (a NaN q-error means a broken
    /// estimate, and `total_cmp` would otherwise sort it past `+∞` where
    /// `max`/`p95` pick it up as NaN and poison every downstream
    /// comparison).
    pub fn from_errors(errors: &[f64]) -> Self {
        if errors.is_empty() {
            return ErrorSummary { mean: 1.0, median: 1.0, p95: 1.0, max: 1.0, count: 0 };
        }
        let mut sorted: Vec<f64> =
            errors.iter().map(|&e| if e.is_nan() { f64::INFINITY } else { e }).collect();
        sorted.sort_by(f64::total_cmp);
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        ErrorSummary {
            mean,
            median: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            max: *sorted.last().expect("nonempty"),
            count: sorted.len(),
        }
    }

    /// Summarize paired true/estimated cardinalities.
    pub fn from_estimates(truth: &[f64], estimates: &[f64]) -> Self {
        assert_eq!(truth.len(), estimates.len());
        let errs: Vec<f64> = truth.iter().zip(estimates).map(|(&t, &e)| q_error(t, e)).collect();
        ErrorSummary::from_errors(&errs)
    }

    /// One line of a result table: `mean median p95 max`.
    pub fn row(&self) -> String {
        format!(
            "{:>10} {:>10} {:>10} {:>10}",
            format_err(self.mean),
            format_err(self.median),
            format_err(self.p95),
            format_err(self.max)
        )
    }
}

/// Percentile of an ascending-sorted sample using nearest-rank with linear
/// interpolation. `p` is clamped to `[0, 1]`; `p = 0` is the minimum and
/// `p = 1` the maximum.
///
/// Edge cases are total rather than panicking, because callers feed this
/// from live telemetry windows that may be empty or polluted:
///
/// * an **empty** slice returns NaN (there is no order statistic to take);
/// * a **single** element is every percentile of itself;
/// * **NaN** elements (which [`f64::total_cmp`] sorts to the ends —
///   negative NaN first, positive NaN last) are trimmed off, and the
///   percentile is taken over the finite-or-infinite remainder. Only an
///   all-NaN sample returns NaN.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    let lo_trim = sorted.iter().take_while(|v| v.is_nan()).count();
    // An all-NaN slice would otherwise be trimmed from both ends at once.
    let hi_trim = sorted[lo_trim..].iter().rev().take_while(|v| v.is_nan()).count();
    let sorted = &sorted[lo_trim..sorted.len() - hi_trim];
    match sorted.len() {
        0 => return f64::NAN,
        1 => return sorted[0],
        _ => {}
    }
    let rank = p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    if sorted[lo] == sorted[hi] {
        // Avoids `inf * 0 = NaN` when interpolating between equal
        // infinities (and exact-rank hits generally).
        return sorted[lo];
    }
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Compact scientific-ish formatting used by the result tables: plain
/// decimals below 10 000, powers of ten above.
pub fn format_err(v: f64) -> String {
    if !v.is_finite() {
        return "inf".to_owned();
    }
    if v < 10_000.0 {
        format!("{v:.3}")
    } else {
        let exp = v.log10().floor() as i32;
        let mant = v / 10f64.powi(exp);
        format!("{mant:.0}e{exp}")
    }
}

/// Geometric mean (used by the optimizer-impact figure).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (s / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_is_symmetric_and_floored() {
        assert_eq!(q_error(100.0, 100.0), 1.0);
        assert_eq!(q_error(100.0, 50.0), 2.0);
        assert_eq!(q_error(50.0, 100.0), 2.0);
        // Floors: estimating 0 for truth 10 → 10, not infinity.
        assert_eq!(q_error(10.0, 0.0), 10.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
    }

    #[test]
    fn summary_quantiles() {
        let errs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = ErrorSummary::from_errors(&errs);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.median - 50.5).abs() < 1e-9);
        assert!((s.p95 - 95.05).abs() < 1e-9);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.count, 100);
    }

    #[test]
    fn q_error_zero_and_negative_cards_stay_finite() {
        // Zero on either side uses the 1-row floor, never a division by
        // zero: truth 0 / estimate 7 is as wrong as truth 7 / estimate 0.
        assert_eq!(q_error(0.0, 7.0), 7.0);
        assert_eq!(q_error(7.0, 0.0), 7.0);
        assert_eq!(q_error(0.0, 1.0), 1.0);
        // Negative inputs (a buggy estimator) also floor at 1.
        assert_eq!(q_error(-3.0, 5.0), 5.0);
        assert_eq!(q_error(-3.0, -8.0), 1.0);
    }

    #[test]
    fn q_error_non_finite_inputs_are_infinitely_wrong() {
        // `f64::NAN.max(1.0) == 1.0` — the old code scored a NaN estimate
        // as *perfect*. It must instead compare worse than any finite
        // error so the shadow gate rejects the model producing it.
        assert_eq!(q_error(100.0, f64::NAN), f64::INFINITY);
        assert_eq!(q_error(f64::NAN, 100.0), f64::INFINITY);
        assert_eq!(q_error(f64::NAN, f64::NAN), f64::INFINITY);
        assert_eq!(q_error(100.0, f64::INFINITY), f64::INFINITY);
        assert_eq!(q_error(f64::NEG_INFINITY, 100.0), f64::INFINITY);
    }

    #[test]
    fn summary_of_empty_is_unit() {
        let s = ErrorSummary::from_errors(&[]);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.count, 0);
    }

    #[test]
    fn summary_treats_nan_observations_as_infinite() {
        let s = ErrorSummary::from_errors(&[2.0, f64::NAN, 4.0]);
        assert_eq!(s.max, f64::INFINITY, "NaN observation must surface as +inf, not NaN");
        assert_eq!(s.median, 4.0);
        assert!(s.mean.is_infinite());
        assert_eq!(s.count, 3);
        // A summary with NaNs anywhere would break every `<=` gate check.
        assert!(s.max > 1e300);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
    }

    #[test]
    fn percentile_empty_and_single_element() {
        // Empty: no order statistic exists — NaN, not a panic.
        assert!(percentile(&[], 0.5).is_nan());
        assert!(percentile(&[], 0.0).is_nan());
        // Single element is every percentile of itself.
        assert_eq!(percentile(&[42.0], 0.0), 42.0);
        assert_eq!(percentile(&[42.0], 0.5), 42.0);
        assert_eq!(percentile(&[42.0], 1.0), 42.0);
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&xs, -0.5), 1.0);
        assert_eq!(percentile(&xs, 2.0), 3.0);
        assert!(percentile(&xs, f64::NAN).is_nan() || percentile(&xs, f64::NAN) >= 1.0);
    }

    #[test]
    fn percentile_trims_nan_tails() {
        // total_cmp sorts positive NaN past +inf: p=1 / p95 on the raw
        // slice used to return NaN. The NaN tail must be ignored.
        let mut xs = vec![1.0, 2.0, 3.0, f64::NAN];
        xs.sort_by(f64::total_cmp);
        assert_eq!(percentile(&xs, 1.0), 3.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert!((percentile(&xs, 0.5) - 2.0).abs() < 1e-12);
        // Negative NaN sorts to the front; both ends trimmed.
        let mut ys = vec![-f64::NAN, 5.0, 6.0, f64::NAN];
        ys.sort_by(f64::total_cmp);
        assert_eq!(percentile(&ys, 0.0), 5.0);
        assert_eq!(percentile(&ys, 1.0), 6.0);
        // All-NaN: nothing left to rank.
        assert!(percentile(&[f64::NAN, f64::NAN], 0.5).is_nan());
    }

    #[test]
    fn percentile_between_infinities_stays_infinite() {
        let xs = [1.0, f64::INFINITY, f64::INFINITY];
        assert_eq!(percentile(&xs, 0.75), f64::INFINITY, "inf*0 + inf*1 must not produce NaN");
        assert_eq!(percentile(&xs, 1.0), f64::INFINITY);
    }

    #[test]
    fn formatting() {
        assert_eq!(format_err(5.4321), "5.432");
        assert_eq!(format_err(123456.0), "1e5");
    }

    #[test]
    fn geo_mean() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 1.0);
    }
}
