//! The q-error metric (paper Eq. 6) and error summaries.

/// Q-error between a true and an estimated cardinality:
/// `max(1, c/ĉ, ĉ/c)` with both sides floored at 1 row so that empty
/// results do not divide by zero (the convention of Moerkotte et al. and of
/// the paper's evaluation).
pub fn q_error(true_card: f64, est_card: f64) -> f64 {
    let t = true_card.max(1.0);
    let e = est_card.max(1.0);
    (t / e).max(e / t).max(1.0)
}

/// Summary of a q-error distribution, matching the columns of the paper's
/// Tables 2–5 (mean / median / 95th / max).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
    /// Number of observations.
    pub count: usize,
}

impl ErrorSummary {
    /// Summarize a sample of q-errors. Returns all-1 for an empty sample.
    pub fn from_errors(errors: &[f64]) -> Self {
        if errors.is_empty() {
            return ErrorSummary { mean: 1.0, median: 1.0, p95: 1.0, max: 1.0, count: 0 };
        }
        let mut sorted = errors.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        ErrorSummary {
            mean,
            median: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            max: *sorted.last().expect("nonempty"),
            count: sorted.len(),
        }
    }

    /// Summarize paired true/estimated cardinalities.
    pub fn from_estimates(truth: &[f64], estimates: &[f64]) -> Self {
        assert_eq!(truth.len(), estimates.len());
        let errs: Vec<f64> = truth.iter().zip(estimates).map(|(&t, &e)| q_error(t, e)).collect();
        ErrorSummary::from_errors(&errs)
    }

    /// One line of a result table: `mean median p95 max`.
    pub fn row(&self) -> String {
        format!(
            "{:>10} {:>10} {:>10} {:>10}",
            format_err(self.mean),
            format_err(self.median),
            format_err(self.p95),
            format_err(self.max)
        )
    }
}

/// Percentile of an ascending-sorted sample using nearest-rank with linear
/// interpolation.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Compact scientific-ish formatting used by the result tables: plain
/// decimals below 10 000, powers of ten above.
pub fn format_err(v: f64) -> String {
    if !v.is_finite() {
        return "inf".to_owned();
    }
    if v < 10_000.0 {
        format!("{v:.3}")
    } else {
        let exp = v.log10().floor() as i32;
        let mant = v / 10f64.powi(exp);
        format!("{mant:.0}e{exp}")
    }
}

/// Geometric mean (used by the optimizer-impact figure).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (s / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_is_symmetric_and_floored() {
        assert_eq!(q_error(100.0, 100.0), 1.0);
        assert_eq!(q_error(100.0, 50.0), 2.0);
        assert_eq!(q_error(50.0, 100.0), 2.0);
        // Floors: estimating 0 for truth 10 → 10, not infinity.
        assert_eq!(q_error(10.0, 0.0), 10.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
    }

    #[test]
    fn summary_quantiles() {
        let errs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = ErrorSummary::from_errors(&errs);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.median - 50.5).abs() < 1e-9);
        assert!((s.p95 - 95.05).abs() < 1e-9);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.count, 100);
    }

    #[test]
    fn summary_of_empty_is_unit() {
        let s = ErrorSummary::from_errors(&[]);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.count, 0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(format_err(5.4321), "5.432");
        assert_eq!(format_err(123456.0), "1e5");
    }

    #[test]
    fn geo_mean() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 1.0);
    }
}
