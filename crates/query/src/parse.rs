//! A small SQL-ish predicate parser, so examples, tests and interactive
//! use can write `"age >= 30 AND name = 'Tim' AND x IN (1, 2, 3)"` instead
//! of building [`Predicate`] lists by hand.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! disjunction := conjunction ( OR conjunction )*
//! conjunction := predicate ( AND predicate )*
//! predicate   := column op literal | column IN '(' literal (',' literal)* ')'
//! op          := = | != | <> | < | <= | > | >=
//! literal     := integer | 'string' | "string"
//! ```

use uae_data::{Table, Value};

use crate::predicate::{PredOp, Predicate, Query};

/// Parse errors with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Unknown column name.
    UnknownColumn(String),
    /// Malformed token stream.
    Unexpected {
        /// What was found.
        found: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Input ended early.
    UnexpectedEnd(&'static str),
    /// The expression contains `OR`; use [`parse_disjunction`].
    DisjunctionNotAllowed,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            ParseError::Unexpected { found, expected } => {
                write!(f, "unexpected `{found}`, expected {expected}")
            }
            ParseError::UnexpectedEnd(expected) => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            ParseError::DisjunctionNotAllowed => {
                write!(f, "expression contains OR; use parse_disjunction")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Op(PredOp),
    And,
    Or,
    In,
    LParen,
    RParen,
    Comma,
}

fn tokenize(input: &str) -> Result<Vec<Tok>, ParseError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                out.push(Tok::RParen);
            }
            ',' => {
                chars.next();
                out.push(Tok::Comma);
            }
            '\'' | '"' => {
                let quote = c;
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some(ch) if ch == quote => break,
                        Some(ch) => s.push(ch),
                        None => return Err(ParseError::UnexpectedEnd("closing quote")),
                    }
                }
                out.push(Tok::Str(s));
            }
            '=' => {
                chars.next();
                out.push(Tok::Op(PredOp::Eq));
            }
            '!' => {
                chars.next();
                if chars.next() != Some('=') {
                    return Err(ParseError::Unexpected { found: "!".into(), expected: "`!=`" });
                }
                out.push(Tok::Op(PredOp::Ne));
            }
            '<' => {
                chars.next();
                match chars.peek() {
                    Some('=') => {
                        chars.next();
                        out.push(Tok::Op(PredOp::Le));
                    }
                    Some('>') => {
                        chars.next();
                        out.push(Tok::Op(PredOp::Ne));
                    }
                    _ => out.push(Tok::Op(PredOp::Lt)),
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Tok::Op(PredOp::Ge));
                } else {
                    out.push(Tok::Op(PredOp::Gt));
                }
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v = s.parse().map_err(|_| ParseError::Unexpected {
                    found: s.clone(),
                    expected: "integer",
                })?;
                out.push(Tok::Int(v));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '.' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                match s.to_ascii_uppercase().as_str() {
                    "AND" => out.push(Tok::And),
                    "OR" => out.push(Tok::Or),
                    "IN" => out.push(Tok::In),
                    _ => out.push(Tok::Ident(s)),
                }
            }
            other => {
                return Err(ParseError::Unexpected {
                    found: other.to_string(),
                    expected: "a predicate",
                })
            }
        }
    }
    Ok(out)
}

/// Parse a conjunctive predicate expression into a [`Query`].
///
/// ```
/// use uae_data::{Table, Value};
/// use uae_query::{parse_query, Executor};
///
/// let table = Table::from_columns(
///     "people",
///     vec![("age".into(), (0..50i64).map(Value::Int).collect())],
/// );
/// let q = parse_query(&table, "age >= 10 AND age < 20").unwrap();
/// assert_eq!(Executor::new(&table).cardinality(&q), 10);
/// ```
pub fn parse_query(table: &Table, input: &str) -> Result<Query, ParseError> {
    match <[Query; 1]>::try_from(parse_disjunction(table, input)?) {
        Ok([query]) => Ok(query),
        Err(_) => Err(ParseError::DisjunctionNotAllowed),
    }
}

/// Parse an expression that may contain top-level `OR`s into its
/// disjuncts (feed to `Uae::estimate_disjunction_card`).
pub fn parse_disjunction(table: &Table, input: &str) -> Result<Vec<Query>, ParseError> {
    let toks = tokenize(input)?;
    let mut pos = 0usize;
    let mut disjuncts = Vec::new();
    loop {
        let (query, next) = parse_conjunction(table, &toks, pos)?;
        disjuncts.push(query);
        match toks.get(next) {
            Some(Tok::Or) => pos = next + 1,
            None => break,
            Some(t) => {
                return Err(ParseError::Unexpected {
                    found: format!("{t:?}"),
                    expected: "OR or end of input",
                })
            }
        }
    }
    Ok(disjuncts)
}

fn parse_conjunction(
    table: &Table,
    toks: &[Tok],
    mut pos: usize,
) -> Result<(Query, usize), ParseError> {
    let mut predicates = Vec::new();
    loop {
        let (pred, next) = parse_predicate(table, toks, pos)?;
        predicates.push(pred);
        pos = next;
        match toks.get(pos) {
            Some(Tok::And) => pos += 1,
            _ => break,
        }
    }
    Ok((Query::new(predicates), pos))
}

fn parse_predicate(
    table: &Table,
    toks: &[Tok],
    pos: usize,
) -> Result<(Predicate, usize), ParseError> {
    let Some(Tok::Ident(col_name)) = toks.get(pos) else {
        return Err(match toks.get(pos) {
            Some(t) => {
                ParseError::Unexpected { found: format!("{t:?}"), expected: "a column name" }
            }
            None => ParseError::UnexpectedEnd("a column name"),
        });
    };
    let column =
        table.column_index(col_name).ok_or_else(|| ParseError::UnknownColumn(col_name.clone()))?;
    match toks.get(pos + 1) {
        Some(Tok::Op(op)) => {
            let value = parse_literal(toks, pos + 2)?;
            Ok((Predicate::new(column, op.clone(), value), pos + 3))
        }
        Some(Tok::In) => {
            if toks.get(pos + 2) != Some(&Tok::LParen) {
                return Err(ParseError::Unexpected { found: "IN".into(), expected: "`IN (`" });
            }
            let mut values = Vec::new();
            let mut p = pos + 3;
            loop {
                values.push(parse_literal(toks, p)?);
                p += 1;
                match toks.get(p) {
                    Some(Tok::Comma) => p += 1,
                    Some(Tok::RParen) => {
                        p += 1;
                        break;
                    }
                    Some(t) => {
                        return Err(ParseError::Unexpected {
                            found: format!("{t:?}"),
                            expected: "`,` or `)`",
                        })
                    }
                    None => return Err(ParseError::UnexpectedEnd("`)`")),
                }
            }
            Ok((Predicate::is_in(column, values), p))
        }
        Some(t) => Err(ParseError::Unexpected {
            found: format!("{t:?}"),
            expected: "a comparison operator or IN",
        }),
        None => Err(ParseError::UnexpectedEnd("a comparison operator")),
    }
}

fn parse_literal(toks: &[Tok], pos: usize) -> Result<Value, ParseError> {
    match toks.get(pos) {
        Some(Tok::Int(v)) => Ok(Value::Int(*v)),
        Some(Tok::Str(s)) => Ok(Value::Str(s.clone())),
        Some(t) => Err(ParseError::Unexpected { found: format!("{t:?}"), expected: "a literal" }),
        None => Err(ParseError::UnexpectedEnd("a literal")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;

    fn table() -> Table {
        Table::from_columns(
            "t",
            vec![
                ("age".into(), (0..100i64).map(Value::Int).collect()),
                (
                    "name".into(),
                    (0..100).map(|i| Value::from(["James", "Paul", "Tim"][i % 3])).collect(),
                ),
            ],
        )
    }

    #[test]
    fn parses_conjunctions_with_all_ops() {
        let t = table();
        let q = parse_query(&t, "age >= 10 AND age < 50 AND name != 'Tim'").unwrap();
        assert_eq!(q.predicates.len(), 3);
        let exec = Executor::new(&t);
        // ages 10..49 excluding every third name (Tim at i % 3 == 2)
        let truth = (10..50).filter(|i| i % 3 != 2).count() as u64;
        assert_eq!(exec.cardinality(&q), truth);
    }

    #[test]
    fn parses_in_lists_and_strings() {
        let t = table();
        let q = parse_query(&t, "name IN ('James', 'Paul') AND age <= 8").unwrap();
        let exec = Executor::new(&t);
        let truth = (0..=8).filter(|i| i % 3 != 2).count() as u64;
        assert_eq!(exec.cardinality(&q), truth);
    }

    #[test]
    fn parses_disjunctions() {
        let t = table();
        let ds = parse_disjunction(&t, "age < 5 OR age > 94 AND name = 'Tim'").unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].predicates.len(), 1);
        assert_eq!(ds[1].predicates.len(), 2);
    }

    #[test]
    fn ne_spellings() {
        let t = table();
        let a = parse_query(&t, "age != 3").unwrap();
        let b = parse_query(&t, "age <> 3").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_reporting() {
        let t = table();
        assert!(matches!(
            parse_query(&t, "bogus = 1"),
            Err(ParseError::UnknownColumn(c)) if c == "bogus"
        ));
        assert!(matches!(parse_query(&t, "age >"), Err(ParseError::UnexpectedEnd(_))));
        assert!(matches!(
            parse_query(&t, "age < 5 OR age > 90"),
            Err(ParseError::DisjunctionNotAllowed)
        ));
        assert!(parse_query(&t, "age IN (1, 2").is_err());
        assert!(parse_query(&t, "name = 'unterminated").is_err());
    }

    #[test]
    fn malformed_inputs_return_errors_not_panics() {
        let t = table();
        // Each shape must produce Err — never a panic, never a silent Ok.
        let cases: &[(&str, &str)] = &[
            ("", "empty input"),
            ("age", "bare column, no operator"),
            ("age 5", "missing operator"),
            ("age = = 5", "doubled operator"),
            ("age =", "operator with no literal"),
            ("5 = age", "literal where a column belongs"),
            ("age = 1 2", "trailing literal after predicate"),
            ("age = 1 AND", "dangling AND"),
            ("age = 1 OR", "dangling OR"),
            ("AND age = 1", "leading AND"),
            ("age IN ()", "empty IN list"),
            ("age IN (1", "unterminated IN list"),
            ("age IN (1,", "IN list ending on comma"),
            ("age IN 1", "IN without parens"),
            ("age IN (1 2)", "IN list missing comma"),
            ("!", "lone bang"),
            ("age ! 5", "bang without equals"),
            ("age @ 5", "unknown operator character"),
            ("name = 'unterminated", "unterminated string"),
            ("age = 99999999999999999999999", "integer overflow"),
            ("age = 'x' AND bogus = 1", "unknown column mid-conjunction"),
        ];
        for (input, what) in cases {
            let res = parse_disjunction(&t, input);
            assert!(res.is_err(), "{what}: `{input}` must be rejected, got {res:?}");
        }
        // And the specific diagnoses clients branch on:
        assert_eq!(parse_query(&t, ""), Err(ParseError::UnexpectedEnd("a column name")));
        assert_eq!(parse_query(&t, "age"), Err(ParseError::UnexpectedEnd("a comparison operator")));
        assert!(matches!(
            parse_query(&t, "age @ 5"),
            Err(ParseError::Unexpected { found, .. }) if found == "@"
        ));
        assert!(matches!(
            parse_query(&t, "age = 99999999999999999999999"),
            Err(ParseError::Unexpected { expected: "integer", .. })
        ));
    }

    #[test]
    fn negative_integers() {
        let t = table();
        let q = parse_query(&t, "age >= -5").unwrap();
        let exec = Executor::new(&t);
        assert_eq!(exec.cardinality(&q), 100);
    }
}
