//! Predicates and queries (paper §3).
//!
//! A query is a conjunction of predicates; each predicate constrains one
//! attribute with a comparison operator (`=`, `!=`, `<`, `<=`, `>`, `>=`)
//! or an `IN` clause. Disjunctions are supported via inclusion–exclusion at
//! the estimator level (see [`crate::region`]).

use uae_data::{Table, Value};

/// Comparison operator of a predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PredOp {
    /// Equality (`=`).
    Eq,
    /// Inequality (`!=` / `<>`).
    Ne,
    /// Strictly less (`<`).
    Lt,
    /// Less or equal (`<=`).
    Le,
    /// Strictly greater (`>`).
    Gt,
    /// Greater or equal (`>=`).
    Ge,
    /// Membership in a value list (`IN`).
    In(Vec<Value>),
}

impl PredOp {
    /// Short SQL-ish symbol for display.
    pub fn symbol(&self) -> &'static str {
        match self {
            PredOp::Eq => "=",
            PredOp::Ne => "!=",
            PredOp::Lt => "<",
            PredOp::Le => "<=",
            PredOp::Gt => ">",
            PredOp::Ge => ">=",
            PredOp::In(_) => "IN",
        }
    }

    /// Stable small integer used by query featurizers (MSCN, LR).
    pub fn feature_index(&self) -> usize {
        match self {
            PredOp::Eq => 0,
            PredOp::Ne => 1,
            PredOp::Lt => 2,
            PredOp::Le => 3,
            PredOp::Gt => 4,
            PredOp::Ge => 5,
            PredOp::In(_) => 6,
        }
    }

    /// Number of distinct operator kinds (for one-hot encodings).
    pub const NUM_KINDS: usize = 7;
}

/// One predicate: `column <op> value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Index of the constrained column in the table.
    pub column: usize,
    /// Comparison operator.
    pub op: PredOp,
    /// Comparison literal (ignored for `IN`, which carries its own list).
    pub value: Value,
}

impl Predicate {
    /// Build a predicate.
    pub fn new(column: usize, op: PredOp, value: Value) -> Self {
        Predicate { column, op, value }
    }

    /// `column = value`.
    pub fn eq(column: usize, value: impl Into<Value>) -> Self {
        Predicate::new(column, PredOp::Eq, value.into())
    }

    /// `column <= value`.
    pub fn le(column: usize, value: impl Into<Value>) -> Self {
        Predicate::new(column, PredOp::Le, value.into())
    }

    /// `column >= value`.
    pub fn ge(column: usize, value: impl Into<Value>) -> Self {
        Predicate::new(column, PredOp::Ge, value.into())
    }

    /// `column IN (values)`.
    pub fn is_in(column: usize, values: Vec<Value>) -> Self {
        Predicate::new(column, PredOp::In(values), Value::Int(0))
    }
}

/// A conjunctive query over one table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// The conjunction of predicates; multiple predicates on the same
    /// column intersect.
    pub predicates: Vec<Predicate>,
}

impl Query {
    /// A query with the given predicates.
    pub fn new(predicates: Vec<Predicate>) -> Self {
        Query { predicates }
    }

    /// The set of distinct columns this query constrains.
    pub fn touched_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.predicates.iter().map(|p| p.column).collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Number of predicates.
    pub fn num_predicates(&self) -> usize {
        self.predicates.len()
    }

    /// Human-readable rendering against a table's column names.
    pub fn display(&self, table: &Table) -> String {
        let parts: Vec<String> = self
            .predicates
            .iter()
            .map(|p| {
                let col = table.column(p.column).name();
                match &p.op {
                    PredOp::In(vals) => {
                        let vs: Vec<String> = vals.iter().map(ToString::to_string).collect();
                        format!("{col} IN ({})", vs.join(", "))
                    }
                    op => format!("{col} {} {}", op.symbol(), p.value),
                }
            })
            .collect();
        parts.join(" AND ")
    }

    /// Conjunction of two queries (predicate concatenation; same-column
    /// predicates intersect at region level). The inclusion-exclusion
    /// building block for disjunction support (paper §3).
    pub fn and(&self, other: &Query) -> Query {
        let mut predicates = self.predicates.clone();
        predicates.extend(other.predicates.iter().cloned());
        Query::new(predicates)
    }

    /// A stable fingerprint used to deduplicate queries across workloads.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for p in &self.predicates {
            p.column.hash(&mut h);
            p.op.feature_index().hash(&mut h);
            if let PredOp::In(vals) = &p.op {
                for v in vals {
                    v.hash(&mut h);
                }
            }
            p.value.hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touched_columns_dedup_sorted() {
        let q = Query::new(vec![
            Predicate::ge(3, 5i64),
            Predicate::le(3, 9i64),
            Predicate::eq(1, 2i64),
        ]);
        assert_eq!(q.touched_columns(), vec![1, 3]);
        assert_eq!(q.num_predicates(), 3);
    }

    #[test]
    fn fingerprints_distinguish_queries() {
        let a = Query::new(vec![Predicate::eq(0, 1i64)]);
        let b = Query::new(vec![Predicate::eq(0, 2i64)]);
        let c = Query::new(vec![Predicate::le(0, 1i64)]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    #[test]
    fn display_renders_sql() {
        let t = uae_data::Table::from_columns(
            "t",
            vec![("a".into(), vec![1i64.into()]), ("b".into(), vec![2i64.into()])],
        );
        let q = Query::new(vec![Predicate::ge(0, 1i64), Predicate::eq(1, 2i64)]);
        assert_eq!(q.display(&t), "a >= 1 AND b = 2");
    }
}
