//! Query regions: the per-column sets of dictionary codes a query admits.
//!
//! The paper formulates a query `q` as a region `R^q = R_1^q x … x R_n^q`
//! (§4.2). Because dictionary codes are value-ordered, every predicate
//! translates into a union of half-open code ranges; conjunctions intersect
//! them. Regions drive the exact executor, the progressive-sampling masks,
//! and the dense `0/1` masks of differentiable progressive sampling.

use uae_data::{Column, Table};

use crate::predicate::{PredOp, Predicate, Query};

/// A set of dictionary codes, stored as sorted, disjoint, non-adjacent
/// half-open ranges `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    domain: u32,
    ranges: Vec<(u32, u32)>,
}

impl Region {
    /// The full domain `[0, domain)`.
    pub fn all(domain: u32) -> Self {
        Region { domain, ranges: if domain > 0 { vec![(0, domain)] } else { vec![] } }
    }

    /// The empty region.
    pub fn empty(domain: u32) -> Self {
        Region { domain, ranges: vec![] }
    }

    /// A single half-open range, clamped to the domain.
    pub fn range(domain: u32, lo: u32, hi: u32) -> Self {
        let hi = hi.min(domain);
        if lo >= hi {
            Region::empty(domain)
        } else {
            Region { domain, ranges: vec![(lo, hi)] }
        }
    }

    /// A region from arbitrary codes (deduplicated, merged).
    pub fn from_codes(domain: u32, mut codes: Vec<u32>) -> Self {
        codes.sort_unstable();
        codes.dedup();
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        for c in codes.into_iter().filter(|&c| c < domain) {
            match ranges.last_mut() {
                Some((_, hi)) if *hi == c => *hi = c + 1,
                _ => ranges.push((c, c + 1)),
            }
        }
        Region { domain, ranges }
    }

    /// Domain size this region is defined over.
    pub fn domain(&self) -> u32 {
        self.domain
    }

    /// The underlying ranges.
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// Whether no code is admitted.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Whether every code is admitted.
    pub fn is_all(&self) -> bool {
        self.ranges.len() == 1 && self.ranges[0] == (0, self.domain)
    }

    /// Number of admitted codes.
    pub fn count(&self) -> u32 {
        self.ranges.iter().map(|(lo, hi)| hi - lo).sum()
    }

    /// Membership test.
    pub fn contains(&self, code: u32) -> bool {
        // Binary search over range starts.
        match self.ranges.binary_search_by(|&(lo, _)| lo.cmp(&code)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => code < self.ranges[i - 1].1,
        }
    }

    /// Intersection with another region over the same domain.
    pub fn intersect(&self, other: &Region) -> Region {
        assert_eq!(self.domain, other.domain, "region domain mismatch");
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (alo, ahi) = self.ranges[i];
            let (blo, bhi) = other.ranges[j];
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if lo < hi {
                // merge adjacency is impossible across intersections, but be safe
                match out.last_mut() {
                    Some(&mut (_, ref mut phi)) if *phi == lo => *phi = hi,
                    _ => out.push((lo, hi)),
                }
            }
            if ahi <= bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        Region { domain: self.domain, ranges: out }
    }

    /// Complement within the domain.
    pub fn complement(&self) -> Region {
        let mut out = Vec::new();
        let mut cursor = 0u32;
        for &(lo, hi) in &self.ranges {
            if cursor < lo {
                out.push((cursor, lo));
            }
            cursor = hi;
        }
        if cursor < self.domain {
            out.push((cursor, self.domain));
        }
        Region { domain: self.domain, ranges: out }
    }

    /// Iterate over admitted codes.
    pub fn iter_codes(&self) -> impl Iterator<Item = u32> + '_ {
        self.ranges.iter().flat_map(|&(lo, hi)| lo..hi)
    }

    /// Dense `0.0 / 1.0` mask of length `domain` (DPS region mask).
    pub fn to_mask(&self) -> Vec<f32> {
        let mut m = vec![0.0f32; self.domain as usize];
        for &(lo, hi) in &self.ranges {
            for c in lo..hi {
                m[c as usize] = 1.0;
            }
        }
        m
    }
}

/// Translate one predicate into a code region on its column.
pub fn predicate_region(col: &Column, pred: &Predicate) -> Region {
    let domain = col.domain_size() as u32;
    match &pred.op {
        PredOp::Eq => match col.code_of(&pred.value) {
            Some(c) => Region::range(domain, c, c + 1),
            None => Region::empty(domain),
        },
        PredOp::Ne => match col.code_of(&pred.value) {
            Some(c) => Region::range(domain, c, c + 1).complement(),
            None => Region::all(domain),
        },
        PredOp::Lt => Region::range(domain, 0, col.lower_bound(&pred.value)),
        PredOp::Le => Region::range(domain, 0, col.upper_bound(&pred.value)),
        PredOp::Gt => Region::range(domain, col.upper_bound(&pred.value), domain),
        PredOp::Ge => Region::range(domain, col.lower_bound(&pred.value), domain),
        PredOp::In(values) => {
            let codes = values.iter().filter_map(|v| col.code_of(v)).collect();
            Region::from_codes(domain, codes)
        }
    }
}

/// The full per-column region of a query: `regions[i]` is `None` when
/// column `i` is unconstrained (a wildcard in the paper's terms).
#[derive(Debug, Clone)]
pub struct QueryRegion {
    regions: Vec<Option<Region>>,
}

impl QueryRegion {
    /// Compute the per-column regions of `query` against `table`.
    ///
    /// Predicates naming a column the table does not have are ignored
    /// here (treated as unconstrained): region building runs in paths
    /// that may precede query validation — e.g. route featurization —
    /// and must never panic. Validation is where an unknown column
    /// becomes a typed error.
    pub fn build(table: &Table, query: &Query) -> Self {
        let mut regions: Vec<Option<Region>> = vec![None; table.num_cols()];
        for pred in &query.predicates {
            if pred.column >= table.num_cols() {
                continue;
            }
            let col = table.column(pred.column);
            let r = predicate_region(col, pred);
            let slot = &mut regions[pred.column];
            *slot = Some(match slot.take() {
                Some(prev) => prev.intersect(&r),
                None => r,
            });
        }
        QueryRegion { regions }
    }

    /// Per-column regions (None = wildcard).
    pub fn columns(&self) -> &[Option<Region>] {
        &self.regions
    }

    /// Region of column `i`, or `None` for a wildcard.
    pub fn column(&self, i: usize) -> Option<&Region> {
        self.regions[i].as_ref()
    }

    /// Whether any column's region is empty (the query is unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.regions.iter().flatten().any(Region::is_empty)
    }

    /// Whether a full row of codes satisfies the query.
    pub fn matches_row(&self, codes: &[u32]) -> bool {
        self.regions.iter().zip(codes).all(|(r, &c)| r.as_ref().is_none_or(|r| r.contains(c)))
    }

    /// Number of constrained columns.
    pub fn num_constrained(&self) -> usize {
        self.regions.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::{Table, Value};

    fn table() -> Table {
        Table::from_columns(
            "t",
            vec![("x".into(), vec![10i64, 20, 30, 40, 50].into_iter().map(Value::Int).collect())],
        )
    }

    #[test]
    fn predicate_regions_match_semantics() {
        let t = table();
        let col = t.column(0);
        let r = |p: Predicate| predicate_region(col, &p);
        assert_eq!(r(Predicate::eq(0, 30i64)).iter_codes().collect::<Vec<_>>(), vec![2]);
        assert_eq!(r(Predicate::le(0, 30i64)).count(), 3);
        assert_eq!(r(Predicate::ge(0, 30i64)).count(), 3);
        assert_eq!(r(Predicate::new(0, PredOp::Lt, Value::Int(30))).count(), 2);
        assert_eq!(r(Predicate::new(0, PredOp::Gt, Value::Int(30))).count(), 2);
        assert_eq!(r(Predicate::new(0, PredOp::Ne, Value::Int(30))).count(), 4);
        // Literals not in the dictionary use value order.
        assert_eq!(r(Predicate::le(0, 35i64)).count(), 3);
        assert_eq!(r(Predicate::ge(0, 35i64)).count(), 2);
        assert_eq!(r(Predicate::eq(0, 35i64)).count(), 0);
        let inr = r(Predicate::is_in(0, vec![Value::Int(10), Value::Int(50), Value::Int(99)]));
        assert_eq!(inr.iter_codes().collect::<Vec<_>>(), vec![0, 4]);
    }

    #[test]
    fn intersect_and_complement() {
        let a = Region::range(10, 2, 7);
        let b = Region::range(10, 5, 9);
        let i = a.intersect(&b);
        assert_eq!(i.ranges(), &[(5, 7)]);
        let c = i.complement();
        assert_eq!(c.ranges(), &[(0, 5), (7, 10)]);
        assert_eq!(c.count() + i.count(), 10);
    }

    #[test]
    fn contains_matches_iteration() {
        let r = Region::from_codes(20, vec![1, 2, 3, 7, 9, 10, 19]);
        let member: Vec<u32> = r.iter_codes().collect();
        for c in 0..20 {
            assert_eq!(r.contains(c), member.contains(&c), "code {c}");
        }
    }

    #[test]
    fn mask_matches_contains() {
        let r = Region::from_codes(8, vec![0, 3, 4, 5]);
        let m = r.to_mask();
        for c in 0..8u32 {
            assert_eq!(m[c as usize] == 1.0, r.contains(c));
        }
    }

    #[test]
    fn query_region_intersects_same_column() {
        let t = table();
        let q = Query::new(vec![Predicate::ge(0, 20i64), Predicate::le(0, 40i64)]);
        let qr = QueryRegion::build(&t, &q);
        let r = qr.column(0).unwrap();
        assert_eq!(r.iter_codes().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(qr.matches_row(&[2]));
        assert!(!qr.matches_row(&[0]));
    }

    #[test]
    fn unsatisfiable_query_detected() {
        let t = table();
        let q = Query::new(vec![Predicate::le(0, 10i64), Predicate::ge(0, 50i64)]);
        let qr = QueryRegion::build(&t, &q);
        assert!(qr.is_empty());
    }
}
