//! Workload characterization reports (the paper's Figure 3 plots the
//! selectivity distributions of the generated workloads).

use crate::executor::LabeledQuery;

/// A log10-bucketed selectivity histogram.
#[derive(Debug, Clone)]
pub struct SelectivityHistogram {
    /// `(bucket label, count)` from the most selective decade upward.
    pub buckets: Vec<(String, usize)>,
    /// Number of queries summarized.
    pub total: usize,
}

impl SelectivityHistogram {
    /// Bucket a workload's selectivities by decade: `[10^-k, 10^-k+1)`.
    pub fn from_workload(workload: &[LabeledQuery]) -> Self {
        const DECADES: usize = 8; // 10^-8 .. 1
        let mut counts = vec![0usize; DECADES + 1];
        for lq in workload {
            let s = lq.selectivity.max(1e-300);
            let k = (-s.log10()).ceil() as i64; // sel in [10^-k, 10^-k+1)
            let idx = k.clamp(0, DECADES as i64) as usize;
            counts[idx] += 1;
        }
        let buckets = counts
            .into_iter()
            .enumerate()
            .map(|(k, c)| {
                let label = if k == 0 {
                    "1".to_owned()
                } else if k == 8 {
                    "<=1e-8".to_owned()
                } else {
                    format!("1e-{k}")
                };
                (label, c)
            })
            .collect();
        SelectivityHistogram { buckets, total: workload.len() }
    }

    /// ASCII rendering, one row per decade.
    pub fn render(&self) -> String {
        let max = self.buckets.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (label, count) in &self.buckets {
            let bar = "#".repeat(count * 40 / max);
            out.push_str(&format!("{label:>8} | {bar} {count}\n"));
        }
        out
    }

    /// Width of the selectivity spectrum: number of nonempty decades.
    pub fn spectrum_width(&self) -> usize {
        self.buckets.iter().filter(|(_, c)| *c > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Query;

    fn lq(sel: f64) -> LabeledQuery {
        LabeledQuery { query: Query::default(), cardinality: (sel * 1e6) as u64, selectivity: sel }
    }

    #[test]
    fn decade_bucketing() {
        let w = vec![lq(0.5), lq(0.05), lq(0.005), lq(0.005), lq(1e-9)];
        let h = SelectivityHistogram::from_workload(&w);
        assert_eq!(h.total, 5);
        // 0.5 → 1e-1 bucket, 0.05 → 1e-2, 0.005 (x2) → 1e-3, 1e-9 → <=1e-8.
        let get =
            |label: &str| h.buckets.iter().find(|(l, _)| l == label).map(|(_, c)| *c).unwrap();
        assert_eq!(get("1e-1"), 1);
        assert_eq!(get("1e-2"), 1);
        assert_eq!(get("1e-3"), 2);
        assert_eq!(get("<=1e-8"), 1);
        assert_eq!(h.spectrum_width(), 4);
        assert!(h.render().contains('#'));
    }
}
