//! Workload generation following the paper's §5.1.2.
//!
//! *In-workload* queries constrain a **bounded attribute** (one with a
//! relatively large domain) with a range whose center is drawn uniformly
//! from a configurable window and whose target volume is 1% of the distinct
//! values, plus `n_f` random filters on other attributes whose literals come
//! from a randomly sampled tuple. *Random* queries drop the bounded
//! attribute entirely and are used to probe robustness to workload shifts.
//! Shifting the center window across generations yields the incremental
//! query workload partitions of §5.4.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use uae_data::{Table, Value};

use crate::executor::{label_queries, LabeledQuery};
use crate::predicate::{PredOp, Predicate, Query};

/// Specification of the bounded attribute for in-workload queries.
#[derive(Debug, Clone)]
pub struct BoundedSpec {
    /// Which column is bounded.
    pub column: usize,
    /// Window (as fractions of the domain) the range center is drawn from.
    pub center_window: (f64, f64),
    /// Target volume as a fraction of the distinct values (paper: 1%).
    pub volume_frac: f64,
}

impl BoundedSpec {
    /// The paper's default: centers anywhere, volume 1% of the domain.
    pub fn full_window(column: usize) -> Self {
        BoundedSpec { column, center_window: (0.0, 1.0), volume_frac: 0.01 }
    }
}

/// Workload generation parameters.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// RNG seed.
    pub seed: u64,
    /// How many (satisfiable, deduplicated) queries to produce.
    pub num_queries: usize,
    /// Bounded attribute; `None` generates the paper's "random queries".
    pub bounded: Option<BoundedSpec>,
    /// Inclusive range of the number of random filters `n_f`.
    pub nf_range: (usize, usize),
}

impl WorkloadSpec {
    /// In-workload spec with the paper's defaults on the given bounded column.
    pub fn in_workload(column: usize, num_queries: usize, seed: u64) -> Self {
        WorkloadSpec {
            seed,
            num_queries,
            bounded: Some(BoundedSpec::full_window(column)),
            nf_range: (2, 5),
        }
    }

    /// Random (out-of-workload) spec.
    pub fn random(num_queries: usize, seed: u64) -> Self {
        WorkloadSpec { seed, num_queries, bounded: None, nf_range: (2, 5) }
    }
}

/// The column with the largest domain — the paper's choice of bounded
/// attribute ("an attribute with a relatively large domain size").
pub fn default_bounded_column(table: &Table) -> usize {
    (0..table.num_cols())
        .max_by_key(|&i| table.column(i).domain_size())
        .expect("table has no columns")
}

/// Generate a labeled workload. Queries are guaranteed satisfiable
/// (cardinality ≥ 1), mutually distinct, and distinct from `exclude`
/// (pass the training workload's fingerprints when generating test
/// queries — the paper "manually ensures" this separation).
pub fn generate_workload(
    table: &Table,
    spec: &WorkloadSpec,
    exclude: &HashSet<u64>,
) -> Vec<LabeledQuery> {
    assert!(table.num_rows() > 0, "cannot generate workload over an empty table");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut seen: HashSet<u64> = exclude.clone();
    let mut out: Vec<LabeledQuery> = Vec::with_capacity(spec.num_queries);
    let mut stall_guard = 0usize;
    while out.len() < spec.num_queries {
        stall_guard += 1;
        assert!(
            stall_guard < 200,
            "workload generation stalled; table too small for {} distinct queries",
            spec.num_queries
        );
        let want = spec.num_queries - out.len();
        // Over-generate: some candidates are empty or duplicates.
        let candidates: Vec<Query> =
            (0..(want * 2).max(16)).map(|_| generate_query(table, spec, &mut rng)).collect();
        let labeled = label_queries(table, candidates);
        for lq in labeled {
            if lq.cardinality == 0 {
                continue;
            }
            let fp = lq.query.fingerprint();
            if seen.insert(fp) {
                out.push(lq);
                if out.len() == spec.num_queries {
                    break;
                }
            }
        }
    }
    out
}

/// Fingerprints of a workload, for excluding in later generations.
pub fn fingerprints(workload: &[LabeledQuery]) -> HashSet<u64> {
    workload.iter().map(|lq| lq.query.fingerprint()).collect()
}

fn generate_query(table: &Table, spec: &WorkloadSpec, rng: &mut StdRng) -> Query {
    let mut predicates = Vec::new();
    let bounded_col = spec.bounded.as_ref().map(|b| b.column);

    if let Some(b) = &spec.bounded {
        let col = table.column(b.column);
        let d = col.domain_size();
        let width = ((b.volume_frac * d as f64).round() as usize).max(1);
        let (wlo, whi) = b.center_window;
        let lo_center = (wlo * d as f64) as usize;
        let hi_center = ((whi * d as f64) as usize).max(lo_center + 1).min(d);
        let center = rng.random_range(lo_center..hi_center);
        let lo = center.saturating_sub(width / 2);
        let hi = (lo + width).min(d) - 1;
        predicates.push(Predicate::ge(b.column, col.dict()[lo].clone()));
        predicates.push(Predicate::le(b.column, col.dict()[hi].clone()));
    }

    // Anchor tuple supplies the literals (paper §5.1.2: "the filter
    // literals are set from the values of a randomly sampled tuple").
    let row = rng.random_range(0..table.num_rows());
    let candidates: Vec<usize> =
        (0..table.num_cols()).filter(|&c| Some(c) != bounded_col).collect();
    let (nf_lo, nf_hi) = spec.nf_range;
    let nf = rng.random_range(nf_lo..=nf_hi.min(candidates.len()));
    let cols = sample_distinct(&candidates, nf, rng);
    for c in cols {
        let col = table.column(c);
        let anchor = col.value(row).clone();
        let op = sample_op(rng, col.domain_size(), &anchor, col, row);
        predicates.push(Predicate::new(c, op, anchor));
    }
    Query::new(predicates)
}

fn sample_distinct(pool: &[usize], k: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut pool = pool.to_vec();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k.min(pool.len()) {
        let i = rng.random_range(0..pool.len());
        out.push(pool.swap_remove(i));
    }
    out
}

fn sample_op(
    rng: &mut StdRng,
    domain: usize,
    anchor: &Value,
    col: &uae_data::Column,
    _row: usize,
) -> PredOp {
    // Weighted mix: mostly the Naru-style {=, <=, >=}, plus the long tail of
    // operators UAE also supports (§3): !=, <, >, IN.
    let r: f64 = rng.random();
    if domain <= 2 {
        // Range ops on boolean-ish columns degenerate; use equality.
        return PredOp::Eq;
    }
    match r {
        x if x < 0.40 => PredOp::Eq,
        x if x < 0.62 => PredOp::Le,
        x if x < 0.84 => PredOp::Ge,
        x if x < 0.89 => PredOp::Ne,
        x if x < 0.93 => PredOp::Lt,
        x if x < 0.97 => PredOp::Gt,
        _ => {
            // IN over the anchor plus a few random dictionary values.
            let extra = rng.random_range(1..=3usize);
            let mut vals = vec![anchor.clone()];
            for _ in 0..extra {
                let c = rng.random_range(0..domain);
                vals.push(col.dict()[c].clone());
            }
            vals.dedup();
            PredOp::In(vals)
        }
    }
}

/// Specification of a **correlated-pair** workload: every query pins
/// `eq_column` by equality, upper-bounds `le_column` with a little
/// slack, and windows `window_column` — all literals anchored at a
/// randomly sampled tuple, so every query sits squarely on the table's
/// cross-column dependencies (e.g. dmv's `county ≈ f(state)` and
/// `date ≈ f(state, class)`). Estimators that factor these columns
/// independently (per-column histograms, SPNs whose row clustering is
/// coarser than the value-level dependency patterns) err on this
/// workload by construction, while query-trained models and row
/// samples answer it well — the heterogeneity the model-fleet router
/// exploits.
#[derive(Debug, Clone)]
pub struct CorrelatedSpec {
    /// RNG seed.
    pub seed: u64,
    /// How many (satisfiable, deduplicated) queries to produce.
    pub num_queries: usize,
    /// Column pinned by equality at the anchor tuple's value.
    pub eq_column: usize,
    /// Column upper-bounded at the anchor's code plus some slack.
    pub le_column: usize,
    /// Column constrained to a code window around the anchor.
    pub window_column: usize,
    /// Inclusive range of the `le_column` slack, in dictionary codes.
    pub slack: (u32, u32),
    /// Inclusive range of the `window_column` half-window, in codes.
    pub window: (u32, u32),
}

impl CorrelatedSpec {
    /// Defaults for a dmv-like table: queries on (`state`, `county`,
    /// `reg_valid_date`) with mild slack and a moderate date window.
    pub fn dmv(table: &Table, num_queries: usize, seed: u64) -> Option<Self> {
        Some(CorrelatedSpec {
            seed,
            num_queries,
            eq_column: table.column_index("state")?,
            le_column: table.column_index("county")?,
            window_column: table.column_index("reg_valid_date")?,
            slack: (1, 4),
            window: (30, 150),
        })
    }
}

/// Generate a labeled correlated-pair workload (see [`CorrelatedSpec`]).
/// Queries are satisfiable, mutually distinct and distinct from
/// `exclude`, like [`generate_workload`].
pub fn generate_correlated_workload(
    table: &Table,
    spec: &CorrelatedSpec,
    exclude: &HashSet<u64>,
) -> Vec<LabeledQuery> {
    assert!(table.num_rows() > 0, "cannot generate workload over an empty table");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut seen: HashSet<u64> = exclude.clone();
    let mut out: Vec<LabeledQuery> = Vec::with_capacity(spec.num_queries);
    let mut stall_guard = 0usize;
    let le_col = table.column(spec.le_column);
    let win_col = table.column(spec.window_column);
    while out.len() < spec.num_queries {
        stall_guard += 1;
        assert!(
            stall_guard < 200,
            "correlated workload generation stalled; table too small for {} distinct queries",
            spec.num_queries
        );
        let want = spec.num_queries - out.len();
        let candidates: Vec<Query> = (0..(want * 2).max(16))
            .map(|_| {
                let row = rng.random_range(0..table.num_rows());
                let slack = rng.random_range(spec.slack.0..=spec.slack.1);
                let half = rng.random_range(spec.window.0..=spec.window.1);
                let le_code = (le_col.code(row) + slack).min(le_col.domain_size() as u32 - 1);
                let wc = win_col.code(row);
                let wlo = wc.saturating_sub(half);
                let whi = (wc + half).min(win_col.domain_size() as u32 - 1);
                Query::new(vec![
                    Predicate::eq(spec.eq_column, table.column(spec.eq_column).value(row).clone()),
                    Predicate::le(spec.le_column, le_col.dict()[le_code as usize].clone()),
                    Predicate::ge(spec.window_column, win_col.dict()[wlo as usize].clone()),
                    Predicate::le(spec.window_column, win_col.dict()[whi as usize].clone()),
                ])
            })
            .collect();
        for lq in label_queries(table, candidates) {
            if lq.cardinality == 0 {
                continue;
            }
            if seen.insert(lq.query.fingerprint()) {
                out.push(lq);
                if out.len() == spec.num_queries {
                    break;
                }
            }
        }
    }
    out
}

/// The `k` shifted center windows used by the incremental-workload
/// experiment (§5.4): partition `i` draws its bounded centers from
/// `[i/k, (i+1)/k)` of the domain, so each partition focuses on a
/// different data region.
pub fn incremental_windows(k: usize) -> Vec<(f64, f64)> {
    (0..k).map(|i| (i as f64 / k as f64, (i + 1) as f64 / k as f64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uae_data::dmv_like;

    #[test]
    fn workload_is_satisfiable_and_distinct() {
        let t = dmv_like(2000, 9);
        let col = default_bounded_column(&t);
        let spec = WorkloadSpec::in_workload(col, 50, 1);
        let w = generate_workload(&t, &spec, &HashSet::new());
        assert_eq!(w.len(), 50);
        assert!(w.iter().all(|lq| lq.cardinality >= 1));
        let fps: HashSet<u64> = fingerprints(&w);
        assert_eq!(fps.len(), 50, "queries must be distinct");
        // Every in-workload query constrains the bounded column.
        assert!(w.iter().all(|lq| lq.query.touched_columns().contains(&col)));
    }

    #[test]
    fn test_workload_excludes_training() {
        let t = dmv_like(2000, 9);
        let col = default_bounded_column(&t);
        let train = generate_workload(&t, &WorkloadSpec::in_workload(col, 40, 1), &HashSet::new());
        let excl = fingerprints(&train);
        let test = generate_workload(&t, &WorkloadSpec::in_workload(col, 40, 2), &excl);
        let test_fps = fingerprints(&test);
        assert!(excl.is_disjoint(&test_fps), "train/test overlap");
    }

    #[test]
    fn random_workload_has_no_bounded_column() {
        let t = dmv_like(1000, 9);
        let w = generate_workload(&t, &WorkloadSpec::random(30, 3), &HashSet::new());
        assert_eq!(w.len(), 30);
        // Predicate counts stay within nf bounds.
        assert!(w.iter().all(|lq| {
            let n = lq.query.touched_columns().len();
            (1..=5).contains(&n)
        }));
    }

    #[test]
    fn bounded_column_default_is_widest() {
        let t = dmv_like(500, 9);
        let col = default_bounded_column(&t);
        let widest = t.domain_sizes().into_iter().max().unwrap();
        assert_eq!(t.column(col).domain_size(), widest);
    }

    #[test]
    fn correlated_workload_pins_dependency_columns() {
        let t = dmv_like(2000, 9);
        let spec = CorrelatedSpec::dmv(&t, 40, 3).expect("dmv columns present");
        let w = generate_correlated_workload(&t, &spec, &HashSet::new());
        assert_eq!(w.len(), 40);
        assert!(w.iter().all(|lq| lq.cardinality >= 1));
        assert_eq!(fingerprints(&w).len(), 40, "queries must be distinct");
        // Every query constrains the full (eq, le, window) triple.
        for lq in &w {
            let touched = lq.query.touched_columns();
            for c in [spec.eq_column, spec.le_column, spec.window_column] {
                assert!(touched.contains(&c), "missing dependency column {c}");
            }
        }
        // And the generation replays deterministically.
        let again = generate_correlated_workload(&t, &spec, &HashSet::new());
        assert_eq!(fingerprints(&w), fingerprints(&again));
    }

    #[test]
    fn incremental_windows_partition_unit_interval() {
        let w = incremental_windows(5);
        assert_eq!(w.len(), 5);
        assert_eq!(w[0].0, 0.0);
        assert_eq!(w[4].1, 1.0);
        for i in 1..5 {
            assert_eq!(w[i - 1].1, w[i].0);
        }
    }

    #[test]
    fn shifted_windows_focus_on_different_regions() {
        let t = dmv_like(4000, 11);
        let col = default_bounded_column(&t);
        let mk = |win: (f64, f64), seed| {
            let spec = WorkloadSpec {
                seed,
                num_queries: 20,
                bounded: Some(BoundedSpec { column: col, center_window: win, volume_frac: 0.01 }),
                nf_range: (1, 2),
            };
            generate_workload(&t, &spec, &HashSet::new())
        };
        let low = mk((0.0, 0.2), 5);
        let high = mk((0.8, 1.0), 6);
        // Compare the literal code midpoints of the bounded ranges.
        let mid = |w: &[LabeledQuery]| -> f64 {
            let col_ref = t.column(col);
            let mut acc = 0.0;
            for lq in w {
                for p in &lq.query.predicates {
                    if p.column == col {
                        if let Some(c) = col_ref.code_of(&p.value) {
                            acc += c as f64;
                        }
                    }
                }
            }
            acc / (2.0 * w.len() as f64)
        };
        assert!(mid(&low) < mid(&high), "windows should separate literal positions");
    }
}
