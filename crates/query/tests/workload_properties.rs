//! Property tests of the workload machinery: generated queries are always
//! valid, labeled consistently, and the §5.1.2 structure (bounded
//! attribute + random filters) holds for every seed.

use std::collections::HashSet;

use proptest::prelude::*;
use uae_query::{
    default_bounded_column, generate_workload, BoundedSpec, Executor, QueryRegion, WorkloadSpec,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn workloads_are_valid_for_any_seed(seed in 0u64..10_000) {
        let table = uae_data::census_like(1_200, 3);
        let col = default_bounded_column(&table);
        let spec = WorkloadSpec {
            seed,
            num_queries: 25,
            bounded: Some(BoundedSpec {
                column: col,
                center_window: (0.1, 0.9),
                volume_frac: 0.02,
            }),
            nf_range: (1, 4),
        };
        let w = generate_workload(&table, &spec, &HashSet::new());
        prop_assert_eq!(w.len(), 25);
        let exec = Executor::new(&table);
        for lq in &w {
            // Labels are exact.
            prop_assert_eq!(exec.cardinality(&lq.query), lq.cardinality);
            prop_assert!(lq.cardinality >= 1);
            // Selectivity is consistent with cardinality.
            let sel = lq.cardinality as f64 / table.num_rows() as f64;
            prop_assert!((sel - lq.selectivity).abs() < 1e-12);
            // All predicates reference valid columns and are satisfiable.
            let qr = QueryRegion::build(&table, &lq.query);
            prop_assert!(!qr.is_empty());
            // Bounded column is constrained.
            prop_assert!(lq.query.touched_columns().contains(&col));
        }
    }

    #[test]
    fn center_window_bounds_the_literals(window_lo in 0.0f64..0.7) {
        let window = (window_lo, window_lo + 0.25);
        let table = uae_data::dmv_like(1_500, 4);
        let col = default_bounded_column(&table);
        let spec = WorkloadSpec {
            seed: 11,
            num_queries: 15,
            bounded: Some(BoundedSpec { column: col, center_window: window, volume_frac: 0.01 }),
            nf_range: (1, 2),
        };
        let w = generate_workload(&table, &spec, &HashSet::new());
        let d = table.column(col).domain_size() as f64;
        for lq in &w {
            for p in &lq.query.predicates {
                if p.column == col {
                    if let Some(code) = table.column(col).code_of(&p.value) {
                        let frac = code as f64 / d;
                        // Literal = center ± width/2 ± rounding slack.
                        prop_assert!(
                            frac >= window.0 - 0.05 && frac <= window.1 + 0.05,
                            "literal at {} outside window {:?}",
                            frac,
                            window
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn random_workloads_touch_diverse_columns() {
    let table = uae_data::census_like(1_500, 6);
    let w = generate_workload(&table, &WorkloadSpec::random(60, 8), &HashSet::new());
    let mut touched = HashSet::new();
    for lq in &w {
        touched.extend(lq.query.touched_columns());
    }
    assert!(touched.len() > table.num_cols() / 2, "random workload covers only {touched:?}");
}
