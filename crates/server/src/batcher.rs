//! The adaptive micro-batcher: a **pure state machine** deciding when a
//! lane's pending requests become a batch.
//!
//! Independently arriving queries only benefit from the batched engine if
//! something coalesces them, but waiting for a full batch under light load
//! would add unbounded latency. The classic compromise — flush on
//! `max_batch` *or* `max_delay` since the oldest pending request,
//! whichever first — lives here, deliberately separated from threads and
//! wall clocks: time is an opaque `u64` nanosecond counter supplied by the
//! caller, so every flush rule is unit-testable with a mock clock (no
//! sleeps, no flaky timing assertions). The dispatcher thread in
//! [`crate::server`] drives the same state machine with real
//! `Instant`-derived nanoseconds.
//!
//! Lanes are the batching domains — one per tenant, since a batch can only
//! run against one model snapshot.

use uae_core::FlushReason;

/// One lane's pending requests plus the arrival time of the oldest.
struct Lane<T> {
    items: Vec<T>,
    /// Arrival time (ns) of the oldest pending item; meaningless when
    /// `items` is empty.
    oldest_ns: u64,
}

impl<T> Lane<T> {
    fn new() -> Self {
        Lane { items: Vec::new(), oldest_ns: 0 }
    }
}

/// What the dispatcher should do next (see [`MicroBatcher::poll`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// Lane `lane` must flush now for `reason` (take it with
    /// [`MicroBatcher::take`]).
    Flush {
        /// The lane to flush.
        lane: usize,
        /// Why it is due.
        reason: FlushReason,
    },
    /// Nothing is due yet; the earliest pending deadline is `ns` from the
    /// polled instant. Sleep at most this long (or until the next arrival).
    WaitNs(u64),
    /// No lane has pending requests; block indefinitely for the next
    /// arrival.
    Idle,
}

/// Flush-on-size-or-deadline accumulator over a fixed set of lanes.
///
/// `max_batch = usize::MAX` disables size flushes (the determinism escape
/// hatch: one executor plus an unbounded batch replays a request sequence
/// as a single `estimate_batch`-identical batch). `max_delay_ns = 0` makes
/// every pending lane immediately due — batching degenerates to
/// pass-through.
pub struct MicroBatcher<T> {
    max_batch: usize,
    max_delay_ns: u64,
    lanes: Vec<Lane<T>>,
    pending_total: usize,
}

impl<T> MicroBatcher<T> {
    /// A batcher over `lanes` lanes flushing at `max_batch` items or
    /// `max_delay_ns` after a lane's oldest arrival, whichever first.
    pub fn new(lanes: usize, max_batch: usize, max_delay_ns: u64) -> Self {
        MicroBatcher {
            max_batch: max_batch.max(1),
            max_delay_ns,
            lanes: (0..lanes).map(|_| Lane::new()).collect(),
            pending_total: 0,
        }
    }

    /// Grow to at least `lanes` lanes (tenants can register after the
    /// server starts).
    pub fn ensure_lanes(&mut self, lanes: usize) {
        while self.lanes.len() < lanes {
            self.lanes.push(Lane::new());
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Total pending items across all lanes.
    pub fn pending(&self) -> usize {
        self.pending_total
    }

    /// Pending items in one lane.
    pub fn lane_pending(&self, lane: usize) -> usize {
        self.lanes[lane].items.len()
    }

    /// Append an item to `lane` at time `now_ns`. Returns
    /// `Some(FlushReason::Size)` when the push filled the lane to
    /// `max_batch` — the caller must [`MicroBatcher::take`] it before the
    /// next push to that lane.
    pub fn push(&mut self, lane: usize, item: T, now_ns: u64) -> Option<FlushReason> {
        self.ensure_lanes(lane + 1);
        let l = &mut self.lanes[lane];
        if l.items.is_empty() {
            l.oldest_ns = now_ns;
        }
        l.items.push(item);
        self.pending_total += 1;
        (l.items.len() >= self.max_batch).then_some(FlushReason::Size)
    }

    /// The most urgent action at time `now_ns`: a lane past its deadline
    /// (oldest lane first), the wait until the earliest deadline, or
    /// [`Poll::Idle`] when nothing is pending.
    pub fn poll(&self, now_ns: u64) -> Poll {
        let mut earliest: Option<(usize, u64)> = None;
        for (i, l) in self.lanes.iter().enumerate() {
            if l.items.is_empty() {
                continue;
            }
            let deadline = l.oldest_ns.saturating_add(self.max_delay_ns);
            if earliest.is_none_or(|(_, d)| deadline < d) {
                earliest = Some((i, deadline));
            }
        }
        match earliest {
            None => Poll::Idle,
            Some((lane, deadline)) if deadline <= now_ns => {
                Poll::Flush { lane, reason: FlushReason::Deadline }
            }
            Some((_, deadline)) => Poll::WaitNs(deadline - now_ns),
        }
    }

    /// Remove and return every pending item of `lane` (in arrival order).
    pub fn take(&mut self, lane: usize) -> Vec<T> {
        let items = std::mem::take(&mut self.lanes[lane].items);
        self.pending_total -= items.len();
        items
    }

    /// Drain every non-empty lane (shutdown): `(lane, items)` pairs in
    /// lane order, each in arrival order.
    pub fn drain_all(&mut self) -> Vec<(usize, Vec<T>)> {
        let mut out = Vec::new();
        for lane in 0..self.lanes.len() {
            if !self.lanes[lane].items.is_empty() {
                let items = self.take(lane);
                out.push((lane, items));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn flush_on_size_fires_exactly_at_max_batch() {
        let mut b: MicroBatcher<u32> = MicroBatcher::new(1, 4, 10 * MS);
        assert_eq!(b.push(0, 1, 0), None);
        assert_eq!(b.push(0, 2, 1), None);
        assert_eq!(b.push(0, 3, 2), None);
        assert_eq!(b.push(0, 4, 3), Some(FlushReason::Size));
        assert_eq!(b.take(0), vec![1, 2, 3, 4]);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.poll(100 * MS), Poll::Idle, "taken lane is no longer due");
    }

    #[test]
    fn flush_on_deadline_fires_at_oldest_plus_delay() {
        let mut b: MicroBatcher<u32> = MicroBatcher::new(1, 1000, 5 * MS);
        b.push(0, 7, 2 * MS);
        b.push(0, 8, 4 * MS); // later arrival must not extend the deadline
        match b.poll(3 * MS) {
            Poll::WaitNs(ns) => assert_eq!(ns, 4 * MS, "deadline = oldest(2ms) + delay(5ms)"),
            other => panic!("expected WaitNs, got {other:?}"),
        }
        assert_eq!(b.poll(6 * MS), Poll::WaitNs(MS));
        assert_eq!(b.poll(7 * MS), Poll::Flush { lane: 0, reason: FlushReason::Deadline });
        assert_eq!(b.take(0), vec![7, 8]);
    }

    #[test]
    fn empty_batcher_idles_without_deadlines() {
        let b: MicroBatcher<u32> = MicroBatcher::new(3, 8, MS);
        assert_eq!(b.poll(0), Poll::Idle);
        assert_eq!(b.poll(u64::MAX), Poll::Idle);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn deadline_resets_after_take_and_reuses_lane() {
        let mut b: MicroBatcher<u32> = MicroBatcher::new(1, 1000, 5 * MS);
        b.push(0, 1, 0);
        assert_eq!(b.poll(5 * MS), Poll::Flush { lane: 0, reason: FlushReason::Deadline });
        b.take(0);
        // A fresh arrival starts a fresh deadline from its own arrival.
        b.push(0, 2, 20 * MS);
        assert_eq!(b.poll(20 * MS), Poll::WaitNs(5 * MS));
        assert_eq!(b.poll(25 * MS), Poll::Flush { lane: 0, reason: FlushReason::Deadline });
    }

    #[test]
    fn multiple_lanes_flush_independently_oldest_first() {
        let mut b: MicroBatcher<&'static str> = MicroBatcher::new(2, 1000, 10 * MS);
        b.push(1, "b0", 0);
        b.push(0, "a0", 3 * MS);
        // Lane 1's deadline (10ms) precedes lane 0's (13ms).
        assert_eq!(b.poll(9 * MS), Poll::WaitNs(MS));
        assert_eq!(b.poll(11 * MS), Poll::Flush { lane: 1, reason: FlushReason::Deadline });
        assert_eq!(b.take(1), vec!["b0"]);
        assert_eq!(b.poll(11 * MS), Poll::WaitNs(2 * MS));
        assert_eq!(b.poll(13 * MS), Poll::Flush { lane: 0, reason: FlushReason::Deadline });
    }

    #[test]
    fn unbounded_batch_never_size_flushes() {
        let mut b: MicroBatcher<usize> = MicroBatcher::new(1, usize::MAX, 50 * MS);
        for i in 0..10_000 {
            assert_eq!(b.push(0, i, i as u64), None, "∞ max_batch must never size-flush");
        }
        assert_eq!(b.pending(), 10_000);
        // Deadline still applies, anchored at the first arrival.
        assert_eq!(b.poll(50 * MS), Poll::Flush { lane: 0, reason: FlushReason::Deadline });
        assert_eq!(b.take(0).len(), 10_000);
    }

    #[test]
    fn zero_delay_makes_every_pending_lane_immediately_due() {
        let mut b: MicroBatcher<u32> = MicroBatcher::new(1, 1000, 0);
        b.push(0, 1, 7 * MS);
        assert_eq!(b.poll(7 * MS), Poll::Flush { lane: 0, reason: FlushReason::Deadline });
    }

    #[test]
    fn drain_all_empties_every_lane_in_order() {
        let mut b: MicroBatcher<u32> = MicroBatcher::new(3, 1000, MS);
        b.push(2, 20, 0);
        b.push(0, 1, 1);
        b.push(0, 2, 2);
        let drained = b.drain_all();
        assert_eq!(drained, vec![(0, vec![1, 2]), (2, vec![20])]);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.poll(0), Poll::Idle);
    }
}
