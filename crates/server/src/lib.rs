//! # uae-server — concurrent serving front-end for UAE
//!
//! The estimation engine underneath (`uae-core`) is synchronous: one
//! caller, one `&Uae`, one (possibly batched) estimate call. Real serving
//! traffic is the opposite shape — many concurrent submitters, each with a
//! single query, arriving at random times, possibly for different tables.
//! This crate bridges the two with three pieces:
//!
//! * [`Registry`] — a per-tenant model registry: named [`uae_core::Uae`]
//!   snapshots behind an atomic swap point, each with its own serving
//!   configuration and [`DegradeConfig`] ladder.
//! * [`MicroBatcher`] — a pure flush-on-size-or-deadline state machine
//!   (mock-clock testable) that coalesces independent arrivals into the
//!   batches the engine is fast at.
//! * [`Server`] — threads wiring them together: a bounded submission
//!   queue with typed [`SubmitError::Overloaded`] backpressure, one
//!   dispatcher, a pool of batch executors driving
//!   [`uae_core::Uae::try_estimate_cards_with`] so the full fallback
//!   cascade and the quantized kernels apply per micro-batch, and a
//!   latency-SLO degradation ladder that shrinks the progressive-sample
//!   budget under load (tagged [`uae_core::EstimateSource::ModelDegraded`]).
//! * [`OnlineLearner`] — the background `uae-online` thread closing the
//!   query-driven loop: it drives [`uae_core::OnlineTrainer`] rounds
//!   over a shared [`uae_core::QueryPool`] of executed queries and
//!   publishes shadow-gated promotions (and probation rollbacks)
//!   through the registry's atomic swap point.
//!
//! No async runtime, no executor dependency: plain `std::thread` +
//! channels + condvars, matching the rest of the workspace.
//!
//! ## Determinism
//!
//! Concurrent serving trades the engine's bit-for-bit replayability for
//! throughput: batch composition depends on arrival timing, and each
//! tenant's RNG stream advances in flush order. The escape hatch is
//! [`ServerConfig::deterministic`] — one executor, unbounded batch,
//! paused dispatcher — under which a submitted sequence replays as a
//! single batch bit-identical to [`uae_core::Uae::try_estimate_cards`].

pub mod batcher;
pub mod manifest;
pub mod online;
pub mod recover;
pub mod registry;
pub mod server;
pub mod stats;

pub use batcher::{MicroBatcher, Poll};
pub use manifest::{Manifest, ManifestEntry, MANIFEST_FILE};
pub use online::{LearnerStats, OnlineLearner};
pub use recover::{recover_registry, RecoveryReport, RecoverySource, TenantRecovery};
pub use registry::{DegradeConfig, LadderState, Registry, Tenant, UnknownTenant};
pub use server::{
    ServeCallError, Server, ServerConfig, ServerError, ServerFaultPlan, SubmitError, Ticket,
};
pub use stats::{batch_bucket_label, LatencyWindow, ServerStats, BATCH_HIST_BUCKETS};

// The whole design leans on sharing `Arc<Uae>` across executor threads;
// fail the build loudly if the estimator ever loses Send + Sync.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<uae_core::Uae>();
    assert_send_sync::<Server>();
    assert_send_sync::<Registry>();
};
