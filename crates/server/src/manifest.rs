//! The durable tenant manifest: `manifest.uaem`, a versioned, checksummed,
//! atomically-rewritten snapshot of the registry's serving state — one
//! entry per tenant carrying the current model version, its checkpoint
//! file, the quantization mode, and the fleet routing policy.
//!
//! The manifest answers the cold-start question "what was live?"; the
//! write-ahead promotion journal ([`uae_core::Journal`]) answers "what was
//! *in flight*?". Recovery replays the journal against the manifest and
//! republishes the last provably-good version per tenant.
//!
//! The format (`UAEM`, version 1) reuses the sealed-blob envelope of the
//! `UAEW`/`UAEC` family: magic + version + payload + trailing FNV-1a
//! checksum, rejected with typed [`LoadError`]s on any truncation or bit
//! flip. Every rewrite goes through [`uae_core::persist_bytes`] — temp
//! file, fsync, rename, parent-directory fsync — so a crash mid-rewrite
//! leaves the previous manifest intact.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use uae_core::serialize::{open_blob, seal_blob, Reader};
use uae_core::{
    persist_bytes, BackendChoice, DiskFaults, LoadError, PersistError, QuantMode, RoutePolicy,
};

/// File name of the tenant manifest inside a state directory.
pub const MANIFEST_FILE: &str = "manifest.uaem";

const MAGIC: &[u8; 4] = b"UAEM";
const VERSION: u32 = 1;

/// One tenant's durable serving state.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Published model version (0 = the seed model).
    pub version: u64,
    /// Checkpoint file of that version, relative to the state directory
    /// (`None` for a seed model that was never checkpointed).
    pub checkpoint: Option<String>,
    /// The tenant's inference quantization mode.
    pub quant: QuantMode,
    /// The fleet routing policy, if a router is installed. Only the
    /// policy is serializable — backends are rebuilt by the host at
    /// recovery time.
    pub router: Option<RoutePolicy>,
}

/// The whole manifest: a monotone sequence number (bumped on every
/// rewrite) plus the per-tenant entries in deterministic (`BTreeMap`)
/// order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// Rewrite counter — strictly increasing across the manifest's life.
    pub seq: u64,
    /// Tenant name → durable state.
    pub entries: BTreeMap<String, ManifestEntry>,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_choice(out: &mut Vec<u8>, c: BackendChoice) {
    let tag: u32 = match c {
        BackendChoice::Primary => 0,
        BackendChoice::Backend(i) => 1 + i as u32,
    };
    out.extend_from_slice(&tag.to_le_bytes());
}

fn read_choice(r: &mut Reader<'_>) -> Result<BackendChoice, LoadError> {
    Ok(match r.u32()? {
        0 => BackendChoice::Primary,
        n => BackendChoice::Backend((n - 1) as usize),
    })
}

impl Manifest {
    /// Serialize into the sealed `UAEM` blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(64 + self.entries.len() * 64);
        p.extend_from_slice(&self.seq.to_le_bytes());
        p.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (tenant, e) in &self.entries {
            put_str(&mut p, tenant);
            p.extend_from_slice(&e.version.to_le_bytes());
            match &e.checkpoint {
                Some(ck) => {
                    p.push(1);
                    put_str(&mut p, ck);
                }
                None => p.push(0),
            }
            p.push(match e.quant {
                QuantMode::F32 => 0,
                QuantMode::Int8 => 1,
            });
            match &e.router {
                None => p.push(0),
                Some(RoutePolicy::Threshold { independent_backend }) => {
                    p.push(1);
                    p.extend_from_slice(&(*independent_backend as u32).to_le_bytes());
                }
                Some(RoutePolicy::Calibrated { default, by_class }) => {
                    p.push(2);
                    put_choice(&mut p, *default);
                    p.extend_from_slice(&(by_class.len() as u32).to_le_bytes());
                    for (class, choice) in by_class {
                        p.extend_from_slice(&u32::from(*class).to_le_bytes());
                        put_choice(&mut p, *choice);
                    }
                }
            }
        }
        seal_blob(MAGIC, VERSION, &p)
    }

    /// Parse a sealed `UAEM` blob. The checksum is verified before any
    /// field is trusted, so truncation and bit flips surface as typed
    /// errors — never a panic, never a partial manifest.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, LoadError> {
        let payload = open_blob(bytes, MAGIC, VERSION)?;
        let mut r = Reader::new(payload);
        let seq = r.u64()?;
        let count = r.u32()? as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let tenant = r.str_field()?.to_owned();
            let version = r.u64()?;
            let checkpoint = match r.u8()? {
                0 => None,
                1 => Some(r.str_field()?.to_owned()),
                _ => return Err(LoadError::Corrupt("bad checkpoint tag")),
            };
            let quant = match r.u8()? {
                0 => QuantMode::F32,
                1 => QuantMode::Int8,
                _ => return Err(LoadError::Corrupt("bad quant tag")),
            };
            let router = match r.u8()? {
                0 => None,
                1 => Some(RoutePolicy::Threshold { independent_backend: r.u32()? as usize }),
                2 => {
                    let default = read_choice(&mut r)?;
                    let n = r.u32()? as usize;
                    let mut by_class = BTreeMap::new();
                    for _ in 0..n {
                        let class = u16::try_from(r.u32()?)
                            .map_err(|_| LoadError::Corrupt("shape class out of range"))?;
                        by_class.insert(class, read_choice(&mut r)?);
                    }
                    Some(RoutePolicy::Calibrated { default, by_class })
                }
                _ => return Err(LoadError::Corrupt("bad router tag")),
            };
            entries.insert(tenant, ManifestEntry { version, checkpoint, quant, router });
        }
        if !r.done() {
            return Err(LoadError::Corrupt("trailing bytes"));
        }
        Ok(Manifest { seq, entries })
    }

    /// The manifest path inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// Load the manifest from `dir`. `Ok(None)` when no manifest exists;
    /// a corrupt file is a typed [`PersistError::Load`] (the caller —
    /// recovery — quarantines it and falls back to the journal).
    pub fn load(dir: &Path) -> Result<Option<Manifest>, PersistError> {
        let path = Self::path_in(dir);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(PersistError::Io { op: "read", path, source: e }),
        };
        Ok(Some(Manifest::decode(&bytes)?))
    }

    /// Atomically rewrite the manifest in `dir`, bumping `seq` first.
    /// One durable write index against `faults`.
    pub fn save(&mut self, dir: &Path, faults: Option<&DiskFaults>) -> Result<(), PersistError> {
        self.seq += 1;
        let bytes = self.encode();
        persist_bytes(Self::path_in(dir), &bytes, faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut entries = BTreeMap::new();
        entries.insert(
            "census".to_owned(),
            ManifestEntry {
                version: 3,
                checkpoint: Some("census_v3.uaec".to_owned()),
                quant: QuantMode::F32,
                router: Some(RoutePolicy::Threshold { independent_backend: 1 }),
            },
        );
        entries.insert(
            "dmv".to_owned(),
            ManifestEntry {
                version: 0,
                checkpoint: None,
                quant: QuantMode::Int8,
                router: Some(RoutePolicy::Calibrated {
                    default: BackendChoice::Primary,
                    by_class: BTreeMap::from([
                        (4u16, BackendChoice::Backend(0)),
                        (9u16, BackendChoice::Primary),
                    ]),
                }),
            },
        );
        Manifest { seq: 7, entries }
    }

    #[test]
    fn manifest_round_trip() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).expect("decode"), m);
        let empty = Manifest::default();
        assert_eq!(Manifest::decode(&empty.encode()).expect("decode"), empty);
    }

    #[test]
    fn manifest_rejects_every_truncation_and_bit_flip() {
        let blob = sample().encode();
        for cut in 0..blob.len() {
            assert!(
                Manifest::decode(&blob[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0x10;
            assert!(Manifest::decode(&bad).is_err(), "bit flip at {i} must be rejected");
        }
    }

    #[test]
    fn manifest_save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("uae_manifest_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut m = sample();
        m.save(&dir, None).expect("save");
        assert_eq!(m.seq, 8, "save bumps seq");
        let loaded = Manifest::load(&dir).expect("load").expect("present");
        assert_eq!(loaded, m);
        assert_eq!(Manifest::load(&dir.join("missing")).expect("load"), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
