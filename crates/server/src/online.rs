//! The background online-learning loop: the thread that closes the
//! query-driven feedback cycle against a live [`Registry`].
//!
//! [`uae_core::OnlineTrainer`] is a pure state machine — it takes the
//! clock as an argument and never sleeps, so tests replay it
//! deterministically. [`OnlineLearner`] is its production driver: a
//! single `uae-online` thread that periodically
//!
//! 1. snapshots the tenant's live model (a cheap `Arc` clone),
//! 2. runs one trainer round against the shared [`uae_core::QueryPool`]
//!    (whoever executes queries to completion feeds the pool), and
//! 3. publishes the round's verdict through
//!    [`Registry::swap_model`] — a promotion swaps the gated candidate
//!    in; a probation rollback swaps the prior version back.
//!
//! The swap is the same atomic publication point serving batches
//! already use: in-flight batches finish on the snapshot they started
//! with, the next flush sees the new model, and the server's rolling
//! latency window resets via the registry swap epoch.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use uae_core::{OnlineTrainer, QueryPool, RoundOutcome};

use crate::registry::Registry;

/// File name component of a checkpoint path, as stored in the manifest
/// (checkpoints live flat inside the state directory).
fn rel_name(path: &std::path::Path) -> Option<String> {
    path.file_name().map(|n| n.to_string_lossy().into_owned())
}

/// Counters of what the learner thread has published so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LearnerStats {
    /// Trainer rounds driven.
    pub rounds: u64,
    /// Candidates promoted and swapped in.
    pub promotions: u64,
    /// Candidates the shadow gate refused.
    pub rejections: u64,
    /// Post-promotion regressions rolled back.
    pub rollbacks: u64,
    /// Promotions withheld (or rollbacks left un-checkpointed) because
    /// the write-ahead persistence sequence failed. The loop keeps
    /// running and retries on later rounds.
    pub persist_failures: u64,
}

struct LearnerShared {
    stop: AtomicBool,
    stats: parking_lot::Mutex<LearnerStats>,
}

/// Handle to the background `uae-online` trainer thread. Dropping the
/// handle stops and joins the thread; [`OnlineLearner::stop`] does the
/// same and additionally hands the trainer back (for a final
/// checkpoint, observer drain, or inspection).
pub struct OnlineLearner {
    shared: Arc<LearnerShared>,
    handle: Option<JoinHandle<OnlineTrainer>>,
}

impl OnlineLearner {
    /// Spawn the learner loop for `tenant`: every `poll` interval, run
    /// one trainer round over `pool` against the tenant's current live
    /// model and publish any promotion or rollback through `registry`.
    ///
    /// The tenant must already be registered; rounds against a tenant
    /// that has since been removed publish nothing (the loop keeps
    /// running — registration is registry-lifetime stable anyway).
    pub fn start(
        registry: Arc<Registry>,
        tenant: impl Into<String>,
        mut trainer: OnlineTrainer,
        pool: Arc<QueryPool>,
        poll: Duration,
    ) -> OnlineLearner {
        let tenant = tenant.into();
        let shared = Arc::new(LearnerShared {
            stop: AtomicBool::new(false),
            stats: parking_lot::Mutex::new(LearnerStats::default()),
        });
        let thread_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("uae-online".into())
            .spawn(move || {
                let epoch = Instant::now();
                while !thread_shared.stop.load(Ordering::SeqCst) {
                    let Some(t) = registry.get(&tenant) else {
                        std::thread::sleep(poll);
                        continue;
                    };
                    let live = t.model();
                    let now_ns = epoch.elapsed().as_nanos() as u64;
                    let report = trainer.round(&pool, &live, now_ns);
                    let mut stats = thread_shared.stats.lock();
                    stats.rounds += 1;
                    match report.outcome {
                        RoundOutcome::Promoted { model, version, checkpoint_path, .. } => {
                            stats.promotions += 1;
                            drop(stats);
                            let ck = checkpoint_path.as_deref().and_then(rel_name);
                            let _ = registry.publish(&tenant, model, Some(version), ck);
                        }
                        RoundOutcome::RolledBack { model, version, checkpoint_path, .. } => {
                            stats.rollbacks += 1;
                            drop(stats);
                            let ck = checkpoint_path.as_deref().and_then(rel_name);
                            let _ = registry.publish(&tenant, model, Some(version), ck);
                        }
                        RoundOutcome::PersistFailed { .. } => {
                            stats.persist_failures += 1;
                            drop(stats);
                            std::thread::sleep(poll);
                        }
                        RoundOutcome::Rejected(_) => {
                            stats.rejections += 1;
                            drop(stats);
                            std::thread::sleep(poll);
                        }
                        RoundOutcome::Idle => {
                            drop(stats);
                            std::thread::sleep(poll);
                        }
                    }
                }
                // Clean-shutdown flush: a final idempotent journal commit
                // for the current version plus a manifest rewrite, so a
                // clean stop and a `recover` round-trip are bit-identical.
                if trainer.finalize().is_err() {
                    thread_shared.stats.lock().persist_failures += 1;
                }
                let _ = registry.sync_manifest();
                trainer
            })
            .expect("spawn uae-online");
        OnlineLearner { shared, handle: Some(handle) }
    }

    /// Counters of published outcomes so far.
    pub fn stats(&self) -> LearnerStats {
        *self.shared.stats.lock()
    }

    /// Stop the loop and hand the trainer back (it keeps its version
    /// history, branch state, and any attached observer).
    pub fn stop(mut self) -> OnlineTrainer {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.handle.take().expect("learner running").join().expect("uae-online thread")
    }
}

impl Drop for OnlineLearner {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shared.stop.store(true, Ordering::SeqCst);
            let _ = handle.join();
        }
    }
}
