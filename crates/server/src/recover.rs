//! Cold-start recovery: replay the write-ahead promotion journal against
//! the durable tenant manifest and republish the last provably-good model
//! version per tenant.
//!
//! The invariants recovery enforces:
//!
//! * **Only journal-committed versions are trusted.** An `Intent` without
//!   a matching `Commit` marks a promotion that may have torn mid-write —
//!   its checkpoint (if any bytes landed) is quarantined, never served.
//! * **Corrupt artifacts are quarantined, never deleted.** A checkpoint,
//!   manifest, or journal that fails its checksum is renamed to
//!   `<name>.quarantine` so the evidence survives for post-mortems.
//! * **Recovery always converges.** If nothing on disk is trustworthy the
//!   tenant restarts from a fresh seed model at version 0 — degraded
//!   accuracy, never unavailability and never a panic.
//! * **Recovery re-establishes the durability baseline.** After
//!   republishing, the manifest is rewritten from the recovered state and
//!   the journal is compacted to an empty header, so a second crash
//!   immediately after recovery replays to the same fleet.
//!
//! [`recover_registry`] rebuilds a [`Registry`]; [`crate::Server::recover`]
//! wraps it and immediately starts serving on the recovered fleet.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use uae_core::{
    quarantine, DiskFaults, Journal, JournalRecord, PersistError, QuantMode, RecoveryEvent,
    RecoveryObserver, RoutePolicy, Uae, JOURNAL_FILE,
};

use crate::manifest::Manifest;
use crate::registry::Registry;

/// Where a recovered tenant's version was proven good.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// A journal `Commit` record vouched for the version.
    Journal,
    /// The manifest carried the version (no journal evidence needed).
    Manifest,
    /// Nothing on disk was trustworthy — fresh seed model at version 0.
    Seed,
}

impl RecoverySource {
    fn as_str(self) -> &'static str {
        match self {
            RecoverySource::Journal => "journal",
            RecoverySource::Manifest => "manifest",
            RecoverySource::Seed => "seed",
        }
    }
}

/// One tenant's recovery verdict.
#[derive(Debug, Clone)]
pub struct TenantRecovery {
    /// The tenant name.
    pub tenant: String,
    /// The version republished.
    pub version: u64,
    /// Checkpoint file (relative to the state directory) the version was
    /// loaded from, `None` for a seed model.
    pub checkpoint: Option<String>,
    /// How the version was proven.
    pub source: RecoverySource,
    /// Artifacts quarantined while walking this tenant's candidates.
    pub quarantined: Vec<PathBuf>,
    /// Routing policy recorded in the manifest. Backends are not
    /// serializable, so the policy is *returned* for the host to rebuild
    /// (via [`Registry::set_router`]) rather than installed blind; until
    /// it does, the tenant serves on its primary model only.
    pub router: Option<RoutePolicy>,
    /// Quantization mode restored from the manifest.
    pub quant: QuantMode,
}

/// Everything [`recover_registry`] did, for assertions and telemetry.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Per-tenant verdicts, in deterministic (sorted) tenant order.
    pub tenants: Vec<TenantRecovery>,
    /// Tenants found on disk but skipped because the builder declined
    /// to produce a base model for them.
    pub skipped: Vec<String>,
    /// Whether the journal had a torn or corrupt tail.
    pub journal_torn: bool,
    /// Whether the manifest was present and intact (`true` also when it
    /// simply did not exist yet).
    pub manifest_ok: bool,
    /// Every artifact quarantined, by its *new* path.
    pub quarantined: Vec<PathBuf>,
    /// Wall-clock recovery time in milliseconds — the cold-start
    /// unavailability window.
    pub recover_ms: f64,
}

fn emit(observer: &mut Option<&mut dyn RecoveryObserver>, event: RecoveryEvent) {
    if let Some(obs) = observer.as_deref_mut() {
        obs.on_recovery_event(&event);
    }
}

fn quarantine_into(
    path: &Path,
    reason: &str,
    sink: &mut Vec<PathBuf>,
    observer: &mut Option<&mut dyn RecoveryObserver>,
) -> Result<(), PersistError> {
    if !path.exists() {
        return Ok(());
    }
    let new_path = quarantine(path)?;
    emit(
        observer,
        RecoveryEvent::Quarantined {
            path: new_path.display().to_string(),
            reason: reason.to_owned(),
        },
    );
    sink.push(new_path);
    Ok(())
}

/// Rebuild a [`Registry`] from the state directory `dir`.
///
/// `builder` produces the *base* (seed) model for a tenant name —
/// typically `Uae::new` over the tenant's table, exactly as at first
/// registration. Checkpoints are loaded into clones of that base, so the
/// builder runs at most once per tenant. Returning `None` skips the
/// tenant (it is reported in [`RecoveryReport::skipped`]).
///
/// `faults` is threaded into the *post-recovery* durable writes (manifest
/// rewrite, journal compaction) — pass `None` unless a chaos drill is
/// deliberately crashing recovery itself.
///
/// Only I/O errors (not corruption — that is quarantined and survived)
/// abort recovery.
pub fn recover_registry(
    dir: &Path,
    builder: &mut dyn FnMut(&str) -> Option<Uae>,
    faults: Option<Arc<DiskFaults>>,
    mut observer: Option<&mut dyn RecoveryObserver>,
) -> Result<(Arc<Registry>, RecoveryReport), PersistError> {
    let started = Instant::now();
    emit(&mut observer, RecoveryEvent::Started { dir: dir.display().to_string() });

    let mut report = RecoveryReport { manifest_ok: true, ..RecoveryReport::default() };

    // 1. The manifest: the "what was live?" snapshot. Corruption is not
    // fatal — quarantine it and lean on the journal alone.
    let manifest = match Manifest::load(dir) {
        Ok(Some(m)) => m,
        Ok(None) => Manifest::default(),
        Err(PersistError::Load(_)) => {
            report.manifest_ok = false;
            quarantine_into(
                &Manifest::path_in(dir),
                "manifest checksum or structure invalid",
                &mut report.quarantined,
                &mut observer,
            )?;
            Manifest::default()
        }
        Err(e) => return Err(e),
    };

    // 2. The journal: the "what was in flight?" record. A torn tail is
    // expected after a crash — the valid prefix replays, the tail is
    // ignored (and the whole file quarantined below, after compaction
    // evidence is extracted).
    let journal_path = dir.join(JOURNAL_FILE);
    let replay = Journal::replay(&journal_path)?;
    report.journal_torn = replay.torn;

    // Intent records: (tenant, version) -> checkpoint file, last wins.
    // Commit records: tenant -> set of provably-durable versions.
    let mut intents: BTreeMap<(String, u64), String> = BTreeMap::new();
    let mut commits: BTreeMap<String, BTreeSet<u64>> = BTreeMap::new();
    for rec in &replay.records {
        match rec {
            JournalRecord::Intent { tenant, version, checkpoint } => {
                intents.insert((tenant.clone(), *version), checkpoint.clone());
            }
            JournalRecord::Commit { tenant, version } => {
                commits.entry(tenant.clone()).or_default().insert(*version);
            }
        }
    }

    // 3. The tenant universe: everything either source has heard of.
    let mut tenant_names: BTreeSet<String> = manifest.entries.keys().cloned().collect();
    tenant_names.extend(commits.keys().cloned());
    tenant_names.extend(intents.keys().map(|(t, _)| t.clone()));

    let registry = Arc::new(Registry::new());

    for tenant in &tenant_names {
        let committed = commits.get(tenant).cloned().unwrap_or_default();
        let mut quarantined_here: Vec<PathBuf> = Vec::new();

        // Uncommitted intents mark promotions that may have torn
        // mid-checkpoint: whatever bytes landed are evidence, not state.
        for ((t, v), ck) in intents.range((tenant.clone(), 0)..=(tenant.clone(), u64::MAX)) {
            debug_assert_eq!(t, tenant);
            if !committed.contains(v) {
                quarantine_into(
                    &dir.join(ck),
                    "promotion intent without commit (torn promotion)",
                    &mut quarantined_here,
                    &mut observer,
                )?;
            }
        }

        // Candidate versions, best first: journal-committed versions
        // descending, then the manifest entry if it names a version the
        // journal did not vouch for (e.g. the journal was compacted).
        let manifest_entry = manifest.entries.get(tenant);
        let mut candidates: Vec<(u64, Option<String>, RecoverySource)> = committed
            .iter()
            .rev()
            .map(|&v| {
                let ck = intents
                    .get(&(tenant.clone(), v))
                    .cloned()
                    .or_else(|| {
                        manifest_entry.filter(|e| e.version == v).and_then(|e| e.checkpoint.clone())
                    })
                    .or_else(|| Some(format!("{tenant}_v{v}.uaec")));
                (v, ck, RecoverySource::Journal)
            })
            .collect();
        if let Some(e) = manifest_entry {
            if !committed.contains(&e.version) {
                let at = candidates
                    .iter()
                    .position(|(v, _, _)| *v < e.version)
                    .unwrap_or(candidates.len());
                candidates.insert(at, (e.version, e.checkpoint.clone(), RecoverySource::Manifest));
            }
        }

        let Some(base) = builder(tenant) else {
            report.quarantined.append(&mut quarantined_here);
            report.skipped.push(tenant.clone());
            continue;
        };

        let mut recovered: Option<(Uae, u64, Option<String>, RecoverySource)> = None;
        for (version, checkpoint, source) in candidates {
            match &checkpoint {
                Some(ck) => {
                    let path = dir.join(ck);
                    if !path.exists() {
                        continue;
                    }
                    let mut model = base.clone();
                    match model.load_checkpoint_file(&path) {
                        Ok(()) => {
                            recovered = Some((model, version, checkpoint, source));
                            break;
                        }
                        Err(e) => quarantine_into(
                            &path,
                            &format!("checkpoint rejected: {e}"),
                            &mut quarantined_here,
                            &mut observer,
                        )?,
                    }
                }
                None => {
                    // A version that was never checkpointed (a seed entry
                    // in the manifest): the base model *is* the state.
                    recovered = Some((base.clone(), version, None, source));
                    break;
                }
            }
        }
        let (mut model, version, checkpoint, source) =
            recovered.unwrap_or((base, 0, None, RecoverySource::Seed));

        let (quant, router) = match manifest_entry {
            Some(e) => (e.quant, e.router.clone()),
            None => (QuantMode::F32, None),
        };
        model.set_quant_mode(quant);
        registry.register_full(tenant.clone(), model, None, version, checkpoint.clone());

        emit(
            &mut observer,
            RecoveryEvent::TenantRecovered {
                tenant: tenant.clone(),
                version,
                source: source.as_str().to_owned(),
                quarantined: quarantined_here.len(),
            },
        );
        report.quarantined.extend(quarantined_here.iter().cloned());
        report.tenants.push(TenantRecovery {
            tenant: tenant.clone(),
            version,
            checkpoint,
            source,
            quarantined: quarantined_here,
            router,
            quant,
        });
    }

    // 4. A torn journal is evidence — preserve it before compaction.
    if report.journal_torn {
        quarantine_into(
            &journal_path,
            "journal tail torn or corrupt",
            &mut report.quarantined,
            &mut observer,
        )?;
    }

    // 5. Re-establish the durability baseline: manifest rewritten from
    // the recovered fleet, journal compacted to an empty header. A crash
    // from here on replays to exactly this state.
    registry.persist_to(dir, faults.clone())?;
    Journal::reset(&journal_path, faults.as_deref())?;

    report.recover_ms = started.elapsed().as_secs_f64() * 1e3;
    emit(
        &mut observer,
        RecoveryEvent::Finished {
            tenants: report.tenants.len(),
            quarantined: report.quarantined.len(),
            journal_torn: report.journal_torn,
            ms: report.recover_ms,
        },
    );
    Ok((registry, report))
}
