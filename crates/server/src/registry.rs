//! Per-tenant model registry: named [`Uae`] snapshots behind an
//! atomic-swap point.
//!
//! A production estimation service hosts many tables/tenants at once, each
//! with its own trained model, serving configuration (`ServeConfig` lives
//! *inside* the tenant's `Uae`) and degradation policy. The registry maps
//! tenant names to [`Tenant`] handles; the model inside a tenant is an
//! `Arc<Uae>` behind an `RwLock`, so
//!
//! * executors grab a cheap `Arc` clone per batch (a read lock held for
//!   nanoseconds, never across an estimate), and
//! * [`Registry::swap_model`] publishes a retrained model atomically
//!   between batches — in-flight batches finish on the snapshot they
//!   started with, the next flush sees the new one. This is the hot-swap
//!   point the online-learning loop (ROADMAP item 2) will drive.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use uae_core::Uae;

/// Latency-SLO degradation ladder for one tenant (or the server default).
///
/// Rungs engage in order as load signals cross their thresholds:
///
/// | rung | condition | per-query budget |
/// |---|---|---|
/// | 0 | nominal | the tenant's configured `estimate_samples` |
/// | 1 | queue depth **or** observed p99 over threshold | `degraded_fraction` × configured |
/// | 2 | **both** over threshold | `floor_fraction` × configured |
///
/// Degraded batches run through the same cascade; their results carry
/// [`uae_core::EstimateSource::ModelDegraded`] and count into
/// [`uae_core::ServeStats::degraded`].
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeConfig {
    /// In-flight requests (accepted, not yet replied) above which rung 1
    /// engages. `0` disables the queue-depth signal.
    pub queue_depth_threshold: usize,
    /// Observed end-to-end p99 (over the rolling latency window) above
    /// which rung 1 engages, in milliseconds. `0.0` disables the latency
    /// signal.
    pub p99_target_ms: f64,
    /// Rung-1 budget as a fraction of the tenant's configured
    /// `estimate_samples`.
    pub degraded_fraction: f64,
    /// Rung-2 budget fraction (both signals firing).
    pub floor_fraction: f64,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            queue_depth_threshold: 256,
            p99_target_ms: 0.0,
            degraded_fraction: 0.25,
            floor_fraction: 0.1,
        }
    }
}

impl DegradeConfig {
    /// A ladder that never engages (full budget regardless of load).
    pub fn disabled() -> Self {
        DegradeConfig { queue_depth_threshold: 0, p99_target_ms: 0.0, ..Self::default() }
    }

    /// The per-query sample budget for the current load signals: `None`
    /// for the full configured budget, `Some(shrunken)` when a rung
    /// engages. `configured` is the tenant's nominal `estimate_samples`.
    pub fn budget(&self, configured: usize, queue_depth: usize, p99_ms: f64) -> Option<usize> {
        let depth_hot = self.queue_depth_threshold > 0 && queue_depth > self.queue_depth_threshold;
        let lat_hot = self.p99_target_ms > 0.0 && p99_ms > self.p99_target_ms;
        let fraction = match (depth_hot, lat_hot) {
            (false, false) => return None,
            (true, true) => self.floor_fraction,
            _ => self.degraded_fraction,
        };
        let shrunk = ((configured as f64 * fraction).round() as usize).max(1);
        (shrunk < configured).then_some(shrunk)
    }
}

/// One registered tenant: a named model swap point plus its degradation
/// policy. The tenant's serving configuration (validation, fallback
/// cascade, quantization, fault plan) travels inside the `Uae` itself.
pub struct Tenant {
    name: String,
    /// Stable dense index — the micro-batcher lane this tenant batches in.
    lane: usize,
    model: RwLock<Arc<Uae>>,
    degrade: Option<DegradeConfig>,
}

impl Tenant {
    /// Tenant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The batching lane assigned at registration.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// The live model snapshot (cheap `Arc` clone; never blocks on an
    /// estimate in flight).
    pub fn model(&self) -> Arc<Uae> {
        self.model.read().clone()
    }

    /// This tenant's degradation ladder, if it overrides the server's.
    pub fn degrade(&self) -> Option<&DegradeConfig> {
        self.degrade.as_ref()
    }
}

/// Error for operations addressing a tenant that was never registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTenant(pub String);

impl std::fmt::Display for UnknownTenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown tenant `{}`", self.0)
    }
}

impl std::error::Error for UnknownTenant {}

/// Name → tenant map. Registration order assigns dense lane indices.
#[derive(Default)]
pub struct Registry {
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    /// Lane-indexed view (registration order), for dispatchers that key
    /// batches by lane.
    by_lane: RwLock<Vec<Arc<Tenant>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register `model` under `name` with the server-default degradation
    /// ladder. Re-registering an existing name swaps the model instead
    /// (the lane is stable for the life of the registry).
    pub fn register(&self, name: impl Into<String>, model: Uae) -> Arc<Tenant> {
        self.register_with(name, model, None)
    }

    /// Register with a per-tenant degradation ladder override.
    pub fn register_with(
        &self,
        name: impl Into<String>,
        model: Uae,
        degrade: Option<DegradeConfig>,
    ) -> Arc<Tenant> {
        let name = name.into();
        let mut tenants = self.tenants.write();
        if let Some(existing) = tenants.get(&name) {
            *existing.model.write() = Arc::new(model);
            return existing.clone();
        }
        let mut by_lane = self.by_lane.write();
        let tenant = Arc::new(Tenant {
            name: name.clone(),
            lane: by_lane.len(),
            model: RwLock::new(Arc::new(model)),
            degrade,
        });
        by_lane.push(tenant.clone());
        tenants.insert(name, tenant.clone());
        tenant
    }

    /// Atomically publish a new model for `name`, returning the previous
    /// snapshot (which in-flight batches may still be using).
    pub fn swap_model(&self, name: &str, model: Uae) -> Result<Arc<Uae>, UnknownTenant> {
        let tenants = self.tenants.read();
        let tenant = tenants.get(name).ok_or_else(|| UnknownTenant(name.to_owned()))?;
        let mut slot = tenant.model.write();
        Ok(std::mem::replace(&mut *slot, Arc::new(model)))
    }

    /// Look a tenant up by name.
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.read().get(name).cloned()
    }

    /// Look a tenant up by lane index.
    pub fn by_lane(&self, lane: usize) -> Option<Arc<Tenant>> {
        self.by_lane.read().get(lane).cloned()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.by_lane.read().len()
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registered tenant names, in lane order.
    pub fn names(&self) -> Vec<String> {
        self.by_lane.read().iter().map(|t| t.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrade_ladder_rungs() {
        let d = DegradeConfig {
            queue_depth_threshold: 10,
            p99_target_ms: 5.0,
            degraded_fraction: 0.25,
            floor_fraction: 0.1,
        };
        // Nominal load: full budget.
        assert_eq!(d.budget(1000, 5, 1.0), None);
        // Queue depth alone: rung 1.
        assert_eq!(d.budget(1000, 11, 1.0), Some(250));
        // Latency alone: rung 1.
        assert_eq!(d.budget(1000, 5, 6.0), Some(250));
        // Both: rung 2.
        assert_eq!(d.budget(1000, 11, 6.0), Some(100));
        // Shrunken budget never hits zero…
        assert_eq!(d.budget(3, 11, 6.0), Some(1));
        // …and never "degrades" to >= the configured budget.
        assert_eq!(d.budget(1, 11, 6.0), None);
        // Disabled signals never engage.
        let off = DegradeConfig::disabled();
        assert_eq!(off.budget(1000, usize::MAX, 1e9), None);
    }
}
