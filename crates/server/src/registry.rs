//! Per-tenant model registry: named [`Uae`] snapshots behind an
//! atomic-swap point.
//!
//! A production estimation service hosts many tables/tenants at once, each
//! with its own trained model, serving configuration (`ServeConfig` lives
//! *inside* the tenant's `Uae`) and degradation policy. The registry maps
//! tenant names to [`Tenant`] handles; the model inside a tenant is an
//! `Arc<Uae>` behind an `RwLock`, so
//!
//! * executors grab a cheap `Arc` clone per batch (a read lock held for
//!   nanoseconds, never across an estimate), and
//! * [`Registry::swap_model`] publishes a retrained model atomically
//!   between batches — in-flight batches finish on the snapshot they
//!   started with, the next flush sees the new one. This is the hot-swap
//!   point the online-learning loop (ROADMAP item 2) will drive.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use uae_core::{DiskFaults, PersistError, QueryPool, Router, Uae};

use crate::manifest::{Manifest, ManifestEntry};

/// Latency-SLO degradation ladder for one tenant (or the server default).
///
/// Rungs engage in order as load signals cross their thresholds:
///
/// | rung | condition | per-query budget |
/// |---|---|---|
/// | 0 | nominal | the tenant's configured `estimate_samples` |
/// | 1 | queue depth **or** observed p99 over threshold | `degraded_fraction` × configured |
/// | 2 | **both** over threshold | `floor_fraction` × configured |
///
/// Degraded batches run through the same cascade; their results carry
/// [`uae_core::EstimateSource::ModelDegraded`] and count into
/// [`uae_core::ServeStats::degraded`].
///
/// Engagement is **hysteretic** (via [`DegradeConfig::step`] over a
/// per-tenant [`LadderState`]): a signal goes hot the moment its metric
/// crosses the entry threshold, but goes cold only once the metric has
/// dropped into the exit band (`threshold × exit_fraction`) *and* the
/// signal has not re-crossed the entry threshold for `cooldown_ns`.
/// Load oscillating right at a threshold therefore cannot flap the
/// ladder between rungs every batch.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeConfig {
    /// In-flight requests (accepted, not yet replied) above which rung 1
    /// engages. `0` disables the queue-depth signal.
    pub queue_depth_threshold: usize,
    /// Observed end-to-end p99 (over the rolling latency window) above
    /// which rung 1 engages, in milliseconds. `0.0` disables the latency
    /// signal.
    pub p99_target_ms: f64,
    /// Rung-1 budget as a fraction of the tenant's configured
    /// `estimate_samples`.
    pub degraded_fraction: f64,
    /// Rung-2 budget fraction (both signals firing).
    pub floor_fraction: f64,
    /// A hot signal disengages only below `threshold × exit_fraction` —
    /// the hysteresis band. Values at or above `1.0` collapse the band
    /// (exit at the entry threshold, pre-hysteresis behaviour).
    pub exit_fraction: f64,
    /// A hot signal additionally stays hot for this long after it last
    /// crossed its entry threshold, regardless of the exit band.
    pub cooldown_ns: u64,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            queue_depth_threshold: 256,
            p99_target_ms: 0.0,
            degraded_fraction: 0.25,
            floor_fraction: 0.1,
            exit_fraction: 0.8,
            cooldown_ns: 100_000_000, // 100ms
        }
    }
}

/// One load signal's hysteresis state: whether it is hot, and when it
/// last crossed its entry threshold (the cooldown clock).
#[derive(Debug, Clone, Copy, Default)]
struct SignalState {
    hot: bool,
    hot_at_ns: u64,
}

/// Per-tenant hysteresis state for the two ladder signals. Owned by the
/// [`Tenant`]; pure state driven by [`DegradeConfig::step`] under the
/// caller's clock (the dispatcher's batch epoch, or a mock in tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct LadderState {
    depth: SignalState,
    latency: SignalState,
}

impl LadderState {
    /// Whether the queue-depth signal is currently hot.
    pub fn depth_hot(&self) -> bool {
        self.depth.hot
    }

    /// Whether the latency signal is currently hot.
    pub fn latency_hot(&self) -> bool {
        self.latency.hot
    }
}

impl DegradeConfig {
    /// A ladder that never engages (full budget regardless of load).
    pub fn disabled() -> Self {
        DegradeConfig { queue_depth_threshold: 0, p99_target_ms: 0.0, ..Self::default() }
    }

    /// Map hot signals to a shrunken budget (`None` = full budget).
    fn rung_budget(&self, configured: usize, depth_hot: bool, lat_hot: bool) -> Option<usize> {
        let fraction = match (depth_hot, lat_hot) {
            (false, false) => return None,
            (true, true) => self.floor_fraction,
            _ => self.degraded_fraction,
        };
        let shrunk = ((configured as f64 * fraction).round() as usize).max(1);
        (shrunk < configured).then_some(shrunk)
    }

    /// Advance one signal's hysteresis state for the current metric
    /// value, returning whether it is hot.
    fn update_signal(
        &self,
        st: &mut SignalState,
        enabled: bool,
        value: f64,
        threshold: f64,
        now_ns: u64,
    ) -> bool {
        if !enabled {
            st.hot = false;
            return false;
        }
        if value > threshold {
            st.hot = true;
            st.hot_at_ns = now_ns; // every re-cross restarts the cooldown
        } else if st.hot
            && value <= threshold * self.exit_fraction
            && now_ns.saturating_sub(st.hot_at_ns) >= self.cooldown_ns
        {
            st.hot = false;
        }
        st.hot
    }

    /// The stateless per-query budget for the current load signals:
    /// `None` for the full configured budget, `Some(shrunken)` when a
    /// rung engages on raw entry thresholds. `configured` is the
    /// tenant's nominal `estimate_samples`. No hysteresis — use
    /// [`DegradeConfig::step`] with a [`LadderState`] for flap-free
    /// serving decisions.
    pub fn budget(&self, configured: usize, queue_depth: usize, p99_ms: f64) -> Option<usize> {
        let depth_hot = self.queue_depth_threshold > 0 && queue_depth > self.queue_depth_threshold;
        let lat_hot = self.p99_target_ms > 0.0 && p99_ms > self.p99_target_ms;
        self.rung_budget(configured, depth_hot, lat_hot)
    }

    /// The hysteretic per-query budget: advance `state` under the
    /// current load signals at `now_ns` and return the budget for the
    /// rung the ladder is now on. Entry is immediate; exit requires the
    /// metric below the exit band with the cooldown expired.
    pub fn step(
        &self,
        state: &mut LadderState,
        configured: usize,
        queue_depth: usize,
        p99_ms: f64,
        now_ns: u64,
    ) -> Option<usize> {
        let depth_hot = self.update_signal(
            &mut state.depth,
            self.queue_depth_threshold > 0,
            queue_depth as f64,
            self.queue_depth_threshold as f64,
            now_ns,
        );
        let lat_hot = self.update_signal(
            &mut state.latency,
            self.p99_target_ms > 0.0,
            p99_ms,
            self.p99_target_ms,
            now_ns,
        );
        self.rung_budget(configured, depth_hot, lat_hot)
    }
}

/// One registered tenant: a named model swap point plus its degradation
/// policy. The tenant's serving configuration (validation, fallback
/// cascade, quantization, fault plan) travels inside the `Uae` itself.
pub struct Tenant {
    name: String,
    /// Stable dense index — the micro-batcher lane this tenant batches in.
    lane: usize,
    model: RwLock<Arc<Uae>>,
    degrade: Option<DegradeConfig>,
    /// Hysteresis state for this tenant's degradation ladder (driven at
    /// flush time by the dispatcher's clock).
    ladder: Mutex<LadderState>,
    /// Optional model fleet: a shape-aware router over baseline backends.
    /// `None` (the default) serves every query through the primary model,
    /// bit-identically to a pre-fleet server. Swappable like the model.
    router: RwLock<Option<Arc<Router>>>,
    /// Optional shared label stream: served queries whose true
    /// cardinalities arrive later are pushed here, feeding the online
    /// trainer and future router recalibration from one pool.
    pool: RwLock<Option<Arc<QueryPool>>>,
    /// Published model version (0 = the seed registration). Promotions
    /// and rollbacks set it explicitly; unversioned swaps increment it.
    version: AtomicU64,
    /// Checkpoint file (relative to the manifest's state directory) of
    /// the published version, if it was durably written.
    checkpoint: Mutex<Option<String>>,
}

impl Tenant {
    /// Tenant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The batching lane assigned at registration.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// The live model snapshot (cheap `Arc` clone; never blocks on an
    /// estimate in flight).
    pub fn model(&self) -> Arc<Uae> {
        self.model.read().clone()
    }

    /// This tenant's degradation ladder, if it overrides the server's.
    pub fn degrade(&self) -> Option<&DegradeConfig> {
        self.degrade.as_ref()
    }

    /// The tenant's fleet router, if one is installed (cheap `Arc`
    /// clone, same discipline as [`Tenant::model`]).
    pub fn router(&self) -> Option<Arc<Router>> {
        self.router.read().clone()
    }

    /// The tenant's shared label pool, if one is attached.
    pub fn pool(&self) -> Option<Arc<QueryPool>> {
        self.pool.read().clone()
    }

    /// The published model version (0 = the seed registration).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Checkpoint file (relative to the state directory) backing the
    /// published version, if it was durably written.
    pub fn checkpoint(&self) -> Option<String> {
        self.checkpoint.lock().clone()
    }

    /// Snapshot this tenant's durable state as a manifest entry.
    fn manifest_entry(&self) -> ManifestEntry {
        ManifestEntry {
            version: self.version(),
            checkpoint: self.checkpoint(),
            quant: self.model().serve_config().quant,
            router: self.router().map(|r| r.policy().clone()),
        }
    }

    /// Advance this tenant's hysteretic ladder under the current load
    /// signals and return the batch's sample budget (`None` = full).
    /// `default_cfg` applies when the tenant has no override.
    pub fn degrade_budget(
        &self,
        default_cfg: &DegradeConfig,
        configured: usize,
        queue_depth: usize,
        p99_ms: f64,
        now_ns: u64,
    ) -> Option<usize> {
        let cfg = self.degrade.as_ref().unwrap_or(default_cfg);
        cfg.step(&mut self.ladder.lock(), configured, queue_depth, p99_ms, now_ns)
    }
}

/// Error for operations addressing a tenant that was never registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTenant(pub String);

impl std::fmt::Display for UnknownTenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown tenant `{}`", self.0)
    }
}

impl std::error::Error for UnknownTenant {}

/// The registry's attachment to a durable state directory: the in-memory
/// manifest image plus where (and with what fault injection) to rewrite
/// it.
struct PersistHandle {
    dir: PathBuf,
    faults: Option<Arc<DiskFaults>>,
    manifest: Mutex<Manifest>,
}

/// Name → tenant map. Registration order assigns dense lane indices.
#[derive(Default)]
pub struct Registry {
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    /// Lane-indexed view (registration order), for dispatchers that key
    /// batches by lane.
    by_lane: RwLock<Vec<Arc<Tenant>>>,
    /// Bumped on every model publication (swap or re-register). The
    /// serving front-end watches this to reset its rolling latency
    /// window: pre-swap samples describe the *old* model and would
    /// otherwise keep driving the degradation ladder after a hot-swap.
    swap_epoch: AtomicU64,
    /// Durable manifest attachment (`None` = in-memory registry only).
    persist: RwLock<Option<PersistHandle>>,
    /// Manifest rewrites that failed. Publications never block on a
    /// failed manifest write — serving stays up and recovery falls back
    /// to the journal — but the failure is counted and kept.
    persist_failures: AtomicU64,
    /// Rendered error of the most recent failed manifest rewrite.
    last_persist_error: Mutex<Option<String>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register `model` under `name` with the server-default degradation
    /// ladder. Re-registering an existing name swaps the model instead
    /// (the lane is stable for the life of the registry).
    pub fn register(&self, name: impl Into<String>, model: Uae) -> Arc<Tenant> {
        self.register_with(name, model, None)
    }

    /// Register with a per-tenant degradation ladder override.
    pub fn register_with(
        &self,
        name: impl Into<String>,
        model: Uae,
        degrade: Option<DegradeConfig>,
    ) -> Arc<Tenant> {
        self.register_full(name, model, degrade, 0, None)
    }

    /// Register with explicit durable state — the recovery path uses
    /// this to republish a tenant at its recovered version rather than
    /// restarting the lineage at 0. Re-registering an existing name
    /// swaps the model and adopts the given version/checkpoint.
    pub fn register_full(
        &self,
        name: impl Into<String>,
        model: Uae,
        degrade: Option<DegradeConfig>,
        version: u64,
        checkpoint: Option<String>,
    ) -> Arc<Tenant> {
        let name = name.into();
        let tenant = {
            let mut tenants = self.tenants.write();
            if let Some(existing) = tenants.get(&name) {
                *existing.model.write() = Arc::new(model);
                existing.version.store(version, Ordering::SeqCst);
                *existing.checkpoint.lock() = checkpoint;
                self.swap_epoch.fetch_add(1, Ordering::SeqCst);
                existing.clone()
            } else {
                let mut by_lane = self.by_lane.write();
                let tenant = Arc::new(Tenant {
                    name: name.clone(),
                    lane: by_lane.len(),
                    model: RwLock::new(Arc::new(model)),
                    degrade,
                    ladder: Mutex::new(LadderState::default()),
                    router: RwLock::new(None),
                    pool: RwLock::new(None),
                    version: AtomicU64::new(version),
                    checkpoint: Mutex::new(checkpoint),
                });
                by_lane.push(tenant.clone());
                tenants.insert(name.clone(), tenant.clone());
                tenant
            }
        };
        self.sync_tenant_best_effort(&name);
        tenant
    }

    /// Atomically publish a new model for `name`, returning the previous
    /// snapshot (which in-flight batches may still be using). The
    /// tenant's version increments; use [`Registry::publish`] when the
    /// publication carries an explicit version and checkpoint (online
    /// promotions do).
    pub fn swap_model(&self, name: &str, model: Uae) -> Result<Arc<Uae>, UnknownTenant> {
        self.publish(name, model, None, None)
    }

    /// Atomically publish a new model for `name` with its durable
    /// identity: the version number (`None` = increment the tenant's
    /// counter) and the checkpoint file backing it, if any. Syncs the
    /// manifest when the registry is attached to a state directory.
    pub fn publish(
        &self,
        name: &str,
        model: Uae,
        version: Option<u64>,
        checkpoint: Option<String>,
    ) -> Result<Arc<Uae>, UnknownTenant> {
        let prior = {
            let tenants = self.tenants.read();
            let tenant = tenants.get(name).ok_or_else(|| UnknownTenant(name.to_owned()))?;
            let mut slot = tenant.model.write();
            let prior = std::mem::replace(&mut *slot, Arc::new(model));
            drop(slot);
            match version {
                Some(v) => tenant.version.store(v, Ordering::SeqCst),
                None => {
                    tenant.version.fetch_add(1, Ordering::SeqCst);
                }
            }
            *tenant.checkpoint.lock() = checkpoint;
            self.swap_epoch.fetch_add(1, Ordering::SeqCst);
            prior
        };
        self.sync_tenant_best_effort(name);
        Ok(prior)
    }

    /// Install (or replace, or with `None` remove) a fleet router for
    /// `name`. Routing engages at the next batch flush — in-flight
    /// batches finish under the routing they started with. Counts as a
    /// publication: the swap epoch bumps so the front-end resets its
    /// rolling latency window (pre-fleet samples describe a different
    /// serving mix).
    pub fn set_router(&self, name: &str, router: Option<Arc<Router>>) -> Result<(), UnknownTenant> {
        {
            let tenants = self.tenants.read();
            let tenant = tenants.get(name).ok_or_else(|| UnknownTenant(name.to_owned()))?;
            *tenant.router.write() = router;
            self.swap_epoch.fetch_add(1, Ordering::SeqCst);
        }
        self.sync_tenant_best_effort(name);
        Ok(())
    }

    /// Attach (or with `None` detach) the shared label pool for `name`.
    /// Once attached, the server records served queries and joins
    /// later-arriving true cardinalities into this pool (see
    /// `Server::resolve_truth`).
    pub fn attach_pool(
        &self,
        name: &str,
        pool: Option<Arc<QueryPool>>,
    ) -> Result<(), UnknownTenant> {
        let tenants = self.tenants.read();
        let tenant = tenants.get(name).ok_or_else(|| UnknownTenant(name.to_owned()))?;
        *tenant.pool.write() = pool;
        Ok(())
    }

    /// Monotone counter of model publications (swaps and re-registers).
    pub fn swap_epoch(&self) -> u64 {
        self.swap_epoch.load(Ordering::SeqCst)
    }

    /// Look a tenant up by name.
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.read().get(name).cloned()
    }

    /// Look a tenant up by lane index.
    pub fn by_lane(&self, lane: usize) -> Option<Arc<Tenant>> {
        self.by_lane.read().get(lane).cloned()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.by_lane.read().len()
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registered tenant names, in lane order.
    pub fn names(&self) -> Vec<String> {
        self.by_lane.read().iter().map(|t| t.name.clone()).collect()
    }

    /// Attach the registry to a durable state directory: load (or
    /// create) `manifest.uaem` there, fold the current tenants in, and
    /// rewrite it atomically. From here on every register / publish /
    /// router change rewrites the manifest; failures are counted in
    /// [`Registry::persist_failures`] rather than failing the
    /// publication (recovery falls back to the journal).
    pub fn persist_to(
        &self,
        dir: impl Into<PathBuf>,
        faults: Option<Arc<DiskFaults>>,
    ) -> Result<(), PersistError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| PersistError::Io {
            op: "create-dir",
            path: dir.clone(),
            source: e,
        })?;
        let manifest = Manifest::load(&dir)?.unwrap_or_default();
        *self.persist.write() = Some(PersistHandle { dir, faults, manifest: Mutex::new(manifest) });
        self.sync_manifest()
    }

    /// Whether the registry is attached to a durable state directory.
    pub fn is_persistent(&self) -> bool {
        self.persist.read().is_some()
    }

    /// Rewrite the manifest from the full current registry state.
    /// A no-op without a persistence attachment.
    pub fn sync_manifest(&self) -> Result<(), PersistError> {
        let persist = self.persist.read();
        let Some(handle) = persist.as_ref() else {
            return Ok(());
        };
        let entries: Vec<(String, ManifestEntry)> =
            self.by_lane.read().iter().map(|t| (t.name.clone(), t.manifest_entry())).collect();
        let mut manifest = handle.manifest.lock();
        for (name, entry) in entries {
            manifest.entries.insert(name, entry);
        }
        let result = manifest.save(&handle.dir, handle.faults.as_deref());
        if let Err(e) = &result {
            self.persist_failures.fetch_add(1, Ordering::SeqCst);
            *self.last_persist_error.lock() = Some(e.to_string());
        }
        result
    }

    /// Manifest rewrite attempts that failed since attachment.
    pub fn persist_failures(&self) -> u64 {
        self.persist_failures.load(Ordering::SeqCst)
    }

    /// Rendered error of the most recent failed manifest rewrite.
    pub fn last_persist_error(&self) -> Option<String> {
        self.last_persist_error.lock().clone()
    }

    /// Best-effort manifest sync after a publication touching `name`:
    /// never fails the publication, only counts the failure.
    fn sync_tenant_best_effort(&self, _name: &str) {
        let _ = self.sync_manifest();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrade_ladder_rungs() {
        let d = DegradeConfig {
            queue_depth_threshold: 10,
            p99_target_ms: 5.0,
            degraded_fraction: 0.25,
            floor_fraction: 0.1,
            ..DegradeConfig::default()
        };
        // Nominal load: full budget.
        assert_eq!(d.budget(1000, 5, 1.0), None);
        // Queue depth alone: rung 1.
        assert_eq!(d.budget(1000, 11, 1.0), Some(250));
        // Latency alone: rung 1.
        assert_eq!(d.budget(1000, 5, 6.0), Some(250));
        // Both: rung 2.
        assert_eq!(d.budget(1000, 11, 6.0), Some(100));
        // Shrunken budget never hits zero…
        assert_eq!(d.budget(3, 11, 6.0), Some(1));
        // …and never "degrades" to >= the configured budget.
        assert_eq!(d.budget(1, 11, 6.0), None);
        // Disabled signals never engage.
        let off = DegradeConfig::disabled();
        assert_eq!(off.budget(1000, usize::MAX, 1e9), None);
    }

    /// The flapping regression: load oscillating right at the entry
    /// threshold must not toggle the ladder between rungs every step.
    /// Entry is immediate; exit needs the exit band AND the cooldown.
    #[test]
    fn degrade_ladder_hysteresis_does_not_flap_on_boundary_straddling_load() {
        let ms = 1_000_000u64;
        let d = DegradeConfig {
            queue_depth_threshold: 10,
            p99_target_ms: 0.0,
            exit_fraction: 0.8,
            cooldown_ns: 50 * ms,
            ..DegradeConfig::default()
        };
        let mut st = LadderState::default();

        // Below threshold: full budget, signal cold.
        assert_eq!(d.step(&mut st, 1000, 10, 0.0, 0), None);
        assert!(!st.depth_hot());
        // Entry is immediate on the first crossing.
        assert_eq!(d.step(&mut st, 1000, 11, 0.0, ms), Some(250));
        assert!(st.depth_hot());

        // Boundary-straddling load (11, 10, 11, 10, …): pre-hysteresis
        // this flapped Some/None every step; now it stays degraded —
        // 10 is inside the band (exit needs <= 8).
        for t in 2..100u64 {
            let depth = if t % 2 == 0 { 11 } else { 10 };
            assert_eq!(d.step(&mut st, 1000, depth, 0.0, t * ms), Some(250), "flapped at t={t}");
        }
        // Drop clearly below the exit band, but within the cooldown of
        // the last entry-crossing (t=98ms + 50ms): still degraded.
        assert_eq!(d.step(&mut st, 1000, 2, 0.0, 120 * ms), Some(250));
        assert!(st.depth_hot());
        // Same load after the cooldown expires: the ladder disengages.
        assert_eq!(d.step(&mut st, 1000, 2, 0.0, 149 * ms), None);
        assert!(!st.depth_hot());
        // Re-entry is immediate again.
        assert_eq!(d.step(&mut st, 1000, 11, 0.0, 150 * ms), Some(250));
    }

    #[test]
    fn swap_epoch_bumps_on_publication() {
        let reg = Registry::new();
        let t = uae_data::census_like(64, 7);
        let mk = || uae_core::Uae::new(&t, uae_core::UaeConfig::default());
        assert_eq!(reg.swap_epoch(), 0);
        reg.register("a", mk());
        assert_eq!(reg.swap_epoch(), 0, "first registration is not a swap");
        reg.swap_model("a", mk()).expect("tenant exists");
        assert_eq!(reg.swap_epoch(), 1);
        reg.register("a", mk()); // re-register = publication
        assert_eq!(reg.swap_epoch(), 2);
    }
}
